//! Per-mechanism operation recipes for the Fig. 2b scaling model.
//!
//! Each [`Backend`] turns a latency profile plus a measured per-op
//! [`OpProfile`] into the resource table and [`OpRecipe`] the
//! [`SimMachine`] executes. The event counts (cache
//! misses per op, lines logged per op, fences per op) come from the
//! functional simulation — the bench harness measures them by running the
//! real `PHashMap` on the real device model — so the timing model cannot
//! drift from the implementation.

use pax_pm::{LatencyProfile, PersistencyModel, Platform};

use crate::engine::{OpRecipe, Resource, SimMachine, SimReport, Stage};

/// Measured per-operation event counts (averages over a workload run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpProfile {
    /// LLC misses per operation (loads that reach memory).
    pub misses_per_op: f64,
    /// Lines stored per operation (dirty traffic that must reach memory
    /// eventually; for WAL backends these writes are synchronous).
    pub stores_per_op: f64,
    /// Pure compute (hashing, pointer arithmetic) per operation, ns.
    pub compute_ns: u64,
}

impl OpProfile {
    /// A hash-table insert of 8 B key/value, as measured on the
    /// functional simulation: ~2 lines missed (bucket head + chain), ~2
    /// lines stored (node + bucket pointer), ~60 ns of compute.
    pub const fn hash_insert_default() -> Self {
        OpProfile { misses_per_op: 2.0, stores_per_op: 2.0, compute_ns: 60 }
    }

    /// A hash-table get: ~2 lines missed, nothing stored.
    pub const fn hash_get_default() -> Self {
        OpProfile { misses_per_op: 2.0, stores_per_op: 0.0, compute_ns: 50 }
    }
}

/// Shared-hardware parameters of the simulated 32-core socket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Concurrent line requests the DRAM subsystem sustains.
    pub dram_concurrency: usize,
    /// Concurrent PM line *reads* a socket sustains; Optane's read
    /// memory-level parallelism is decent (40 GB/s at 305 ns ⇒ ~16
    /// outstanding lines; Yang et al., FAST '20).
    pub pm_read_concurrency: usize,
    /// Concurrent PM line *writes* — small; the XPBuffer/write-combining
    /// limits (14 GB/s) are what make PM write throughput flatten early.
    pub pm_write_concurrency: usize,
    /// Effective service time of a small random PM write once admitted,
    /// ns (media-side cost, beyond the ADR-visible latency).
    pub pm_write_service_ns: u64,
    /// Concurrent in-flight messages the PAX device pipeline sustains.
    pub device_concurrency: usize,
    /// Device per-message occupancy, ns.
    pub device_service_ns: u64,
    /// Fraction of device reads served from HBM instead of PM.
    pub hbm_hit_rate: f64,
    /// Address-interleaved device shards; each shard contributes an
    /// independent message pipeline and undo-log append engine, mirroring
    /// `DeviceConfig::with_shards` in `pax-device`.
    pub device_shards: usize,
    /// Occupancy of a shard's undo-log append engine per logged store, ns
    /// (HBM log-buffer append; the PM drain is asynchronous). Serial
    /// within a shard — this is what sharding parallelises.
    pub log_engine_ns: u64,
    /// Period of the device's virtual-time scheduler tick, ns. Sustained
    /// store throughput cannot outrun the background engines: a shard's
    /// log bank admits at most one entry per tick, so its effective
    /// append occupancy is `log_engine_ns.max(device_tick_ns)`. The
    /// paper-default 25 ns equals `log_engine_ns` — a scheduler clocked
    /// as fast as the append engine is invisible.
    pub device_tick_ns: u64,
    /// Tenant pool contexts sharing the device (`PaxDevice::open_multi`).
    /// Each physical shard's tick budget is divided across its active
    /// tenants, so a tenant's lane admits one entry per `T` ticks under
    /// full contention: the effective append occupancy becomes
    /// `log_engine_ns.max(device_tick_ns * T)`. The default 1 leaves
    /// every number unchanged.
    pub device_tenants: usize,
    /// Round-trip cost of one persist-time snoop to the host cache, ns
    /// (wire to the host, LLC tag probe, data return). Only the
    /// epoch-persist pricing ([`MachineParams::persist_epoch_ns`]) pays
    /// it — the per-op throughput recipes never snoop — so adding the
    /// knob changes no existing series.
    pub snoop_ns: u64,
    /// Lines per coalesced persist write-back batch — the model twin of
    /// `DeviceConfig::persist_wb_batch` in `pax-device`. Lines in a
    /// batch share one PM write admission.
    pub writeback_batch: usize,
}

impl MachineParams {
    /// Defaults documented against the paper's sources: DRAM ~10-way MLP;
    /// Optane ~4 concurrent small writes per socket with ~250 ns media
    /// occupancy; an ASIC-class device pipeline of depth 8 at ~10 ns per
    /// message (a 300 MHz FPGA would be depth 2–3, §5.1).
    pub const fn paper() -> Self {
        MachineParams {
            dram_concurrency: 10,
            pm_read_concurrency: 16,
            pm_write_concurrency: 4,
            pm_write_service_ns: 250,
            device_concurrency: 8,
            device_service_ns: 10,
            hbm_hit_rate: 0.5,
            device_shards: 1,
            log_engine_ns: 25,
            device_tick_ns: 25,
            device_tenants: 1,
            snoop_ns: 100,
            writeback_batch: 8,
        }
    }

    /// Prices tenant `t`'s epoch-end persist sweep from the functional
    /// simulation's counters: every snoop the directory could not filter
    /// pays a host round trip ([`MachineParams::snoop_ns`]), and the
    /// write backs land in coalesced batches of
    /// [`MachineParams::writeback_batch`] lines, each batch occupying
    /// one PM write admission. The snoop-filter win is exactly the
    /// `snoops` argument shrinking; the batching win is the division.
    pub const fn persist_epoch_ns(&self, snoops: u64, writebacks: u64) -> u64 {
        let batch = if self.writeback_batch == 0 { 1 } else { self.writeback_batch as u64 };
        let batches = writebacks.div_ceil(batch);
        snoops * self.snoop_ns + batches * self.pm_write_service_ns
    }

    /// Prices the *caller-visible* cost of closing an epoch of `snoops`
    /// snoop-eligible lines and `writebacks` dirty lines under each
    /// [`PersistencyModel`] — the ordering-cost axis of "Exploring Memory
    /// Persistency Models for GPUs":
    ///
    /// * `Strict` — there is no epoch to amortise over: every store in
    ///   the would-be epoch pays its own full barrier (one snoop, one
    ///   unbatched log write, one unbatched data write). Neither the
    ///   write-back batching nor the snoop filter can help, which is
    ///   exactly why strict ordering costs integer factors more.
    /// * `Epoch` — the synchronous barrier: the whole
    ///   [`MachineParams::persist_epoch_ns`] sweep plus one commit-record
    ///   write, paid once per epoch.
    /// * `BufferedEpoch` — the close returns after capturing the epoch;
    ///   the sweep drains in the background, so the caller pays only the
    ///   commit-record admission.
    pub const fn epoch_close_visible_ns(
        &self,
        model: PersistencyModel,
        snoops: u64,
        writebacks: u64,
    ) -> u64 {
        match model {
            PersistencyModel::Strict => {
                let stores = if writebacks > snoops { writebacks } else { snoops };
                let stores = if stores == 0 { 1 } else { stores };
                stores * (self.snoop_ns + 2 * self.pm_write_service_ns)
            }
            PersistencyModel::Epoch => {
                self.persist_epoch_ns(snoops, writebacks) + self.pm_write_service_ns
            }
            PersistencyModel::BufferedEpoch { .. } => self.pm_write_service_ns,
        }
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// The four Fig. 2b(+) series.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Backend {
    /// Volatile table in DRAM.
    Dram,
    /// Table on PM, no crash consistency.
    PmDirect,
    /// PMDK-style synchronous undo WAL on PM.
    Pmdk,
    /// PAX on the given platform (CXL or Enzian).
    Pax(Platform),
}

impl Backend {
    /// The label Fig. 2b uses.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Dram => "DRAM",
            Backend::PmDirect => "PM Direct",
            Backend::Pmdk => "PMDK",
            Backend::Pax(Platform::Enzian) => "PAX (Enzian)",
            Backend::Pax(_) => "PAX (CXL)",
        }
    }

    /// Builds the machine and recipe for this backend.
    ///
    /// Resource 0 is the read side of the backing memory, resource 1 the
    /// write side. PAX additionally owns resources `2 .. 2 + S` (one
    /// message pipeline per device shard) and `2 + S .. 2 + 2S` (one
    /// undo-log append engine per shard), where `S` is
    /// [`MachineParams::device_shards`]; requests are steered to the
    /// least-loaded bank.
    pub fn build(
        self,
        latency: &LatencyProfile,
        machine: &MachineParams,
        op: &OpProfile,
    ) -> (SimMachine, OpRecipe) {
        let mut stages = vec![Stage::Compute(op.compute_ns)];
        // Deterministic expansion of fractional event counts.
        let misses = op.misses_per_op.round() as usize;
        let stores = op.stores_per_op.round() as usize;
        let pm_read = Resource { name: "PM read", concurrency: machine.pm_read_concurrency };
        let pm_write = Resource { name: "PM write", concurrency: machine.pm_write_concurrency };

        match self {
            Backend::Dram => {
                let mem = Resource { name: "DRAM", concurrency: machine.dram_concurrency };
                for _ in 0..misses {
                    stages.push(Stage::Use { resource: 0, service_ns: latency.dram.read_ns });
                }
                for _ in 0..stores {
                    stages.push(Stage::Use { resource: 0, service_ns: latency.dram.write_ns });
                }
                (SimMachine::new(vec![mem]), OpRecipe { stages })
            }
            Backend::PmDirect => {
                for _ in 0..misses {
                    stages.push(Stage::Use { resource: 0, service_ns: latency.pm.read_ns });
                }
                for _ in 0..stores {
                    // The store is ADR-complete quickly, but the DIMM
                    // write slot stays occupied for the media write.
                    stages
                        .push(Stage::Use { resource: 1, service_ns: machine.pm_write_service_ns });
                }
                (SimMachine::new(vec![pm_read, pm_write]), OpRecipe { stages })
            }
            Backend::Pmdk => {
                for _ in 0..misses {
                    stages.push(Stage::Use { resource: 0, service_ns: latency.pm.read_ns });
                }
                for _ in 0..stores {
                    // Undo WAL (§2): read old value, append log entry,
                    // SFENCE-stall until durable, then the data store —
                    // 2× the PM write traffic of direct access.
                    stages.push(Stage::Use { resource: 0, service_ns: latency.pm.read_ns });
                    stages.push(Stage::Use {
                        resource: 1,
                        service_ns: machine.pm_write_service_ns, // log line
                    });
                    stages.push(Stage::Compute(latency.sfence_ns));
                    stages.push(Stage::Use {
                        resource: 1,
                        service_ns: machine.pm_write_service_ns, // data line
                    });
                }
                // Commit record + fence closing the op's transaction.
                stages.push(Stage::Compute(latency.sfence_ns));
                (SimMachine::new(vec![pm_read, pm_write]), OpRecipe { stages })
            }
            Backend::Pax(platform) => {
                let shards = machine.device_shards.max(1);
                let pipes = 2; // first pipeline bank
                let logs = pipes + shards; // first log-engine bank
                let mut resources = vec![pm_read, pm_write];
                for _ in 0..shards {
                    resources.push(Resource {
                        name: "PAX pipeline",
                        concurrency: machine.device_concurrency,
                    });
                }
                for _ in 0..shards {
                    resources.push(Resource { name: "PAX log engine", concurrency: 1 });
                }
                let interpose = latency.interposition_ns(platform);
                // Device-side read service: HBM hit or PM read.
                let backing = (machine.hbm_hit_rate * latency.hbm_ns as f64
                    + (1.0 - machine.hbm_hit_rate) * latency.pm.read_ns as f64)
                    as u64;
                for _ in 0..misses {
                    // Miss travels to the device (interposition latency is
                    // thread-local wire time) then occupies the pipeline
                    // of the shard owning the line.
                    stages.push(Stage::Compute(interpose));
                    stages.push(Stage::UseAny {
                        first: pipes,
                        count: shards,
                        service_ns: machine.device_service_ns + backing,
                    });
                }
                for _ in 0..stores {
                    // RdOwn: wire + pipeline, then the shard's log engine
                    // appends the undo entry into the HBM log buffer.
                    // The PM drain and write back stay asynchronous
                    // (§3.2) — the thread never stalls on PM. This is the
                    // paper's §5 projection; whether background
                    // log/write-back traffic eats the PM write bandwidth
                    // is the open question §5.1 flags, modelled
                    // separately in the `bandwidth` harness.
                    stages.push(Stage::Compute(interpose));
                    stages.push(Stage::UseAny {
                        first: pipes,
                        count: shards,
                        service_ns: machine.device_service_ns,
                    });
                    // Under full multi-tenant contention a lane sees one
                    // tick's budget every T ticks (weighted round-robin),
                    // stretching the admission period accordingly.
                    let tick_share = machine.device_tick_ns * machine.device_tenants.max(1) as u64;
                    stages.push(Stage::UseAny {
                        first: logs,
                        count: shards,
                        service_ns: machine.log_engine_ns.max(tick_share),
                    });
                }
                (SimMachine::new(resources), OpRecipe { stages })
            }
        }
    }

    /// Convenience: run the Fig. 2b point for this backend.
    pub fn throughput(
        self,
        threads: usize,
        ops_per_thread: u64,
        latency: &LatencyProfile,
        machine: &MachineParams,
        op: &OpProfile,
    ) -> SimReport {
        let (sim, recipe) = self.build(latency, machine, op);
        sim.run(threads, ops_per_thread, &recipe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: u64 = 2_000;

    fn mops(b: Backend, threads: usize) -> f64 {
        b.throughput(
            threads,
            OPS,
            &LatencyProfile::c6420(),
            &MachineParams::paper(),
            &OpProfile::hash_insert_default(),
        )
        .mops()
    }

    #[test]
    fn figure_2b_ordering_at_32_threads() {
        let dram = mops(Backend::Dram, 32);
        let direct = mops(Backend::PmDirect, 32);
        let pmdk = mops(Backend::Pmdk, 32);
        assert!(dram > direct, "DRAM {dram} vs direct {direct}");
        assert!(direct > pmdk, "direct {direct} vs PMDK {pmdk}");
        // §5: "For 32 cores, PM Direct performs ≈2× better than PMDK".
        let ratio = direct / pmdk;
        assert!((1.5..=3.5).contains(&ratio), "direct/PMDK ratio {ratio}");
    }

    #[test]
    fn pax_matches_or_beats_pm_direct() {
        for threads in [1, 8, 16, 24, 32] {
            let direct = mops(Backend::PmDirect, threads);
            let pax = mops(Backend::Pax(Platform::Cxl), threads);
            assert!(pax >= direct * 0.95, "{threads} threads: PAX {pax} vs direct {direct}");
        }
    }

    #[test]
    fn enzian_pax_is_slower_than_cxl_pax() {
        let cxl = mops(Backend::Pax(Platform::Cxl), 16);
        let enzian = mops(Backend::Pax(Platform::Enzian), 16);
        assert!(enzian < cxl, "enzian {enzian} vs cxl {cxl}");
    }

    #[test]
    fn throughput_grows_with_threads_until_saturation() {
        for b in [Backend::Dram, Backend::PmDirect, Backend::Pmdk] {
            let t1 = mops(b, 1);
            let t8 = mops(b, 8);
            assert!(t8 > t1 * 1.5, "{}: t1 {t1}, t8 {t8}", b.label());
        }
    }

    #[test]
    fn pmdk_gap_holds_across_thread_counts() {
        // PMDK pays the WAL costs whether latency-bound (1 thread) or
        // bandwidth-bound (32 threads); the gap stays near the paper's 2×.
        for threads in [1, 32] {
            let gap = mops(Backend::PmDirect, threads) / mops(Backend::Pmdk, threads);
            assert!((1.5..=3.5).contains(&gap), "{threads} threads: gap {gap}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Backend::Pax(Platform::Cxl).label(), "PAX (CXL)");
        assert_eq!(Backend::Pmdk.label(), "PMDK");
    }

    fn pax_mops(machine: &MachineParams, threads: usize) -> f64 {
        Backend::Pax(Platform::Cxl)
            .throughput(
                threads,
                OPS,
                &LatencyProfile::c6420(),
                machine,
                &OpProfile::hash_insert_default(),
            )
            .mops()
    }

    #[test]
    fn sharded_device_lifts_the_throughput_ceiling() {
        // One shard serialises undo-log appends on a single engine; four
        // shards parallelise them. The Fig. 2b acceptance bar is ≥ 1.5×
        // at 32 threads.
        let one = pax_mops(&MachineParams::paper(), 32);
        let four = pax_mops(&MachineParams { device_shards: 4, ..MachineParams::paper() }, 32);
        assert!(four >= one * 1.5, "S=1 {one} Mops, S=4 {four} Mops");
    }

    #[test]
    fn shard_count_one_is_the_default() {
        assert_eq!(MachineParams::paper().device_shards, 1);
        assert_eq!(MachineParams::default(), MachineParams::paper());
    }

    #[test]
    fn default_tick_rate_is_invisible() {
        // device_tick_ns == log_engine_ns by default, so the scheduler
        // changes no number the model produced before it existed.
        assert_eq!(MachineParams::paper().device_tick_ns, MachineParams::paper().log_engine_ns);
        let explicit = MachineParams { device_tick_ns: 25, ..MachineParams::paper() };
        assert_eq!(pax_mops(&explicit, 32), pax_mops(&MachineParams::paper(), 32));
    }

    #[test]
    fn slow_ticks_throttle_sustained_store_throughput() {
        // A scheduler ticking slower than the append engine becomes the
        // log bank's bottleneck: stores queue behind the tick period.
        let fast = pax_mops(&MachineParams::paper(), 32);
        let slow = pax_mops(&MachineParams { device_tick_ns: 200, ..MachineParams::paper() }, 32);
        assert!(slow < fast, "tick=200ns {slow} Mops vs tick=25ns {fast} Mops");
        // Sharding still parallelises the (slower) banks.
        let slow4 = pax_mops(
            &MachineParams { device_tick_ns: 200, device_shards: 4, ..MachineParams::paper() },
            32,
        );
        assert!(slow4 > slow, "S=4 {slow4} Mops vs S=1 {slow} Mops at tick=200ns");
    }

    #[test]
    fn single_tenant_is_the_invisible_default() {
        assert_eq!(MachineParams::paper().device_tenants, 1);
        let explicit = MachineParams { device_tenants: 1, ..MachineParams::paper() };
        assert_eq!(pax_mops(&explicit, 32), pax_mops(&MachineParams::paper(), 32));
    }

    #[test]
    fn tenant_contention_throttles_per_tenant_stores_and_shards_recover_it() {
        // Four tenants contending for one shard's tick budget stretch the
        // per-lane admission period 4x; giving the device four shards
        // gives the parallelism back.
        let solo = pax_mops(&MachineParams::paper(), 32);
        let contended =
            pax_mops(&MachineParams { device_tenants: 4, ..MachineParams::paper() }, 32);
        assert!(contended < solo, "T=4 {contended} Mops vs T=1 {solo} Mops");
        let sharded = pax_mops(
            &MachineParams { device_tenants: 4, device_shards: 4, ..MachineParams::paper() },
            32,
        );
        assert!(sharded > contended, "S=4 {sharded} Mops vs S=1 {contended} Mops at T=4");
    }

    #[test]
    fn persist_pricing_rewards_filtering_and_batching() {
        let m = MachineParams::paper();
        // The throughput recipes never touch the new knobs, so they are
        // invisible defaults for every existing series.
        assert_eq!(pax_mops(&m, 32), pax_mops(&MachineParams::paper(), 32));
        // Filtering: fewer snoops, strictly cheaper sweep.
        let unfiltered = m.persist_epoch_ns(64, 64);
        let filtered = m.persist_epoch_ns(8, 64);
        assert!(filtered < unfiltered, "filtered {filtered} vs unfiltered {unfiltered}");
        // Batching: same lines, fewer PM write admissions.
        let unbatched = MachineParams { writeback_batch: 1, ..m };
        assert!(m.persist_epoch_ns(0, 64) < unbatched.persist_epoch_ns(0, 64));
        // 64 lines at batch 8 = 8 admissions + 64 snoops.
        assert_eq!(unfiltered, 64 * m.snoop_ns + 8 * m.pm_write_service_ns);
    }

    #[test]
    fn persistency_models_price_in_strict_order() {
        let m = MachineParams::paper();
        // A 64-store epoch, snoop-filtered down to 8 host round trips.
        let strict = m.epoch_close_visible_ns(PersistencyModel::Strict, 64, 64);
        let epoch = m.epoch_close_visible_ns(PersistencyModel::Epoch, 8, 64);
        let buffered = m.epoch_close_visible_ns(PersistencyModel::buffered(4), 8, 64);
        assert!(
            strict > epoch && epoch > buffered,
            "strict {strict} > epoch {epoch} > buffered {buffered}"
        );
        // Strict forfeits both amortisations: per store, one snoop plus
        // an unbatched log write and data write.
        assert_eq!(strict, 64 * (m.snoop_ns + 2 * m.pm_write_service_ns));
        // Epoch pays the sweep plus one commit record.
        assert_eq!(epoch, m.persist_epoch_ns(8, 64) + m.pm_write_service_ns);
        // Buffered pays only the commit record, whatever the epoch size.
        assert_eq!(buffered, m.pm_write_service_ns);
        assert_eq!(
            m.epoch_close_visible_ns(PersistencyModel::buffered(2), 1000, 1000),
            m.pm_write_service_ns
        );
        // An empty strict epoch still prices one store's barrier.
        assert!(m.epoch_close_visible_ns(PersistencyModel::Strict, 0, 0) > 0);
    }

    #[test]
    fn pax_resource_table_is_banked_per_shard() {
        let sharded = MachineParams { device_shards: 3, ..MachineParams::paper() };
        let (sim, recipe) = Backend::Pax(Platform::Cxl).build(
            &LatencyProfile::c6420(),
            &sharded,
            &OpProfile::hash_insert_default(),
        );
        // pm_read, pm_write, 3 pipelines, 3 log engines.
        assert_eq!(sim.resources().len(), 8);
        let r = sim.run(2, 10, &recipe);
        assert_eq!(r.ops, 20, "banked recipe must stay runnable");
    }
}
