//! Discrete-event multicore timing simulator.
//!
//! Fig. 2b of the paper plots hash-table throughput against thread count
//! (1–32) on a 32-core machine. This reproduction runs on whatever host it
//! lands on (possibly a single core), so the scaling experiment is run on
//! a *simulated* multicore: N logical threads execute operations whose
//! stage costs come from the same latency constants as the rest of the
//! workspace, contending for shared resources (DRAM banks, PM DIMM
//! buffers, the PAX device pipeline) modelled as bounded-concurrency
//! servers.
//!
//! * [`engine`] — the deterministic event-heap simulator: threads,
//!   resources, stages.
//! * [`backend`] — per-mechanism operation recipes (DRAM, PM-Direct,
//!   PMDK-style WAL, PAX), parameterized by measured per-op event counts
//!   so the recipes stay tied to the functional simulation rather than
//!   invented numbers.
//!
//! The absolute Mops are model outputs, not hardware measurements; what
//! the model preserves — and what EXPERIMENTS.md checks — is the *shape*:
//! who wins, by what factor, and how gaps evolve with thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod engine;

pub use backend::{Backend, MachineParams, OpProfile};
pub use engine::{OpRecipe, Resource, SimMachine, SimReport, Stage};
