//! The deterministic discrete-event engine.
//!
//! A [`SimMachine`] holds a set of [`Resource`]s (bounded-concurrency
//! servers with FIFO queues) and simulates `threads` logical threads,
//! each executing the same [`OpRecipe`] in a closed loop. Stages either
//! burn thread-local time ([`Stage::Compute`]) or occupy a resource slot
//! for a service time ([`Stage::Use`]). The run ends when every thread
//! has completed its operation quota; throughput is total ops over
//! simulated makespan.
//!
//! Determinism: ties in the event heap break by (time, sequence number),
//! and queues are FIFO, so a given configuration always produces the same
//! report.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Index of a resource within a [`SimMachine`].
pub type ResourceId = usize;

/// One step of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Thread-local work for the given nanoseconds (never contended).
    Compute(u64),
    /// Occupy one slot of `resource` for `service_ns`.
    Use {
        /// Which resource to occupy.
        resource: ResourceId,
        /// Service time once a slot is granted.
        service_ns: u64,
    },
    /// Occupy one slot of the *least-loaded* resource in the contiguous
    /// range `first .. first + count` for `service_ns`.
    ///
    /// Load is in-service requests plus queued requests at dispatch time;
    /// ties break to the lowest index, keeping runs deterministic. This
    /// models a banked server (e.g. the sharded PAX device pipeline)
    /// where each request may be steered to any bank.
    UseAny {
        /// First resource of the bank group.
        first: ResourceId,
        /// Number of interchangeable banks (must be ≥ 1).
        count: usize,
        /// Service time once a slot is granted.
        service_ns: u64,
    },
}

/// The per-operation stage sequence a backend executes.
#[derive(Debug, Clone, Default)]
pub struct OpRecipe {
    /// Stages executed in order for every operation.
    pub stages: Vec<Stage>,
}

impl OpRecipe {
    /// Sum of all stage service times (the uncontended op latency).
    pub fn uncontended_ns(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Compute(ns) => *ns,
                Stage::Use { service_ns, .. } | Stage::UseAny { service_ns, .. } => *service_ns,
            })
            .sum()
    }
}

/// A bounded-concurrency server (DRAM banks, PM DIMM write buffers, the
/// device message pipeline…).
#[derive(Debug, Clone)]
pub struct Resource {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Maximum requests in service simultaneously.
    pub concurrency: usize,
}

#[derive(Debug, Default)]
struct ResourceState {
    in_service: usize,
    queue: VecDeque<(usize, u64)>, // (thread, service_ns)
    busy_ns: u64,
    served: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum Event {
    /// Thread finished its current stage and should start the next.
    StageDone { thread: usize },
    /// Thread finished service at a resource.
    ServiceDone { thread: usize, resource: ResourceId },
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total operations completed.
    pub ops: u64,
    /// Simulated wall-clock for the run, ns.
    pub makespan_ns: u64,
    /// Per-resource utilisation (busy time / makespan / concurrency).
    pub utilisation: Vec<(&'static str, f64)>,
}

impl SimReport {
    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.makespan_ns as f64
        }
    }

    /// Throughput in Mops (the unit Fig. 2b uses).
    pub fn mops(&self) -> f64 {
        self.ops_per_sec() / 1e6
    }
}

/// The simulated machine (see module docs).
#[derive(Debug)]
pub struct SimMachine {
    resources: Vec<Resource>,
}

impl SimMachine {
    /// A machine with the given resources.
    pub fn new(resources: Vec<Resource>) -> Self {
        SimMachine { resources }
    }

    /// The resource table.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Runs `threads` logical threads, each executing `recipe` for
    /// `ops_per_thread` closed-loop operations.
    ///
    /// # Panics
    ///
    /// Panics if a stage references an unknown resource or `threads` is 0.
    pub fn run(&self, threads: usize, ops_per_thread: u64, recipe: &OpRecipe) -> SimReport {
        assert!(threads > 0, "need at least one thread");
        for s in &recipe.stages {
            match s {
                Stage::Use { resource, .. } => {
                    assert!(*resource < self.resources.len(), "unknown resource {resource}");
                }
                Stage::UseAny { first, count, .. } => {
                    assert!(*count > 0, "UseAny needs at least one bank");
                    assert!(
                        first + count <= self.resources.len(),
                        "UseAny range {first}..{} exceeds resource table",
                        first + count
                    );
                }
                Stage::Compute(_) => {}
            }
        }

        let mut res: Vec<ResourceState> =
            self.resources.iter().map(|_| ResourceState::default()).collect();
        // Per-thread progress: (ops done, index of next stage).
        let mut thread_stage = vec![0usize; threads];
        let mut thread_ops = vec![0u64; threads];
        let mut completed_threads = 0usize;
        let mut total_ops = 0u64;

        // (time, seq) keyed min-heap.
        let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut events: Vec<Option<Event>> = Vec::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<_>,
                    events: &mut Vec<Option<Event>>,
                    time: u64,
                    ev: Event,
                    seq: &mut u64| {
            events.push(Some(ev));
            heap.push(Reverse((time, *seq, events.len() - 1)));
            *seq += 1;
        };

        // Kick every thread off at t=0.
        for t in 0..threads {
            push(&mut heap, &mut events, 0, Event::StageDone { thread: t }, &mut seq);
        }

        let mut now = 0u64;
        while let Some(Reverse((time, _, idx))) = heap.pop() {
            now = time;
            let ev = events[idx].take().expect("event consumed twice");
            match ev {
                Event::ServiceDone { thread, resource } => {
                    let st = &mut res[resource];
                    st.in_service -= 1;
                    st.served += 1;
                    // Grant the next queued request, FIFO.
                    if let Some((next_thread, service)) = st.queue.pop_front() {
                        st.in_service += 1;
                        st.busy_ns += service;
                        push(
                            &mut heap,
                            &mut events,
                            now + service,
                            Event::ServiceDone { thread: next_thread, resource },
                            &mut seq,
                        );
                    }
                    // The thread that finished moves to its next stage.
                    push(&mut heap, &mut events, now, Event::StageDone { thread }, &mut seq);
                }
                Event::StageDone { thread } => {
                    // Advance through stages; Compute stages chain by
                    // scheduling, Use stages may block in a queue.
                    if thread_stage[thread] >= recipe.stages.len() {
                        // Operation complete.
                        thread_stage[thread] = 0;
                        thread_ops[thread] += 1;
                        total_ops += 1;
                        if thread_ops[thread] >= ops_per_thread {
                            completed_threads += 1;
                            if completed_threads == threads {
                                break;
                            }
                            continue; // thread retires
                        }
                    }
                    let stage = recipe.stages[thread_stage[thread]];
                    thread_stage[thread] += 1;
                    let (resource, service_ns) = match stage {
                        Stage::Compute(ns) => {
                            push(
                                &mut heap,
                                &mut events,
                                now + ns,
                                Event::StageDone { thread },
                                &mut seq,
                            );
                            continue;
                        }
                        Stage::Use { resource, service_ns } => (resource, service_ns),
                        Stage::UseAny { first, count, service_ns } => {
                            let pick = (first..first + count)
                                .min_by_key(|&r| (res[r].in_service + res[r].queue.len(), r))
                                .expect("UseAny count validated non-zero");
                            (pick, service_ns)
                        }
                    };
                    let st = &mut res[resource];
                    if st.in_service < self.resources[resource].concurrency {
                        st.in_service += 1;
                        st.busy_ns += service_ns;
                        push(
                            &mut heap,
                            &mut events,
                            now + service_ns,
                            Event::ServiceDone { thread, resource },
                            &mut seq,
                        );
                    } else {
                        st.queue.push_back((thread, service_ns));
                    }
                }
            }
        }

        let makespan = now.max(1);
        SimReport {
            ops: total_ops,
            makespan_ns: makespan,
            utilisation: self
                .resources
                .iter()
                .zip(&res)
                .map(|(r, st)| {
                    (r.name, st.busy_ns as f64 / (makespan as f64 * r.concurrency as f64))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(concurrency: usize) -> SimMachine {
        SimMachine::new(vec![Resource { name: "mem", concurrency }])
    }

    #[test]
    fn single_thread_throughput_matches_recipe_latency() {
        let m = machine(1);
        let recipe = OpRecipe {
            stages: vec![Stage::Compute(60), Stage::Use { resource: 0, service_ns: 40 }],
        };
        let r = m.run(1, 1000, &recipe);
        assert_eq!(r.ops, 1000);
        // 100 ns/op → 10 Mops.
        let mops = r.mops();
        assert!((mops - 10.0).abs() < 0.2, "got {mops}");
    }

    #[test]
    fn compute_only_scales_linearly() {
        let m = machine(1);
        let recipe = OpRecipe { stages: vec![Stage::Compute(100)] };
        let t1 = m.run(1, 500, &recipe).mops();
        let t8 = m.run(8, 500, &recipe).mops();
        assert!((t8 / t1 - 8.0).abs() < 0.2, "ratio {}", t8 / t1);
    }

    #[test]
    fn saturated_resource_caps_throughput() {
        // Resource with concurrency 1, 100 ns service: ceiling 10 Mops
        // regardless of thread count.
        let m = machine(1);
        let recipe = OpRecipe {
            stages: vec![Stage::Compute(10), Stage::Use { resource: 0, service_ns: 100 }],
        };
        let t16 = m.run(16, 500, &recipe).mops();
        assert!(t16 < 10.5, "got {t16}");
        assert!(t16 > 9.0, "got {t16}");
        let (_, util) = m.run(16, 500, &recipe).utilisation[0];
        assert!(util > 0.95, "resource should be saturated, util {util}");
    }

    #[test]
    fn higher_concurrency_raises_the_ceiling() {
        let recipe = OpRecipe {
            stages: vec![Stage::Compute(10), Stage::Use { resource: 0, service_ns: 100 }],
        };
        let narrow = machine(1).run(16, 300, &recipe).mops();
        let wide = machine(8).run(16, 300, &recipe).mops();
        assert!(wide > narrow * 4.0, "narrow {narrow}, wide {wide}");
    }

    #[test]
    fn deterministic_runs() {
        let m = machine(2);
        let recipe = OpRecipe {
            stages: vec![Stage::Compute(7), Stage::Use { resource: 0, service_ns: 13 }],
        };
        let a = m.run(5, 200, &recipe);
        let b = m.run(5, 200, &recipe);
        assert_eq!(a, b);
    }

    #[test]
    fn uncontended_ns_sums_stages() {
        let recipe = OpRecipe {
            stages: vec![Stage::Compute(5), Stage::Use { resource: 0, service_ns: 11 }],
        };
        assert_eq!(recipe.uncontended_ns(), 16);
    }

    #[test]
    fn work_conservation_under_random_recipes() {
        // ops counted == threads × ops_per_thread, and makespan is at
        // least the critical-path bound, for a spread of configurations.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let threads = (next() % 8 + 1) as usize;
            let ops = next() % 50 + 1;
            let conc = (next() % 4 + 1) as usize;
            let mut stages = Vec::new();
            for _ in 0..(next() % 4 + 1) {
                if next() % 2 == 0 {
                    stages.push(Stage::Compute(next() % 100 + 1));
                } else {
                    stages.push(Stage::Use { resource: 0, service_ns: next() % 100 + 1 });
                }
            }
            let recipe = OpRecipe { stages };
            let m = SimMachine::new(vec![Resource { name: "r", concurrency: conc }]);
            let r = m.run(threads, ops, &recipe);
            assert_eq!(r.ops, threads as u64 * ops, "conservation");
            // One thread's serial chain is a lower bound on makespan.
            assert!(
                r.makespan_ns >= ops * recipe.uncontended_ns() / 2,
                "makespan {} vs bound {}",
                r.makespan_ns,
                ops * recipe.uncontended_ns()
            );
            // Utilisation is a valid fraction.
            for (_, u) in &r.utilisation {
                assert!((0.0..=1.0 + 1e-9).contains(u), "util {u}");
            }
        }
    }

    #[test]
    fn more_threads_never_reduce_total_throughput() {
        let m = machine(4);
        let recipe = OpRecipe {
            stages: vec![Stage::Compute(30), Stage::Use { resource: 0, service_ns: 50 }],
        };
        let mut last = 0.0;
        for threads in [1usize, 2, 4, 8, 16] {
            let mops = m.run(threads, 300, &recipe).mops();
            assert!(mops >= last * 0.99, "{threads} threads: {mops} < {last}");
            last = mops;
        }
    }

    #[test]
    #[should_panic]
    fn unknown_resource_is_rejected() {
        machine(1).run(1, 1, &OpRecipe { stages: vec![Stage::Use { resource: 5, service_ns: 1 }] });
    }

    fn banked(banks: usize) -> SimMachine {
        SimMachine::new(
            (0..banks).map(|_| Resource { name: "bank", concurrency: 1 }).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn use_any_spreads_load_across_banks() {
        // One bank at 100 ns caps at 10 Mops; four interchangeable banks
        // should scale the ceiling close to 4×.
        let recipe = |count| OpRecipe {
            stages: vec![Stage::Compute(5), Stage::UseAny { first: 0, count, service_ns: 100 }],
        };
        let one = banked(1).run(16, 400, &recipe(1)).mops();
        let four = banked(4).run(16, 400, &recipe(4)).mops();
        assert!(four > one * 3.0, "one bank {one}, four banks {four}");
        // Every bank saw traffic.
        let report = banked(4).run(16, 400, &recipe(4));
        for (name, util) in &report.utilisation {
            assert!(*util > 0.5, "{name} underused: {util}");
        }
    }

    #[test]
    fn use_any_over_one_bank_matches_use() {
        let m = banked(1);
        let via_use = m.run(
            6,
            300,
            &OpRecipe {
                stages: vec![Stage::Compute(9), Stage::Use { resource: 0, service_ns: 21 }],
            },
        );
        let via_any = m.run(
            6,
            300,
            &OpRecipe {
                stages: vec![
                    Stage::Compute(9),
                    Stage::UseAny { first: 0, count: 1, service_ns: 21 },
                ],
            },
        );
        assert_eq!(via_use, via_any);
    }

    #[test]
    fn use_any_is_deterministic() {
        let m = banked(3);
        let recipe = OpRecipe {
            stages: vec![Stage::Compute(7), Stage::UseAny { first: 0, count: 3, service_ns: 13 }],
        };
        assert_eq!(m.run(9, 150, &recipe), m.run(9, 150, &recipe));
    }

    #[test]
    #[should_panic]
    fn use_any_range_past_table_is_rejected() {
        banked(2).run(
            1,
            1,
            &OpRecipe { stages: vec![Stage::UseAny { first: 1, count: 2, service_ns: 1 }] },
        );
    }

    #[test]
    #[should_panic]
    fn use_any_empty_range_is_rejected() {
        banked(2).run(
            1,
            1,
            &OpRecipe { stages: vec![Stage::UseAny { first: 0, count: 0, service_ns: 1 }] },
        );
    }
}
