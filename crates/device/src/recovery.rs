//! Post-crash recovery (§3.4).
//!
//! "libpax reads the epoch number stored in the pool, then it looks for
//! undo log entries associated with the pool tagged with any later epoch
//! number. For each such entry, libpax overwrites the corresponding cache
//! line in PM with the value stored in the log entry. Next, it performs an
//! SFENCE, and initializes the device and vPM as usual."
//!
//! [`recover`] is that procedure. It is idempotent — recovering twice is
//! harmless — and running it on a clean pool is a no-op, which is why
//! "from the application's perspective, there is no difference between
//! constructing a new persistent map and recovering one".

use pax_pm::{PmPool, Result};
use pax_telemetry::{TraceBuf, TraceEvent};

use crate::undo_log::UndoLog;

/// What a recovery pass observed and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The committed epoch the pool was restored to.
    pub committed_epoch: u64,
    /// Valid undo entries found in the log region.
    pub scanned: usize,
    /// Entries rolled back (tagged with an epoch newer than committed).
    pub rolled_back: usize,
}

/// Rolls the pool back to its last committed snapshot.
///
/// # Errors
///
/// Surfaces media errors from the scan and rollback writes.
pub fn recover(pool: &mut PmPool) -> Result<RecoveryReport> {
    recover_traced(pool, &mut TraceBuf::disabled())
}

/// Like [`recover`], emitting a [`TraceEvent::RecoveryStep`] per rolled
/// back line into `trace` so the rollback order is replayable.
///
/// # Errors
///
/// Surfaces media errors from the scan and rollback writes.
pub fn recover_traced(pool: &mut PmPool, trace: &mut TraceBuf) -> Result<RecoveryReport> {
    let committed = pool.committed_epoch()?;
    let entries = UndoLog::scan(pool)?;
    let scanned = entries.len();
    let mut rolled_back = 0;
    // Newest-first: each entry restores its line's epoch-start value, and
    // reverse order makes the pass correct even if a future format logs a
    // line more than once per epoch.
    for (_, entry) in entries.iter().rev() {
        if entry.epoch > committed {
            let abs = pool.layout().vpm_to_pool(entry.vpm_line.0)?;
            pool.write_line(abs, entry.old.clone())?;
            trace.record(
                "device",
                TraceEvent::RecoveryStep { epoch: entry.epoch, line: entry.vpm_line.0 },
            );
            rolled_back += 1;
        }
    }
    // The §3.4 SFENCE: rollback writes reach media before execution
    // continues.
    pool.drain();
    Ok(RecoveryReport { committed_epoch: committed, scanned, rolled_back })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::undo_log::{UndoEntry, UndoLog};
    use pax_pm::{CacheLine, CrashClock, LineAddr, PoolConfig};

    #[test]
    fn clean_pool_recovers_to_epoch_zero() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let r = recover(&mut pool).unwrap();
        assert_eq!(r, RecoveryReport { committed_epoch: 0, scanned: 0, rolled_back: 0 });
    }

    #[test]
    fn entries_newer_than_committed_are_rolled_back() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let clock = CrashClock::new();
        pool.commit_epoch(2).unwrap();

        // Simulate a crash mid-epoch-3: line 4's pre-image (0xAB) is
        // logged and the "new" value (0xCD) already reached PM.
        let mut log = UndoLog::new(&pool);
        log.append(UndoEntry { epoch: 3, vpm_line: LineAddr(4), old: CacheLine::filled(0xAB) })
            .unwrap();
        log.flush(&mut pool, &clock).unwrap();
        let abs = pool.layout().vpm_to_pool(4).unwrap();
        pool.write_line(abs, CacheLine::filled(0xCD)).unwrap();
        pool.drain();

        let r = recover(&mut pool).unwrap();
        assert_eq!(r.rolled_back, 1);
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(0xAB));
    }

    #[test]
    fn entries_from_committed_epochs_are_ignored() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&pool);
        log.append(UndoEntry { epoch: 1, vpm_line: LineAddr(0), old: CacheLine::filled(0x11) })
            .unwrap();
        log.flush(&mut pool, &clock).unwrap();
        pool.commit_epoch(1).unwrap(); // epoch 1 committed: entry is stale

        let abs = pool.layout().vpm_to_pool(0).unwrap();
        pool.write_line(abs, CacheLine::filled(0x22)).unwrap();
        pool.drain();

        let r = recover(&mut pool).unwrap();
        assert_eq!(r.scanned, 1);
        assert_eq!(r.rolled_back, 0);
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(0x22));
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&pool);
        log.append(UndoEntry { epoch: 1, vpm_line: LineAddr(2), old: CacheLine::filled(0x33) })
            .unwrap();
        log.flush(&mut pool, &clock).unwrap();

        let r1 = recover(&mut pool).unwrap();
        let r2 = recover(&mut pool).unwrap();
        assert_eq!(r1.rolled_back, 1);
        assert_eq!(r2.rolled_back, 1); // same rollback, same result
        let abs = pool.layout().vpm_to_pool(2).unwrap();
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(0x33));
    }
}
