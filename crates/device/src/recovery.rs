//! Post-crash recovery (§3.4).
//!
//! "libpax reads the epoch number stored in the pool, then it looks for
//! undo log entries associated with the pool tagged with any later epoch
//! number. For each such entry, libpax overwrites the corresponding cache
//! line in PM with the value stored in the log entry. Next, it performs an
//! SFENCE, and initializes the device and vPM as usual."
//!
//! [`recover`] is that procedure. It is idempotent — recovering twice is
//! harmless — and running it on a clean pool is a no-op, which is why
//! "from the application's perspective, there is no difference between
//! constructing a new persistent map and recovering one".

use pax_pm::{PmPool, Result};
use pax_telemetry::{TraceBuf, TraceEvent};

use crate::undo_log::UndoLog;

/// What a recovery pass observed and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The committed epoch the pool was restored to.
    pub committed_epoch: u64,
    /// Valid undo entries found in the log region.
    pub scanned: usize,
    /// Entries rolled back (tagged with an epoch newer than committed).
    pub rolled_back: usize,
    /// How many epochs of history the rollback unwound: the maximum, over
    /// all tenants, of `newest rolled-back entry's epoch − the tenant's
    /// committed epoch`. Zero when nothing rolled back. This is the
    /// quantity each [`PersistencyModel`](pax_pm::PersistencyModel)
    /// bounds: ≤ `rollback_bound() + 1` (its buffered closes plus the one
    /// open epoch a crash always forfeits).
    pub rollback_gap: u64,
}

/// Rolls the pool back to its last committed snapshot.
///
/// # Errors
///
/// Surfaces media errors from the scan and rollback writes.
pub fn recover(pool: &mut PmPool) -> Result<RecoveryReport> {
    recover_traced(pool, &mut TraceBuf::disabled())
}

/// Like [`recover`], emitting a [`TraceEvent::RecoveryStep`] per rolled
/// back line into `trace` so the rollback order is replayable.
///
/// Slots a lock-free appender *reserved but never published* are
/// structurally invisible here: the pump only drains published entries,
/// so such a slot's media is stale or garbage, and
/// [`UndoLog::scan`] rejects any header whose commit mark or checksum —
/// which covers the mark — does not verify. Recovery therefore never
/// replays a half-filled entry, whatever instant the crash hit the
/// reserve→fill window.
///
/// # Errors
///
/// Surfaces media errors from the scan and rollback writes.
pub fn recover_traced(pool: &mut PmPool, trace: &mut TraceBuf) -> Result<RecoveryReport> {
    let committed = pool.committed_epoch()?;
    let mut entries = UndoLog::scan(pool)?;
    let scanned = entries.len();
    let mut rolled_back = 0;
    // Newest-epoch-first: each entry restores its line's epoch-start
    // value, so when the same line was logged in several uncommitted
    // epochs the *oldest* pre-image must be applied last. Slot order is
    // not append order — the log is a ring and banked per shard — so the
    // epoch tag, not the slot index, decides the order. Within an epoch a
    // line is logged at most once, so intra-epoch order is free. Tenants'
    // entries interleave in the shared region but never name the same
    // line (regions are disjoint), so one global sort is sound.
    entries.sort_by(|(sa, a), (sb, b)| b.epoch.cmp(&a.epoch).then(sa.cmp(sb)));
    // Each entry rolls back against *its own tenant's* committed epoch —
    // tenant A crashing mid-epoch must not unwind B's committed data.
    let mut committed_for = std::collections::HashMap::new();
    let mut rollback_gap = 0u64;
    for (_, entry) in entries.iter() {
        let tenant = entry.tenant as usize;
        let tenant_committed = match committed_for.entry(tenant) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                // A tenant tag past the header's epoch slots can only come
                // from corrupt media the checksum missed; skip, don't die.
                *v.insert(pool.committed_epoch_for(tenant).unwrap_or(u64::MAX))
            }
        };
        if entry.epoch > tenant_committed {
            let abs = pool.layout().vpm_to_pool(entry.vpm_line.0)?;
            pool.write_line(abs, entry.old.clone())?;
            trace.record(
                "device",
                TraceEvent::RecoveryStep { epoch: entry.epoch, line: entry.vpm_line.0 },
            );
            rolled_back += 1;
            rollback_gap = rollback_gap.max(entry.epoch - tenant_committed);
        }
    }
    // The §3.4 SFENCE: rollback writes reach media before execution
    // continues.
    pool.drain();
    Ok(RecoveryReport { committed_epoch: committed, scanned, rolled_back, rollback_gap })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::undo_log::{UndoEntry, UndoLog};
    use pax_pm::{CacheLine, CrashClock, LineAddr, PoolConfig};

    #[test]
    fn clean_pool_recovers_to_epoch_zero() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let r = recover(&mut pool).unwrap();
        assert_eq!(
            r,
            RecoveryReport { committed_epoch: 0, scanned: 0, rolled_back: 0, rollback_gap: 0 }
        );
    }

    #[test]
    fn entries_newer_than_committed_are_rolled_back() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let clock = CrashClock::new();
        pool.commit_epoch(2).unwrap();

        // Simulate a crash mid-epoch-3: line 4's pre-image (0xAB) is
        // logged and the "new" value (0xCD) already reached PM.
        let mut log = UndoLog::new(&pool);
        log.append(UndoEntry::single(3, LineAddr(4), CacheLine::filled(0xAB))).unwrap();
        log.flush(&mut pool, &clock).unwrap();
        let abs = pool.layout().vpm_to_pool(4).unwrap();
        pool.write_line(abs, CacheLine::filled(0xCD)).unwrap();
        pool.drain();

        let r = recover(&mut pool).unwrap();
        assert_eq!(r.rolled_back, 1);
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(0xAB));
    }

    #[test]
    fn entries_from_committed_epochs_are_ignored() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&pool);
        log.append(UndoEntry::single(1, LineAddr(0), CacheLine::filled(0x11))).unwrap();
        log.flush(&mut pool, &clock).unwrap();
        pool.commit_epoch(1).unwrap(); // epoch 1 committed: entry is stale

        let abs = pool.layout().vpm_to_pool(0).unwrap();
        pool.write_line(abs, CacheLine::filled(0x22)).unwrap();
        pool.drain();

        let r = recover(&mut pool).unwrap();
        assert_eq!(r.scanned, 1);
        assert_eq!(r.rolled_back, 0);
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(0x22));
    }

    #[test]
    fn wrapped_slots_roll_back_in_epoch_order() {
        // The ring makes slot order disagree with append order: the same
        // line is logged in uncommitted epochs 2 (slot 3) and 3 (slot 0,
        // wrapped). Rollback must finish with the epoch-2 pre-image —
        // slot-order iteration would finish with epoch 3's.
        let mut cfg = PoolConfig::small();
        cfg.log_bytes = 8 * pax_pm::LINE_SIZE; // 4 slots
        let mut pool = PmPool::create(cfg).unwrap();
        let clock = CrashClock::new();
        pool.commit_epoch(1).unwrap();

        let mut log = UndoLog::new(&pool);
        for i in 0..3 {
            // Committed-epoch fillers occupying slots 0..3.
            log.append(UndoEntry::single(1, LineAddr(i), CacheLine::zeroed())).unwrap();
        }
        log.append(UndoEntry::single(2, LineAddr(7), CacheLine::filled(0x22))).unwrap();
        log.flush(&mut pool, &clock).unwrap();
        log.recycle_to(3); // epoch-1 slots free; epoch-2 entry stays live
        log.append(UndoEntry::single(3, LineAddr(7), CacheLine::filled(0x33))).unwrap(); // wraps into slot 0
        log.flush(&mut pool, &clock).unwrap();

        let abs = pool.layout().vpm_to_pool(7).unwrap();
        pool.write_line(abs, CacheLine::filled(0x99)).unwrap();
        pool.drain();

        let r = recover(&mut pool).unwrap();
        assert_eq!(r.rolled_back, 2);
        assert_eq!(
            pool.read_line(abs).unwrap(),
            CacheLine::filled(0x22),
            "oldest uncommitted pre-image must win"
        );
        assert_eq!(r.rollback_gap, 2, "epochs 2 and 3 unwound against committed epoch 1");
    }

    #[test]
    fn rollback_gap_is_the_deepest_unwind_across_tenants() {
        // Tenant 0 loses one epoch (2 vs committed 1); tenant 1 loses
        // three (5 vs committed 2). The report's gap is the worst case —
        // the quantity a persistency model's rollback bound caps.
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let clock = CrashClock::new();
        pool.commit_epoch_for(0, 1).unwrap();
        pool.commit_epoch_for(1, 2).unwrap();

        let mut log = UndoLog::new(&pool);
        log.append(UndoEntry {
            epoch: 2,
            vpm_line: LineAddr(3),
            tenant: 0,
            old: CacheLine::filled(0xA0),
        })
        .unwrap();
        log.append(UndoEntry {
            epoch: 5,
            vpm_line: LineAddr(8),
            tenant: 1,
            old: CacheLine::filled(0xB0),
        })
        .unwrap();
        log.flush(&mut pool, &clock).unwrap();

        let r = recover(&mut pool).unwrap();
        assert_eq!(r.rolled_back, 2);
        assert_eq!(r.rollback_gap, 3, "tenant 1's epoch-5 entry vs committed epoch 2");
    }

    #[test]
    fn each_tenant_rolls_back_against_its_own_committed_epoch() {
        // Tenant 0 committed through epoch 1; tenant 1 through epoch 3.
        // Interleaved entries at epoch 2: tenant 0's is uncommitted (rolls
        // back), tenant 1's is history (must NOT roll back) — a global
        // committed epoch would get one of the two wrong either way.
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let clock = CrashClock::new();
        pool.commit_epoch_for(0, 1).unwrap();
        pool.commit_epoch_for(1, 3).unwrap();

        let mut log = UndoLog::new(&pool);
        log.append(UndoEntry {
            epoch: 2,
            vpm_line: LineAddr(4),
            tenant: 0,
            old: CacheLine::filled(0xA0),
        })
        .unwrap();
        log.append(UndoEntry {
            epoch: 2,
            vpm_line: LineAddr(9),
            tenant: 1,
            old: CacheLine::filled(0xB0),
        })
        .unwrap();
        log.flush(&mut pool, &clock).unwrap();
        for line in [4u64, 9] {
            let abs = pool.layout().vpm_to_pool(line).unwrap();
            pool.write_line(abs, CacheLine::filled(0xFF)).unwrap();
        }
        pool.drain();

        let r = recover(&mut pool).unwrap();
        assert_eq!(r.scanned, 2);
        assert_eq!(r.rolled_back, 1, "only tenant 0's entry is uncommitted");
        let abs0 = pool.layout().vpm_to_pool(4).unwrap();
        let abs1 = pool.layout().vpm_to_pool(9).unwrap();
        assert_eq!(pool.read_line(abs0).unwrap(), CacheLine::filled(0xA0));
        assert_eq!(pool.read_line(abs1).unwrap(), CacheLine::filled(0xFF), "tenant 1 untouched");
    }

    /// A reserved-but-unpublished slot can leave at worst a
    /// plausible-looking header without its commit mark; recovery must
    /// treat it as empty space, not as an entry to roll back.
    #[test]
    fn unpublished_slot_is_never_replayed() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&pool);
        log.append(UndoEntry::single(1, LineAddr(5), CacheLine::filled(0xAA))).unwrap();
        log.flush(&mut pool, &clock).unwrap();
        let abs = pool.layout().vpm_to_pool(5).unwrap();
        pool.write_line(abs, CacheLine::filled(0xBB)).unwrap();
        pool.drain();

        // Model the crash landing inside the reserve→fill window: the
        // header reached media but publication (the commit mark) never
        // did.
        let header = LineAddr(pool.layout().log_start().0);
        let mut line = pool.read_line(header).unwrap();
        line.write_at(crate::undo_log::COMMIT_OFFSET, &[0u8]);
        pool.write_line(header, line).unwrap();
        pool.drain();

        let r = recover(&mut pool).unwrap();
        assert_eq!(r.scanned, 0, "unpublished slot must not scan as an entry");
        assert_eq!(r.rolled_back, 0);
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(0xBB), "line untouched");
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&pool);
        log.append(UndoEntry::single(1, LineAddr(2), CacheLine::filled(0x33))).unwrap();
        log.flush(&mut pool, &clock).unwrap();

        let r1 = recover(&mut pool).unwrap();
        let r2 = recover(&mut pool).unwrap();
        assert_eq!(r1.rolled_back, 1);
        assert_eq!(r2.rolled_back, 1); // same rollback, same result
        let abs = pool.layout().vpm_to_pool(2).unwrap();
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(0x33));
    }
}
