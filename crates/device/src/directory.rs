//! Per-lane host-ownership directory (snoop filter) and the persist
//! write-back batcher.
//!
//! The device is the home agent for its vPM range, so it *already sees*
//! every coherence message the host issues: a line can only become
//! Modified in the host cache through an `RdOwn` at this device, and a
//! modified line can only leave the host through a dirty eviction, a
//! persist-time snoop, or a CLWB invalidate — all of which also pass
//! through the device. [`OwnershipDirectory`] records that knowledge per
//! lane: a line is *tracked* from the `RdOwn` that granted ownership
//! until the device observes the host give it up. `persist()` consults
//! the directory and skips the snoop round-trip for lines the host no
//! longer plausibly owns, so persist cost scales with lines *still owned
//! by the host*, not lines logged.
//!
//! The directory is deliberately conservative and **volatile**:
//!
//! * A tracked line that the host silently migrated core-to-core stays
//!   tracked (the original `RdOwn` set the bit; peer transfer clears
//!   nothing) — a useless snoop, never a missed one.
//! * Crash consistency never depends on it. It is rebuilt empty on
//!   open and cleared on crash; a filtered persist and an always-snoop
//!   persist produce byte-identical durable state (property-tested in
//!   `tests/snoopfilter.rs`), because a snoop of an untracked line can
//!   only return a clean Shared copy whose value the device already
//!   holds.
//!
//! [`coalesce_runs`] is the second half of the persist pipeline: gathered
//! write-backs are grouped into runs of lines contiguous in lane-local
//! address space (global addresses in a lane stride by the shard count),
//! and each run is issued as one batch — one durable-write step buys up
//! to [`DeviceConfig::persist_wb_batch`](crate::DeviceConfig) line
//! writes, modelling the row-buffer/queue locality a contiguous burst
//! enjoys on real media.

use std::collections::HashSet;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pax_pm::LineAddr;

/// Whether persist-time snoops consult the ownership directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryConfig {
    /// When `false`, every logged line is snooped — the pre-directory
    /// behaviour, kept as the ablation baseline.
    pub enabled: bool,
}

impl DirectoryConfig {
    /// The paper-faithful default: the home agent exploits its coherence
    /// vantage and filters persist-time snoops.
    pub const fn enabled() -> Self {
        DirectoryConfig { enabled: true }
    }

    /// Always-snoop mode: every logged line costs a snoop round-trip,
    /// whether or not the host still owns it.
    pub const fn disabled() -> Self {
        DirectoryConfig { enabled: false }
    }
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        Self::enabled()
    }
}

/// Number of independently locked stripes in the directory. Tracked
/// lines hash across stripes so concurrent stores on the same lane
/// rarely contend on a directory lock.
const DIR_STRIPES: usize = 16;

/// Tracks, per vPM line of one lane, whether the host plausibly holds
/// the line modified (see module docs). Purely volatile device state:
/// ticks never mutate it, and [`OwnershipDirectory::crash`] empties it.
///
/// Since PR 10 the set is striped across [`DIR_STRIPES`] mutexes with an
/// atomic residency counter, so hot-path `RdOwn`/eviction epilogues can
/// update it through a shared reference without the lane mutex
/// (DESIGN.md §15). Each operation touches exactly one stripe lock.
#[derive(Debug)]
pub struct OwnershipDirectory {
    stripes: Vec<Mutex<HashSet<LineAddr>>>,
    resident: AtomicUsize,
}

impl Default for OwnershipDirectory {
    fn default() -> Self {
        Self::new()
    }
}

impl OwnershipDirectory {
    /// An empty directory (nothing tracked — maximally conservative).
    pub fn new() -> Self {
        OwnershipDirectory {
            stripes: (0..DIR_STRIPES).map(|_| Mutex::new(HashSet::new())).collect(),
            resident: AtomicUsize::new(0),
        }
    }

    fn stripe(&self, addr: LineAddr) -> &Mutex<HashSet<LineAddr>> {
        let i = (addr.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize;
        &self.stripes[i % DIR_STRIPES]
    }

    /// Records an `RdOwn`: the host now plausibly holds `addr` modified.
    /// Returns `true` when the line was not already tracked.
    pub fn note_owned(&self, addr: LineAddr) -> bool {
        let new = self.stripe(addr).lock().unwrap_or_else(|e| e.into_inner()).insert(addr);
        if new {
            self.resident.fetch_add(1, Ordering::Relaxed);
        }
        new
    }

    /// Records evidence the host gave `addr` up (dirty eviction, snoop
    /// response, CLWB invalidate, device write-back). Returns `true`
    /// when the line was tracked.
    pub fn clear_line(&self, addr: LineAddr) -> bool {
        let was = self.stripe(addr).lock().unwrap_or_else(|e| e.into_inner()).remove(&addr);
        if was {
            self.resident.fetch_sub(1, Ordering::Relaxed);
        }
        was
    }

    /// Whether the host plausibly holds `addr` modified.
    pub fn holds(&self, addr: LineAddr) -> bool {
        self.stripe(addr).lock().unwrap_or_else(|e| e.into_inner()).contains(&addr)
    }

    /// Lines currently tracked.
    pub fn resident(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Power loss: the directory is volatile and restarts empty.
    pub fn crash(&self) {
        for stripe in &self.stripes {
            let mut set = stripe.lock().unwrap_or_else(|e| e.into_inner());
            let n = set.len();
            set.clear();
            self.resident.fetch_sub(n, Ordering::Relaxed);
        }
    }
}

/// Splits `addrs` (in issue order) into maximal runs of lines contiguous
/// in lane-local space — successive global addresses differing by
/// exactly `stride` — capped at `max_batch` lines per run. Returned
/// ranges index into `addrs`, cover it exactly, and preserve order, so
/// batched issue performs the identical writes in the identical order as
/// unbatched issue.
pub fn coalesce_runs(addrs: &[LineAddr], stride: u64, max_batch: usize) -> Vec<Range<usize>> {
    let max_batch = max_batch.max(1);
    let mut runs = Vec::new();
    let mut start = 0;
    for i in 1..=addrs.len() {
        let contiguous = i < addrs.len()
            && i - start < max_batch
            && addrs[i].0 == addrs[i - 1].0.wrapping_add(stride);
        if !contiguous {
            if i > start {
                runs.push(start..i);
            }
            start = i;
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_to_enabled() {
        assert!(DirectoryConfig::default().enabled);
        assert!(DirectoryConfig::enabled().enabled);
        assert!(!DirectoryConfig::disabled().enabled);
    }

    #[test]
    fn tracks_own_then_clear_lifecycle() {
        let dir = OwnershipDirectory::new();
        assert!(!dir.holds(LineAddr(3)));
        assert!(dir.note_owned(LineAddr(3)));
        assert!(!dir.note_owned(LineAddr(3)), "re-own of a tracked line is not new");
        assert!(dir.holds(LineAddr(3)));
        assert_eq!(dir.resident(), 1);
        assert!(dir.clear_line(LineAddr(3)));
        assert!(!dir.clear_line(LineAddr(3)), "double clear reports untracked");
        assert!(!dir.holds(LineAddr(3)));
        assert_eq!(dir.resident(), 0);
    }

    #[test]
    fn crash_empties_the_directory() {
        let dir = OwnershipDirectory::new();
        dir.note_owned(LineAddr(1));
        dir.note_owned(LineAddr(2));
        dir.crash();
        assert_eq!(dir.resident(), 0);
        assert!(!dir.holds(LineAddr(1)));
    }

    fn addrs(raw: &[u64]) -> Vec<LineAddr> {
        raw.iter().map(|&a| LineAddr(a)).collect()
    }

    #[test]
    fn coalesce_finds_stride_contiguous_runs() {
        // Lane 0 of a 2-shard device: lines 0,2,4 are contiguous in
        // lane-local space; 10 breaks the run.
        let a = addrs(&[0, 2, 4, 10, 12]);
        assert_eq!(coalesce_runs(&a, 2, 8), vec![0..3, 3..5]);
    }

    #[test]
    fn coalesce_caps_runs_at_max_batch() {
        let a = addrs(&[0, 1, 2, 3, 4]);
        assert_eq!(coalesce_runs(&a, 1, 2), vec![0..2, 2..4, 4..5]);
        // A zero cap degrades to single-line batches, never an empty one.
        assert_eq!(coalesce_runs(&a, 1, 0).len(), 5);
    }

    #[test]
    fn coalesce_covers_input_exactly_in_order() {
        let a = addrs(&[7, 3, 4, 5, 9]);
        let runs = coalesce_runs(&a, 1, 8);
        let flat: Vec<usize> = runs.iter().flat_map(|r| r.clone()).collect();
        assert_eq!(flat, (0..a.len()).collect::<Vec<_>>());
        assert_eq!(runs, vec![0..1, 1..4, 4..5]);
    }

    #[test]
    fn coalesce_of_empty_input_is_empty() {
        assert!(coalesce_runs(&[], 1, 8).is_empty());
    }
}
