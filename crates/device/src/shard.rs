//! Address-interleaved device shards.
//!
//! The paper's home agent pipelines independent lines; a monolithic
//! [`PaxDevice`](crate::PaxDevice) cannot express that — every request
//! serializes on one HBM array, one undo-log append port, and one
//! write-back queue. A [`DeviceShard`] is the per-line-address slice of
//! that state: lines are interleaved across `S` shards by
//! `addr % S` (the mandatory banking of a CXL home agent), and each shard
//! owns
//!
//! * its own HBM sets (a `1/S` slice of the buffer, indexed in
//!   shard-local address space so interleaving cannot alias sets),
//! * its own undo-log **bank** — a `capacity/S` slice of the pool's log
//!   region with an independent monotonic watermark, so appends on
//!   different shards never contend on one append port,
//! * its own write-back queue and epoch-log map, and
//! * its own [`MetricSet`] (all stamped with the `device` component, so
//!   cross-layer telemetry merges them back into one view).
//!
//! What stays *global* is the epoch: `persist()` is a cross-shard barrier
//! — flush every bank, snoop, write back, then one atomic `commit_epoch`
//! — so sharding changes concurrency, never crash-consistency semantics.

use std::collections::{HashMap, VecDeque};

use pax_pm::{CacheLine, CrashClock, LineAddr, PmError, PmPool, Result};
use pax_telemetry::{MetricSet, MetricSnapshot, TraceEvent};

use crate::cell::{PoolCell, TraceCell};

use crate::directory::OwnershipDirectory;
use crate::hbm::{HbmCache, HbmConfig, HbmLine};
use crate::metrics::{DeviceCounters, DeviceMetrics};
use crate::undo_log::{UndoEntry, UndoLog, ENTRY_LINES};

/// Component name stamped on every shard's metrics and trace records —
/// identical to the device's, so merged snapshots stay one `device` row.
pub(crate) const COMPONENT: &str = "device";

/// One address-interleaved slice of the device's per-line state (see
/// module docs).
///
/// With tenancy ([`crate::tenant`]) a `DeviceShard` is one **lane**: the
/// slice owned by a single `(tenant, interleave-phase)` pair. Tenant
/// `t`'s traffic on physical shard `s = addr % S` lands in lane `t*S +
/// s`, so each lane's undo-log bank, epoch-log map, and write-back queue
/// belong to exactly one tenant — which is what lets one tenant's epoch
/// flush, commit, and recycle without touching another's. A
/// single-tenant device's lanes are exactly its shards.
#[derive(Debug)]
pub struct DeviceShard {
    /// This lane's index within the device (`tenant * interleave +
    /// phase`).
    index: u64,
    /// The tenant (pool context) this lane belongs to.
    tenant: usize,
    /// This lane's interleave phase: it owns lines with `addr % stride ==
    /// phase` (within its tenant's region).
    phase: u64,
    /// Physical address-interleave stride (the device's shard count `S`,
    /// *not* its lane count).
    stride: u64,
    /// This shard's slice of the HBM buffer, keyed by shard-local line.
    pub(crate) hbm: HbmCache,
    /// This shard's undo-log bank.
    pub(crate) log: UndoLog,
    /// vPM lines undo-logged this epoch → their log entry offset.
    pub(crate) epoch_log: HashMap<LineAddr, u64>,
    /// Dirty lines awaiting opportunistic write back, oldest first.
    pub(crate) writeback_queue: VecDeque<LineAddr>,
    /// Which of this lane's lines the host plausibly holds modified —
    /// the persist-time snoop filter. Volatile; cleared on crash.
    pub(crate) directory: OwnershipDirectory,
    /// The shard's own counter registry.
    pub(crate) metrics: MetricSet,
    /// Counter handles into `metrics` (same registration order as the
    /// device's, so typed views compose by field-wise addition).
    pub(crate) ctr: DeviceCounters,
}

impl DeviceShard {
    /// Builds lane `index` for `tenant` at interleave phase `index %
    /// stride`, owning the (already per-lane-sized) HBM geometry in
    /// `hbm` and the log bank `[log_base, log_base +
    /// log_capacity_entries)` of the pool's log region. The caller —
    /// [`PaxDevice::open_multi`](crate::PaxDevice::open_multi) — slices
    /// the device's total HBM capacity across lanes (weighted by each
    /// tenant's HBM share) before construction, flooring every lane at
    /// one full associativity set.
    pub(crate) fn new(
        index: usize,
        tenant: usize,
        stride: usize,
        hbm: HbmConfig,
        log_base: u64,
        log_capacity_entries: u64,
        locked_log: bool,
    ) -> Self {
        let per_lane = HbmConfig {
            capacity_bytes: hbm.capacity_bytes.max(hbm.ways * pax_pm::LINE_SIZE),
            ..hbm
        };
        let mut metrics = MetricSet::new(COMPONENT);
        let ctr = DeviceCounters::register(&mut metrics);
        DeviceShard {
            index: index as u64,
            tenant,
            phase: (index % stride.max(1)) as u64,
            stride: stride as u64,
            hbm: HbmCache::new(per_lane),
            log: UndoLog::with_region_mode(log_base, log_capacity_entries, locked_log),
            epoch_log: HashMap::new(),
            writeback_queue: VecDeque::new(),
            directory: OwnershipDirectory::new(),
            metrics,
            ctr,
        }
    }

    /// This lane's index.
    pub fn index(&self) -> usize {
        self.index as usize
    }

    /// The tenant (pool context) this lane serves.
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    /// Snapshot of this shard's counter registry (component `device`).
    pub(crate) fn snapshot(&mut self) -> MetricSnapshot {
        self.sync_log_metrics();
        self.metrics.snapshot()
    }

    /// Typed view over this shard's counters.
    pub(crate) fn view_metrics(&mut self) -> DeviceMetrics {
        self.sync_log_metrics();
        self.ctr.view(&self.metrics)
    }

    /// Reconciles the CAS bank's internal contention telemetry into the
    /// lane's registry: `log_cas_retries` is monotone (add the delta),
    /// `log_reserved` is a gauge (snap to the current in-flight count).
    /// A locked-engine lane reports both as zero.
    fn sync_log_metrics(&mut self) {
        let Some(bank) = self.log.bank() else { return };
        let retries = bank.cas_retries();
        let seen = self.metrics.get(self.ctr.log_cas_retries);
        if retries > seen {
            self.metrics.add(self.ctr.log_cas_retries, retries - seen);
        }
        let reserved = bank.in_flight();
        let shown = self.metrics.get(self.ctr.log_reserved);
        match reserved.cmp(&shown) {
            std::cmp::Ordering::Greater => {
                self.metrics.add(self.ctr.log_reserved, reserved - shown)
            }
            std::cmp::Ordering::Less => self.metrics.sub(self.ctr.log_reserved, shown - reserved),
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Counts a `RdShared` routed to this shard.
    pub(crate) fn count_rd_shared(&mut self) {
        self.metrics.inc(self.ctr.rd_shared);
    }

    /// Counts a `RdOwn` routed to this shard.
    pub(crate) fn count_rd_own(&mut self) {
        self.metrics.inc(self.ctr.rd_own);
    }

    /// Counts a clean eviction routed to this shard.
    pub(crate) fn count_clean_evict(&mut self) {
        self.metrics.inc(self.ctr.clean_evicts);
    }

    /// Counts a dirty eviction routed to this shard.
    pub(crate) fn count_dirty_evict(&mut self) {
        self.metrics.inc(self.ctr.dirty_evicts);
    }

    /// Counts a dirty eviction for a line this shard never logged.
    pub(crate) fn count_unlogged_dirty_evict(&mut self) {
        self.metrics.inc(self.ctr.unlogged_dirty_evicts);
    }

    /// Counts a line this shard wrote back to PM.
    pub(crate) fn count_writeback(&mut self) {
        self.metrics.inc(self.ctr.device_writebacks);
    }

    /// Counts a stall that forced a synchronous log flush on this shard.
    pub(crate) fn count_forced_flush(&mut self) {
        self.metrics.inc(self.ctr.forced_log_flushes);
    }

    /// Counts a persist-path snoop sent for a line this lane logged.
    pub(crate) fn count_snoop_sent(&mut self) {
        self.metrics.inc(self.ctr.snoops_sent);
    }

    /// Counts a snoop that returned host data.
    pub(crate) fn count_snoop_data_returned(&mut self) {
        self.metrics.inc(self.ctr.snoop_data_returned);
    }

    /// Counts an epoch commit against this lane's tenant (charged to the
    /// tenant's phase-0 lane so per-tenant rollups conserve `persists`).
    pub(crate) fn count_persist(&mut self) {
        self.metrics.inc(self.ctr.persists);
    }

    /// Counts a coalesced persist write-back batch issued by this lane.
    pub(crate) fn count_wb_batch(&mut self) {
        self.metrics.inc(self.ctr.wb_batches);
    }

    /// Records an `RdOwn` in the ownership directory: the host now
    /// plausibly holds `addr` modified. `dir_resident` is an occupancy
    /// gauge, so it moves only on tracked-set transitions.
    pub(crate) fn dir_note_owned(&mut self, addr: LineAddr) {
        if self.directory.note_owned(addr) {
            self.metrics.inc(self.ctr.dir_resident);
        }
    }

    /// Records evidence the host gave `addr` up (dirty eviction, snoop
    /// response, CLWB invalidate, device write-back).
    pub(crate) fn dir_clear(&mut self, addr: LineAddr) {
        if self.directory.clear_line(addr) {
            self.metrics.sub(self.ctr.dir_resident, 1);
        }
    }

    /// Whether a persist must snoop the host for `addr`. With filtering
    /// off this is unconditionally `true` (and uncounted — the exact
    /// pre-directory behaviour); with it on, a tracked line counts a
    /// directory hit and snoops, an untracked one counts a filtered
    /// snoop and skips the round-trip.
    pub(crate) fn dir_should_snoop(&mut self, addr: LineAddr, filter: bool) -> bool {
        if !filter {
            return true;
        }
        if self.directory.holds(addr) {
            self.metrics.inc(self.ctr.dir_hits);
            true
        } else {
            self.metrics.inc(self.ctr.dir_filtered_snoops);
            false
        }
    }

    /// The log offset covering `addr` this epoch, if it was logged here.
    pub(crate) fn epoch_offset_of(&self, addr: LineAddr) -> Option<u64> {
        self.epoch_log.get(&addr).copied()
    }

    /// Marks any resident HBM copy of `addr` clean (its value just
    /// reached PM through a persist-path write back) — in place, so
    /// persist housekeeping does not disturb LRU recency.
    pub(crate) fn hbm_mark_clean(&mut self, addr: LineAddr) {
        let key = self.hbm_key(addr);
        self.hbm.mark_clean(key);
    }

    /// Starts the next epoch after a non-blocking persist captured this
    /// one: per-epoch maps reset, but the log bank stays live until the
    /// drain commits and recycles it.
    pub(crate) fn begin_next_epoch(&mut self) {
        self.epoch_log.clear();
        self.writeback_queue.clear();
    }

    /// Undo-log entries appended in the current epoch on this shard.
    pub fn epoch_log_len(&self) -> usize {
        self.epoch_log.len()
    }

    /// This shard's durable log watermark.
    pub fn log_durable_offset(&self) -> u64 {
        self.log.durable_offset()
    }

    /// Maps a global vPM line (which satisfies `addr % stride == phase`)
    /// to the lane-local key the HBM slice is indexed by. Interleaved
    /// addresses stride by `stride`; dividing it out keeps the slice's
    /// sets uniformly used (a power-of-two stride would otherwise alias
    /// every lane-resident line into `sets/stride` sets). Two tenants'
    /// lanes at the same phase key identically but into disjoint
    /// [`HbmCache`] instances, so no disambiguation is needed.
    fn hbm_key(&self, addr: LineAddr) -> LineAddr {
        debug_assert_eq!(addr.0 % self.stride, self.phase, "line routed to wrong lane");
        LineAddr(addr.0 / self.stride)
    }

    /// Inverse of [`DeviceShard::hbm_key`].
    fn hbm_unkey(&self, local: LineAddr) -> LineAddr {
        LineAddr(local.0 * self.stride + self.phase)
    }

    /// HBM lookup counting hit/miss, in global address space.
    pub(crate) fn hbm_lookup(&mut self, addr: LineAddr) -> Option<&HbmLine> {
        let key = self.hbm_key(addr);
        self.hbm.lookup(key)
    }

    /// HBM peek (no hit/miss accounting), in global address space.
    pub(crate) fn hbm_peek(&self, addr: LineAddr) -> Option<&HbmLine> {
        self.hbm.peek(self.hbm_key(addr))
    }

    /// HBM insert, in global address space; the victim (if any) comes
    /// back with its global address.
    pub(crate) fn hbm_insert(
        &mut self,
        addr: LineAddr,
        line: HbmLine,
        durable_offset: u64,
    ) -> Option<(LineAddr, HbmLine)> {
        let key = self.hbm_key(addr);
        let victim = self.hbm.insert(key, line, durable_offset);
        victim.map(|(local, l)| (self.hbm_unkey(local), l))
    }

    /// Re-inserts `addr` as a clean copy of `data` (post-write back or
    /// post-snoop refresh), disposing of any victim.
    pub(crate) fn hbm_refresh_clean(
        &mut self,
        pool: &PoolCell,
        clock: &CrashClock,
        trace: &TraceCell,
        addr: LineAddr,
        data: CacheLine,
    ) -> Result<()> {
        let durable = self.log.durable_offset();
        let victim =
            self.hbm_insert(addr, HbmLine { data, dirty: false, log_offset: None }, durable);
        if let Some((vaddr, vline)) = victim {
            self.dispose_victim(pool, clock, trace, vaddr, vline)?;
        }
        Ok(())
    }

    /// The shard's view of the current contents of `addr`: HBM first,
    /// then a draining epoch's captured value, then PM.
    pub(crate) fn resolve(
        &mut self,
        pool: &PoolCell,
        clock: &CrashClock,
        trace: &TraceCell,
        cache_clean_reads: bool,
        drain_value: Option<CacheLine>,
        addr: LineAddr,
    ) -> Result<CacheLine> {
        if let Some(l) = self.hbm_lookup(addr) {
            let data = l.data.clone();
            self.metrics.inc(self.ctr.hbm_read_hits);
            return Ok(data);
        }
        // A draining epoch's final values are newer than PM until their
        // write back lands.
        if let Some(data) = drain_value {
            return Ok(data);
        }
        let data = {
            let mut pm = pool.lock();
            let abs = pm.layout().vpm_to_pool(addr.0)?;
            self.metrics.inc(self.ctr.pm_reads);
            pm.read_line(abs)?
        };
        if cache_clean_reads {
            self.hbm_refresh_clean(pool, clock, trace, addr, data.clone())?;
        }
        Ok(data)
    }

    /// Writes an HBM eviction victim back to PM if dirty, stalling for a
    /// log flush when its undo entry is not yet durable.
    ///
    /// The stall is bounded: every iteration must drain an entry from the
    /// shard's pending buffer. A victim whose covering offset is neither
    /// durable nor pending cannot exist (offsets are monotonic and
    /// assigned by this shard's own appends) — if it does, the state is
    /// corrupt and the loop surfaces [`PmError::ProtocolViolation`]
    /// instead of spinning.
    pub(crate) fn dispose_victim(
        &mut self,
        pool: &PoolCell,
        clock: &CrashClock,
        trace: &TraceCell,
        addr: LineAddr,
        line: HbmLine,
    ) -> Result<()> {
        if !line.dirty {
            return Ok(());
        }
        if let Some(offset) = line.log_offset {
            if offset >= self.log.durable_offset() {
                // §3.3: the victim's pre-image must be durable before the
                // new value may reach PM. This is the stall PreferDurable
                // eviction avoids.
                self.metrics.inc(self.ctr.forced_log_flushes);
                while self.log.durable_offset() <= offset {
                    if self.log.pump(&mut pool.lock(), clock, 1)? == 0 {
                        return Err(PmError::ProtocolViolation {
                            invariant: "HBM victim's undo entry is neither durable nor pending",
                        });
                    }
                }
            }
        }
        {
            let mut pm = pool.lock();
            let abs = pm.layout().vpm_to_pool(addr.0)?;
            tick(clock, &mut pm)?;
            pm.write_line(abs, line.data)?;
        }
        self.metrics.inc(self.ctr.device_writebacks);
        trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
        self.dir_clear(addr);
        Ok(())
    }

    /// One background step for this shard's free-running engines: drain
    /// some log entries, then opportunistically write back dirty lines
    /// whose entries are durable.
    pub(crate) fn background(
        &mut self,
        pool: &PoolCell,
        clock: &CrashClock,
        trace: &TraceCell,
        log_pump_batch: usize,
        writeback_batch: usize,
    ) -> Result<()> {
        if log_pump_batch > 0 && self.log.pending_len() > 0 {
            self.log.pump(&mut pool.lock(), clock, log_pump_batch)?;
        }
        let mut budget = writeback_batch;
        while budget > 0 {
            let Some(&addr) = self.writeback_queue.front() else { break };
            let durable = self.log.durable_offset();
            let ready = match self.hbm_peek(addr) {
                Some(l) if l.dirty => l.log_offset.is_none_or(|o| o < durable),
                // Cleaned or evicted through another path; just drop it.
                _ => {
                    self.writeback_queue.pop_front();
                    continue;
                }
            };
            if !ready {
                break; // queue is in log order; later entries aren't durable either
            }
            self.writeback_queue.pop_front();
            let key = self.hbm_key(addr);
            if let Some(data) = self.hbm.peek(key).map(|l| l.data.clone()) {
                // Clean in place: background write-back must not promote
                // the line to MRU and erase real-access recency.
                self.hbm.mark_clean(key);
                {
                    let mut pm = pool.lock();
                    let abs = pm.layout().vpm_to_pool(addr.0)?;
                    tick(clock, &mut pm)?;
                    pm.write_line(abs, data)?;
                }
                self.metrics.inc(self.ctr.device_writebacks);
                self.metrics.inc(self.ctr.background_writebacks);
                trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
                self.dir_clear(addr);
            }
            budget -= 1;
        }
        Ok(())
    }

    /// Whether this shard's run queue has background work pending: undo
    /// entries not yet durable, or dirty lines awaiting write back. The
    /// scheduler consults this to donate idle-shard steps (and to skip
    /// shards a tick would visit for nothing).
    pub(crate) fn has_background_work(&self) -> bool {
        self.log.pending_len() > 0 || !self.writeback_queue.is_empty()
    }

    /// Undo-logs `addr` if this is its first modification of the epoch,
    /// returning the covering log offset.
    pub(crate) fn log_if_first(
        &mut self,
        trace: &TraceCell,
        epoch: u64,
        addr: LineAddr,
        old: &CacheLine,
    ) -> Result<u64> {
        if let Some(&off) = self.epoch_log.get(&addr) {
            return Ok(off);
        }
        let offset = self.log.append(UndoEntry {
            epoch,
            vpm_line: addr,
            tenant: self.tenant as u32,
            old: old.clone(),
        })?;
        self.epoch_log.insert(addr, offset);
        self.metrics.inc(self.ctr.undo_entries);
        trace.record(COMPONENT, TraceEvent::LogAppend { epoch, line: addr.0 });
        Ok(offset)
    }

    /// The epoch's logged lines in this shard, in log-offset order (§3.3
    /// "iterating through each undo log entry as it persists").
    pub(crate) fn sorted_epoch_log(&self) -> Vec<(u64, LineAddr)> {
        let mut logged: Vec<(u64, LineAddr)> =
            self.epoch_log.iter().map(|(a, o)| (*o, *a)).collect();
        logged.sort_unstable();
        logged
    }

    /// Per-epoch volatile state reset after a fully-drained commit.
    pub(crate) fn reset_after_commit(&mut self) {
        self.epoch_log.clear();
        self.writeback_queue.clear();
        self.log.reset_after_commit();
    }

    /// Drops all volatile state (power loss). The ownership directory is
    /// volatile by design — it restarts empty, and correctness never
    /// depended on it.
    pub(crate) fn crash(&mut self) {
        self.hbm.crash();
        self.log.crash();
        self.epoch_log.clear();
        self.writeback_queue.clear();
        self.metrics.sub(self.ctr.dir_resident, self.directory.resident() as u64);
        self.directory.crash();
    }
}

/// Advances the crash clock one durable-write step; crashing the pool and
/// unwinding if it fires.
pub(crate) fn tick(clock: &CrashClock, pool: &mut PmPool) -> Result<()> {
    if clock.tick() == pax_pm::CrashOutcome::Crashed {
        pool.crash();
        return Err(PmError::Crashed);
    }
    Ok(())
}

/// Splits a pool's log region into `shards` equal banks, returning each
/// bank's `(base_line, capacity_entries)`. The shard count is clamped so
/// every bank holds at least one entry.
pub(crate) fn split_log_region(pool: &PmPool, shards: usize) -> Vec<(u64, u64)> {
    let layout = pool.layout();
    let capacity = (layout.log_lines / ENTRY_LINES).max(1);
    let shards = (shards.max(1) as u64).min(capacity);
    let per_shard = capacity / shards;
    (0..shards).map(|s| (layout.log_start().0 + s * per_shard * ENTRY_LINES, per_shard)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbm::EvictionPolicy;
    use pax_pm::{PoolConfig, LINE_SIZE};

    fn shard_pair() -> (PmPool, DeviceShard, DeviceShard) {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let banks = split_log_region(&pool, 2);
        let hbm = HbmConfig::default_config();
        let a = DeviceShard::new(0, 0, 2, hbm, banks[0].0, banks[0].1, false);
        let b = DeviceShard::new(1, 0, 2, hbm, banks[1].0, banks[1].1, false);
        (pool, a, b)
    }

    #[test]
    fn split_covers_region_without_overlap() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let banks = split_log_region(&pool, 4);
        assert_eq!(banks.len(), 4);
        for w in banks.windows(2) {
            assert_eq!(w[0].0 + w[0].1 * ENTRY_LINES, w[1].0, "banks must be adjacent");
        }
        let total: u64 = banks.iter().map(|(_, c)| c).sum();
        assert!(total <= pool.layout().log_lines / ENTRY_LINES);
    }

    #[test]
    fn shard_count_is_clamped_to_log_capacity() {
        let mut cfg = PoolConfig::small();
        cfg.log_bytes = 4 * LINE_SIZE; // 2 entries
        let pool = PmPool::create(cfg).unwrap();
        assert_eq!(split_log_region(&pool, 8).len(), 2);
    }

    #[test]
    fn hbm_keys_round_trip_and_stay_disjoint() {
        let (_pool, a, b) = shard_pair();
        for addr in [0u64, 2, 4, 100] {
            assert_eq!(a.hbm_unkey(a.hbm_key(LineAddr(addr))), LineAddr(addr));
        }
        for addr in [1u64, 3, 5, 101] {
            assert_eq!(b.hbm_unkey(b.hbm_key(LineAddr(addr))), LineAddr(addr));
        }
    }

    #[test]
    fn interleaved_lines_use_all_hbm_sets() {
        // With a power-of-two stride, raw global addresses would alias
        // into half the sets; the shard-local key must spread them.
        let mut shard = DeviceShard::new(
            0,
            0,
            2,
            HbmConfig { capacity_bytes: 2 * 128, ways: 2, policy: EvictionPolicy::Lru },
            0,
            64,
            false,
        );
        // Shard capacity: 4 lines (2 sets × 2 ways) — the per-lane slice
        // the device would hand this lane of a 4-line-per-lane buffer.
        // Insert 4 shard-0 lines (global addresses 0,2,4,6): all resident
        // only if both sets are used.
        for g in [0u64, 2, 4, 6] {
            let v = shard.hbm_insert(
                LineAddr(g),
                HbmLine { data: CacheLine::filled(g as u8), dirty: false, log_offset: None },
                0,
            );
            assert!(v.is_none(), "line {g} must not evict");
        }
        assert_eq!(shard.hbm.resident(), 4);
    }

    #[test]
    fn dispose_victim_with_unsatisfiable_offset_errors_instead_of_spinning() {
        // The pinned invariant: a dirty victim whose covering log offset
        // is neither durable nor pending is corrupt state. The drain loop
        // must surface it, not spin forever pumping an empty buffer.
        let (pool, mut a, _b) = shard_pair();
        let pool = PoolCell::new(pool);
        let clock = CrashClock::new();
        let trace = TraceCell::new(pax_telemetry::TraceBuf::disabled());
        let line = HbmLine { data: CacheLine::filled(1), dirty: true, log_offset: Some(99) };
        let err = a.dispose_victim(&pool, &clock, &trace, LineAddr(0), line).unwrap_err();
        assert!(
            matches!(err, PmError::ProtocolViolation { .. }),
            "expected a protocol-invariant error, got {err}"
        );
    }

    #[test]
    fn dispose_victim_drains_pending_entry_then_writes_back() {
        let (pool, mut a, _b) = shard_pair();
        let pool = PoolCell::new(pool);
        let clock = CrashClock::new();
        let trace = TraceCell::new(pax_telemetry::TraceBuf::disabled());
        let off = a.log_if_first(&trace, 1, LineAddr(0), &CacheLine::zeroed()).unwrap();
        let line = HbmLine { data: CacheLine::filled(7), dirty: true, log_offset: Some(off) };
        a.dispose_victim(&pool, &clock, &trace, LineAddr(0), line).unwrap();
        assert!(a.log.durable_offset() > off, "covering entry was drained first");
        let mut pool = pool.into_inner();
        let abs = pool.layout().vpm_to_pool(0).unwrap();
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(7));
    }

    #[test]
    fn shard_banks_append_independently() {
        let (mut pool, mut a, mut b) = shard_pair();
        let clock = CrashClock::new();
        let trace = TraceCell::new(pax_telemetry::TraceBuf::disabled());
        a.log_if_first(&trace, 1, LineAddr(0), &CacheLine::filled(1)).unwrap();
        b.log_if_first(&trace, 1, LineAddr(1), &CacheLine::filled(2)).unwrap();
        b.log_if_first(&trace, 1, LineAddr(3), &CacheLine::filled(3)).unwrap();
        a.log.flush(&mut pool, &clock).unwrap();
        b.log.flush(&mut pool, &clock).unwrap();
        assert_eq!(a.log.durable_offset(), 1);
        assert_eq!(b.log.durable_offset(), 2);
        // Every entry is visible to the (global) recovery scan.
        assert_eq!(UndoLog::scan(&mut pool).unwrap().len(), 3);
    }
}
