//! Address-interleaved device shards and their shared lane state.
//!
//! The paper's home agent pipelines independent lines; a monolithic
//! [`PaxDevice`](crate::PaxDevice) cannot express that — every request
//! serializes on one HBM array, one undo-log append port, and one
//! write-back queue. A [`DeviceShard`] is the per-line-address slice of
//! that state: lines are interleaved across `S` shards by
//! `addr % S` (the mandatory banking of a CXL home agent), and each shard
//! owns
//!
//! * its own HBM sets (a `1/S` slice of the buffer, indexed in
//!   shard-local address space so interleaving cannot alias sets),
//! * its own undo-log **bank** — a `capacity/S` slice of the pool's log
//!   region with an independent monotonic watermark, so appends on
//!   different shards never contend on one append port,
//! * its own write-back queue and epoch-log map, and
//! * its own [`MetricSet`] (all stamped with the `device` component, so
//!   cross-layer telemetry merges them back into one view).
//!
//! What stays *global* is the epoch: `persist()` is a cross-shard barrier
//! — flush every bank, snoop, write back, then one atomic `commit_epoch`
//! — so sharding changes concurrency, never crash-consistency semantics.
//!
//! # Lane handles (PR 10)
//!
//! Since PR 10 a lane's hot-path state — the concurrent HBM index, the
//! striped epoch-log map, the write-back queue, the ownership directory,
//! and the metric registry — lives behind `Arc`s collected in
//! [`LaneHandles`]. The [`PaxDevice`] keeps one clone per lane *outside*
//! the lane mutex, so `RdShared`/`RdOwn`/eviction traffic and the
//! persist sweep on the same lane proceed without ever acquiring
//! `Mutex<DeviceShard>`. The mutex now guards only what genuinely needs
//! exclusivity: the locked-mode undo log (`&mut UndoLog`) and
//! recovery/snapshot-time state sync. Write-back *drains* serialize on
//! the lane's [`WbGate`](crate::cell::WbGate) instead. See DESIGN.md
//! §15 for the full protocol and ordering invariants.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pax_pm::{CacheLine, CrashClock, LineAddr, PmError, PmPool, Result};
use pax_telemetry::{MetricSet, MetricSnapshot, TraceEvent};

use crate::cell::{lock, PoolCell, TraceCell, WbGate};

use crate::directory::OwnershipDirectory;
use crate::hbm::{HbmCache, HbmConfig, HbmLine};
use crate::metrics::{DeviceCounters, DeviceMetrics};
use crate::undo_log::{AtomicBank, LogWatermark, UndoEntry, UndoLog, ENTRY_LINES};

/// Component name stamped on every shard's metrics and trace records —
/// identical to the device's, so merged snapshots stay one `device` row.
pub(crate) const COMPONENT: &str = "device";

/// Number of independently locked stripes in the per-epoch logged-line
/// map, so concurrent first-writes on one lane rarely contend.
const EPOCH_LOG_STRIPES: usize = 16;

/// The per-epoch "which lines are already undo-logged" map, striped for
/// concurrency. `try_insert` holds one stripe lock across the
/// dedup-check *and* the caller's log append, making
/// "log exactly once per line per epoch" atomic under concurrent
/// `RdOwn`s to the same line.
#[derive(Debug, Default)]
pub(crate) struct EpochLog {
    stripes: Vec<Mutex<HashMap<LineAddr, u64>>>,
    len: AtomicUsize,
}

impl EpochLog {
    pub(crate) fn new() -> Self {
        EpochLog {
            stripes: (0..EPOCH_LOG_STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            len: AtomicUsize::new(0),
        }
    }

    fn stripe(&self, addr: LineAddr) -> &Mutex<HashMap<LineAddr, u64>> {
        let i = (addr.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize;
        &self.stripes[i % EPOCH_LOG_STRIPES]
    }

    /// Returns `addr`'s existing offset, or runs `make` (the log append)
    /// under the stripe lock and records its result. `make` must not
    /// acquire any lock that can wait on an `EpochLog` stripe — the
    /// CAS-bank append and the locked-mode append (which requires the
    /// lane mutex, ordered *before* stripes) both qualify.
    pub(crate) fn try_insert(
        &self,
        addr: LineAddr,
        make: impl FnOnce() -> Result<u64>,
    ) -> Result<u64> {
        let mut map = lock(self.stripe(addr));
        if let Some(&off) = map.get(&addr) {
            return Ok(off);
        }
        let off = make()?;
        map.insert(addr, off);
        self.len.fetch_add(1, Ordering::Relaxed);
        Ok(off)
    }

    /// The offset covering `addr` this epoch, if it was logged.
    pub(crate) fn offset_of(&self, addr: LineAddr) -> Option<u64> {
        lock(self.stripe(addr)).get(&addr).copied()
    }

    /// Number of lines logged this epoch.
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// The epoch's logged lines in log-offset order (§3.3 "iterating
    /// through each undo log entry as it persists"). Locks stripes one
    /// at a time in index order; the sort makes the result independent
    /// of stripe assignment, so it is deterministic.
    pub(crate) fn sorted(&self) -> Vec<(u64, LineAddr)> {
        let mut logged = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            logged.extend(lock(stripe).iter().map(|(a, o)| (*o, *a)));
        }
        logged.sort_unstable();
        logged
    }

    /// Forgets every logged line (epoch boundary).
    pub(crate) fn clear(&self) {
        for stripe in &self.stripes {
            let mut map = lock(stripe);
            let n = map.len();
            map.clear();
            self.len.fetch_sub(n, Ordering::Relaxed);
        }
    }
}

/// The lane's dirty-line write-back queue, shareable across threads.
/// Producers (`home_dirty_evict`) only push; consumers (background
/// steps, forced drains) additionally serialize on the lane's
/// [`WbGate`](crate::cell::WbGate) so pops pair with their PM writes.
#[derive(Debug, Default)]
pub(crate) struct WbQueue {
    queue: Mutex<VecDeque<LineAddr>>,
    len: AtomicUsize,
}

impl WbQueue {
    pub(crate) fn push_back(&self, addr: LineAddr) {
        lock(&self.queue).push_back(addr);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// The oldest queued line, without popping it.
    pub(crate) fn front(&self) -> Option<LineAddr> {
        lock(&self.queue).front().copied()
    }

    pub(crate) fn pop_front(&self) -> Option<LineAddr> {
        let popped = lock(&self.queue).pop_front();
        if popped.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        popped
    }

    pub(crate) fn clear(&self) {
        let mut q = lock(&self.queue);
        let n = q.len();
        q.clear();
        self.len.fetch_sub(n, Ordering::Relaxed);
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len.load(Ordering::Relaxed) == 0
    }
}

/// Shared (`Arc`-held) handles to one lane's hot-path state — everything
/// a store or persist sweep touches without the lane mutex (module
/// docs). Cloning is cheap; the [`PaxDevice`] keeps one clone per lane
/// alongside (not inside) the `Mutex<DeviceShard>`.
///
/// The only lane state *not* here is the [`UndoLog`]: in the default
/// CAS mode its `AtomicBank`/watermark `Arc`s **are** here (`bank`,
/// `watermark`), and in locked-log mode callers pass
/// `Option<&mut UndoLog>` obtained from the lane guard.
#[derive(Debug, Clone)]
pub(crate) struct LaneHandles {
    /// The tenant (pool context) this lane belongs to.
    pub(crate) tenant: usize,
    /// This lane's interleave phase: it owns lines with `addr % stride
    /// == phase` (within its tenant's region).
    pub(crate) phase: u64,
    /// Physical address-interleave stride (the device's shard count `S`,
    /// *not* its lane count).
    pub(crate) stride: u64,
    /// This lane's slice of the HBM buffer, keyed by lane-local line.
    pub(crate) hbm: Arc<HbmCache>,
    /// vPM lines undo-logged this epoch → their log entry offset.
    pub(crate) epoch_log: Arc<EpochLog>,
    /// Dirty lines awaiting opportunistic write back, oldest first.
    pub(crate) writeback_queue: Arc<WbQueue>,
    /// Which of this lane's lines the host plausibly holds modified —
    /// the persist-time snoop filter. Volatile; cleared on crash.
    pub(crate) directory: Arc<OwnershipDirectory>,
    /// The lane's counter registry (recording is `&self`/atomic).
    pub(crate) metrics: Arc<MetricSet>,
    /// Counter handles into `metrics` (same registration order as the
    /// device's, so typed views compose by field-wise addition).
    pub(crate) ctr: DeviceCounters,
    /// Serializes this lane's write-back drains (see module docs).
    pub(crate) wb_gate: Arc<WbGate>,
    /// The lane's durable log watermark — shared with the `UndoLog` in
    /// both engine modes, so `watermark.durable()` always equals
    /// `log.durable_offset()`.
    pub(crate) watermark: Arc<LogWatermark>,
    /// The CAS undo bank (`None` in locked-log mode).
    pub(crate) bank: Option<Arc<AtomicBank>>,
}

impl LaneHandles {
    /// Counts a `RdShared` routed to this lane.
    pub(crate) fn count_rd_shared(&self) {
        self.metrics.inc(self.ctr.rd_shared);
    }

    /// Counts a `RdOwn` routed to this lane.
    pub(crate) fn count_rd_own(&self) {
        self.metrics.inc(self.ctr.rd_own);
    }

    /// Counts a clean eviction routed to this lane.
    pub(crate) fn count_clean_evict(&self) {
        self.metrics.inc(self.ctr.clean_evicts);
    }

    /// Counts a dirty eviction routed to this lane.
    pub(crate) fn count_dirty_evict(&self) {
        self.metrics.inc(self.ctr.dirty_evicts);
    }

    /// Counts a dirty eviction for a line this lane never logged.
    pub(crate) fn count_unlogged_dirty_evict(&self) {
        self.metrics.inc(self.ctr.unlogged_dirty_evicts);
    }

    /// Counts a line this lane wrote back to PM.
    pub(crate) fn count_writeback(&self) {
        self.metrics.inc(self.ctr.device_writebacks);
    }

    /// Counts a background (opportunistic) write back.
    pub(crate) fn count_background_writeback(&self) {
        self.metrics.inc(self.ctr.background_writebacks);
    }

    /// Counts a stall that forced a synchronous log flush on this lane.
    pub(crate) fn count_forced_flush(&self) {
        self.metrics.inc(self.ctr.forced_log_flushes);
    }

    /// Counts a persist-path snoop sent for a line this lane logged.
    pub(crate) fn count_snoop_sent(&self) {
        self.metrics.inc(self.ctr.snoops_sent);
    }

    /// Counts a snoop that returned host data.
    pub(crate) fn count_snoop_data_returned(&self) {
        self.metrics.inc(self.ctr.snoop_data_returned);
    }

    /// Counts an epoch commit against this lane's tenant (charged to the
    /// tenant's phase-0 lane so per-tenant rollups conserve `persists`).
    pub(crate) fn count_persist(&self) {
        self.metrics.inc(self.ctr.persists);
    }

    /// Counts a coalesced persist write-back batch issued by this lane.
    pub(crate) fn count_wb_batch(&self) {
        self.metrics.inc(self.ctr.wb_batches);
    }

    /// Records an `RdOwn` in the ownership directory: the host now
    /// plausibly holds `addr` modified. `dir_resident` is an occupancy
    /// gauge, so it moves only on tracked-set transitions.
    pub(crate) fn dir_note_owned(&self, addr: LineAddr) {
        if self.directory.note_owned(addr) {
            self.metrics.inc(self.ctr.dir_resident);
        }
    }

    /// Records evidence the host gave `addr` up (dirty eviction, snoop
    /// response, CLWB invalidate, device write-back).
    pub(crate) fn dir_clear(&self, addr: LineAddr) {
        if self.directory.clear_line(addr) {
            self.metrics.sub(self.ctr.dir_resident, 1);
        }
    }

    /// Whether a persist must snoop the host for `addr`. With filtering
    /// off this is unconditionally `true` (and uncounted — the exact
    /// pre-directory behaviour); with it on, a tracked line counts a
    /// directory hit and snoops, an untracked one counts a filtered
    /// snoop and skips the round-trip.
    pub(crate) fn dir_should_snoop(&self, addr: LineAddr, filter: bool) -> bool {
        if !filter {
            return true;
        }
        if self.directory.holds(addr) {
            self.metrics.inc(self.ctr.dir_hits);
            true
        } else {
            self.metrics.inc(self.ctr.dir_filtered_snoops);
            false
        }
    }

    /// The log offset covering `addr` this epoch, if it was logged here.
    pub(crate) fn epoch_offset_of(&self, addr: LineAddr) -> Option<u64> {
        self.epoch_log.offset_of(addr)
    }

    /// Maps a global vPM line (which satisfies `addr % stride == phase`)
    /// to the lane-local key the HBM slice is indexed by. Interleaved
    /// addresses stride by `stride`; dividing it out keeps the slice's
    /// sets uniformly used (a power-of-two stride would otherwise alias
    /// every lane-resident line into `sets/stride` sets). Two tenants'
    /// lanes at the same phase key identically but into disjoint
    /// [`HbmCache`] instances, so no disambiguation is needed.
    pub(crate) fn hbm_key(&self, addr: LineAddr) -> LineAddr {
        debug_assert_eq!(addr.0 % self.stride, self.phase, "line routed to wrong lane");
        LineAddr(addr.0 / self.stride)
    }

    /// Inverse of [`LaneHandles::hbm_key`].
    pub(crate) fn hbm_unkey(&self, local: LineAddr) -> LineAddr {
        LineAddr(local.0 * self.stride + self.phase)
    }

    /// HBM lookup counting hit/miss, in global address space.
    pub(crate) fn hbm_lookup(&self, addr: LineAddr) -> Option<HbmLine> {
        self.hbm.lookup(self.hbm_key(addr))
    }

    /// HBM peek (no hit/miss accounting), in global address space.
    pub(crate) fn hbm_peek(&self, addr: LineAddr) -> Option<HbmLine> {
        self.hbm.peek(self.hbm_key(addr))
    }

    /// Marks any resident HBM copy of `addr` clean (its value just
    /// reached PM through a persist-path write back) — in place, so
    /// persist housekeeping does not disturb LRU recency.
    pub(crate) fn hbm_mark_clean(&self, addr: LineAddr) {
        self.hbm.mark_clean(self.hbm_key(addr));
    }

    /// Inserts `addr` into HBM, disposing of any evicted victim *inside
    /// the set's critical section* — the victim is never absent from the
    /// index while its dirty data is still in flight to PM.
    ///
    /// `locked_log` is the lane-guard log borrow for locked-log mode
    /// (`None` under the default CAS engine, whose bank handle lives in
    /// `self.bank`).
    pub(crate) fn hbm_insert_disposing(
        &self,
        pool: &PoolCell,
        clock: &CrashClock,
        trace: &TraceCell,
        locked_log: Option<&mut UndoLog>,
        addr: LineAddr,
        line: HbmLine,
    ) -> Result<()> {
        let durable = self.watermark.durable();
        let key = self.hbm_key(addr);
        match self.hbm.insert_then(key, line, durable, |vlocal, vline| {
            self.dispose_victim(pool, clock, trace, locked_log, self.hbm_unkey(vlocal), vline)
        }) {
            Some(res) => res,
            None => Ok(()),
        }
    }

    /// Re-inserts `addr` as a clean copy of `data`. Two call sites with
    /// different race disciplines:
    ///
    /// * persist sweep / snoop refresh (`if_absent = false`): the host
    ///   just returned the authoritative value — replace whatever HBM
    ///   holds;
    /// * miss-path read refresh (`if_absent = true`): the PM copy the
    ///   reader fetched is *stale* relative to any concurrently inserted
    ///   dirty line, so an existing entry must win.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn hbm_refresh_clean(
        &self,
        pool: &PoolCell,
        clock: &CrashClock,
        trace: &TraceCell,
        locked_log: Option<&mut UndoLog>,
        addr: LineAddr,
        data: CacheLine,
        if_absent: bool,
    ) -> Result<()> {
        let durable = self.watermark.durable();
        let key = self.hbm_key(addr);
        let line = HbmLine { data, dirty: false, log_offset: None };
        let dispose = |vlocal: LineAddr, vline: HbmLine| {
            self.dispose_victim(pool, clock, trace, locked_log, self.hbm_unkey(vlocal), vline)
        };
        let disposed = if if_absent {
            self.hbm.insert_clean_if_absent_then(key, line, durable, dispose)
        } else {
            self.hbm.insert_then(key, line, durable, dispose)
        };
        match disposed {
            Some(res) => res,
            None => Ok(()),
        }
    }

    /// The lane's view of the current contents of `addr`: HBM first,
    /// then a draining epoch's captured value, then PM.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn resolve(
        &self,
        pool: &PoolCell,
        clock: &CrashClock,
        trace: &TraceCell,
        cache_clean_reads: bool,
        drain_value: Option<CacheLine>,
        addr: LineAddr,
        locked_log: Option<&mut UndoLog>,
    ) -> Result<CacheLine> {
        if let Some(l) = self.hbm_lookup(addr) {
            self.metrics.inc(self.ctr.hbm_read_hits);
            return Ok(l.data);
        }
        // A draining epoch's final values are newer than PM until their
        // write back lands.
        if let Some(data) = drain_value {
            return Ok(data);
        }
        let data = {
            let mut pm = pool.lock();
            let abs = pm.layout().vpm_to_pool(addr.0)?;
            self.metrics.inc(self.ctr.pm_reads);
            pm.read_line(abs)?
        };
        if cache_clean_reads {
            // if_absent: a concurrent RdOwn may have inserted a dirty
            // line for this address since the PM read above — the stale
            // clean copy must not clobber it.
            self.hbm_refresh_clean(pool, clock, trace, locked_log, addr, data.clone(), true)?;
        }
        Ok(data)
    }

    /// Undo-logs `addr` if this is its first modification of the epoch,
    /// returning the covering log offset. The epoch-log stripe lock is
    /// held across the append, so concurrent first-writes to one line
    /// append exactly once.
    pub(crate) fn log_if_first(
        &self,
        trace: &TraceCell,
        locked_log: Option<&mut UndoLog>,
        epoch: u64,
        addr: LineAddr,
        old: &CacheLine,
    ) -> Result<u64> {
        self.epoch_log.try_insert(addr, || {
            let entry =
                UndoEntry { epoch, vpm_line: addr, tenant: self.tenant as u32, old: old.clone() };
            let offset = match (&self.bank, locked_log) {
                (Some(bank), _) => bank.append(entry)?,
                (None, Some(log)) => log.append(entry)?,
                (None, None) => {
                    return Err(PmError::ProtocolViolation {
                        invariant: "locked-log lane appended without the lane guard",
                    })
                }
            };
            self.metrics.inc(self.ctr.undo_entries);
            trace.record(COMPONENT, TraceEvent::LogAppend { epoch, line: addr.0 });
            Ok(offset)
        })
    }

    /// Writes an HBM eviction victim back to PM if dirty, stalling for a
    /// log flush when its undo entry is not yet durable. `addr` is the
    /// victim's *global* address.
    ///
    /// The stall is bounded: every iteration must drain an entry from the
    /// lane's pending buffer. A victim whose covering offset is neither
    /// durable nor pending cannot exist (offsets are monotonic and
    /// assigned by this lane's own appends) — if it does, the state is
    /// corrupt and the loop surfaces [`PmError::ProtocolViolation`]
    /// instead of spinning.
    pub(crate) fn dispose_victim(
        &self,
        pool: &PoolCell,
        clock: &CrashClock,
        trace: &TraceCell,
        mut locked_log: Option<&mut UndoLog>,
        addr: LineAddr,
        line: HbmLine,
    ) -> Result<()> {
        if !line.dirty {
            return Ok(());
        }
        if let Some(offset) = line.log_offset {
            if offset >= self.watermark.durable() {
                // §3.3: the victim's pre-image must be durable before the
                // new value may reach PM. This is the stall PreferDurable
                // eviction avoids.
                self.metrics.inc(self.ctr.forced_log_flushes);
                while self.watermark.durable() <= offset {
                    let pumped = match (&self.bank, locked_log.as_deref_mut()) {
                        (Some(bank), _) => bank.pump(&mut pool.lock(), clock, 1)?,
                        (None, Some(log)) => log.pump(&mut pool.lock(), clock, 1)?,
                        (None, None) => {
                            return Err(PmError::ProtocolViolation {
                                invariant: "locked-log lane pumped without the lane guard",
                            })
                        }
                    };
                    if pumped == 0 {
                        return Err(PmError::ProtocolViolation {
                            invariant: "HBM victim's undo entry is neither durable nor pending",
                        });
                    }
                }
            }
        }
        {
            let mut pm = pool.lock();
            let abs = pm.layout().vpm_to_pool(addr.0)?;
            tick(clock, &mut pm)?;
            pm.write_line(abs, line.data)?;
        }
        self.metrics.inc(self.ctr.device_writebacks);
        trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
        self.dir_clear(addr);
        Ok(())
    }
}

/// One address-interleaved slice of the device's per-line state (see
/// module docs).
///
/// With tenancy ([`crate::tenant`]) a `DeviceShard` is one **lane**: the
/// slice owned by a single `(tenant, interleave-phase)` pair. Tenant
/// `t`'s traffic on physical shard `s = addr % S` lands in lane `t*S +
/// s`, so each lane's undo-log bank, epoch-log map, and write-back queue
/// belong to exactly one tenant — which is what lets one tenant's epoch
/// flush, commit, and recycle without touching another's. A
/// single-tenant device's lanes are exactly its shards.
///
/// Hot-path state lives in shared [`LaneHandles`] (`self.h`); the struct
/// behind the lane mutex keeps only the [`UndoLog`] (whose locked-mode
/// backing needs `&mut`) and snapshot-sync bookkeeping.
#[derive(Debug)]
pub struct DeviceShard {
    /// This lane's index within the device (`tenant * interleave +
    /// phase`).
    index: u64,
    /// Shared hot-path handles; the device clones these out at open.
    pub(crate) h: LaneHandles,
    /// This shard's undo-log bank.
    pub(crate) log: UndoLog,
}

impl DeviceShard {
    /// Builds lane `index` for `tenant` at interleave phase `index %
    /// stride`, owning the (already per-lane-sized) HBM geometry in
    /// `hbm` and the log bank `[log_base, log_base +
    /// log_capacity_entries)` of the pool's log region. The caller —
    /// [`PaxDevice::open_multi`](crate::PaxDevice::open_multi) — slices
    /// the device's total HBM capacity across lanes (weighted by each
    /// tenant's HBM share) before construction, flooring every lane at
    /// one full associativity set.
    pub(crate) fn new(
        index: usize,
        tenant: usize,
        stride: usize,
        hbm: HbmConfig,
        log_base: u64,
        log_capacity_entries: u64,
        locked_log: bool,
    ) -> Self {
        let per_lane = HbmConfig {
            capacity_bytes: hbm.capacity_bytes.max(hbm.ways * pax_pm::LINE_SIZE),
            ..hbm
        };
        let mut metrics = MetricSet::new(COMPONENT);
        let ctr = DeviceCounters::register(&mut metrics);
        let log = UndoLog::with_region_mode(log_base, log_capacity_entries, locked_log);
        let h = LaneHandles {
            tenant,
            phase: (index % stride.max(1)) as u64,
            stride: stride as u64,
            hbm: Arc::new(HbmCache::new(per_lane)),
            epoch_log: Arc::new(EpochLog::new()),
            writeback_queue: Arc::new(WbQueue::default()),
            directory: Arc::new(OwnershipDirectory::new()),
            metrics: Arc::new(metrics),
            ctr,
            wb_gate: Arc::new(WbGate::default()),
            watermark: log.watermark(),
            bank: log.bank(),
        };
        DeviceShard { index: index as u64, h, log }
    }

    /// A clone of this lane's shared hot-path handles, for the device to
    /// keep outside the lane mutex.
    pub(crate) fn handles(&self) -> LaneHandles {
        self.h.clone()
    }

    /// This lane's index.
    pub fn index(&self) -> usize {
        self.index as usize
    }

    /// The tenant (pool context) this lane serves.
    pub fn tenant(&self) -> usize {
        self.h.tenant
    }

    /// Snapshot of this shard's counter registry (component `device`).
    pub(crate) fn snapshot(&mut self) -> MetricSnapshot {
        self.sync_log_metrics();
        self.sync_hbm_metrics();
        self.h.metrics.snapshot()
    }

    /// Typed view over this shard's counters.
    pub(crate) fn view_metrics(&mut self) -> DeviceMetrics {
        self.sync_log_metrics();
        self.sync_hbm_metrics();
        self.h.ctr.view(&self.h.metrics)
    }

    /// Reconciles the CAS bank's internal contention telemetry into the
    /// lane's registry: `log_cas_retries` is monotone (add the delta),
    /// `log_reserved` is a gauge (snap to the current in-flight count).
    /// A locked-engine lane reports both as zero.
    fn sync_log_metrics(&mut self) {
        let Some(bank) = self.log.bank() else { return };
        let metrics = &self.h.metrics;
        let retries = bank.cas_retries();
        let seen = metrics.get(self.h.ctr.log_cas_retries);
        if retries > seen {
            metrics.add(self.h.ctr.log_cas_retries, retries - seen);
        }
        let reserved = bank.in_flight();
        let shown = metrics.get(self.h.ctr.log_reserved);
        match reserved.cmp(&shown) {
            std::cmp::Ordering::Greater => metrics.add(self.h.ctr.log_reserved, reserved - shown),
            std::cmp::Ordering::Less => metrics.sub(self.h.ctr.log_reserved, shown - reserved),
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Reconciles the HBM buffer's atomic counters into the registry:
    /// `hbm_hits`/`hbm_misses` are monotone (add the delta since last
    /// sync), `hbm_resident` is an occupancy gauge (snap to current).
    fn sync_hbm_metrics(&mut self) {
        let metrics = &self.h.metrics;
        for (current, counter) in
            [(self.h.hbm.hits(), self.h.ctr.hbm_hits), (self.h.hbm.misses(), self.h.ctr.hbm_misses)]
        {
            let seen = metrics.get(counter);
            if current > seen {
                metrics.add(counter, current - seen);
            }
        }
        let resident = self.h.hbm.resident() as u64;
        let shown = metrics.get(self.h.ctr.hbm_resident);
        match resident.cmp(&shown) {
            std::cmp::Ordering::Greater => metrics.add(self.h.ctr.hbm_resident, resident - shown),
            std::cmp::Ordering::Less => metrics.sub(self.h.ctr.hbm_resident, shown - resident),
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Starts the next epoch after a non-blocking persist captured this
    /// one: per-epoch maps reset, but the log bank stays live until the
    /// drain commits and recycles it.
    pub(crate) fn begin_next_epoch(&mut self) {
        self.h.epoch_log.clear();
        self.h.writeback_queue.clear();
    }

    /// Undo-log entries appended in the current epoch on this shard.
    pub fn epoch_log_len(&self) -> usize {
        self.h.epoch_log.len()
    }

    /// This shard's durable log watermark.
    pub fn log_durable_offset(&self) -> u64 {
        self.log.durable_offset()
    }

    /// HBM insert, in global address space; the victim (if any) comes
    /// back with its global address. Test-path helper — hot paths use
    /// [`LaneHandles::hbm_insert_disposing`] so disposal happens inside
    /// the set's critical section.
    #[cfg(test)]
    pub(crate) fn hbm_insert(
        &mut self,
        addr: LineAddr,
        line: HbmLine,
        durable_offset: u64,
    ) -> Option<(LineAddr, HbmLine)> {
        let key = self.h.hbm_key(addr);
        let victim = self.h.hbm.insert(key, line, durable_offset);
        victim.map(|(local, l)| (self.h.hbm_unkey(local), l))
    }

    /// Lane-guard delegate of [`LaneHandles::dispose_victim`] (test-path
    /// helper; hot paths pass the guard's log explicitly).
    #[cfg(test)]
    pub(crate) fn dispose_victim(
        &mut self,
        pool: &PoolCell,
        clock: &CrashClock,
        trace: &TraceCell,
        addr: LineAddr,
        line: HbmLine,
    ) -> Result<()> {
        let h = self.h.clone();
        h.dispose_victim(pool, clock, trace, Some(&mut self.log), addr, line)
    }

    /// Lane-guard delegate of [`LaneHandles::log_if_first`] (test-path
    /// helper; hot paths pass the guard's log explicitly).
    #[cfg(test)]
    pub(crate) fn log_if_first(
        &mut self,
        trace: &TraceCell,
        epoch: u64,
        addr: LineAddr,
        old: &CacheLine,
    ) -> Result<u64> {
        let h = self.h.clone();
        h.log_if_first(trace, Some(&mut self.log), epoch, addr, old)
    }

    /// One background step for this shard's free-running engines: drain
    /// some log entries, then opportunistically write back dirty lines
    /// whose entries are durable. The write-back loop holds the lane's
    /// [`WbGate`](crate::cell::WbGate) so persist-path drains never
    /// interleave with it.
    pub(crate) fn background(
        &mut self,
        pool: &PoolCell,
        clock: &CrashClock,
        trace: &TraceCell,
        log_pump_batch: usize,
        writeback_batch: usize,
    ) -> Result<()> {
        if log_pump_batch > 0 && self.log.pending_len() > 0 {
            self.log.pump(&mut pool.lock(), clock, log_pump_batch)?;
        }
        let h = self.h.clone();
        let _gate = h.wb_gate.lock();
        let mut budget = writeback_batch;
        while budget > 0 {
            let Some(addr) = h.writeback_queue.front() else { break };
            let durable = h.watermark.durable();
            let ready = match h.hbm_peek(addr) {
                Some(l) if l.dirty => l.log_offset.is_none_or(|o| o < durable),
                // Cleaned or evicted through another path; just drop it.
                _ => {
                    h.writeback_queue.pop_front();
                    continue;
                }
            };
            if !ready {
                break; // queue is in log order; later entries aren't durable either
            }
            h.writeback_queue.pop_front();
            if let Some(data) = h.hbm_peek(addr).map(|l| l.data) {
                // Clean in place: background write-back must not promote
                // the line to MRU and erase real-access recency.
                h.hbm_mark_clean(addr);
                {
                    let mut pm = pool.lock();
                    let abs = pm.layout().vpm_to_pool(addr.0)?;
                    tick(clock, &mut pm)?;
                    pm.write_line(abs, data)?;
                }
                h.count_writeback();
                h.count_background_writeback();
                trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
                h.dir_clear(addr);
            }
            budget -= 1;
        }
        Ok(())
    }

    /// Per-epoch volatile state reset after a fully-drained commit.
    pub(crate) fn reset_after_commit(&mut self) {
        self.h.epoch_log.clear();
        self.h.writeback_queue.clear();
        self.log.reset_after_commit();
    }

    /// Drops all volatile state (power loss). The ownership directory is
    /// volatile by design — it restarts empty, and correctness never
    /// depended on it.
    pub(crate) fn crash(&mut self) {
        self.h.hbm.crash();
        self.log.crash();
        self.h.epoch_log.clear();
        self.h.writeback_queue.clear();
        self.h.metrics.sub(self.h.ctr.dir_resident, self.h.directory.resident() as u64);
        self.h.directory.crash();
    }
}

/// Advances the crash clock one durable-write step; crashing the pool and
/// unwinding if it fires.
pub(crate) fn tick(clock: &CrashClock, pool: &mut PmPool) -> Result<()> {
    if clock.tick() == pax_pm::CrashOutcome::Crashed {
        pool.crash();
        return Err(PmError::Crashed);
    }
    Ok(())
}

/// Splits a pool's log region into `shards` equal banks, returning each
/// bank's `(base_line, capacity_entries)`. The shard count is clamped so
/// every bank holds at least one entry.
pub(crate) fn split_log_region(pool: &PmPool, shards: usize) -> Vec<(u64, u64)> {
    let layout = pool.layout();
    let capacity = (layout.log_lines / ENTRY_LINES).max(1);
    let shards = (shards.max(1) as u64).min(capacity);
    let per_shard = capacity / shards;
    (0..shards).map(|s| (layout.log_start().0 + s * per_shard * ENTRY_LINES, per_shard)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbm::EvictionPolicy;
    use pax_pm::{PoolConfig, LINE_SIZE};

    fn shard_pair() -> (PmPool, DeviceShard, DeviceShard) {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let banks = split_log_region(&pool, 2);
        let hbm = HbmConfig::default_config();
        let a = DeviceShard::new(0, 0, 2, hbm, banks[0].0, banks[0].1, false);
        let b = DeviceShard::new(1, 0, 2, hbm, banks[1].0, banks[1].1, false);
        (pool, a, b)
    }

    #[test]
    fn split_covers_region_without_overlap() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let banks = split_log_region(&pool, 4);
        assert_eq!(banks.len(), 4);
        for w in banks.windows(2) {
            assert_eq!(w[0].0 + w[0].1 * ENTRY_LINES, w[1].0, "banks must be adjacent");
        }
        let total: u64 = banks.iter().map(|(_, c)| c).sum();
        assert!(total <= pool.layout().log_lines / ENTRY_LINES);
    }

    #[test]
    fn shard_count_is_clamped_to_log_capacity() {
        let mut cfg = PoolConfig::small();
        cfg.log_bytes = 4 * LINE_SIZE; // 2 entries
        let pool = PmPool::create(cfg).unwrap();
        assert_eq!(split_log_region(&pool, 8).len(), 2);
    }

    #[test]
    fn hbm_keys_round_trip_and_stay_disjoint() {
        let (_pool, a, b) = shard_pair();
        for addr in [0u64, 2, 4, 100] {
            assert_eq!(a.h.hbm_unkey(a.h.hbm_key(LineAddr(addr))), LineAddr(addr));
        }
        for addr in [1u64, 3, 5, 101] {
            assert_eq!(b.h.hbm_unkey(b.h.hbm_key(LineAddr(addr))), LineAddr(addr));
        }
    }

    #[test]
    fn interleaved_lines_use_all_hbm_sets() {
        // With a power-of-two stride, raw global addresses would alias
        // into half the sets; the shard-local key must spread them.
        let mut shard = DeviceShard::new(
            0,
            0,
            2,
            HbmConfig { capacity_bytes: 2 * 128, ways: 2, policy: EvictionPolicy::Lru },
            0,
            64,
            false,
        );
        // Shard capacity: 4 lines (2 sets × 2 ways) — the per-lane slice
        // the device would hand this lane of a 4-line-per-lane buffer.
        // Insert 4 shard-0 lines (global addresses 0,2,4,6): all resident
        // only if both sets are used.
        for g in [0u64, 2, 4, 6] {
            let v = shard.hbm_insert(
                LineAddr(g),
                HbmLine { data: CacheLine::filled(g as u8), dirty: false, log_offset: None },
                0,
            );
            assert!(v.is_none(), "line {g} must not evict");
        }
        assert_eq!(shard.h.hbm.resident(), 4);
    }

    #[test]
    fn dispose_victim_with_unsatisfiable_offset_errors_instead_of_spinning() {
        // The pinned invariant: a dirty victim whose covering log offset
        // is neither durable nor pending is corrupt state. The drain loop
        // must surface it, not spin forever pumping an empty buffer.
        let (pool, mut a, _b) = shard_pair();
        let pool = PoolCell::new(pool);
        let clock = CrashClock::new();
        let trace = TraceCell::new(pax_telemetry::TraceBuf::disabled());
        let line = HbmLine { data: CacheLine::filled(1), dirty: true, log_offset: Some(99) };
        let err = a.dispose_victim(&pool, &clock, &trace, LineAddr(0), line).unwrap_err();
        assert!(
            matches!(err, PmError::ProtocolViolation { .. }),
            "expected a protocol-invariant error, got {err}"
        );
    }

    #[test]
    fn dispose_victim_drains_pending_entry_then_writes_back() {
        let (pool, mut a, _b) = shard_pair();
        let pool = PoolCell::new(pool);
        let clock = CrashClock::new();
        let trace = TraceCell::new(pax_telemetry::TraceBuf::disabled());
        let off = a.log_if_first(&trace, 1, LineAddr(0), &CacheLine::zeroed()).unwrap();
        let line = HbmLine { data: CacheLine::filled(7), dirty: true, log_offset: Some(off) };
        a.dispose_victim(&pool, &clock, &trace, LineAddr(0), line).unwrap();
        assert!(a.log.durable_offset() > off, "covering entry was drained first");
        let mut pool = pool.into_inner();
        let abs = pool.layout().vpm_to_pool(0).unwrap();
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(7));
    }

    #[test]
    fn shard_banks_append_independently() {
        let (mut pool, mut a, mut b) = shard_pair();
        let clock = CrashClock::new();
        let trace = TraceCell::new(pax_telemetry::TraceBuf::disabled());
        a.log_if_first(&trace, 1, LineAddr(0), &CacheLine::filled(1)).unwrap();
        b.log_if_first(&trace, 1, LineAddr(1), &CacheLine::filled(2)).unwrap();
        b.log_if_first(&trace, 1, LineAddr(3), &CacheLine::filled(3)).unwrap();
        a.log.flush(&mut pool, &clock).unwrap();
        b.log.flush(&mut pool, &clock).unwrap();
        assert_eq!(a.log.durable_offset(), 1);
        assert_eq!(b.log.durable_offset(), 2);
        // Every entry is visible to the (global) recovery scan.
        assert_eq!(UndoLog::scan(&mut pool).unwrap().len(), 3);
    }

    #[test]
    fn epoch_log_dedupes_and_sorts_deterministically() {
        let log = EpochLog::new();
        for (addr, off) in [(7u64, 2u64), (1, 0), (4, 1)] {
            assert_eq!(log.try_insert(LineAddr(addr), || Ok(off)).unwrap(), off);
        }
        // Re-insert must return the recorded offset without calling make.
        assert_eq!(log.try_insert(LineAddr(7), || panic!("dedup must skip make")).unwrap(), 2);
        assert_eq!(log.len(), 3);
        assert_eq!(log.sorted(), vec![(0, LineAddr(1)), (1, LineAddr(4)), (2, LineAddr(7))]);
        log.clear();
        assert_eq!(log.len(), 0);
        assert!(log.sorted().is_empty());
    }

    #[test]
    fn wb_queue_is_fifo_and_tracks_len() {
        let q = WbQueue::default();
        assert!(q.is_empty());
        q.push_back(LineAddr(1));
        q.push_back(LineAddr(2));
        assert_eq!(q.front(), Some(LineAddr(1)));
        assert_eq!(q.pop_front(), Some(LineAddr(1)));
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop_front(), None);
    }
}
