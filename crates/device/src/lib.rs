//! The PAX persistence accelerator.
//!
//! This crate implements the device half of the paper (§3): a
//! cache-coherent accelerator that is the home agent for a pool's vPM
//! range and provides crash-consistent snapshot semantics *asynchronously*
//! — the host CPU never stalls for logging.
//!
//! * [`undo_log`] — the persistent, epoch-tagged undo log with a
//!   monotonically increasing durable watermark (§3.2–3.3).
//! * [`hbm`] — the on-device HBM buffer of modified lines, each tagged
//!   with the log offset whose durability gates its write back; its
//!   eviction policy can prefer already-durable lines (§3.3).
//! * [`shard`] — [`DeviceShard`]: the address-interleaved slice of the
//!   device's per-line state (HBM sets, undo-log bank, write-back queue,
//!   metrics); `S` shards service independent lines without contending.
//! * [`directory`] — [`OwnershipDirectory`]: the per-lane snoop filter
//!   tracking which lines the host plausibly holds modified, so
//!   `persist()` skips snoops for lines the host already gave up; plus
//!   the contiguous-run batcher of the persist write-back pipeline.
//! * [`device`] — [`PaxDevice`]: routes `RdShared`/`RdOwn`/evictions to
//!   the owning shard, performs undo logging on ownership requests,
//!   coordinates write back, and implements the `persist()` epoch
//!   protocol as a cross-shard barrier with one atomic commit.
//! * [`recovery`] — the §3.4 procedure: roll back every undo entry tagged
//!   with an epoch newer than the pool's committed epoch.
//! * [`tenant`] — [`TenantMap`]: the validated multi-pool layout; one
//!   device hosts `T` tenant contexts, each with its own vPM extent,
//!   epoch counter, header epoch slot, and scheduler weight.
//! * [`sched`] — the virtual-time scheduler: background engines advance
//!   on explicit, budgeted ticks in a fixed shard order, with per-shard
//!   budgets divided across active tenants by weight, so progress is
//!   decoupled from foreground traffic yet crash points stay replayable.
//! * [`metrics`] — event counters consumed by the benchmark harness.
//!
//! # Example
//!
//! ```
//! # fn main() -> pax_pm::Result<()> {
//! use pax_cache::{CacheConfig, CoherentCache};
//! use pax_device::{DeviceConfig, PaxDevice};
//! use pax_pm::{CacheLine, LineAddr, PmPool, PoolConfig};
//!
//! let pool = PmPool::create(PoolConfig::small())?;
//! let mut device = PaxDevice::open(pool, DeviceConfig::default())?;
//! let mut cache = CoherentCache::new(CacheConfig::llc_c6420());
//!
//! // Host stores go through the cache; the device undo-logs them.
//! cache.write(LineAddr(0), CacheLine::filled(1), &mut device)?;
//! let epoch = device.persist(&mut cache)?; // crash-consistent snapshot
//! assert_eq!(epoch, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod cell;
pub mod device;
pub mod directory;
pub mod endpoint;
pub mod hbm;
pub mod metrics;
pub mod recovery;
pub mod sched;
pub mod shard;
pub mod tenant;
pub mod undo_log;

pub use device::{DeviceConfig, PaxDevice};
pub use directory::{coalesce_runs, DirectoryConfig, OwnershipDirectory};
pub use endpoint::CxlEndpoint;
pub use hbm::{EvictionPolicy, HbmCache, HbmConfig, HbmLine};
pub use metrics::DeviceMetrics;
pub use recovery::{recover, recover_traced, RecoveryReport};
pub use sched::{DeviceScheduler, SchedConfig};
pub use shard::DeviceShard;
pub use tenant::{even_split, TenantId, TenantMap, TenantRegion};
pub use undo_log::{AtomicBank, LogWatermark, UndoEntry, UndoLog, ENTRY_LINES};
