//! The device's HBM buffer of cached/modified lines (§3.3).
//!
//! The device buffers two kinds of lines in its high-bandwidth memory:
//! clean copies that act as a read cache of PM, and modified lines
//! received from the host (dirty evictions, or values collected by
//! `persist()` snoops) waiting for write back. A modified line carries the
//! offset of the undo-log entry covering it; it may only be written back
//! to PM once that entry is durable.
//!
//! When the buffer fills, a victim must be chosen. [`EvictionPolicy::Lru`]
//! ignores durability and may force a synchronous log flush (a stall);
//! [`EvictionPolicy::PreferDurable`] implements §3.3's optimisation —
//! "the device buffer's eviction policy can try to minimize stalls by
//! preferring to evict cache lines whose undo log entries are already
//! durable". The `ablation_eviction` bench quantifies the difference.
//!
//! Since PR 10 the buffer is a *concurrent* index
//! ([`ConcurrentSetAssoc`]): every method takes `&self`, hit/miss
//! counters are atomics, and same-lane stores probe and update the set
//! index without holding the lane's `Mutex<DeviceShard>` (DESIGN.md
//! §15). Eviction disposal runs inside the per-set critical section via
//! [`HbmCache::insert_then`], so a dirty victim is never invisible while
//! its data is still in flight to PM.

use std::sync::atomic::{AtomicU64, Ordering};

use pax_cache::ConcurrentSetAssoc;
use pax_pm::{CacheLine, LineAddr};

/// A line resident in device HBM.
#[derive(Debug, Clone)]
pub struct HbmLine {
    /// Current contents as known to the device.
    pub data: CacheLine,
    /// Whether the contents differ from PM (needs write back).
    pub dirty: bool,
    /// Undo-log entry offset covering this modification; write back is
    /// legal only once the log watermark passes it. `None` for clean
    /// lines.
    pub log_offset: Option<u64>,
}

/// Victim-selection policy for a full HBM set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvictionPolicy {
    /// Plain least-recently-used.
    Lru,
    /// LRU among lines that are clean or already durably logged; falls
    /// back to plain LRU when no such line exists (§3.3).
    #[default]
    PreferDurable,
}

/// Geometry and policy of the HBM buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbmConfig {
    /// Capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Victim-selection policy.
    pub policy: EvictionPolicy,
}

impl HbmConfig {
    /// A few-MiB device buffer; HBM stacks are GiB-scale but the hot set
    /// per epoch is what matters, and tests want pressure.
    pub const fn default_config() -> Self {
        HbmConfig { capacity_bytes: 4 << 20, ways: 8, policy: EvictionPolicy::PreferDurable }
    }

    /// Returns the config with a different capacity.
    pub fn with_capacity_bytes(mut self, bytes: usize) -> Self {
        self.capacity_bytes = bytes;
        self
    }

    /// Returns the config with a different eviction policy.
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl Default for HbmConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// The HBM buffer (see module docs). All methods take `&self`; share it
/// across threads behind an `Arc`.
#[derive(Debug)]
pub struct HbmCache {
    lines: ConcurrentSetAssoc<HbmLine>,
    policy: EvictionPolicy,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl HbmCache {
    /// An empty buffer with the given geometry.
    pub fn new(config: HbmConfig) -> Self {
        HbmCache {
            lines: ConcurrentSetAssoc::with_capacity_bytes(config.capacity_bytes, config.ways),
            policy: config.policy,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Read hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Read misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Read hit rate (0 when never read). Snapshot of the atomic
    /// counters; under concurrent traffic the two loads may straddle an
    /// update, which only skews the ratio by one access.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Lines currently resident.
    pub fn resident(&self) -> usize {
        self.lines.len()
    }

    /// Total line capacity (sets × ways) — what the configured byte
    /// budget rounded to.
    pub fn capacity_lines(&self) -> usize {
        self.lines.capacity()
    }

    /// Looks up `addr` for a device-side read, counting hit/miss. The
    /// line is cloned out so no set lock is held by the caller.
    pub fn lookup(&self, addr: LineAddr) -> Option<HbmLine> {
        match self.lines.get(addr, |l| l.clone()) {
            Some(line) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(line)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up without counting (internal state checks).
    pub fn peek(&self, addr: LineAddr) -> Option<HbmLine> {
        self.lines.peek(addr, |l| l.clone())
    }

    fn prefer(&self, durable_offset: u64) -> impl Fn(&HbmLine) -> bool {
        let policy = self.policy;
        move |l: &HbmLine| match policy {
            EvictionPolicy::Lru => true,
            EvictionPolicy::PreferDurable => {
                !l.dirty || l.log_offset.is_none_or(|o| o < durable_offset)
            }
        }
    }

    /// Inserts or replaces `addr`, returning an evicted victim (if any)
    /// for the caller to dispose of. `durable_offset` is the log
    /// watermark, consulted by [`EvictionPolicy::PreferDurable`].
    ///
    /// Note the victim is returned *after* the set critical section
    /// ends; concurrent hot paths should use [`insert_then`] so disposal
    /// happens before the victim becomes invisible.
    ///
    /// [`insert_then`]: Self::insert_then
    pub fn insert(
        &self,
        addr: LineAddr,
        line: HbmLine,
        durable_offset: u64,
    ) -> Option<(LineAddr, HbmLine)> {
        self.insert_then(addr, line, durable_offset, |a, l| (a, l))
    }

    /// Inserts or replaces `addr`; if a victim is evicted, `dispose`
    /// runs on it *while the set lock is still held* and its result is
    /// returned. See [`ConcurrentSetAssoc::insert_with`] for the
    /// visibility guarantee this provides.
    pub fn insert_then<R>(
        &self,
        addr: LineAddr,
        line: HbmLine,
        durable_offset: u64,
        dispose: impl FnOnce(LineAddr, HbmLine) -> R,
    ) -> Option<R> {
        self.lines.insert_with(addr, line, self.prefer(durable_offset), dispose)
    }

    /// Inserts a line at `addr` only if absent (miss-path read refresh):
    /// a concurrent dirty insert must not be overwritten by the stale
    /// clean copy the reader fetched from PM. Victim disposal as in
    /// [`insert_then`](Self::insert_then).
    pub fn insert_clean_if_absent_then<R>(
        &self,
        addr: LineAddr,
        line: HbmLine,
        durable_offset: u64,
        dispose: impl FnOnce(LineAddr, HbmLine) -> R,
    ) -> Option<R> {
        self.lines.insert_if_absent_with(addr, line, self.prefer(durable_offset), dispose)
    }

    /// Removes `addr` from the buffer.
    pub fn remove(&self, addr: LineAddr) -> Option<HbmLine> {
        self.lines.remove(addr)
    }

    /// Drains all dirty lines (persist-time write back), leaving clean
    /// copies resident so post-persist reads still hit.
    ///
    /// Cleaning happens in place: draining is housekeeping, not access,
    /// so it must not promote the drained lines to MRU and wipe out the
    /// recency order real reads and evictions established.
    pub fn take_dirty(&self) -> Vec<(LineAddr, CacheLine)> {
        let mut drained = Vec::new();
        self.lines.for_each_mut(|addr, line| {
            if line.dirty {
                drained.push((addr, line.data.clone()));
                line.dirty = false;
                line.log_offset = None;
            }
        });
        drained
    }

    /// Marks `addr` clean in place (post-write-back), without disturbing
    /// LRU order. Returns whether the line was resident.
    pub fn mark_clean(&self, addr: LineAddr) -> bool {
        self.lines
            .peek_mut(addr, |line| {
                line.dirty = false;
                line.log_offset = None;
            })
            .is_some()
    }

    /// Clears everything (power loss: HBM contents are volatile from the
    /// crash-consistency standpoint — the log already captured pre-images).
    pub fn crash(&self) {
        self.lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(b: u8) -> HbmLine {
        HbmLine { data: CacheLine::filled(b), dirty: false, log_offset: None }
    }

    fn dirty(b: u8, off: u64) -> HbmLine {
        HbmLine { data: CacheLine::filled(b), dirty: true, log_offset: Some(off) }
    }

    fn tiny(policy: EvictionPolicy) -> HbmCache {
        // 2 lines total: 1 set × 2 ways.
        HbmCache::new(HbmConfig { capacity_bytes: 128, ways: 2, policy })
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let h = tiny(EvictionPolicy::Lru);
        h.insert(LineAddr(0), clean(1), 0);
        assert!(h.lookup(LineAddr(0)).is_some());
        assert!(h.lookup(LineAddr(1)).is_none());
        assert_eq!(h.hits(), 1);
        assert_eq!(h.misses(), 1);
        assert!((h.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prefer_durable_evicts_logged_line_first() {
        let h = tiny(EvictionPolicy::PreferDurable);
        // Two dirty lines: offset 0 (durable: watermark 1) and offset 5
        // (not durable). LRU order would evict addr 0 first either way,
        // so make the non-durable line the LRU one.
        h.insert(LineAddr(1), dirty(2, 5), 1); // not durable, inserted first (LRU)
        h.insert(LineAddr(0), dirty(1, 0), 1); // durable, MRU
        let victim = h.insert(LineAddr(2), clean(3), 1);
        assert_eq!(victim.unwrap().0, LineAddr(0), "durable line evicted despite being MRU");
    }

    #[test]
    fn prefer_durable_falls_back_to_lru() {
        let h = tiny(EvictionPolicy::PreferDurable);
        h.insert(LineAddr(0), dirty(1, 7), 0); // not durable
        h.insert(LineAddr(1), dirty(2, 8), 0); // not durable
        let victim = h.insert(LineAddr(2), clean(3), 0);
        assert_eq!(victim.unwrap().0, LineAddr(0), "plain LRU fallback");
    }

    #[test]
    fn lru_policy_ignores_durability() {
        let h = tiny(EvictionPolicy::Lru);
        h.insert(LineAddr(0), dirty(1, 99), 0); // not durable, LRU
        h.insert(LineAddr(1), clean(2), 0);
        let victim = h.insert(LineAddr(2), clean(3), 0);
        assert_eq!(victim.unwrap().0, LineAddr(0), "LRU evicts not-durable dirty line");
    }

    #[test]
    fn take_dirty_returns_and_cleans() {
        let h = HbmCache::new(HbmConfig::default_config());
        h.insert(LineAddr(0), dirty(1, 0), 0);
        h.insert(LineAddr(1), clean(2), 0);
        h.insert(LineAddr(2), dirty(3, 1), 0);
        let mut taken = h.take_dirty();
        taken.sort_by_key(|(a, _)| a.0);
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0], (LineAddr(0), CacheLine::filled(1)));
        // Lines stay resident but are now clean.
        assert_eq!(h.resident(), 3);
        assert!(!h.peek(LineAddr(0)).unwrap().dirty);
        assert!(h.take_dirty().is_empty());
    }

    #[test]
    fn take_dirty_preserves_lru_recency() {
        // 1 set × 2 ways: addrs 0 and 1 collide in HbmCache's set index
        // only if the set count is 1, so use the tiny geometry.
        let h = tiny(EvictionPolicy::Lru);
        h.insert(LineAddr(0), dirty(1, 0), 0); // LRU
        h.insert(LineAddr(1), clean(2), 0); // MRU
                                            // Draining must not promote addr 0: it stays the LRU victim.
        let taken = h.take_dirty();
        assert_eq!(taken, vec![(LineAddr(0), CacheLine::filled(1))]);
        let victim = h.insert(LineAddr(2), clean(3), 0);
        assert_eq!(victim.unwrap().0, LineAddr(0), "drained line must stay LRU");
    }

    #[test]
    fn mark_clean_cleans_in_place_without_promoting() {
        let h = tiny(EvictionPolicy::Lru);
        h.insert(LineAddr(0), dirty(1, 3), 0); // LRU
        h.insert(LineAddr(1), clean(2), 0); // MRU
        assert!(h.mark_clean(LineAddr(0)));
        assert!(!h.mark_clean(LineAddr(7)));
        let line = h.peek(LineAddr(0)).unwrap();
        assert!(!line.dirty);
        assert_eq!(line.log_offset, None);
        let victim = h.insert(LineAddr(2), clean(3), 0);
        assert_eq!(victim.unwrap().0, LineAddr(0), "cleaned line must stay LRU");
    }

    #[test]
    fn insert_if_absent_keeps_resident_line() {
        let h = tiny(EvictionPolicy::Lru);
        h.insert(LineAddr(0), dirty(1, 3), 5);
        assert!(h.insert_clean_if_absent_then(LineAddr(0), clean(9), 5, |a, l| (a, l)).is_none());
        let line = h.peek(LineAddr(0)).unwrap();
        assert!(line.dirty, "refresh must not clobber a resident dirty line");
        assert_eq!(line.data, CacheLine::filled(1));
    }

    #[test]
    fn crash_clears_buffer() {
        let h = HbmCache::new(HbmConfig::default_config());
        h.insert(LineAddr(0), dirty(1, 0), 0);
        h.crash();
        assert_eq!(h.resident(), 0);
    }
}
