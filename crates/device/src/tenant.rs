//! Multi-pool tenancy: one device, N pool contexts.
//!
//! A production CXL.cache accelerator is the home agent for *many*
//! processes' pools at once, not one — the device's HBM buffer, undo-log
//! region, and background-engine bandwidth are shared hardware, while
//! everything that defines crash consistency is **per tenant**: the VPM
//! extent, the epoch counter, the committed-epoch recovery point, and the
//! in-flight persist.
//!
//! The types here carve the device's vPM range into tenant regions and
//! route addresses to their owner:
//!
//! * [`TenantRegion`] — one tenant's contiguous slice of the data region
//!   plus its scheduler weight,
//! * [`TenantMap`] — the validated set of regions (disjoint, in bounds,
//!   at most [`MAX_TENANTS`]) with O(log n) owner lookup.
//!
//! Internally the device crosses tenants with its address-interleaved
//! shards: tenant `t`'s traffic on physical shard `s = addr % S` lands in
//! **lane** `t*S + s`, and each lane owns its own undo-log bank slice,
//! epoch-log map, and write-back queue. Lanes make isolation structural:
//! tenant A's `persist()` flushes only A's lanes, commits only A's header
//! slot, and recycles only A's log slots — B's in-flight epoch is never
//! touched. What the lanes *share* is capacity and time: the HBM and log
//! region are split across all lanes, and each physical shard's per-tick
//! budgets are divided across its tenant lanes by weight
//! (see [`DeviceScheduler`](crate::DeviceScheduler)).

use pax_pm::{LineAddr, PmError, Result, MAX_TENANTS};

/// Index of a tenant's pool context within a device (dense, 0-based).
pub type TenantId = usize;

/// One tenant's slice of the device's vPM range, plus its scheduler
/// weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantRegion {
    /// First vPM line of the tenant's extent.
    pub vpm_base: u64,
    /// Lines in the tenant's extent (must be nonzero).
    pub vpm_lines: u64,
    /// Weighted-round-robin share of each shard's tick budgets
    /// (must be nonzero; every tenant with pending work is still
    /// guaranteed at least one unit per tick regardless of weight).
    pub weight: u32,
    /// Weighted share of the device's HBM capacity (must be nonzero):
    /// the buffer is sliced across tenants proportionally to their
    /// shares, the way [`TenantRegion::weight`] already splits tick
    /// budgets. Every lane is still floored at one full associativity
    /// set, so a small share bounds the slice, never zeroes it.
    pub hbm_share: u32,
}

impl TenantRegion {
    /// A region at `vpm_base` spanning `vpm_lines`, weight 1, HBM share 1.
    pub fn new(vpm_base: u64, vpm_lines: u64) -> Self {
        TenantRegion { vpm_base, vpm_lines, weight: 1, hbm_share: 1 }
    }

    /// Returns the region with a different scheduler weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Returns the region with a different HBM capacity share.
    pub fn with_hbm_share(mut self, share: u32) -> Self {
        self.hbm_share = share;
        self
    }

    /// First line past the extent.
    fn end(&self) -> u64 {
        self.vpm_base + self.vpm_lines
    }

    /// Whether `addr` falls inside the extent.
    pub fn contains(&self, addr: LineAddr) -> bool {
        addr.0 >= self.vpm_base && addr.0 < self.end()
    }
}

/// Splits `data_lines` of vPM into `n` contiguous equal extents (the
/// remainder goes to the last tenant), all at weight 1 — the layout
/// `PaxConfig::with_tenants` uses.
pub fn even_split(data_lines: u64, n: usize) -> Vec<TenantRegion> {
    let n = n.max(1) as u64;
    let per = data_lines / n;
    (0..n)
        .map(|t| {
            let base = t * per;
            let lines = if t == n - 1 { data_lines - base } else { per };
            TenantRegion::new(base, lines)
        })
        .collect()
}

/// The validated tenant layout of one device: disjoint regions in
/// declaration order (tenant `t` is `regions[t]`), with owner lookup.
#[derive(Debug, Clone)]
pub struct TenantMap {
    regions: Vec<TenantRegion>,
    /// `(vpm_base, tenant)` sorted by base, for binary-search lookup.
    by_base: Vec<(u64, TenantId)>,
    total_weight: u64,
}

impl TenantMap {
    /// Validates `regions` against a data region of `data_lines` lines.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::Config`] when there are no regions or more than
    /// [`MAX_TENANTS`], a region is zero-length, zero-weight, or out of
    /// bounds, or two regions overlap.
    pub fn new(regions: Vec<TenantRegion>, data_lines: u64) -> Result<Self> {
        if regions.is_empty() {
            return Err(PmError::Config("a device needs at least one tenant region".into()));
        }
        if regions.len() > MAX_TENANTS {
            return Err(PmError::Config(format!(
                "{} tenant regions exceed the pool header's {MAX_TENANTS} epoch slots",
                regions.len()
            )));
        }
        for (t, r) in regions.iter().enumerate() {
            if r.vpm_lines == 0 {
                return Err(PmError::Config(format!("tenant {t} region is zero-length")));
            }
            if r.weight == 0 {
                return Err(PmError::Config(format!("tenant {t} has zero scheduler weight")));
            }
            if r.hbm_share == 0 {
                return Err(PmError::Config(format!("tenant {t} has zero HBM share")));
            }
            if r.end() > data_lines {
                return Err(PmError::Config(format!(
                    "tenant {t} region [{}, {}) exceeds the {data_lines}-line data region",
                    r.vpm_base,
                    r.end()
                )));
            }
        }
        let mut by_base: Vec<(u64, TenantId)> =
            regions.iter().enumerate().map(|(t, r)| (r.vpm_base, t)).collect();
        by_base.sort_unstable();
        for w in by_base.windows(2) {
            let (a, b) = (w[0].1, w[1].1);
            if regions[a].end() > regions[b].vpm_base {
                return Err(PmError::Config(format!(
                    "tenant {a} region [{}, {}) overlaps tenant {b} region at line {}",
                    regions[a].vpm_base,
                    regions[a].end(),
                    regions[b].vpm_base
                )));
            }
        }
        let total_weight = regions.iter().map(|r| r.weight as u64).sum();
        Ok(TenantMap { regions, by_base, total_weight })
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the map is empty (never true for a validated map).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Tenant `t`'s region.
    pub fn region(&self, t: TenantId) -> TenantRegion {
        self.regions[t]
    }

    /// Tenant `t`'s scheduler weight.
    pub fn weight(&self, t: TenantId) -> u32 {
        self.regions[t].weight
    }

    /// Sum of all tenants' weights.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Tenant `t`'s HBM capacity share.
    pub fn hbm_share(&self, t: TenantId) -> u32 {
        self.regions[t].hbm_share
    }

    /// Sum of all tenants' HBM shares.
    pub fn total_hbm_shares(&self) -> u64 {
        self.regions.iter().map(|r| r.hbm_share as u64).sum()
    }

    /// The tenant owning vPM line `addr`, if any region contains it.
    pub fn tenant_of(&self, addr: LineAddr) -> Option<TenantId> {
        let i = self.by_base.partition_point(|&(base, _)| base <= addr.0);
        let (_, t) = *self.by_base.get(i.checked_sub(1)?)?;
        self.regions[t].contains(addr).then_some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_the_region_exactly() {
        let regions = even_split(100, 3);
        assert_eq!(regions.len(), 3);
        assert_eq!(regions[0], TenantRegion::new(0, 33));
        assert_eq!(regions[1], TenantRegion::new(33, 33));
        assert_eq!(regions[2], TenantRegion::new(66, 34), "remainder goes to the last tenant");
        let total: u64 = regions.iter().map(|r| r.vpm_lines).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn tenant_of_routes_by_region() {
        let map = TenantMap::new(even_split(100, 4), 100).unwrap();
        assert_eq!(map.tenant_of(LineAddr(0)), Some(0));
        assert_eq!(map.tenant_of(LineAddr(24)), Some(0));
        assert_eq!(map.tenant_of(LineAddr(25)), Some(1));
        assert_eq!(map.tenant_of(LineAddr(99)), Some(3));
        assert_eq!(map.tenant_of(LineAddr(100)), None);
    }

    #[test]
    fn tenant_of_handles_gaps_and_unsorted_declaration() {
        // Declaration order defines tenant IDs; lookup doesn't need the
        // regions sorted or contiguous.
        let regions = vec![TenantRegion::new(50, 10), TenantRegion::new(0, 10)];
        let map = TenantMap::new(regions, 100).unwrap();
        assert_eq!(map.tenant_of(LineAddr(55)), Some(0));
        assert_eq!(map.tenant_of(LineAddr(5)), Some(1));
        assert_eq!(map.tenant_of(LineAddr(20)), None, "line in the gap has no owner");
    }

    #[test]
    fn rejects_zero_length_region() {
        let err = TenantMap::new(vec![TenantRegion::new(0, 0)], 100).unwrap_err();
        assert!(matches!(err, PmError::Config(_)), "got {err}");
        assert!(err.to_string().contains("zero-length"));
    }

    #[test]
    fn rejects_overlapping_regions() {
        let regions = vec![TenantRegion::new(0, 60), TenantRegion::new(40, 40)];
        let err = TenantMap::new(regions, 100).unwrap_err();
        assert!(matches!(err, PmError::Config(_)), "got {err}");
        assert!(err.to_string().contains("overlaps"));
    }

    #[test]
    fn rejects_out_of_bounds_region() {
        let err = TenantMap::new(vec![TenantRegion::new(90, 20)], 100).unwrap_err();
        assert!(matches!(err, PmError::Config(_)), "got {err}");
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn rejects_empty_zero_weight_and_too_many() {
        assert!(matches!(TenantMap::new(vec![], 100), Err(PmError::Config(_))));
        let zero_w = vec![TenantRegion::new(0, 10).with_weight(0)];
        assert!(matches!(TenantMap::new(zero_w, 100), Err(PmError::Config(_))));
        let many = even_split(4096, MAX_TENANTS + 1);
        assert!(matches!(TenantMap::new(many, 4096), Err(PmError::Config(_))));
    }

    #[test]
    fn rejects_zero_hbm_share() {
        let zero_s = vec![TenantRegion::new(0, 10).with_hbm_share(0)];
        let err = TenantMap::new(zero_s, 100).unwrap_err();
        assert!(matches!(err, PmError::Config(_)), "got {err}");
        assert!(err.to_string().contains("HBM share"));
    }

    #[test]
    fn hbm_shares_accumulate_and_default_to_one() {
        let regions = vec![
            TenantRegion::new(0, 10).with_hbm_share(3),
            TenantRegion::new(10, 10), // default share 1
        ];
        let map = TenantMap::new(regions, 100).unwrap();
        assert_eq!(map.hbm_share(0), 3);
        assert_eq!(map.hbm_share(1), 1);
        assert_eq!(map.total_hbm_shares(), 4);
    }

    #[test]
    fn weights_accumulate() {
        let regions =
            vec![TenantRegion::new(0, 10).with_weight(3), TenantRegion::new(10, 10).with_weight(1)];
        let map = TenantMap::new(regions, 100).unwrap();
        assert_eq!(map.weight(0), 3);
        assert_eq!(map.total_weight(), 4);
    }
}
