//! Device event counters.
//!
//! Every quantitative claim in the paper's §5 reduces to counts of these
//! events multiplied by latency/bandwidth constants; the bench harness
//! reads them from [`PaxDevice::metrics`](crate::PaxDevice::metrics).

/// Cumulative counters for one [`PaxDevice`](crate::PaxDevice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceMetrics {
    /// `RdShared` requests received (host read misses).
    pub rd_shared: u64,
    /// `RdOwn` requests received (host store intents) — each is a
    /// potential undo-log append.
    pub rd_own: u64,
    /// Clean evictions received.
    pub clean_evicts: u64,
    /// Dirty evictions (host write backs) received.
    pub dirty_evicts: u64,
    /// Undo entries appended.
    pub undo_entries: u64,
    /// Dirty evictions that arrived for a line the device had not logged
    /// this epoch (protocol anomaly handled defensively).
    pub unlogged_dirty_evicts: u64,
    /// `SnpData` snoops sent to the host during `persist()`.
    pub snoops_sent: u64,
    /// Snoops that returned data from the host cache.
    pub snoop_data_returned: u64,
    /// Lines the device wrote back to PM.
    pub device_writebacks: u64,
    /// Times an HBM eviction had to stall for a synchronous log flush
    /// (the cost [`EvictionPolicy::PreferDurable`](crate::EvictionPolicy)
    /// minimises).
    pub forced_log_flushes: u64,
    /// Lines written back opportunistically before `persist()` (§3.3's
    /// proactive write back).
    pub background_writebacks: u64,
    /// `persist()` calls completed.
    pub persists: u64,
    /// Reads served from device HBM instead of PM.
    pub hbm_read_hits: u64,
    /// Reads that had to touch PM.
    pub pm_reads: u64,
}

impl DeviceMetrics {
    /// Total coherence messages the device has handled (its §5.1
    /// message-rate bottleneck input).
    pub fn total_messages(&self) -> u64 {
        self.rd_shared + self.rd_own + self.clean_evicts + self.dirty_evicts + self.snoops_sent
    }

    /// Bytes of undo-log traffic to PM (64-byte pre-image + 64-byte
    /// header per entry).
    pub fn log_bytes(&self) -> u64 {
        self.undo_entries * 2 * pax_pm::LINE_SIZE as u64
    }

    /// Bytes of data write back traffic to PM.
    pub fn writeback_bytes(&self) -> u64 {
        self.device_writebacks * pax_pm::LINE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose() {
        let m = DeviceMetrics {
            rd_shared: 1,
            rd_own: 2,
            clean_evicts: 3,
            dirty_evicts: 4,
            snoops_sent: 5,
            undo_entries: 2,
            device_writebacks: 3,
            ..DeviceMetrics::default()
        };
        assert_eq!(m.total_messages(), 15);
        assert_eq!(m.log_bytes(), 256);
        assert_eq!(m.writeback_bytes(), 192);
    }
}
