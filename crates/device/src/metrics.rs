//! Device event counters.
//!
//! Every quantitative claim in the paper's §5 reduces to counts of these
//! events multiplied by latency/bandwidth constants; the bench harness
//! reads them from [`PaxDevice::metrics`](crate::PaxDevice::metrics).
//!
//! The counters themselves live in the device's
//! [`MetricSet`] registry; [`DeviceMetrics`] is a point-in-time typed
//! view built by [`DeviceCounters::view`].

use pax_telemetry::{Counter, MetricSet};

/// Cumulative counters for one [`PaxDevice`](crate::PaxDevice).
///
/// A point-in-time view over the device's [`MetricSet`] registry, which
/// owns the counter state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceMetrics {
    /// `RdShared` requests received (host read misses).
    pub rd_shared: u64,
    /// `RdOwn` requests received (host store intents) — each is a
    /// potential undo-log append.
    pub rd_own: u64,
    /// Clean evictions received.
    pub clean_evicts: u64,
    /// Dirty evictions (host write backs) received.
    pub dirty_evicts: u64,
    /// Undo entries appended.
    pub undo_entries: u64,
    /// Dirty evictions that arrived for a line the device had not logged
    /// this epoch (protocol anomaly handled defensively).
    pub unlogged_dirty_evicts: u64,
    /// `SnpData` snoops sent to the host during `persist()`.
    pub snoops_sent: u64,
    /// Snoops that returned data from the host cache.
    pub snoop_data_returned: u64,
    /// Lines the device wrote back to PM.
    pub device_writebacks: u64,
    /// Times an HBM eviction had to stall for a synchronous log flush
    /// (the cost [`EvictionPolicy::PreferDurable`](crate::EvictionPolicy)
    /// minimises).
    pub forced_log_flushes: u64,
    /// Lines written back opportunistically before `persist()` (§3.3's
    /// proactive write back).
    pub background_writebacks: u64,
    /// `persist()` calls completed.
    pub persists: u64,
    /// Reads served from device HBM instead of PM.
    pub hbm_read_hits: u64,
    /// Reads that had to touch PM.
    pub pm_reads: u64,
    /// HBM set-index lookups that hit (the buffer's own atomic counter,
    /// synced into the registry at snapshot time; unlike `hbm_read_hits`
    /// this also counts resolve-path probes that found dirty lines).
    pub hbm_hits: u64,
    /// HBM set-index lookups that missed (atomic, synced at snapshot).
    pub hbm_misses: u64,
    /// Lines currently resident in the lane's HBM slice (an occupancy
    /// gauge like `dir_resident`, conserving across tenant×shard labels).
    pub hbm_resident: u64,
    /// Virtual ticks executed by the device scheduler
    /// ([`PaxDevice::tick`](crate::PaxDevice::tick)).
    pub sched_ticks: u64,
    /// Durable-write steps donated round-robin to shards with pending
    /// work but no traffic of their own (the pump-starvation fix).
    pub sched_idle_steps: u64,
    /// Persist-time directory lookups that confirmed the host still
    /// plausibly owns the line (snoop required).
    pub dir_hits: u64,
    /// Persist-time snoops skipped because the ownership directory knew
    /// the host no longer holds the line modified.
    pub dir_filtered_snoops: u64,
    /// Lines currently tracked as host-owned by the ownership directory
    /// (an occupancy gauge, not a monotone counter).
    pub dir_resident: u64,
    /// Coalesced write-back batches issued by the persist pipeline.
    pub wb_batches: u64,
    /// Failed reservation CAS attempts in the lock-free undo bank
    /// (contention on the packed tail word; zero under a single driver
    /// or the locked-log baseline).
    pub log_cas_retries: u64,
    /// Undo-bank slots currently reserved but not yet published (an
    /// occupancy gauge over the reserve→fill window, not a monotone
    /// counter; zero at every quiescent point).
    pub log_reserved: u64,
    /// Non-blocking persist polls skipped because a tenant's drain
    /// control lock was contended (see
    /// [`PaxDevice::persist_poll`](crate::PaxDevice::persist_poll)'s
    /// starvation fallback).
    pub persist_poll_skipped: u64,
}

impl DeviceMetrics {
    /// Total coherence messages the device has handled (its §5.1
    /// message-rate bottleneck input).
    pub fn total_messages(&self) -> u64 {
        self.rd_shared + self.rd_own + self.clean_evicts + self.dirty_evicts + self.snoops_sent
    }

    /// Bytes of undo-log traffic to PM (64-byte pre-image + 64-byte
    /// header per entry).
    pub fn log_bytes(&self) -> u64 {
        self.undo_entries * 2 * pax_pm::LINE_SIZE as u64
    }

    /// Bytes of data write back traffic to PM.
    pub fn writeback_bytes(&self) -> u64 {
        self.device_writebacks * pax_pm::LINE_SIZE as u64
    }
}

impl std::ops::Add for DeviceMetrics {
    type Output = DeviceMetrics;

    /// Field-wise sum — how a sharded device composes its per-shard views
    /// into one device-level [`DeviceMetrics`].
    fn add(self, rhs: DeviceMetrics) -> DeviceMetrics {
        DeviceMetrics {
            rd_shared: self.rd_shared + rhs.rd_shared,
            rd_own: self.rd_own + rhs.rd_own,
            clean_evicts: self.clean_evicts + rhs.clean_evicts,
            dirty_evicts: self.dirty_evicts + rhs.dirty_evicts,
            undo_entries: self.undo_entries + rhs.undo_entries,
            unlogged_dirty_evicts: self.unlogged_dirty_evicts + rhs.unlogged_dirty_evicts,
            snoops_sent: self.snoops_sent + rhs.snoops_sent,
            snoop_data_returned: self.snoop_data_returned + rhs.snoop_data_returned,
            device_writebacks: self.device_writebacks + rhs.device_writebacks,
            forced_log_flushes: self.forced_log_flushes + rhs.forced_log_flushes,
            background_writebacks: self.background_writebacks + rhs.background_writebacks,
            persists: self.persists + rhs.persists,
            hbm_read_hits: self.hbm_read_hits + rhs.hbm_read_hits,
            pm_reads: self.pm_reads + rhs.pm_reads,
            hbm_hits: self.hbm_hits + rhs.hbm_hits,
            hbm_misses: self.hbm_misses + rhs.hbm_misses,
            hbm_resident: self.hbm_resident + rhs.hbm_resident,
            sched_ticks: self.sched_ticks + rhs.sched_ticks,
            sched_idle_steps: self.sched_idle_steps + rhs.sched_idle_steps,
            dir_hits: self.dir_hits + rhs.dir_hits,
            dir_filtered_snoops: self.dir_filtered_snoops + rhs.dir_filtered_snoops,
            dir_resident: self.dir_resident + rhs.dir_resident,
            wb_batches: self.wb_batches + rhs.wb_batches,
            log_cas_retries: self.log_cas_retries + rhs.log_cas_retries,
            log_reserved: self.log_reserved + rhs.log_reserved,
            persist_poll_skipped: self.persist_poll_skipped + rhs.persist_poll_skipped,
        }
    }
}

/// Counter handles into the device's [`MetricSet`] registry — one per
/// [`DeviceMetrics`] field.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeviceCounters {
    pub(crate) rd_shared: Counter,
    pub(crate) rd_own: Counter,
    pub(crate) clean_evicts: Counter,
    pub(crate) dirty_evicts: Counter,
    pub(crate) undo_entries: Counter,
    pub(crate) unlogged_dirty_evicts: Counter,
    pub(crate) snoops_sent: Counter,
    pub(crate) snoop_data_returned: Counter,
    pub(crate) device_writebacks: Counter,
    pub(crate) forced_log_flushes: Counter,
    pub(crate) background_writebacks: Counter,
    pub(crate) persists: Counter,
    pub(crate) hbm_read_hits: Counter,
    pub(crate) pm_reads: Counter,
    pub(crate) hbm_hits: Counter,
    pub(crate) hbm_misses: Counter,
    pub(crate) hbm_resident: Counter,
    pub(crate) sched_ticks: Counter,
    pub(crate) sched_idle_steps: Counter,
    pub(crate) dir_hits: Counter,
    pub(crate) dir_filtered_snoops: Counter,
    pub(crate) dir_resident: Counter,
    pub(crate) wb_batches: Counter,
    pub(crate) log_cas_retries: Counter,
    pub(crate) log_reserved: Counter,
    pub(crate) persist_poll_skipped: Counter,
}

impl DeviceCounters {
    pub(crate) fn register(metrics: &mut MetricSet) -> Self {
        DeviceCounters {
            rd_shared: metrics.counter("rd_shared"),
            rd_own: metrics.counter("rd_own"),
            clean_evicts: metrics.counter("clean_evicts"),
            dirty_evicts: metrics.counter("dirty_evicts"),
            undo_entries: metrics.counter("undo_entries"),
            unlogged_dirty_evicts: metrics.counter("unlogged_dirty_evicts"),
            snoops_sent: metrics.counter("snoops_sent"),
            snoop_data_returned: metrics.counter("snoop_data_returned"),
            device_writebacks: metrics.counter("device_writebacks"),
            forced_log_flushes: metrics.counter("forced_log_flushes"),
            background_writebacks: metrics.counter("background_writebacks"),
            persists: metrics.counter("persists"),
            hbm_read_hits: metrics.counter("hbm_read_hits"),
            pm_reads: metrics.counter("pm_reads"),
            hbm_hits: metrics.counter("hbm_hits"),
            hbm_misses: metrics.counter("hbm_misses"),
            hbm_resident: metrics.counter("hbm_resident"),
            sched_ticks: metrics.counter("sched_ticks"),
            sched_idle_steps: metrics.counter("sched_idle_steps"),
            dir_hits: metrics.counter("dir_hits"),
            dir_filtered_snoops: metrics.counter("dir_filtered_snoops"),
            dir_resident: metrics.counter("dir_resident"),
            wb_batches: metrics.counter("wb_batches"),
            log_cas_retries: metrics.counter("log_cas_retries"),
            log_reserved: metrics.counter("log_reserved"),
            persist_poll_skipped: metrics.counter("persist_poll_skipped"),
        }
    }

    pub(crate) fn view(&self, metrics: &MetricSet) -> DeviceMetrics {
        DeviceMetrics {
            rd_shared: metrics.get(self.rd_shared),
            rd_own: metrics.get(self.rd_own),
            clean_evicts: metrics.get(self.clean_evicts),
            dirty_evicts: metrics.get(self.dirty_evicts),
            undo_entries: metrics.get(self.undo_entries),
            unlogged_dirty_evicts: metrics.get(self.unlogged_dirty_evicts),
            snoops_sent: metrics.get(self.snoops_sent),
            snoop_data_returned: metrics.get(self.snoop_data_returned),
            device_writebacks: metrics.get(self.device_writebacks),
            forced_log_flushes: metrics.get(self.forced_log_flushes),
            background_writebacks: metrics.get(self.background_writebacks),
            persists: metrics.get(self.persists),
            hbm_read_hits: metrics.get(self.hbm_read_hits),
            pm_reads: metrics.get(self.pm_reads),
            hbm_hits: metrics.get(self.hbm_hits),
            hbm_misses: metrics.get(self.hbm_misses),
            hbm_resident: metrics.get(self.hbm_resident),
            sched_ticks: metrics.get(self.sched_ticks),
            sched_idle_steps: metrics.get(self.sched_idle_steps),
            dir_hits: metrics.get(self.dir_hits),
            dir_filtered_snoops: metrics.get(self.dir_filtered_snoops),
            dir_resident: metrics.get(self.dir_resident),
            wb_batches: metrics.get(self.wb_batches),
            log_cas_retries: metrics.get(self.log_cas_retries),
            log_reserved: metrics.get(self.log_reserved),
            persist_poll_skipped: metrics.get(self.persist_poll_skipped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose() {
        let m = DeviceMetrics {
            rd_shared: 1,
            rd_own: 2,
            clean_evicts: 3,
            dirty_evicts: 4,
            snoops_sent: 5,
            undo_entries: 2,
            device_writebacks: 3,
            ..DeviceMetrics::default()
        };
        assert_eq!(m.total_messages(), 15);
        assert_eq!(m.log_bytes(), 256);
        assert_eq!(m.writeback_bytes(), 192);
    }
}
