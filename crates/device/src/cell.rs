//! Interior-mutability cells for the concurrent device.
//!
//! The refactor to a `Send + Sync` [`PaxDevice`](crate::PaxDevice) keeps
//! the PM media and the trace buffer global (the ISSUE's per-shard locks
//! cover the undo banks, HBM sets, and write-back queues — which live in
//! the per-lane [`DeviceShard`](crate::shard::DeviceShard) mutexes), but
//! both must now be reachable from `&self`. These cells wrap them:
//!
//! * [`PoolCell`] — the single media lock. Shard engines receive
//!   `&PoolCell` and lock it only around actual durable-write steps, so
//!   an HBM hit or an undo-bank append never touches the global lock.
//!   **Never call a `&PoolCell`-taking function while holding its
//!   guard** — the `Mutex` is not reentrant.
//! * [`TraceCell`] — the trace lock, with the enabled flag hoisted out:
//!   a device opened with `trace_capacity = 0` (every measured bench)
//!   records through an unsynchronized boolean check and never takes the
//!   lock at all.
//!
//! * [`WbGate`] — one per lane: serializes that lane's *write-back
//!   drains* (background steps, persist batches, forced drains) against
//!   each other now that the drains no longer all run under the lane's
//!   `Mutex<DeviceShard>`. Lock order: ctl → core → lane → wb-gate →
//!   HBM set → pool → trace (DESIGN.md §15).
//!
//! All recover from poisoning (a panicked thread must not wedge every
//! other thread's persist), matching the vendored `parking_lot` shim's
//! policy.

use std::sync::{Mutex, MutexGuard, TryLockError};

use pax_pm::PmPool;
use pax_telemetry::{TraceBuf, TraceEvent};

/// Locks a mutex, recovering the guard from a poisoned lock.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tries to lock a mutex without blocking, recovering from poison;
/// `None` only when the lock is held by another thread.
pub(crate) fn try_lock<T>(m: &Mutex<T>) -> Option<MutexGuard<'_, T>> {
    match m.try_lock() {
        Ok(g) => Some(g),
        Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
        Err(TryLockError::WouldBlock) => None,
    }
}

/// The device's PM media behind its single lock (see module docs).
#[derive(Debug)]
pub(crate) struct PoolCell(Mutex<PmPool>);

impl PoolCell {
    pub(crate) fn new(pool: PmPool) -> Self {
        PoolCell(Mutex::new(pool))
    }

    /// Locks the media. Hold the guard only across the durable-write
    /// steps that need it.
    pub(crate) fn lock(&self) -> MutexGuard<'_, PmPool> {
        lock(&self.0)
    }

    pub(crate) fn into_inner(self) -> PmPool {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A lane's write-back drain gate (see module docs). Consumers of the
/// lane's [`WbQueue`](crate::shard::WbQueue) must hold this for the
/// whole pop-check-write sequence so two drains never interleave their
/// queue pops with their PM writes.
#[derive(Debug, Default)]
pub(crate) struct WbGate(Mutex<()>);

impl WbGate {
    /// Locks the gate. Take the lane mutex (if taking it at all) first.
    pub(crate) fn lock(&self) -> MutexGuard<'_, ()> {
        lock(&self.0)
    }
}

/// The device's trace buffer behind a lock, skipped entirely when
/// tracing is disabled (see module docs).
#[derive(Debug)]
pub(crate) struct TraceCell {
    enabled: bool,
    inner: Mutex<TraceBuf>,
}

impl TraceCell {
    pub(crate) fn new(trace: TraceBuf) -> Self {
        TraceCell { enabled: trace.is_enabled(), inner: Mutex::new(trace) }
    }

    /// Appends a record; a no-op without the lock when tracing is off.
    pub(crate) fn record(&self, component: &'static str, event: TraceEvent) {
        if self.enabled {
            lock(&self.inner).record(component, event);
        }
    }

    /// Direct access for dump/forensics paths.
    pub(crate) fn lock(&self) -> MutexGuard<'_, TraceBuf> {
        lock(&self.inner)
    }

    pub(crate) fn into_inner(self) -> TraceBuf {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}
