//! The PAX device proper (§3).
//!
//! [`PaxDevice`] is the home agent for a pool's vPM range. It receives the
//! host's coherence requests (it implements
//! [`HomeAgent`], the synchronous rendition of the
//! CXL.cache H2D channel), performs asynchronous undo logging on ownership
//! requests, buffers and writes back modified lines, and implements the
//! `persist()` epoch protocol and post-crash recovery.
//!
//! All addresses at this interface are **vPM line offsets** (0-based within
//! the pool's data region); the device translates them to pool-absolute
//! lines internally — mirroring how a real PAX owns the physical range it
//! exposes.

use std::collections::{HashMap, VecDeque};

use pax_cache::{HomeAgent, HostSnoop};
use pax_pm::{CacheLine, CrashClock, CrashOutcome, LineAddr, PmError, PmPool, Result};
use pax_telemetry::{MetricSet, MetricSnapshot, TraceBuf, TraceEvent};

use crate::hbm::{HbmCache, HbmConfig, HbmLine};
use crate::metrics::{DeviceCounters, DeviceMetrics};
use crate::recovery::{recover_traced, RecoveryReport};
use crate::undo_log::{UndoEntry, UndoLog};

/// Component name stamped on the device's metrics and trace records.
const COMPONENT: &str = "device";

/// Tuning knobs for a [`PaxDevice`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// HBM buffer geometry and eviction policy.
    pub hbm: HbmConfig,
    /// Undo-log entries drained per pump — the background rate of the
    /// device's asynchronous logging engine.
    pub log_pump_batch: usize,
    /// Pump once every this many host requests (1 = every request).
    /// Larger intervals model a logging engine that lags bursts, which is
    /// when the HBM eviction policy starts to matter (§3.3).
    pub log_pump_interval: usize,
    /// Dirty-durable lines written back per host request (§3.3's
    /// proactive write back); 0 disables background write back.
    pub writeback_batch: usize,
    /// Whether `RdShared` responses are cached in HBM.
    pub cache_clean_reads: bool,
    /// Most recent trace events retained by the device's [`TraceBuf`]
    /// (0 disables tracing entirely).
    pub trace_capacity: usize,
}

impl DeviceConfig {
    /// Returns the config with a different HBM configuration.
    pub fn with_hbm(mut self, hbm: HbmConfig) -> Self {
        self.hbm = hbm;
        self
    }

    /// Returns the config with a different log pump batch.
    pub fn with_log_pump_batch(mut self, n: usize) -> Self {
        self.log_pump_batch = n;
        self
    }

    /// Returns the config with a different log pump interval.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_log_pump_interval(mut self, n: usize) -> Self {
        assert!(n > 0, "pump interval must be at least 1");
        self.log_pump_interval = n;
        self
    }

    /// Returns the config with a different background write-back batch.
    pub fn with_writeback_batch(mut self, n: usize) -> Self {
        self.writeback_batch = n;
        self
    }

    /// Returns the config with a different trace-buffer capacity
    /// (0 disables tracing).
    pub fn with_trace_capacity(mut self, n: usize) -> Self {
        self.trace_capacity = n;
        self
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            hbm: HbmConfig::default_config(),
            log_pump_batch: 2,
            log_pump_interval: 1,
            writeback_batch: 1,
            cache_clean_reads: true,
            trace_capacity: 1024,
        }
    }
}

/// In-flight state of a non-blocking persist (§6 "make persist() fully
/// non-blocking, so that epochs overlap").
#[derive(Debug)]
struct DrainState {
    /// The epoch being made durable.
    epoch: u64,
    /// Lines still to be written to PM, in log-offset order.
    queue: VecDeque<LineAddr>,
    /// The epoch-final value of each queued line. Also consulted by
    /// `resolve`, because these values are newer than PM until written.
    values: HashMap<LineAddr, CacheLine>,
    /// Log offset (exclusive) that must be durable before writes proceed.
    flush_to: u64,
    /// Lines logged in the draining epoch (for the commit trace event).
    entries: u64,
}

/// The PAX persistence accelerator (see module docs).
#[derive(Debug)]
pub struct PaxDevice {
    pool: PmPool,
    log: UndoLog,
    hbm: HbmCache,
    clock: CrashClock,
    config: DeviceConfig,
    /// The epoch currently being built (= committed epoch + 1).
    current_epoch: u64,
    /// vPM lines undo-logged this epoch → their log entry offset.
    epoch_log: HashMap<LineAddr, u64>,
    /// Dirty lines awaiting opportunistic write back, oldest first.
    writeback_queue: VecDeque<LineAddr>,
    /// A previous epoch still being made durable (non-blocking persist).
    draining: Option<DrainState>,
    /// Host requests seen since the last background pump.
    requests_since_pump: usize,
    /// The counter registry; [`DeviceMetrics`] is a view over it.
    metrics: MetricSet,
    /// Counter handles into `metrics`.
    ctr: DeviceCounters,
    /// Bounded structured event trace (crash forensics, replay tests).
    trace: TraceBuf,
    /// Recovery performed when the device was opened.
    recovery: RecoveryReport,
}

impl PaxDevice {
    /// Opens a device over `pool`, running §3.4 recovery first: any undo
    /// entries newer than the pool's committed epoch are rolled back, so
    /// the application always observes the last persisted snapshot.
    ///
    /// # Errors
    ///
    /// Surfaces media errors from the recovery scan/rollback.
    pub fn open(mut pool: PmPool, config: DeviceConfig) -> Result<Self> {
        let mut trace = TraceBuf::new(config.trace_capacity);
        let recovery = recover_traced(&mut pool, &mut trace)?;
        let current_epoch = recovery.committed_epoch + 1;
        let log = UndoLog::new(&pool);
        let mut metrics = MetricSet::new(COMPONENT);
        let ctr = DeviceCounters::register(&mut metrics);
        Ok(PaxDevice {
            hbm: HbmCache::new(config.hbm),
            log,
            pool,
            clock: CrashClock::new(),
            config,
            current_epoch,
            epoch_log: HashMap::new(),
            writeback_queue: VecDeque::new(),
            draining: None,
            requests_since_pump: 0,
            metrics,
            ctr,
            trace,
            recovery,
        })
    }

    /// The recovery report from when this device was opened.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery
    }

    /// The epoch currently being built.
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch
    }

    /// The committed (recovery-point) epoch.
    pub fn committed_epoch(&mut self) -> Result<u64> {
        self.pool.committed_epoch()
    }

    /// Cumulative event counters (a typed view over the registry).
    pub fn metrics(&self) -> DeviceMetrics {
        self.ctr.view(&self.metrics)
    }

    /// Snapshot of the device's metric registry.
    pub fn metric_snapshot(&self) -> MetricSnapshot {
        self.metrics.snapshot()
    }

    /// The device's structured event trace.
    pub fn trace(&self) -> &TraceBuf {
        &self.trace
    }

    /// The trace serialized as JSON lines (oldest first).
    pub fn trace_dump(&self) -> String {
        self.trace.dump_json_lines()
    }

    /// Undo-log entries appended in the current epoch.
    pub fn epoch_log_len(&self) -> usize {
        self.epoch_log.len()
    }

    /// The undo log's durable watermark (entries).
    pub fn log_durable_offset(&self) -> u64 {
        self.log.durable_offset()
    }

    /// A handle to the crash clock shared with this device; arm it to cut
    /// power at an exact durable-write step.
    pub fn crash_clock(&self) -> CrashClock {
        self.clock.clone()
    }

    /// HBM read hit rate so far.
    pub fn hbm_hit_rate(&self) -> f64 {
        self.hbm.hit_rate()
    }

    /// Read-only view of the pool (tests assert on durable state).
    pub fn pool(&self) -> &PmPool {
        &self.pool
    }

    /// Simulates device power loss and returns the pool in its
    /// post-crash durable state, consuming the device. Volatile device
    /// state (HBM, pending log appends, epoch tracking) is lost.
    pub fn crash_into_pool(self) -> PmPool {
        self.crash_into_parts().0
    }

    /// Like [`PaxDevice::crash_into_pool`], but also hands back the
    /// trace (with the injected [`TraceEvent::Crash`] appended) and the
    /// final metric snapshot — forensic state a real crash would leave in
    /// the debugger, which the pool layer stashes for post-mortems.
    pub fn crash_into_parts(mut self) -> (PmPool, TraceBuf, MetricSnapshot) {
        self.trace.record(COMPONENT, TraceEvent::Crash { epoch: self.current_epoch });
        self.hbm.crash();
        self.log.crash();
        self.draining = None;
        self.epoch_log.clear();
        self.pool.crash();
        let snapshot = self.metrics.snapshot();
        (self.pool, self.trace, snapshot)
    }

    /// Saves the pool's durable state to `path` (see
    /// [`PmPool::save`]); non-durable writes are excluded, so the file
    /// models what a reboot would find.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn save(&mut self, path: impl AsRef<std::path::Path>) -> Result<()> {
        self.pool.save(path)
    }

    /// Gracefully detaches, returning the pool *without* simulating a
    /// crash (durable state only; equivalent to crash for PAX since
    /// consistency never depends on a clean shutdown).
    pub fn into_pool(self) -> PmPool {
        self.pool
    }

    fn vpm_to_pool(&self, vpm: LineAddr) -> Result<LineAddr> {
        self.pool.layout().vpm_to_pool(vpm.0)
    }

    /// The device's view of the current contents of `vpm` line: HBM first,
    /// then PM.
    fn resolve(&mut self, addr: LineAddr) -> Result<CacheLine> {
        if let Some(l) = self.hbm.lookup(addr) {
            self.metrics.inc(self.ctr.hbm_read_hits);
            return Ok(l.data.clone());
        }
        // A draining epoch's final values are newer than PM until their
        // write back lands.
        if let Some(ds) = &self.draining {
            if let Some(data) = ds.values.get(&addr) {
                return Ok(data.clone());
            }
        }
        let abs = self.vpm_to_pool(addr)?;
        self.metrics.inc(self.ctr.pm_reads);
        let data = self.pool.read_line(abs)?;
        if self.config.cache_clean_reads {
            let victim = self.hbm.insert(
                addr,
                HbmLine { data: data.clone(), dirty: false, log_offset: None },
                self.log.durable_offset(),
            );
            if let Some((vaddr, vline)) = victim {
                self.dispose_victim(vaddr, vline)?;
            }
        }
        Ok(data)
    }

    /// Writes an HBM eviction victim back to PM if dirty, stalling for a
    /// log flush when its undo entry is not yet durable.
    fn dispose_victim(&mut self, addr: LineAddr, line: HbmLine) -> Result<()> {
        if !line.dirty {
            return Ok(());
        }
        if let Some(offset) = line.log_offset {
            if offset >= self.log.durable_offset() {
                // §3.3: the victim's pre-image must be durable before the
                // new value may reach PM. This is the stall PreferDurable
                // eviction avoids.
                self.metrics.inc(self.ctr.forced_log_flushes);
                while self.log.durable_offset() <= offset {
                    self.log.pump(&mut self.pool, &self.clock, 1)?;
                }
            }
        }
        let abs = self.vpm_to_pool(addr)?;
        self.tick()?;
        self.pool.write_line(abs, line.data)?;
        self.metrics.inc(self.ctr.device_writebacks);
        self.trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
        Ok(())
    }

    fn tick(&mut self) -> Result<()> {
        if self.clock.tick() == CrashOutcome::Crashed {
            self.pool.crash();
            return Err(PmError::Crashed);
        }
        Ok(())
    }

    /// One background step: drain some log entries and opportunistically
    /// write back dirty lines whose entries are durable. Runs on every
    /// host request, modelling the device's free-running engines.
    fn background(&mut self) -> Result<()> {
        self.requests_since_pump += 1;
        if self.requests_since_pump < self.config.log_pump_interval {
            return Ok(());
        }
        self.requests_since_pump = 0;
        self.persist_poll()?;
        self.log.pump(&mut self.pool, &self.clock, self.config.log_pump_batch)?;
        let mut budget = self.config.writeback_batch;
        while budget > 0 {
            let Some(&addr) = self.writeback_queue.front() else { break };
            let durable = self.log.durable_offset();
            let ready = match self.hbm.peek(addr) {
                Some(l) if l.dirty => l.log_offset.is_none_or(|o| o < durable),
                // Cleaned or evicted through another path; just drop it.
                _ => {
                    self.writeback_queue.pop_front();
                    continue;
                }
            };
            if !ready {
                break; // queue is in log order; later entries aren't durable either
            }
            self.writeback_queue.pop_front();
            if let Some(mut line) = self.hbm.remove(addr) {
                let data = line.data.clone();
                line.dirty = false;
                line.log_offset = None;
                self.hbm.insert(addr, line, durable);
                let abs = self.vpm_to_pool(addr)?;
                self.tick()?;
                self.pool.write_line(abs, data)?;
                self.metrics.inc(self.ctr.device_writebacks);
                self.metrics.inc(self.ctr.background_writebacks);
                self.trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
            }
            budget -= 1;
        }
        Ok(())
    }

    /// Undo-logs `addr` if this is its first modification of the epoch,
    /// returning the covering log offset.
    fn log_if_first(&mut self, addr: LineAddr, old: &CacheLine) -> Result<u64> {
        if let Some(&off) = self.epoch_log.get(&addr) {
            return Ok(off);
        }
        let offset = self.log.append(UndoEntry {
            epoch: self.current_epoch,
            vpm_line: addr,
            old: old.clone(),
        })?;
        self.epoch_log.insert(addr, offset);
        self.metrics.inc(self.ctr.undo_entries);
        self.trace
            .record(COMPONENT, TraceEvent::LogAppend { epoch: self.current_epoch, line: addr.0 });
        Ok(offset)
    }

    /// Ends the current epoch: makes a crash-consistent snapshot durable
    /// and returns the committed epoch number (§3.3).
    ///
    /// Steps, in order: (1) drain the undo log; (2) for every line logged
    /// this epoch, send a `SnpData` snoop to the host cache, which
    /// downgrades the line and forwards its current value; (3) write every
    /// modified line back to PM; (4) drain PM; (5) atomically commit the
    /// epoch number in the pool header.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] when the crash clock fires mid-epoch
    /// — recovery will roll the epoch back — and media errors.
    pub fn persist(&mut self, cache: &mut impl HostSnoop) -> Result<u64> {
        // (0) A non-blocking persist may still be draining; epochs commit
        // in order.
        self.persist_wait()?;
        // (1) All pre-images durable before any further write back.
        self.log.flush(&mut self.pool, &self.clock)?;

        // (2)+(3) Iterate logged lines in log order (§3.3 "iterating
        // through each undo log entry as it persists").
        let mut logged: Vec<(u64, LineAddr)> =
            self.epoch_log.iter().map(|(a, o)| (*o, *a)).collect();
        logged.sort_unstable();
        for (_offset, addr) in logged {
            self.metrics.inc(self.ctr.snoops_sent);
            self.trace
                .record(COMPONENT, TraceEvent::Coherence { op: "snp_data".into(), line: addr.0 });
            let host_data = cache.snoop_shared(addr);
            let data = match host_data {
                Some(d) => {
                    self.metrics.inc(self.ctr.snoop_data_returned);
                    // Refresh the HBM copy so post-persist reads hit.
                    let durable = self.log.durable_offset();
                    let victim = self.hbm.insert(
                        addr,
                        HbmLine { data: d.clone(), dirty: false, log_offset: None },
                        durable,
                    );
                    if let Some((vaddr, vline)) = victim {
                        self.dispose_victim(vaddr, vline)?;
                    }
                    Some(d)
                }
                None => self.hbm.peek(addr).filter(|l| l.dirty).map(|l| l.data.clone()),
            };
            if let Some(d) = data {
                let abs = self.vpm_to_pool(addr)?;
                self.tick()?;
                self.pool.write_line(abs, d)?;
                self.metrics.inc(self.ctr.device_writebacks);
                self.trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
                if let Some(mut line) = self.hbm.remove(addr) {
                    line.dirty = false;
                    line.log_offset = None;
                    let durable = self.log.durable_offset();
                    self.hbm.insert(addr, line, durable);
                }
            }
            // Lines with no host data and no dirty HBM copy were already
            // written back by the eviction/background paths.
        }

        // (4) Everything reaches media before the commit record.
        self.pool.drain();

        // (5) The atomic epoch commit.
        self.tick()?;
        let committed = self.current_epoch;
        self.pool.commit_epoch(committed)?;

        let entries = self.epoch_log.len() as u64;
        self.epoch_log.clear();
        self.writeback_queue.clear();
        self.log.reset_after_commit();
        self.current_epoch = committed + 1;
        self.metrics.inc(self.ctr.persists);
        self.trace.record(COMPONENT, TraceEvent::EpochCommit { epoch: committed, entries });
        Ok(committed)
    }

    /// Ends the epoch using **CLWB-style forced flushes** instead of
    /// device snoops — the alternative §4 argues against: "this is more
    /// efficient than forcing CPUs to issue CLWBs which are serialized,
    /// consume cycles, and cause complete evictions of cache lines and
    /// future cache misses".
    ///
    /// For every logged line the host cache is made to *invalidate and
    /// write back* its copy (the classic CLWB-without-downgrade
    /// behaviour), so post-persist accesses miss — the `ablation_clwb`
    /// bench quantifies the cache-warmth difference against the
    /// snoop-based [`PaxDevice::persist`].
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] and media errors.
    pub fn persist_clwb(&mut self, cache: &mut impl HostSnoop) -> Result<u64> {
        self.persist_wait()?;
        self.log.flush(&mut self.pool, &self.clock)?;

        let mut logged: Vec<(u64, LineAddr)> =
            self.epoch_log.iter().map(|(a, o)| (*o, *a)).collect();
        logged.sort_unstable();
        for (_offset, addr) in logged {
            // CLWB semantics: full eviction from host caches; dirty data
            // comes back to the device, the line does NOT stay cached.
            self.trace
                .record(COMPONENT, TraceEvent::Coherence { op: "snp_inv".into(), line: addr.0 });
            let host_data = cache.snoop_invalidate(addr);
            let data = match host_data {
                Some(d) => Some(d),
                None => self.hbm.peek(addr).filter(|l| l.dirty).map(|l| l.data.clone()),
            };
            if let Some(d) = data {
                let abs = self.vpm_to_pool(addr)?;
                self.tick()?;
                self.pool.write_line(abs, d.clone())?;
                self.metrics.inc(self.ctr.device_writebacks);
                self.trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
            }
            if let Some(mut line) = self.hbm.remove(addr) {
                line.dirty = false;
                line.log_offset = None;
                let durable = self.log.durable_offset();
                self.hbm.insert(addr, line, durable);
            }
        }

        self.pool.drain();
        self.tick()?;
        let committed = self.current_epoch;
        self.pool.commit_epoch(committed)?;
        let entries = self.epoch_log.len() as u64;
        self.epoch_log.clear();
        self.writeback_queue.clear();
        self.log.reset_after_commit();
        self.current_epoch = committed + 1;
        self.metrics.inc(self.ctr.persists);
        self.trace.record(COMPONENT, TraceEvent::EpochCommit { epoch: committed, entries });
        Ok(committed)
    }

    /// Begins a **non-blocking** persist (§6): captures the current
    /// epoch's modified lines (snooping the host cache once, as the
    /// synchronous protocol does) and returns immediately with the epoch
    /// number now draining. The application continues in the next epoch
    /// while the device flushes the log, writes lines back, and commits in
    /// the background ([`PaxDevice::persist_poll`] advances it; ordinary
    /// host requests advance it too).
    ///
    /// Durability is only guaranteed once the epoch *commits* —
    /// [`PaxDevice::persist_poll`] returns it, or
    /// [`PaxDevice::persist_wait`] blocks for it. A crash before commit
    /// recovers to the previous epoch.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] and media errors. If an earlier
    /// non-blocking persist is still draining it is completed first
    /// (epochs commit in order).
    pub fn persist_async(&mut self, cache: &mut impl HostSnoop) -> Result<u64> {
        self.persist_wait()?;

        let mut logged: Vec<(u64, LineAddr)> =
            self.epoch_log.iter().map(|(a, o)| (*o, *a)).collect();
        logged.sort_unstable();
        let flush_to = logged.last().map_or(0, |(o, _)| o + 1);

        let entries = logged.len() as u64;
        let mut queue = VecDeque::with_capacity(logged.len());
        let mut values = HashMap::with_capacity(logged.len());
        for (_offset, addr) in logged {
            self.metrics.inc(self.ctr.snoops_sent);
            self.trace
                .record(COMPONENT, TraceEvent::Coherence { op: "snp_data".into(), line: addr.0 });
            let data = match cache.snoop_shared(addr) {
                Some(d) => {
                    self.metrics.inc(self.ctr.snoop_data_returned);
                    let durable = self.log.durable_offset();
                    let victim = self.hbm.insert(
                        addr,
                        HbmLine { data: d.clone(), dirty: false, log_offset: None },
                        durable,
                    );
                    if let Some((vaddr, vline)) = victim {
                        self.dispose_victim(vaddr, vline)?;
                    }
                    Some(d)
                }
                None => match self.hbm.peek(addr) {
                    Some(l) if l.dirty => {
                        let d = l.data.clone();
                        if let Some(mut line) = self.hbm.remove(addr) {
                            line.dirty = false;
                            line.log_offset = None;
                            let durable = self.log.durable_offset();
                            self.hbm.insert(addr, line, durable);
                        }
                        Some(d)
                    }
                    // Already written back during the epoch; PM is current.
                    _ => None,
                },
            };
            if let Some(d) = data {
                queue.push_back(addr);
                values.insert(addr, d);
            }
        }

        let epoch = self.current_epoch;
        self.draining = Some(DrainState { epoch, queue, values, flush_to, entries });
        self.epoch_log.clear();
        self.writeback_queue.clear();
        self.current_epoch = epoch + 1;
        Ok(epoch)
    }

    /// Advances an in-flight non-blocking persist by a bounded amount.
    /// Returns `Some(epoch)` the moment that epoch durably commits,
    /// `None` while still draining or when nothing is draining.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] and media errors.
    pub fn persist_poll(&mut self) -> Result<Option<u64>> {
        let Some(flush_to) = self.draining.as_ref().map(|d| d.flush_to) else {
            return Ok(None);
        };
        // Phase 1: the epoch's undo entries must be durable first.
        if self.log.durable_offset() < flush_to {
            self.log.pump(&mut self.pool, &self.clock, self.config.log_pump_batch.max(1))?;
            if self.log.durable_offset() < flush_to {
                return Ok(None);
            }
        }
        // Phase 2: write back a few lines per poll.
        for _ in 0..4 {
            let Some(ds) = self.draining.as_mut() else { break };
            let Some(addr) = ds.queue.pop_front() else { break };
            // Lines resolved early (dirty_evict ordering) have no value.
            let Some(data) = ds.values.remove(&addr) else { continue };
            if self.clock.tick() == CrashOutcome::Crashed {
                self.pool.crash();
                return Err(PmError::Crashed);
            }
            let abs = self.pool.layout().vpm_to_pool(addr.0)?;
            self.pool.write_line(abs, data)?;
            self.metrics.inc(self.ctr.device_writebacks);
            self.trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
        }
        // Phase 3: commit once everything landed.
        let done = self.draining.as_ref().is_some_and(|d| d.queue.is_empty());
        if done {
            let ds = self.draining.as_ref().expect("checked");
            let (epoch, entries) = (ds.epoch, ds.entries);
            self.pool.drain();
            if self.clock.tick() == CrashOutcome::Crashed {
                self.pool.crash();
                return Err(PmError::Crashed);
            }
            self.pool.commit_epoch(epoch)?;
            self.draining = None;
            self.metrics.inc(self.ctr.persists);
            self.trace.record(COMPONENT, TraceEvent::EpochCommit { epoch, entries });
            // The log region can only be recycled when it holds nothing
            // from the (already running) next epoch.
            if self.epoch_log.is_empty() && self.log.pending_len() == 0 {
                self.log.reset_after_commit();
            }
            return Ok(Some(epoch));
        }
        Ok(None)
    }

    /// Completes any in-flight non-blocking persist.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] and media errors.
    pub fn persist_wait(&mut self) -> Result<()> {
        while self.draining.is_some() {
            self.persist_poll()?;
        }
        Ok(())
    }

    /// The epoch currently draining from a non-blocking persist, if any.
    pub fn persist_pending(&self) -> Option<u64> {
        self.draining.as_ref().map(|d| d.epoch)
    }

    /// Writes the draining epoch's value for `addr` to PM immediately, if
    /// one is pending — called before a newer value for the same line can
    /// be buffered, preserving write-back order across epochs.
    fn drain_one_line_now(&mut self, addr: LineAddr) -> Result<()> {
        let Some(ds) = self.draining.as_mut() else {
            return Ok(());
        };
        let Some(data) = ds.values.remove(&addr) else {
            return Ok(());
        };
        let flush_to = ds.flush_to;
        while self.log.durable_offset() < flush_to {
            self.metrics.inc(self.ctr.forced_log_flushes);
            self.log.pump(&mut self.pool, &self.clock, usize::MAX)?;
        }
        if self.clock.tick() == CrashOutcome::Crashed {
            self.pool.crash();
            return Err(PmError::Crashed);
        }
        let abs = self.pool.layout().vpm_to_pool(addr.0)?;
        self.pool.write_line(abs, data)?;
        self.metrics.inc(self.ctr.device_writebacks);
        self.trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
        Ok(())
    }
}

impl HomeAgent for PaxDevice {
    fn read_shared(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.metrics.inc(self.ctr.rd_shared);
        self.trace
            .record(COMPONENT, TraceEvent::Coherence { op: "rd_shared".into(), line: addr.0 });
        self.background()?;
        self.resolve(addr)
    }

    fn read_own(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.metrics.inc(self.ctr.rd_own);
        self.trace.record(COMPONENT, TraceEvent::Coherence { op: "rd_own".into(), line: addr.0 });
        self.background()?;
        let old = self.resolve(addr)?;
        // The paper's key move: log asynchronously and acknowledge the
        // host immediately — no stall for durability here.
        self.log_if_first(addr, &old)?;
        Ok(old)
    }

    fn clean_evict(&mut self, addr: LineAddr) {
        self.metrics.inc(self.ctr.clean_evicts);
        self.trace
            .record(COMPONENT, TraceEvent::Coherence { op: "clean_evict".into(), line: addr.0 });
    }

    fn dirty_evict(&mut self, addr: LineAddr, data: CacheLine) -> Result<()> {
        self.metrics.inc(self.ctr.dirty_evicts);
        self.trace
            .record(COMPONENT, TraceEvent::Coherence { op: "dirty_evict".into(), line: addr.0 });
        self.background()?;
        // Ordering with a draining epoch: the previous epoch's value for
        // this line must reach PM before any newer value can (otherwise a
        // stale drain write could land on top of this epoch's write back).
        self.drain_one_line_now(addr)?;
        let offset = match self.epoch_log.get(&addr) {
            Some(&o) => o,
            None => {
                // Protocol anomaly: an eviction for a line we never saw an
                // ownership request for this epoch. The PM copy is still
                // the epoch-start value (write back is log-gated), so log
                // it now.
                self.metrics.inc(self.ctr.unlogged_dirty_evicts);
                let abs = self.vpm_to_pool(addr)?;
                let old = self.pool.read_line(abs)?;
                self.log_if_first(addr, &old)?
            }
        };
        let durable = self.log.durable_offset();
        let victim =
            self.hbm.insert(addr, HbmLine { data, dirty: true, log_offset: Some(offset) }, durable);
        self.writeback_queue.push_back(addr);
        if let Some((vaddr, vline)) = victim {
            self.dispose_victim(vaddr, vline)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbm::EvictionPolicy;
    use pax_cache::{CacheConfig, CoherentCache};
    use pax_pm::PoolConfig;

    fn setup() -> (PaxDevice, CoherentCache) {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
        let cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        (device, cache)
    }

    #[test]
    fn open_fresh_pool_starts_epoch_one() {
        let (mut device, _) = setup();
        assert_eq!(device.current_epoch(), 1);
        assert_eq!(device.committed_epoch().unwrap(), 0);
        assert_eq!(device.recovery_report().rolled_back, 0);
    }

    #[test]
    fn store_triggers_exactly_one_undo_entry_per_epoch() {
        let (mut device, mut cache) = setup();
        let a = LineAddr(3);
        cache.write(a, CacheLine::filled(1), &mut device).unwrap();
        cache.write(a, CacheLine::filled(2), &mut device).unwrap(); // silent (M)
        assert_eq!(device.metrics().rd_own, 1);
        assert_eq!(device.metrics().undo_entries, 1);

        device.persist(&mut cache).unwrap();
        // Snoop downgraded the line; the next store re-announces.
        cache.write(a, CacheLine::filled(3), &mut device).unwrap();
        assert_eq!(device.metrics().rd_own, 2);
        assert_eq!(device.metrics().undo_entries, 2);
    }

    #[test]
    fn persist_commits_host_cached_values() {
        let (mut device, mut cache) = setup();
        let a = LineAddr(0);
        cache.write(a, CacheLine::filled(0x77), &mut device).unwrap();
        // Value only lives in the host cache; PM is still zero.
        let epoch = device.persist(&mut cache).unwrap();
        assert_eq!(epoch, 1);
        let mut pool = device.crash_into_pool();
        let abs = pool.layout().vpm_to_pool(0).unwrap();
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(0x77));
        assert_eq!(pool.committed_epoch().unwrap(), 1);
    }

    #[test]
    fn crash_before_persist_rolls_back_to_prior_epoch() {
        let (mut device, mut cache) = setup();
        let a = LineAddr(5);
        cache.write(a, CacheLine::filled(1), &mut device).unwrap();
        device.persist(&mut cache).unwrap(); // epoch 1: value 1

        cache.write(a, CacheLine::filled(2), &mut device).unwrap();
        // Force the new value to PM without persisting: evict the dirty
        // host line, then drain background write back.
        let evicted = cache.snoop_invalidate(a).unwrap();
        device.dirty_evict(a, evicted).unwrap();
        for _ in 0..64 {
            device.read_shared(LineAddr(40)).unwrap(); // pump background
        }
        // Crash. Recovery must restore value 1 (the epoch-1 snapshot).
        let pool = device.crash_into_pool();
        let mut device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
        assert!(device.recovery_report().rolled_back >= 1);
        let mut cache2 = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        assert_eq!(cache2.read(a, &mut device).unwrap(), CacheLine::filled(1));
    }

    #[test]
    fn reads_hit_hbm_after_first_touch() {
        let (mut device, mut cache) = setup();
        cache.read(LineAddr(9), &mut device).unwrap();
        cache.snoop_invalidate(LineAddr(9)); // force the host copy out
        cache.read(LineAddr(9), &mut device).unwrap();
        assert_eq!(device.metrics().rd_shared, 2);
        assert!(device.metrics().hbm_read_hits >= 1);
    }

    #[test]
    fn multiple_epochs_round_trip() {
        let (mut device, mut cache) = setup();
        for epoch in 1..=5u64 {
            cache.write(LineAddr(epoch), CacheLine::filled(epoch as u8), &mut device).unwrap();
            assert_eq!(device.persist(&mut cache).unwrap(), epoch);
        }
        assert_eq!(device.committed_epoch().unwrap(), 5);
        for epoch in 1..=5u64 {
            assert_eq!(
                cache.read(LineAddr(epoch), &mut device).unwrap(),
                CacheLine::filled(epoch as u8)
            );
        }
    }

    #[test]
    fn working_set_larger_than_hbm_still_persists() {
        // §3.3 "No Working Set Size Limits": HBM of 8 lines, epoch touches
        // 64 lines. Evictions must proactively write back without
        // breaking the snapshot.
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let config = DeviceConfig::default().with_hbm(HbmConfig {
            capacity_bytes: 8 * 64,
            ways: 2,
            policy: EvictionPolicy::PreferDurable,
        });
        let mut device = PaxDevice::open(pool, config).unwrap();
        let mut cache = CoherentCache::new(CacheConfig::tiny(4 * 64, 2)); // tiny host cache too
        for i in 0..64u64 {
            cache.write(LineAddr(i), CacheLine::filled(i as u8), &mut device).unwrap();
        }
        device.persist(&mut cache).unwrap();
        let mut pool = device.crash_into_pool();
        for i in 0..64u64 {
            let abs = pool.layout().vpm_to_pool(i).unwrap();
            assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(i as u8), "line {i}");
        }
    }

    #[test]
    fn unpersisted_epoch_is_invisible_after_crash() {
        let (mut device, mut cache) = setup();
        cache.write(LineAddr(1), CacheLine::filled(9), &mut device).unwrap();
        // No persist: crash loses the host-cached value AND any partial
        // device state; recovery sees epoch 0 (empty pool).
        let pool = device.crash_into_pool();
        let mut device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
        let mut cache2 = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        assert_eq!(cache2.read(LineAddr(1), &mut device).unwrap(), CacheLine::zeroed());
    }

    #[test]
    fn crash_clock_mid_persist_keeps_old_snapshot() {
        let (mut device, mut cache) = setup();
        cache.write(LineAddr(2), CacheLine::filled(1), &mut device).unwrap();
        device.persist(&mut cache).unwrap(); // epoch 1

        for i in 0..8u64 {
            cache.write(LineAddr(i), CacheLine::filled(0xEE), &mut device).unwrap();
        }
        // Arm the clock so persist crashes partway through write back.
        device.crash_clock().arm(device.crash_clock().steps_taken() + 4);
        let err = device.persist(&mut cache).unwrap_err();
        assert!(matches!(err, PmError::Crashed));

        let pool = device.crash_into_pool();
        let mut device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
        assert_eq!(device.committed_epoch().unwrap(), 1);
        let mut cache2 = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        // Epoch-1 state: line 2 == 1, everything else zero.
        assert_eq!(cache2.read(LineAddr(2), &mut device).unwrap(), CacheLine::filled(1));
        for i in [0u64, 1, 3, 4, 5, 6, 7] {
            assert_eq!(
                cache2.read(LineAddr(i), &mut device).unwrap(),
                CacheLine::zeroed(),
                "line {i}"
            );
        }
    }

    #[test]
    fn persist_clwb_is_crash_consistent_but_cold() {
        let (mut device, mut cache) = setup();
        for i in 0..8u64 {
            cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
        }
        let epoch = device.persist_clwb(&mut cache).unwrap();
        assert_eq!(epoch, 1);
        // CLWB evicted the working set from the host cache.
        for i in 0..8u64 {
            assert_eq!(cache.state_of(LineAddr(i)), None, "line {i} must be evicted");
        }
        // Durability matches the snoop-based protocol exactly.
        let mut pool = device.crash_into_pool();
        assert_eq!(pool.committed_epoch().unwrap(), 1);
        for i in 0..8u64 {
            let abs = pool.layout().vpm_to_pool(i).unwrap();
            assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(1));
        }
    }

    #[test]
    fn rdown_never_stalls_for_log_durability() {
        let (mut device, mut cache) = setup();
        // With pumping disabled, stores must still complete immediately.
        device.config.log_pump_batch = 0;
        device.config.writeback_batch = 0;
        for i in 0..16u64 {
            cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
        }
        assert_eq!(device.metrics().undo_entries, 16);
        assert_eq!(device.log_durable_offset(), 0, "nothing drained, yet no store stalled");
    }
}
