//! The PAX device proper (§3).
//!
//! [`PaxDevice`] is the home agent for a pool's vPM range. It receives the
//! host's coherence requests (it implements
//! [`HomeAgent`], the synchronous rendition of the
//! CXL.cache H2D channel), performs asynchronous undo logging on ownership
//! requests, buffers and writes back modified lines, and implements the
//! `persist()` epoch protocol and post-crash recovery.
//!
//! All addresses at this interface are **vPM line offsets** (0-based within
//! the pool's data region); the device translates them to pool-absolute
//! lines internally — mirroring how a real PAX owns the physical range it
//! exposes.
//!
//! Internally the per-line state lives in **lanes**: the cross product of
//! `T` tenant pool contexts ([`TenantMap`]) and `S` address-interleaved
//! shards, tenant `t`'s line `addr` landing in lane `t*S + addr % S`. Each
//! lane owns its slice of the HBM buffer, its bank of the undo-log region,
//! its write-back queue, and its own metric registry. Requests route to
//! exactly one lane with no cross-lane coupling, and the epoch is **per
//! tenant** — tenant `t`'s `persist()` is a barrier across `t`'s own `S`
//! lanes only, ending in an atomic commit of `t`'s header epoch slot. One
//! tenant persisting or hammering its log never flushes, stalls, or
//! commits another tenant's in-flight epoch; what tenants share is
//! capacity (HBM, log region) and time (per-shard tick budgets divided by
//! scheduler weight). A single-tenant device (`T = 1`, the [`PaxDevice::open`]
//! default) degenerates to the classic sharded device exactly.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use pax_cache::{HomeAgent, HostSnoop, ShardedHome};
use pax_pm::{CacheLine, CrashClock, LineAddr, PersistencyModel, PmError, PmPool, Result};
use pax_telemetry::{MetricSet, MetricSnapshot, TraceBuf, TraceEvent};

use crate::cell::{lock, try_lock, PoolCell, TraceCell};
use crate::directory::{coalesce_runs, DirectoryConfig};
use crate::hbm::{HbmConfig, HbmLine};
use crate::metrics::{DeviceCounters, DeviceMetrics};
use crate::recovery::{recover_traced, RecoveryReport};
use crate::sched::{persist_drain_budget, weighted_budget, DeviceScheduler, SchedConfig};
use crate::shard::{split_log_region, tick, DeviceShard, LaneHandles};
use crate::tenant::{TenantId, TenantMap, TenantRegion};
use crate::undo_log::{AtomicBank, LogWatermark};

/// Component name stamped on the device's metrics and trace records.
const COMPONENT: &str = "device";

/// Tuning knobs for a [`PaxDevice`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// HBM buffer geometry and eviction policy (split evenly across
    /// lanes).
    pub hbm: HbmConfig,
    /// Undo-log entries drained per pump — the background rate of each
    /// lane's asynchronous logging engine.
    pub log_pump_batch: usize,
    /// Pump once every this many host requests (1 = every request).
    /// Larger intervals model a logging engine that lags bursts, which is
    /// when the HBM eviction policy starts to matter (§3.3).
    pub log_pump_interval: usize,
    /// Dirty-durable lines written back per host request (§3.3's
    /// proactive write back); 0 disables background write back.
    pub writeback_batch: usize,
    /// Whether `RdShared` responses are cached in HBM.
    pub cache_clean_reads: bool,
    /// Most recent trace events retained by the device's [`TraceBuf`]
    /// (0 disables tracing entirely).
    pub trace_capacity: usize,
    /// Address-interleaved shards each tenant's per-line state is split
    /// into. 1 = the unsharded device.
    pub shards: usize,
    /// Per-tick engine budgets of the virtual-time scheduler
    /// ([`PaxDevice::tick`]); the persist-drain budget also paces
    /// [`PaxDevice::persist_poll`].
    pub sched: SchedConfig,
    /// Whether persist-time snoops are filtered through the per-lane
    /// ownership directory ([`crate::OwnershipDirectory`]). Enabled by
    /// default; [`DirectoryConfig::disabled`] restores always-snoop for
    /// ablation.
    pub directory: DirectoryConfig,
    /// Maximum lines per coalesced persist write-back batch: persist
    /// write-backs contiguous in lane-local address space share one
    /// durable-write step, up to this many. 1 = the unbatched pipeline.
    pub persist_wb_batch: usize,
    /// When true, each lane's undo bank uses the original mutex-guarded
    /// append engine instead of the lock-free CAS bank — the
    /// differential baseline for `tests/lockfree_log.rs`. Defaults to
    /// the `locked-log` cargo feature (off ⇒ CAS), so CI can run the
    /// whole suite under either engine.
    pub locked_log: bool,
    /// When true, every hot-path protocol section re-acquires the lane's
    /// `Mutex<DeviceShard>` — the pre-lock-free-HBM engine, kept as the
    /// CI-differential baseline for `tests/hbm_lockfree.rs`. When false
    /// (the default), stores, evictions, and the persist sweep go through
    /// the lane's shared handles (concurrent HBM set index, striped
    /// epoch-log map, striped directory, atomic counters) and the hit
    /// path takes no lane mutex at all. Defaults to the `locked-hbm`
    /// cargo feature (off ⇒ lock-free), so CI can run the whole suite
    /// under either engine.
    pub locked_hbm: bool,
    /// Consecutive skipped non-blocking polls of one tenant's drain
    /// after which [`PaxDevice::background`]'s poll falls back to a
    /// patient (bounded-spin) acquisition of the ctl lock, so a
    /// store-heavy thread mix cannot starve an async persist
    /// indefinitely.
    pub poll_skip_limit: u64,
    /// The ordering/durability contract the device enforces
    /// ([`PersistencyModel`]): strict (every store its own durable
    /// epoch), epoch (the synchronous-barrier default), or
    /// buffered-epoch (up to K closed epochs drain asynchronously,
    /// retired in order).
    pub persistency: PersistencyModel,
}

impl DeviceConfig {
    /// Returns the config with a different HBM configuration.
    pub fn with_hbm(mut self, hbm: HbmConfig) -> Self {
        self.hbm = hbm;
        self
    }

    /// Returns the config with a different log pump batch.
    pub fn with_log_pump_batch(mut self, n: usize) -> Self {
        self.log_pump_batch = n;
        self
    }

    /// Returns the config with a different log pump interval. A zero
    /// interval is rejected by [`DeviceConfig::validate`] when the device
    /// opens.
    pub fn with_log_pump_interval(mut self, n: usize) -> Self {
        self.log_pump_interval = n;
        self
    }

    /// Returns the config with a different background write-back batch.
    pub fn with_writeback_batch(mut self, n: usize) -> Self {
        self.writeback_batch = n;
        self
    }

    /// Returns the config with a different trace-buffer capacity
    /// (0 disables tracing).
    pub fn with_trace_capacity(mut self, n: usize) -> Self {
        self.trace_capacity = n;
        self
    }

    /// Returns the config with a different shard count. A zero count is
    /// rejected by [`DeviceConfig::validate`] when the device opens.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Returns the config with different scheduler tick budgets.
    pub fn with_sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Returns the config with a different snoop-filter mode.
    pub fn with_directory(mut self, directory: DirectoryConfig) -> Self {
        self.directory = directory;
        self
    }

    /// Returns the config with a different persist write-back batch cap.
    /// A zero cap is rejected by [`DeviceConfig::validate`] when the
    /// device opens.
    pub fn with_persist_wb_batch(mut self, n: usize) -> Self {
        self.persist_wb_batch = n;
        self
    }

    /// Returns the config with the original mutex-guarded undo-bank
    /// append engine (the lock-free CAS bank's differential baseline).
    pub fn with_locked_log(mut self) -> Self {
        self.locked_log = true;
        self
    }

    /// Returns the config with the lock-free CAS undo-bank engine,
    /// overriding the `locked-log` cargo feature's default.
    pub fn with_cas_log(mut self) -> Self {
        self.locked_log = false;
        self
    }

    /// Returns the config with the mutex-guarded lane engine (the
    /// lock-free HBM set index's differential baseline): every hot-path
    /// protocol section runs under the lane's `Mutex<DeviceShard>`.
    pub fn with_locked_hbm(mut self) -> Self {
        self.locked_hbm = true;
        self
    }

    /// Returns the config with the lock-free concurrent HBM engine,
    /// overriding the `locked-hbm` cargo feature's default.
    pub fn with_lockfree_hbm(mut self) -> Self {
        self.locked_hbm = false;
        self
    }

    /// Returns the config with a different poll-starvation threshold. A
    /// zero limit is rejected by [`DeviceConfig::validate`].
    pub fn with_poll_skip_limit(mut self, n: u64) -> Self {
        self.poll_skip_limit = n;
        self
    }

    /// Returns the config with a different persistency model. An invalid
    /// model (buffered depth 0) is rejected by
    /// [`DeviceConfig::validate`] when the device opens.
    pub fn with_persistency(mut self, model: PersistencyModel) -> Self {
        self.persistency = model;
        self
    }

    /// Checks the config against a device hosting one pool context per
    /// entry of `regions`. Run by [`PaxDevice::open_multi`] before any
    /// state is built, so a bad geometry is a typed error, not a panic
    /// deep in construction.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::Config`] when the shard count, pump interval,
    /// or persist write-back batch is zero, a tenant's HBM share is zero,
    /// the persistency model is invalid (buffered depth 0), or the HBM
    /// cannot give each of the `shards × tenants` lanes at least one full
    /// associativity set.
    pub fn validate(&self, regions: &[TenantRegion]) -> Result<()> {
        if self.shards == 0 {
            return Err(PmError::Config("shard count must be at least 1".into()));
        }
        if self.log_pump_interval == 0 {
            return Err(PmError::Config("log pump interval must be at least 1".into()));
        }
        if self.persist_wb_batch == 0 {
            return Err(PmError::Config("persist write-back batch must be at least 1".into()));
        }
        if self.poll_skip_limit == 0 {
            return Err(PmError::Config("poll skip limit must be at least 1".into()));
        }
        self.persistency.validate().map_err(PmError::Config)?;
        for (t, r) in regions.iter().enumerate() {
            if r.hbm_share == 0 {
                return Err(PmError::Config(format!("tenant {t} has zero HBM share")));
            }
        }
        let lanes = self.shards * regions.len().max(1);
        let set_bytes = self.hbm.ways * pax_pm::LINE_SIZE;
        if set_bytes == 0 || self.hbm.capacity_bytes / lanes < set_bytes {
            return Err(PmError::Config(format!(
                "HBM capacity of {} B cannot give each of {lanes} lanes \
                 (shards x tenants) one {}-way set",
                self.hbm.capacity_bytes, self.hbm.ways
            )));
        }
        Ok(())
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            hbm: HbmConfig::default_config(),
            log_pump_batch: 2,
            log_pump_interval: 1,
            writeback_batch: 1,
            cache_clean_reads: true,
            trace_capacity: 1024,
            shards: 1,
            sched: SchedConfig::default(),
            directory: DirectoryConfig::enabled(),
            persist_wb_batch: 8,
            locked_log: cfg!(feature = "locked-log"),
            locked_hbm: cfg!(feature = "locked-hbm"),
            poll_skip_limit: 64,
            persistency: PersistencyModel::Epoch,
        }
    }
}

/// Which persist flavour a [`PaxDevice::sweep_lane`] gather serves. The
/// three flavours share the whole log-order iteration and differ only in
/// snoop opcode and HBM housekeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepMode {
    /// `SnpData` downgrade; the caller writes gathered lines back
    /// immediately (synchronous barrier).
    Snoop,
    /// `SnpInv` full eviction — the §4 CLWB ablation baseline.
    Clwb,
    /// `SnpData` downgrade capturing values for a deferred drain
    /// (non-blocking / buffered-epoch close): dirty HBM copies are
    /// marked clean at capture time, because their write back happens
    /// later from the drain queue.
    Capture,
}

/// In-flight state of one tenant's non-blocking persist (§6 "make
/// persist() fully non-blocking, so that epochs overlap").
#[derive(Debug)]
struct DrainState {
    /// The epoch being made durable.
    epoch: u64,
    /// Lines still to be written to PM, in (lane, log-offset) order.
    queue: VecDeque<LineAddr>,
    /// The epoch-final value of each queued line. Also consulted by
    /// `resolve`, because these values are newer than PM until written.
    values: HashMap<LineAddr, CacheLine>,
    /// Per-lane log offset (exclusive) over the tenant's `S` lanes in
    /// phase order that must be durable before writes proceed — the
    /// epoch's slots, which commit frees.
    flush_to: Vec<u64>,
    /// Lines logged in the draining epoch (for the commit trace event).
    entries: u64,
}

/// The PAX persistence accelerator (see module docs).
///
/// # Concurrency
///
/// Every public method takes `&self`: the device is `Send + Sync`, and N
/// OS threads may issue stores concurrently (one tenant/core per thread;
/// see DESIGN.md §11). The lock order is
/// **ctl (`draining[t]`) → host core → lane (`shards[l]`) → wb-gate →
/// HBM set / directory stripe / epoch-log stripe → pool → trace**
/// (DESIGN.md §15). Persist paths hold their tenant's ctl lock for their
/// whole duration; hot paths only ever `try_lock` it (a contended ctl
/// implies a concurrent persist, and non-blocking [`DrainState`]s exist
/// only in single-driver mode, so skipping is correct there — the
/// bounded-spin starvation fallback in `poll_one_tenant` likewise never
/// blocks on ctl, because `SharedComplex::write` reaches this code while
/// holding a host core lock and a hard `lock()` would invert ctl →
/// core). Hot paths never hold a lane lock across a call that acquires
/// another lane or a host core. Epoch counters and the per-lane durable
/// log watermarks are atomics, read lock-free.
///
/// **The lane mutex is off the store hot path** (PR 10): each lane's
/// hot state — the concurrent HBM set index, the striped epoch-log map,
/// the write-back queue, the striped ownership directory, and the atomic
/// counter registry — is reachable through shared [`LaneHandles`] held
/// alongside (not inside) the `Mutex<DeviceShard>`, so `RdShared` /
/// `RdOwn` / eviction service and the persist sweep on the *same lane*
/// proceed with no lane-mutex acquisition at all. The mutex survives for
/// the locked-mode undo log (`&mut UndoLog`), commit-time epoch reset,
/// and recovery/snapshot sync; write-back *drains* serialize on the
/// per-lane [`WbGate`](crate::cell::WbGate) instead (lane — when held at
/// all — orders before wb-gate). [`DeviceConfig::with_locked_hbm`]
/// restores the mutex-guarded engine as the CI-differential baseline,
/// and `lane_lock_acquisitions` counts every acquisition so tests can
/// assert the zero-lock hit path.
///
/// Under the default CAS undo bank ([`crate::AtomicBank`]) the log hot
/// paths sit *outside* this hierarchy entirely: append reserves a slot
/// with a CAS on the bank's packed tail word (no lock at all), and the
/// pump/flush media handoff takes **pool only**, never the lane lock.
/// Only [`DeviceConfig::with_locked_log`] routes both back under the lane
/// mutex (which is why `locked_log` implies the locked-lane engine).
/// Epoch commit — which takes ctl, flushes every lane of the tenant, and
/// writes the header slot — is the only cross-shard rendezvous.
#[derive(Debug)]
pub struct PaxDevice {
    /// The PM media behind its single global lock; engines lock it only
    /// around actual durable-write steps (HBM hits and undo-bank appends
    /// never touch it).
    pool: PoolCell,
    clock: CrashClock,
    config: DeviceConfig,
    /// The validated tenant layout; [`PaxDevice::open`] installs a single
    /// tenant spanning the whole data region.
    tenants: TenantMap,
    /// Physical interleave `S`: tenant `t`'s line `addr` lives in lane
    /// `t*S + addr % S`.
    stride: usize,
    /// The per-line state, one lane mutex per [`DeviceShard`] (`T*S`
    /// total, tenant-major). Since PR 10 the mutex guards only the
    /// locked-mode undo log and commit/recovery-time state sync; hot
    /// paths go through `lanes` instead.
    shards: Vec<Mutex<DeviceShard>>,
    /// Shared hot-path handles, one clone per lane (index-aligned with
    /// `shards`): the concurrent HBM index, epoch-log map, write-back
    /// queue, directory, counters, wb-gate, watermark, and CAS bank.
    /// Everything a store or persist sweep touches without the lane
    /// mutex.
    lanes: Vec<LaneHandles>,
    /// Whether hot-path protocol sections must take the lane mutex:
    /// [`DeviceConfig::locked_hbm`] (the differential baseline), or
    /// [`DeviceConfig::locked_log`] (whose append/pump need
    /// `&mut UndoLog` from the guard).
    hot_locked: bool,
    /// Cumulative lane-mutex acquisitions, all paths. The lock-free
    /// engine's tentpole invariant — a warm same-lane store storm takes
    /// zero — is asserted through this counter.
    lane_lock_acquisitions: AtomicU64,
    /// Per tenant: depth of its non-blocking drain queue, mirrored out
    /// of `draining` so hot paths can skip the ctl `try_lock` entirely
    /// in the common nothing-draining case. Updated under ctl.
    drain_depth: Vec<AtomicUsize>,
    /// Per-lane durable watermarks, shared with each lane's
    /// [`crate::UndoLog`]: drain polling checks durability without taking
    /// any lane lock.
    watermarks: Vec<Arc<LogWatermark>>,
    /// Per-lane handles to the lock-free CAS undo banks (`None` for every
    /// lane under [`DeviceConfig::with_locked_log`]). Pump and flush paths
    /// use these to drain the log holding only the pool lock, never the
    /// lane lock.
    log_banks: Vec<Option<Arc<AtomicBank>>>,
    /// Per tenant: the epoch currently being built (= that tenant's
    /// committed epoch + 1). Written only under that tenant's ctl lock;
    /// hot paths read it lock-free.
    epochs: Vec<AtomicU64>,
    /// Per tenant: the persist control (ctl) lock, guarding the queue of
    /// epochs still being made durable (non-blocking and buffered-epoch
    /// persists), oldest first — retirement is strictly in order. Depth
    /// is bounded by [`PersistencyModel::max_open_epochs`] (1 under
    /// strict/epoch, K under buffered-epoch). Top of the lock order.
    draining: Vec<Mutex<VecDeque<DrainState>>>,
    /// Per tenant: consecutive `persist_poll_try` passes that found the
    /// ctl lock contended and skipped the tenant. At
    /// [`DeviceConfig::poll_skip_limit`] the poll escalates to a bounded
    /// spin (see `poll_one_tenant`) so an async drain cannot be starved by
    /// hot-path ctl traffic. Relaxed ordering: a pure heuristic counter,
    /// it guards no data.
    poll_skips: Vec<AtomicU64>,
    /// Virtual-time run-queue state: per-lane pump credits and adaptive
    /// boosts, the round-robin idle-service cursor, and the tick counter.
    sched: DeviceScheduler,
    /// Device-level counter registry: scheduler events that belong to no
    /// single lane. Lane registries merge into it in every snapshot.
    metrics: MetricSet,
    /// Counter handles into `metrics`.
    ctr: DeviceCounters,
    /// Bounded structured event trace (crash forensics, replay tests).
    trace: TraceCell,
    /// Recovery performed when the device was opened.
    recovery: RecoveryReport,
}

impl PaxDevice {
    /// Opens a single-tenant device over `pool`, running §3.4 recovery
    /// first: any undo entries newer than the pool's committed epoch are
    /// rolled back, so the application always observes the last persisted
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Config`] from [`DeviceConfig::validate`] and
    /// media errors from the recovery scan/rollback.
    pub fn open(pool: PmPool, config: DeviceConfig) -> Result<Self> {
        let data_lines = pool.layout().data_lines;
        Self::open_multi(pool, config, vec![TenantRegion::new(0, data_lines)])
    }

    /// Opens a device exposing one pool context per entry of `regions`:
    /// tenant `t` owns `regions[t]`'s vPM extent, epoch counter, header
    /// epoch slot, and recovery state. Recovery runs first and rolls each
    /// tenant back against its *own* committed epoch, even though all
    /// tenants' undo entries interleave in the shared log region.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Config`] for an invalid device geometry or
    /// tenant layout (overlapping, zero-length, or out-of-bounds regions),
    /// and media errors from recovery.
    pub fn open_multi(
        mut pool: PmPool,
        config: DeviceConfig,
        regions: Vec<TenantRegion>,
    ) -> Result<Self> {
        config.validate(&regions)?;
        let tenants = TenantMap::new(regions, pool.layout().data_lines)?;
        let t = tenants.len();
        let mut trace = TraceBuf::new(config.trace_capacity);
        let recovery = recover_traced(&mut pool, &mut trace)?;
        let epochs =
            (0..t).map(|i| Ok(pool.committed_epoch_for(i)? + 1)).collect::<Result<Vec<u64>>>()?;
        let banks = split_log_region(&pool, config.shards * t);
        if !banks.len().is_multiple_of(t) {
            return Err(PmError::Config(format!(
                "log region holds only {} banks, not divisible across {t} tenants",
                banks.len()
            )));
        }
        let stride = banks.len() / t;
        let lanes = banks.len();
        // Slice the HBM across tenants by share (then evenly across each
        // tenant's shards); each lane is still floored at one full set
        // inside `DeviceShard::new`, so small shares bound, never zero.
        let total_shares = tenants.total_hbm_shares().max(1);
        let shards: Vec<DeviceShard> = banks
            .iter()
            .enumerate()
            .map(|(i, &(base, cap))| {
                let tenant = i / stride;
                let share = tenants.hbm_share(tenant) as u64;
                let slice = (config.hbm.capacity_bytes as u64 * share
                    / total_shares
                    / stride as u64) as usize;
                DeviceShard::new(
                    i,
                    tenant,
                    stride,
                    config.hbm.with_capacity_bytes(slice),
                    base,
                    cap,
                    config.locked_log,
                )
            })
            .collect();
        let mut metrics = MetricSet::new(COMPONENT);
        let ctr = DeviceCounters::register(&mut metrics);
        // The shard and tenant counts are telemetry dimensions: reports
        // can tell a partitioned device's numbers apart without
        // out-of-band context.
        let shards_gauge = metrics.counter("shards");
        metrics.add(shards_gauge, stride as u64);
        let tenants_gauge = metrics.counter("tenants");
        metrics.add(tenants_gauge, t as u64);
        // So are the tick budgets: a trace full of `tick` events is only
        // replayable knowing how much work each tick was allowed.
        for (name, value) in [
            ("sched_log_budget", config.sched.log_drain_per_tick),
            ("sched_writeback_budget", config.sched.writeback_per_tick),
            ("sched_persist_budget", config.sched.persist_drain_per_tick),
        ] {
            let gauge = metrics.counter(name);
            metrics.add(gauge, value as u64);
        }
        // So is the persistency model: a report's persist counts mean
        // different things under different ordering contracts.
        for (name, value) in [
            ("persistency_model", config.persistency.code()),
            ("persistency_depth", config.persistency.max_open_epochs() as u64),
        ] {
            let gauge = metrics.counter(name);
            metrics.add(gauge, value);
        }
        let watermarks = shards.iter().map(|s| s.log.watermark()).collect();
        let log_banks = shards.iter().map(|s| s.log.bank()).collect();
        let lane_handles = shards.iter().map(|s| s.handles()).collect();
        Ok(PaxDevice {
            pool: PoolCell::new(pool),
            clock: CrashClock::new(),
            config,
            tenants,
            stride,
            shards: shards.into_iter().map(Mutex::new).collect(),
            lanes: lane_handles,
            hot_locked: config.locked_hbm || config.locked_log,
            lane_lock_acquisitions: AtomicU64::new(0),
            drain_depth: (0..t).map(|_| AtomicUsize::new(0)).collect(),
            watermarks,
            log_banks,
            epochs: epochs.into_iter().map(AtomicU64::new).collect(),
            draining: (0..t).map(|_| Mutex::new(VecDeque::new())).collect(),
            poll_skips: (0..t).map(|_| AtomicU64::new(0)).collect(),
            sched: DeviceScheduler::new(lanes),
            metrics,
            ctr,
            trace: TraceCell::new(trace),
            recovery,
        })
    }

    /// The recovery report from when this device was opened.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery
    }

    /// The epoch currently being built (tenant 0's on a multi-tenant
    /// device; see [`PaxDevice::current_epoch_for`]).
    pub fn current_epoch(&self) -> u64 {
        self.epochs[0].load(Ordering::Acquire)
    }

    /// The epoch tenant `t` is currently building.
    pub fn current_epoch_for(&self, t: TenantId) -> u64 {
        self.epochs[t].load(Ordering::Acquire)
    }

    /// The committed (recovery-point) epoch (tenant 0's).
    pub fn committed_epoch(&self) -> Result<u64> {
        self.pool.lock().committed_epoch()
    }

    /// Tenant `t`'s committed (recovery-point) epoch.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Config`] for an out-of-range tenant and media
    /// errors.
    pub fn committed_epoch_for(&self, t: TenantId) -> Result<u64> {
        self.pool.lock().committed_epoch_for(t)
    }

    /// Physical shards each tenant's per-line state is interleaved
    /// across.
    pub fn shard_count(&self) -> usize {
        self.stride
    }

    /// Pool contexts this device hosts.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The validated tenant layout.
    pub fn tenants(&self) -> &TenantMap {
        &self.tenants
    }

    /// The tenant owning vPM line `addr`, if any region contains it.
    pub fn tenant_of(&self, addr: LineAddr) -> Option<TenantId> {
        self.tenants.tenant_of(addr)
    }

    /// The ordering/durability contract the device was opened with.
    pub fn persistency(&self) -> PersistencyModel {
        self.config.persistency
    }

    /// Cumulative event counters: the field-wise sum of every lane's
    /// typed view plus the device-level (scheduler) counters.
    pub fn metrics(&self) -> DeviceMetrics {
        self.shards
            .iter()
            .map(|s| lock(s).view_metrics())
            .fold(self.ctr.view(&self.metrics), |acc, m| acc + m)
    }

    /// Snapshot of the device's metric registry, with every lane's
    /// registry merged in (counter-wise sums under one `device`
    /// component). A sharded device additionally rolls each physical
    /// shard up under a `shard{s}/` label, and a multi-tenant device each
    /// tenant under `tenant{t}/` — both rollups conserve: the labeled
    /// counters sum to the plain totals.
    pub fn metric_snapshot(&self) -> MetricSnapshot {
        let lanes: Vec<MetricSnapshot> = self.shards.iter().map(|s| lock(s).snapshot()).collect();
        let mut snap = lanes.iter().fold(self.metrics.snapshot(), |acc, s| acc.merge(s));
        if self.stride > 1 {
            for (i, lane) in lanes.iter().enumerate() {
                snap = snap.merge_labeled(&format!("shard{}", i % self.stride), lane);
            }
        }
        if self.tenants.len() > 1 {
            for (i, lane) in lanes.iter().enumerate() {
                snap = snap.merge_labeled(&format!("tenant{}", i / self.stride), lane);
            }
        }
        snap
    }

    /// The trace serialized as JSON lines (oldest first).
    pub fn trace_dump(&self) -> String {
        self.trace.lock().dump_json_lines()
    }

    /// Undo-log entries appended in the current epoch (all lanes) — read
    /// through the shared handles, no lane lock taken.
    pub fn epoch_log_len(&self) -> usize {
        self.lanes.iter().map(|h| h.epoch_log.len()).sum()
    }

    /// Undo-log entries tenant `t` appended in its current epoch.
    pub fn epoch_log_len_for(&self, t: TenantId) -> usize {
        self.tenant_lanes(t).map(|l| self.lanes[l].epoch_log.len()).sum()
    }

    /// Total entries drained durably across all lane log banks — read
    /// from the shared atomic watermarks, no lane lock taken.
    pub fn log_durable_offset(&self) -> u64 {
        self.watermarks.iter().map(|w| w.durable()).sum()
    }

    /// Undo-log entries tenant `t` has appended but not yet drained
    /// durably — the backlog the scheduler's weighted budgets work off.
    /// Lock-free under the CAS banks; the locked-log baseline reads
    /// through the lane guard.
    pub fn log_pending_for(&self, t: TenantId) -> usize {
        self.tenant_lanes(t)
            .map(|l| match &self.log_banks[l] {
                Some(bank) => bank.pending_len(),
                None => self.lock_lane(l).log.pending_len(),
            })
            .sum()
    }

    /// A handle to the crash clock shared with this device; arm it to cut
    /// power at an exact durable-write step.
    pub fn crash_clock(&self) -> CrashClock {
        self.clock.clone()
    }

    /// Cumulative `Mutex<DeviceShard>` (lane-mutex) acquisitions, all
    /// paths. With the default lock-free HBM engine a warm same-lane
    /// store path must not move this counter at all — asserted by
    /// `store_hit_path_takes_no_lane_lock` and `tests/hbm_lockfree.rs`.
    pub fn lane_lock_acquisitions(&self) -> u64 {
        self.lane_lock_acquisitions.load(Ordering::Relaxed)
    }

    /// Locks lane `l`'s mutex, counting the acquisition.
    fn lock_lane(&self, l: usize) -> MutexGuard<'_, DeviceShard> {
        self.lane_lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        lock(&self.shards[l])
    }

    /// Non-blocking [`PaxDevice::lock_lane`]; only successful
    /// acquisitions count.
    fn try_lock_lane(&self, l: usize) -> Option<MutexGuard<'_, DeviceShard>> {
        let g = try_lock(&self.shards[l]);
        if g.is_some() {
            self.lane_lock_acquisitions.fetch_add(1, Ordering::Relaxed);
        }
        g
    }

    /// The hot-path lane guard: `Some` exactly when the device runs a
    /// locked baseline engine (`locked_hbm`, or `locked_log`, whose
    /// append/pump need `&mut UndoLog`). Hot paths hold it per protocol
    /// section and never across [`PaxDevice::background`] or another
    /// lane.
    fn hot_guard(&self, l: usize) -> Option<MutexGuard<'_, DeviceShard>> {
        self.hot_locked.then(|| self.lock_lane(l))
    }

    /// HBM read hit rate so far (aggregated over lanes) — pure atomic
    /// reads through the shared handles, no lock taken.
    pub fn hbm_hit_rate(&self) -> f64 {
        let (mut hits, mut misses) = (0u64, 0u64);
        for h in &self.lanes {
            hits += h.hbm.hits();
            misses += h.hbm.misses();
        }
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Snapshot of the media's counter registry (reads, writes, drains)
    /// for the benchmark stack's cross-layer report.
    pub fn media_metrics(&self) -> MetricSnapshot {
        self.pool.lock().media_metrics()
    }

    /// Simulates device power loss and returns the pool in its
    /// post-crash durable state, consuming the device. Volatile device
    /// state (HBM, pending log appends, epoch tracking) is lost.
    pub fn crash_into_pool(self) -> PmPool {
        self.crash_into_parts().0
    }

    /// Like [`PaxDevice::crash_into_pool`], but also hands back the
    /// trace (with the injected [`TraceEvent::Crash`] appended) and the
    /// final metric snapshot — forensic state a real crash would leave in
    /// the debugger, which the pool layer stashes for post-mortems.
    pub fn crash_into_parts(self) -> (PmPool, TraceBuf, MetricSnapshot) {
        self.trace
            .record(COMPONENT, TraceEvent::Crash { epoch: self.epochs[0].load(Ordering::Acquire) });
        for shard in &self.shards {
            lock(shard).crash();
        }
        for d in &self.draining {
            lock(d).clear();
        }
        for d in &self.drain_depth {
            d.store(0, Ordering::Release);
        }
        self.pool.lock().crash();
        let snapshot = self.metric_snapshot();
        (self.pool.into_inner(), self.trace.into_inner(), snapshot)
    }

    /// Saves the pool's durable state to `path` (see
    /// [`PmPool::save`]); non-durable writes are excluded, so the file
    /// models what a reboot would find.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        self.pool.lock().save(path)
    }

    /// Gracefully detaches, returning the pool *without* simulating a
    /// crash (durable state only; equivalent to crash for PAX since
    /// consistency never depends on a clean shutdown).
    pub fn into_pool(self) -> PmPool {
        self.pool.into_inner()
    }

    /// The lanes belonging to tenant `t`, in phase order.
    fn tenant_lanes(&self, t: TenantId) -> std::ops::Range<usize> {
        t * self.stride..(t + 1) * self.stride
    }

    /// The lane owning `addr`: its tenant's slice, interleaved by plain
    /// modulo.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::OutOfBounds`] when no tenant region contains
    /// `addr`.
    fn lane_of(&self, addr: LineAddr) -> Result<usize> {
        match self.tenants.tenant_of(addr) {
            Some(t) => Ok(t * self.stride + addr.0 as usize % self.stride),
            None => Err(PmError::OutOfBounds {
                addr,
                capacity_lines: self.pool.lock().layout().data_lines,
            }),
        }
    }

    /// The device's view of the current contents of the vPM line at
    /// `addr` (owned by `lane`): the lane's HBM first, then the owning
    /// tenant's draining-epoch captured value (the *newest* queued epoch
    /// holding one, since later epochs supersede earlier), then PM.
    ///
    /// Hot path: the ctl lock is skipped outright while the tenant's
    /// drain queue is empty (the atomic depth mirror), and only *tried*
    /// otherwise — a contended ctl means a concurrent persist, and drain
    /// states exist only in single-driver mode, so there is no captured
    /// value to miss.
    fn resolve(&self, lane: usize, addr: LineAddr) -> Result<CacheLine> {
        let t = lane / self.stride;
        let drain_value = if self.drain_depth[t].load(Ordering::Acquire) == 0 {
            None
        } else {
            try_lock(&self.draining[t])
                .and_then(|g| g.iter().rev().find_map(|d| d.values.get(&addr)).cloned())
        };
        let mut hot = self.hot_guard(lane);
        self.lanes[lane].resolve(
            &self.pool,
            &self.clock,
            &self.trace,
            self.config.cache_clean_reads,
            drain_value,
            addr,
            hot.as_deref_mut().map(|s| &mut s.log),
        )
    }

    /// One background step on the lane a request routed to: advance any
    /// draining persist, then let that lane's free-running engines pump
    /// the log and write back. Each lane earns pump credit from its *own*
    /// traffic (a skewed workload cannot eat another lane's budget), and
    /// every pump donates one round-robin step to a different lane with
    /// pending work — so a lane without traffic still drains instead of
    /// starving until the next `persist()`.
    fn background(&self, lane: usize) -> Result<()> {
        if !self.sched.charge(lane, self.config.log_pump_interval) {
            return Ok(());
        }
        self.persist_poll_try()?;
        self.lane_background(lane, self.config.log_pump_batch, self.config.writeback_batch)?;
        // The donated idle-lane step runs at unit rate, gated on the same
        // knobs (a device with pumping disabled stays fully quiescent).
        let idle_log = self.config.log_pump_batch.min(1);
        let idle_wb = self.config.writeback_batch.min(1);
        if self.shards.len() > 1 && idle_log + idle_wb > 0 {
            let idle = self.sched.next_idle(self.shards.len(), lane, |s| {
                !self.lanes[s].writeback_queue.is_empty()
                    || match &self.log_banks[s] {
                        Some(bank) => bank.pending_len() > 0,
                        // Locked-log pending length lives behind the lane
                        // guard; a lane busy on another thread is simply
                        // not idle this round.
                        None => self.try_lock_lane(s).is_some_and(|g| g.log.pending_len() > 0),
                    }
            });
            if let Some(s) = idle {
                let before = self.clock.steps_taken();
                self.lane_background(s, idle_log, idle_wb)?;
                self.metrics.add(self.ctr.sched_idle_steps, self.clock.steps_taken() - before);
            }
        }
        Ok(())
    }

    /// One lane's background step: pump up to `log_batch` undo entries to
    /// media, then run the lane's write-back engine for `wb_batch` lines.
    /// Under the default CAS bank the pump happens **before** and
    /// **without** the lane lock — the media handoff serializes on the
    /// pool lock alone, so concurrent appenders on the same lane are
    /// never stalled behind it — and the lane lock is then taken only for
    /// the write-back queue. The locked baseline runs both under the lane
    /// mutex, exactly as before this split. Both engines issue the
    /// identical pump-then-write-back step sequence, so single-driver
    /// runs stay bit-identical across modes.
    fn lane_background(&self, lane: usize, log_batch: usize, wb_batch: usize) -> Result<()> {
        let lane_log_batch = match &self.log_banks[lane] {
            Some(bank) => {
                if log_batch > 0 && bank.pending_len() > 0 {
                    bank.pump(&mut self.pool.lock(), &self.clock, log_batch)?;
                }
                0
            }
            None => log_batch,
        };
        // Fast path: nothing for the guarded engine to do — the CAS pump
        // above already ran — so a pure store storm's background step
        // never touches the lane mutex at all.
        if lane_log_batch == 0 && (wb_batch == 0 || self.lanes[lane].writeback_queue.is_empty()) {
            return Ok(());
        }
        self.lock_lane(lane).background(
            &self.pool,
            &self.clock,
            &self.trace,
            lane_log_batch,
            wb_batch,
        )
    }

    /// Advances the device's free-running engines by `n` **virtual
    /// ticks**, fully decoupled from foreground traffic: each tick first
    /// moves any draining non-blocking persist along
    /// ([`SchedConfig::persist_drain_per_tick`]), then runs every lane's
    /// log-drain and write-back engines, in lane-index order. Within each
    /// physical shard the tick budgets are divided across the tenants
    /// that have pending work by their scheduler weight, floored at one
    /// unit — a log-hammering tenant gets a proportional share, never the
    /// whole shard, and a light tenant always makes progress. In adaptive
    /// mode ([`SchedConfig::adaptive`]) each lane's log budget scales
    /// with its observed backlog before the weighted split.
    ///
    /// Determinism contract: ticks are the device's only time source, so
    /// the same request sequence interleaved with the same tick schedule
    /// performs the identical sequence of durable-write steps — an armed
    /// [`CrashClock`] cuts power at the identical machine state on every
    /// replay. (The adaptive controller keeps this: its only inputs are
    /// queue depths, never wall-clock time.)
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] when the crash clock fires mid-tick,
    /// and media errors.
    pub fn tick(&self, n: u64) -> Result<u64> {
        let cfg = self.config.sched;
        let mut total = 0u64;
        for _ in 0..n {
            let before = self.clock.steps_taken();
            self.persist_poll()?;
            for s in 0..self.stride {
                let active: Vec<usize> = (0..self.tenants.len())
                    .map(|t| t * self.stride + s)
                    .filter(|&l| self.lane_has_background_work(l))
                    .collect();
                let active_weight: u64 =
                    active.iter().map(|&l| self.tenants.weight(l / self.stride) as u64).sum();
                for &l in &active {
                    let w = self.tenants.weight(l / self.stride) as u64;
                    let log_budget =
                        weighted_budget(self.sched.log_budget(l, &cfg), w, active_weight);
                    let wb_budget = weighted_budget(cfg.writeback_per_tick, w, active_weight);
                    self.lane_background(l, log_budget, wb_budget)?;
                }
            }
            if cfg.adaptive {
                for l in 0..self.shards.len() {
                    let pending = match &self.log_banks[l] {
                        Some(bank) => bank.pending_len(),
                        None => self.lock_lane(l).log.pending_len(),
                    };
                    self.sched.observe_log_depth(l, pending, &cfg);
                }
            }
            let now = self.sched.advance();
            self.metrics.inc(self.ctr.sched_ticks);
            let work = self.clock.steps_taken() - before;
            if work > 0 {
                self.trace.record(COMPONENT, TraceEvent::Tick { tick: now, work });
            }
            total += work;
        }
        Ok(total)
    }

    /// Virtual ticks the scheduler has executed ([`PaxDevice::tick`]).
    pub fn ticks_elapsed(&self) -> u64 {
        self.sched.ticks()
    }

    /// Whether lane `l` has background work pending (undo entries not
    /// yet durable, or queued write-backs), observed through the shared
    /// handles — the locked-log baseline alone reads pending length
    /// behind the lane guard.
    fn lane_has_background_work(&self, l: usize) -> bool {
        !self.lanes[l].writeback_queue.is_empty()
            || match &self.log_banks[l] {
                Some(bank) => bank.pending_len() > 0,
                None => self.lock_lane(l).log.pending_len() > 0,
            }
    }

    /// Ends every tenant's current epoch in tenant order and returns
    /// tenant 0's committed epoch number — the single-tenant (and legacy)
    /// `persist()`. Multi-tenant callers wanting an independent barrier
    /// use [`PaxDevice::persist_tenant`].
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] when the crash clock fires mid-epoch
    /// — recovery will roll the epoch back — and media errors.
    pub fn persist(&self, cache: &mut impl HostSnoop) -> Result<u64> {
        let mut first = 0;
        for t in 0..self.tenants.len() {
            let committed = self.persist_tenant(t, cache)?;
            if t == 0 {
                first = committed;
            }
        }
        Ok(first)
    }

    /// Ends tenant `t`'s current epoch: makes a crash-consistent snapshot
    /// of `t`'s pool context durable and returns the committed epoch
    /// number (§3.3).
    ///
    /// This is a barrier across `t`'s own lanes only. Steps, in order:
    /// (1) drain `t`'s undo-log banks; (2) for every line `t` logged this
    /// epoch (lane by lane, in log order within each), send a `SnpData`
    /// snoop to the host cache, which downgrades the line and forwards
    /// its current value; (3) write every modified line back to PM;
    /// (4) drain PM; (5) atomically commit the epoch number in `t`'s
    /// header epoch slot. Other tenants' in-flight epochs are never
    /// flushed, stalled, or committed.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Config`] for an out-of-range tenant,
    /// [`PmError::Crashed`], and media errors.
    pub fn persist_tenant(&self, t: TenantId, cache: &mut impl HostSnoop) -> Result<u64> {
        self.check_tenant(t)?;
        // Buffered-epoch semantics: `persist()` is an epoch *close*, not
        // a barrier — capture the epoch, return immediately, and let it
        // retire in the background behind up to K-1 earlier closes.
        if self.config.persistency.closes_async() {
            return self.persist_async_tenant(t, cache);
        }
        // (0) Take the tenant's ctl lock for the whole barrier (the top
        // of the lock order — see the struct docs). Non-blocking persists
        // by this tenant may still be draining; their epochs commit in
        // order, completed through the held guard.
        let mut ctl = lock(&self.draining[t]);
        while !ctl.is_empty() {
            self.poll_drain(t, &mut ctl)?;
        }
        // (1) All of t's pre-images durable before any further write
        // back.
        for l in self.tenant_lanes(t) {
            self.flush_lane_log(l)?;
        }

        // (2)+(3) Gather and write back, lane by lane — the per-lane
        // interleave keeps the durable-step order identical to the
        // pre-refactor pipeline (see [`PaxDevice::sweep_lane`]).
        let mut entries = 0u64;
        for l in self.tenant_lanes(t) {
            let (logged, pending) = self.sweep_lane(l, cache, SweepMode::Snoop)?;
            entries += logged;
            self.write_back_batched(l, pending)?;
        }

        self.retire_epoch(t, entries)
    }

    /// Ends every tenant's epoch using **CLWB-style forced flushes**
    /// (see [`PaxDevice::persist_clwb_tenant`]); returns tenant 0's
    /// committed epoch.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] and media errors.
    pub fn persist_clwb(&self, cache: &mut impl HostSnoop) -> Result<u64> {
        let mut first = 0;
        for t in 0..self.tenants.len() {
            let committed = self.persist_clwb_tenant(t, cache)?;
            if t == 0 {
                first = committed;
            }
        }
        Ok(first)
    }

    /// Ends tenant `t`'s epoch using **CLWB-style forced flushes**
    /// instead of device snoops — the alternative §4 argues against:
    /// "this is more efficient than forcing CPUs to issue CLWBs which are
    /// serialized, consume cycles, and cause complete evictions of cache
    /// lines and future cache misses".
    ///
    /// For every logged line the host cache is made to *invalidate and
    /// write back* its copy (the classic CLWB-without-downgrade
    /// behaviour), so post-persist accesses miss — the `ablation_clwb`
    /// bench quantifies the cache-warmth difference against the
    /// snoop-based [`PaxDevice::persist_tenant`].
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Config`] for an out-of-range tenant,
    /// [`PmError::Crashed`], and media errors.
    pub fn persist_clwb_tenant(&self, t: TenantId, cache: &mut impl HostSnoop) -> Result<u64> {
        self.check_tenant(t)?;
        // Always a synchronous barrier, regardless of the configured
        // persistency model: this flavour exists as the §4 ablation
        // baseline, and buffering it would erase exactly the
        // serialized-eviction cost it measures.
        let mut ctl = lock(&self.draining[t]);
        while !ctl.is_empty() {
            self.poll_drain(t, &mut ctl)?;
        }
        for l in self.tenant_lanes(t) {
            self.flush_lane_log(l)?;
        }

        let mut entries = 0u64;
        for l in self.tenant_lanes(t) {
            let (logged, pending) = self.sweep_lane(l, cache, SweepMode::Clwb)?;
            entries += logged;
            self.write_back_batched(l, pending)?;
        }

        self.retire_epoch(t, entries)
    }

    /// The shared persist-time gather behind every persist flavour:
    /// iterates lane `l`'s logged lines in log order (§3.3 "iterating
    /// through each undo log entry as it persists"), snooping only the
    /// lines the ownership directory says the host may still hold
    /// modified, and returns the lane's epoch-log length plus the
    /// `(addr, value)` pairs that still need a PM write back. Runs
    /// through the lane's shared handles — lock-free mode takes no lane
    /// mutex; the locked baseline re-acquires it per protocol section,
    /// dropped around each snoop (host core locks order *before* lane
    /// locks). What varies per [`SweepMode`]:
    ///
    /// * `Snoop` — downgrade; returned host data refreshes the HBM copy
    ///   so post-persist reads stay warm.
    /// * `Clwb` — full eviction from host caches; dirty data comes back
    ///   to the device, the line does NOT stay host-cached. An unowned
    ///   line can hold at most a clean Shared copy whose value the
    ///   device already has, so the directory filter skips its
    ///   invalidate too (leaving it warm — strictly kinder than real
    ///   CLWB). Lines with no dirty copy anywhere are marked clean in
    ///   HBM.
    /// * `Capture` — downgrade for a deferred drain: dirty HBM copies
    ///   are captured *and marked clean now*, since the write back
    ///   happens later from the drain queue.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] and media errors.
    fn sweep_lane(
        &self,
        l: usize,
        cache: &mut impl HostSnoop,
        mode: SweepMode,
    ) -> Result<(u64, Vec<(LineAddr, CacheLine)>)> {
        let filter = self.config.directory.enabled;
        let h = &self.lanes[l];
        let logged = h.epoch_log.sorted();
        let entries = logged.len() as u64;
        let mut pending = Vec::with_capacity(logged.len());
        for (_offset, addr) in logged {
            let should_snoop = {
                let _hot = self.hot_guard(l);
                let should = h.dir_should_snoop(addr, filter);
                // CLWB invalidates rather than snoops; only the
                // downgrade flavours count toward `snoops_sent`.
                if should && mode != SweepMode::Clwb {
                    h.count_snoop_sent();
                }
                should
            };
            let host_data = if should_snoop {
                let op = if mode == SweepMode::Clwb { "snp_inv" } else { "snp_data" };
                self.trace.record(COMPONENT, TraceEvent::Coherence { op: op.into(), line: addr.0 });
                let d = match mode {
                    SweepMode::Clwb => cache.snoop_invalidate(addr),
                    _ => cache.snoop_shared(addr),
                };
                // The snoop itself is the host's give-up evidence.
                let _hot = self.hot_guard(l);
                h.dir_clear(addr);
                d
            } else {
                None
            };
            let mut hot = self.hot_guard(l);
            let data = match (host_data, mode) {
                (Some(d), SweepMode::Clwb) => Some(d),
                (Some(d), _) => {
                    h.count_snoop_data_returned();
                    // Refresh the HBM copy so post-persist reads hit.
                    // Replace-mode: the host just returned the
                    // authoritative value, so any resident (possibly
                    // stale-dirty) copy must lose.
                    h.hbm_refresh_clean(
                        &self.pool,
                        &self.clock,
                        &self.trace,
                        hot.as_deref_mut().map(|s| &mut s.log),
                        addr,
                        d.clone(),
                        false,
                    )?;
                    Some(d)
                }
                (None, SweepMode::Capture) => match h.hbm_peek(addr) {
                    Some(line) if line.dirty => {
                        let d = line.data.clone();
                        h.hbm_mark_clean(addr);
                        Some(d)
                    }
                    // Already written back during the epoch; PM is
                    // current.
                    _ => None,
                },
                (None, _) => {
                    h.hbm_peek(addr).filter(|line| line.dirty).map(|line| line.data.clone())
                }
            };
            if data.is_none() && mode == SweepMode::Clwb {
                h.hbm_mark_clean(addr);
            }
            drop(hot);
            if let Some(d) = data {
                pending.push((addr, d));
            }
            // Lines with no host data and no dirty HBM copy were already
            // written back by the eviction/background paths.
        }
        Ok((entries, pending))
    }

    /// The back half of the batched persist pipeline: issues `lane`'s
    /// gathered write-backs as coalesced batches. Lines contiguous in
    /// lane-local address space (successive global addresses one shard
    /// stride apart) share a single durable-write step, up to
    /// [`DeviceConfig::persist_wb_batch`] lines per batch — the queue/row
    /// locality a contiguous burst enjoys on real media. Writes land in
    /// the identical order as unbatched issue; only the step count
    /// differs.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] (recovery rolls the epoch back) and
    /// media errors.
    fn write_back_batched(&self, lane: usize, pending: Vec<(LineAddr, CacheLine)>) -> Result<()> {
        if pending.is_empty() {
            return Ok(());
        }
        let addrs: Vec<LineAddr> = pending.iter().map(|&(a, _)| a).collect();
        let h = &self.lanes[lane];
        // Lane guard (locked baseline only) before the wb-gate — the
        // fixed drain order. The gate keeps a concurrent background
        // drain from landing a stale HBM copy on top of these
        // just-snooped values.
        let _hot = self.hot_guard(lane);
        let _gate = h.wb_gate.lock();
        for run in coalesce_runs(&addrs, self.stride as u64, self.config.persist_wb_batch) {
            h.count_wb_batch();
            tick(&self.clock, &mut self.pool.lock())?;
            for (addr, data) in &pending[run] {
                {
                    let mut pm = self.pool.lock();
                    let abs = pm.layout().vpm_to_pool(addr.0)?;
                    pm.write_line(abs, data.clone())?;
                }
                h.count_writeback();
                self.trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
                h.hbm_mark_clean(*addr);
                h.dir_clear(*addr);
            }
        }
        Ok(())
    }

    /// The shared retirement epilogue of every synchronous persist
    /// flavour (the model-independent half of an epoch's life: buffered
    /// closes retire through `poll_drain`'s phase 3 instead): drain PM,
    /// atomically commit tenant `t`'s built epoch into its header slot,
    /// reset `t`'s lanes' per-epoch state (recycling their log banks),
    /// and advance `t`'s epoch counter.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] (the commit record never made it —
    /// recovery rolls the epoch back) and media errors.
    fn retire_epoch(&self, t: TenantId, entries: u64) -> Result<u64> {
        // (4) Everything reaches media before the commit record.
        self.pool.lock().drain();

        // (5) The atomic epoch commit — one record covers the tenant's
        // lanes, and only that tenant's header slot moves.
        tick(&self.clock, &mut self.pool.lock())?;
        let committed = self.epochs[t].load(Ordering::Acquire);
        self.pool.lock().commit_epoch_for(t, committed)?;

        for l in self.tenant_lanes(t) {
            self.lock_lane(l).reset_after_commit();
        }
        // Release pairs with the Acquire load in `home_read_own`: a store
        // thread that tags an undo entry with the new epoch number must
        // also observe the recycled banks and reset per-epoch state
        // published above.
        self.epochs[t].store(committed + 1, Ordering::Release);
        // Charged to the tenant's phase-0 lane so per-tenant rollups
        // conserve the persist count.
        self.lanes[t * self.stride].count_persist();
        self.trace.record(COMPONENT, TraceEvent::EpochCommit { epoch: committed, entries });
        Ok(committed)
    }

    /// Drains lane `l`'s undo bank to full durability. The CAS bank
    /// flushes holding only the pool lock around each media step —
    /// appenders on the lane keep reserving and publishing concurrently —
    /// while the locked baseline flushes under the lane mutex as before.
    fn flush_lane_log(&self, l: usize) -> Result<()> {
        match &self.log_banks[l] {
            Some(bank) => bank.flush(&mut self.pool.lock(), &self.clock),
            None => self.lock_lane(l).log.flush(&mut self.pool.lock(), &self.clock),
        }
    }

    /// Typed guard for the tenant-indexed entry points.
    fn check_tenant(&self, t: TenantId) -> Result<()> {
        if t >= self.tenants.len() {
            return Err(PmError::Config(format!(
                "tenant {t} out of range for a {}-tenant device",
                self.tenants.len()
            )));
        }
        Ok(())
    }

    /// Begins a **non-blocking** persist of tenant 0's epoch (§6) — the
    /// single-tenant legacy entry point; see
    /// [`PaxDevice::persist_async_tenant`].
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] and media errors.
    pub fn persist_async(&self, cache: &mut impl HostSnoop) -> Result<u64> {
        self.persist_async_tenant(0, cache)
    }

    /// Begins a **non-blocking** persist of tenant `t`'s epoch (§6):
    /// captures `t`'s modified lines (snooping the host cache once, as
    /// the synchronous protocol does) and returns immediately with the
    /// epoch number now draining. The tenant continues in its next epoch
    /// while the device flushes the log, writes lines back, and commits
    /// in the background ([`PaxDevice::persist_poll`] advances it;
    /// ordinary host requests advance it too).
    ///
    /// Durability is only guaranteed once the epoch *commits* —
    /// [`PaxDevice::persist_poll`] returns it, or
    /// [`PaxDevice::persist_wait`] blocks for it. A crash before commit
    /// recovers to the tenant's previous epoch.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Config`] for an out-of-range tenant,
    /// [`PmError::Crashed`], and media errors. If an earlier non-blocking
    /// persist by the same tenant is still draining it is completed first
    /// (a tenant's epochs commit in order).
    pub fn persist_async_tenant(&self, t: TenantId, cache: &mut impl HostSnoop) -> Result<u64> {
        self.check_tenant(t)?;
        let mut ctl = lock(&self.draining[t]);
        // Admission: the model bounds how many closed-but-uncommitted
        // epochs may be in flight (1 under strict/epoch — the classic
        // non-blocking persist — K under buffered-epoch). At capacity
        // the *oldest* close is completed first: retirement is strictly
        // in order, so recovery always lands on a prefix-closed cut.
        let cap = self.config.persistency.max_open_epochs().max(1);
        while ctl.len() >= cap {
            self.poll_drain(t, &mut ctl)?;
        }

        let mut entries = 0u64;
        let mut queue = VecDeque::new();
        let mut values = HashMap::new();
        for l in self.tenant_lanes(t) {
            let (logged, captured) = self.sweep_lane(l, cache, SweepMode::Capture)?;
            entries += logged;
            for (addr, d) in captured {
                queue.push_back(addr);
                values.insert(addr, d);
            }
        }

        // Each of the tenant's banks must drain through the epoch's last
        // entry; commit will recycle exactly those slots.
        let flush_to: Vec<u64> =
            self.tenant_lanes(t).map(|l| self.lock_lane(l).log.appended()).collect();
        let epoch = self.epochs[t].load(Ordering::Acquire);
        ctl.push_back(DrainState { epoch, queue, values, flush_to, entries });
        // Mirror of the queue depth for the lock-free fast paths:
        // `resolve` / `drain_one_line_now` skip their ctl `try_lock`
        // entirely while this reads 0 (DESIGN.md §15).
        self.drain_depth[t].fetch_add(1, Ordering::Release);
        for l in self.tenant_lanes(t) {
            self.lock_lane(l).begin_next_epoch();
        }
        // Release pairs with the Acquire load in `home_read_own`: appends
        // tagged with the next epoch happen-after the lanes rolled their
        // per-epoch dedup maps above.
        self.epochs[t].store(epoch + 1, Ordering::Release);
        Ok(epoch)
    }

    /// Advances every tenant's in-flight non-blocking persist by a
    /// bounded amount. Returns `Some(epoch)` the moment an epoch durably
    /// commits (the last one, if several tenants commit in the same
    /// poll), `None` while still draining or when nothing is draining.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] and media errors.
    pub fn persist_poll(&self) -> Result<Option<u64>> {
        let mut committed = None;
        for t in 0..self.tenants.len() {
            if let Some(e) = self.persist_poll_tenant(t)? {
                committed = Some(e);
            }
        }
        Ok(committed)
    }

    /// Hot-path variant of [`PaxDevice::persist_poll`]: a tenant whose
    /// ctl lock is contended is skipped (the concurrent persist holding
    /// it is usually advancing that drain itself). In single-driver mode
    /// every `try_lock` succeeds, so the behaviour is identical. Each
    /// skip is counted (`persist_poll_skipped`), and a tenant skipped
    /// [`DeviceConfig::poll_skip_limit`] times in a row escalates to a
    /// bounded spin so a store-heavy thread mix cannot starve an async
    /// drain indefinitely — see [`PaxDevice::poll_one_tenant`].
    fn persist_poll_try(&self) -> Result<()> {
        for t in 0..self.tenants.len() {
            self.poll_one_tenant(t)?;
        }
        Ok(())
    }

    /// One tenant's non-blocking poll with starvation protection.
    ///
    /// On a successful `try_lock` the skip streak resets and the drain
    /// advances as usual. On contention the skip is counted and, once the
    /// streak reaches [`DeviceConfig::poll_skip_limit`], the poll retries
    /// a bounded number of times with [`std::thread::yield_now`] between
    /// attempts. It must **never** hard-`lock()` the ctl slot: this code
    /// runs from `SharedComplex::write` while a host core lock is held,
    /// and a persist barrier holds ctl while blocking on core locks for
    /// its snoops (ctl orders *before* cores in the lock hierarchy), so
    /// blocking here would deadlock. If the spin loses anyway, the ctl
    /// holder is itself a poll or persist advancing the same drain — its
    /// progress is the forward guarantee, and the streak stays armed so
    /// the very next poll spins again.
    fn poll_one_tenant(&self, t: TenantId) -> Result<()> {
        // Bounded spin length for the starvation fallback. Big enough to
        // outlast a poll-sized critical section on the other side, small
        // enough that a long persist barrier cannot capture hot paths.
        const BOUNDED_POLL_SPINS: usize = 128;
        if let Some(mut ctl) = try_lock(&self.draining[t]) {
            self.poll_skips[t].store(0, Ordering::Relaxed);
            self.poll_drain(t, &mut ctl)?;
            return Ok(());
        }
        self.metrics.inc(self.ctr.persist_poll_skipped);
        let streak = self.poll_skips[t].fetch_add(1, Ordering::Relaxed) + 1;
        if streak < self.config.poll_skip_limit {
            return Ok(());
        }
        for _ in 0..BOUNDED_POLL_SPINS {
            std::thread::yield_now();
            if let Some(mut ctl) = try_lock(&self.draining[t]) {
                self.poll_skips[t].store(0, Ordering::Relaxed);
                self.poll_drain(t, &mut ctl)?;
                return Ok(());
            }
        }
        Ok(())
    }

    /// Advances tenant `t`'s in-flight non-blocking persist by a bounded
    /// amount; `Some(epoch)` the moment it durably commits.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Config`] for an out-of-range tenant,
    /// [`PmError::Crashed`], and media errors.
    pub fn persist_poll_tenant(&self, t: TenantId) -> Result<Option<u64>> {
        self.check_tenant(t)?;
        let mut ctl = lock(&self.draining[t]);
        self.poll_drain(t, &mut ctl)
    }

    /// The drain engine behind every poll flavour, operating on the
    /// tenant's already-locked ctl slot (so persist barriers can complete
    /// an in-flight drain through the guard they hold, without reentrant
    /// locking).
    /// Retirement is strictly in order: only the *front* (oldest) queued
    /// epoch drains and commits, so under buffered-epoch the durable
    /// image always reflects a prefix-closed cut of epoch history.
    fn poll_drain(&self, t: TenantId, ctl: &mut VecDeque<DrainState>) -> Result<Option<u64>> {
        let Some(flush_to) = ctl.front().map(|d| d.flush_to.clone()) else {
            return Ok(None);
        };
        // Phase 1: the tenant's undo entries for the epoch must be
        // durable first. The atomic watermarks answer the common
        // already-durable case without taking any lane lock, and under
        // the CAS bank the pump itself needs none either — the media
        // handoff serializes on the pool lock alone.
        let batch = self.config.log_pump_batch.max(1);
        let mut lagging = false;
        for (i, &target) in flush_to.iter().enumerate() {
            let l = t * self.stride + i;
            if self.watermarks[l].durable() >= target {
                continue;
            }
            if let Some(bank) = &self.log_banks[l] {
                bank.pump(&mut self.pool.lock(), &self.clock, batch)?;
                if bank.durable_offset() < target {
                    lagging = true;
                }
            } else {
                let mut shard = self.lock_lane(l);
                if shard.log.durable_offset() < target {
                    shard.log.pump(&mut self.pool.lock(), &self.clock, batch)?;
                    if shard.log.durable_offset() < target {
                        lagging = true;
                    }
                }
            }
        }
        if lagging {
            return Ok(None);
        }
        // Phase 2: write back the scheduler's persist-drain budget of
        // *batches* per poll (clamped to 1 so `persist_wait` always makes
        // progress). Each batch greedily extends along the queue while
        // the lines stay contiguous in lane-local space, sharing one
        // durable-write step like the synchronous pipeline.
        let stride = self.stride;
        let max_batch = self.config.persist_wb_batch.max(1);
        // The budget scales with queue depth so a buffered device drains
        // K epochs as fast as a synchronous one drains one; with ≤ 1
        // queued epoch (strict/epoch) this is exactly the historical
        // `persist_drain_per_tick` budget.
        for _ in 0..persist_drain_budget(&self.config.sched, ctl.len()) {
            let Some(ds) = ctl.front_mut() else { break };
            let Some(addr) = ds.queue.pop_front() else { break };
            // Lines resolved early (dirty_evict ordering) have no value.
            let Some(data) = ds.values.remove(&addr) else { continue };
            let mut batch = vec![(addr, data)];
            while batch.len() < max_batch {
                let Some(&next) = ds.queue.front() else { break };
                let last = batch.last().expect("nonempty").0;
                if next.0 != last.0.wrapping_add(stride as u64) {
                    break;
                }
                let Some(d) = ds.values.remove(&next) else { break };
                ds.queue.pop_front();
                batch.push((next, d));
            }
            let lane = t * stride + addr.0 as usize % stride;
            let h = &self.lanes[lane];
            // Lane (locked baseline only) before wb-gate: the gate
            // serializes this drain's PM writes against the lane's
            // background write-back consumer.
            let _hot = self.hot_guard(lane);
            let _gate = h.wb_gate.lock();
            h.count_wb_batch();
            tick(&self.clock, &mut self.pool.lock())?;
            for (a, d) in batch {
                {
                    let mut pm = self.pool.lock();
                    let abs = pm.layout().vpm_to_pool(a.0)?;
                    pm.write_line(abs, d)?;
                }
                h.count_writeback();
                self.trace.record(COMPONENT, TraceEvent::WriteBack { line: a.0 });
            }
        }
        // Phase 3: commit once everything landed.
        let done = ctl.front().is_some_and(|d| d.queue.is_empty());
        if done {
            let ds = ctl.pop_front().expect("checked");
            self.drain_depth[t].fetch_sub(1, Ordering::Release);
            self.pool.lock().drain();
            tick(&self.clock, &mut self.pool.lock())?;
            self.pool.lock().commit_epoch_for(t, ds.epoch)?;
            self.lanes[t * self.stride].count_persist();
            self.trace.record(
                COMPONENT,
                TraceEvent::EpochCommit { epoch: ds.epoch, entries: ds.entries },
            );
            // The committed epoch's log slots are free *now*, even while
            // the next epoch is already appending: recycle each bank up to
            // the drained watermark. (Recycling used to wait for the whole
            // log to go idle — under continuous overlapped traffic that
            // never happens, and the region filled up with committed
            // entries until spurious `LogFull`.)
            for (i, &target) in ds.flush_to.iter().enumerate() {
                let l = t * self.stride + i;
                match &self.log_banks[l] {
                    Some(bank) => bank.recycle_to(target),
                    None => self.lock_lane(l).log.recycle_to(target),
                }
            }
            return Ok(Some(ds.epoch));
        }
        Ok(None)
    }

    /// Completes every tenant's in-flight non-blocking persist.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] and media errors.
    pub fn persist_wait(&self) -> Result<()> {
        for t in 0..self.tenants.len() {
            self.persist_wait_tenant(t)?;
        }
        Ok(())
    }

    /// Completes tenant `t`'s in-flight non-blocking persist, if any.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] and media errors.
    pub fn persist_wait_tenant(&self, t: TenantId) -> Result<()> {
        let mut ctl = lock(&self.draining[t]);
        while !ctl.is_empty() {
            self.poll_drain(t, &mut ctl)?;
        }
        Ok(())
    }

    /// The epoch currently draining from a non-blocking persist, if any
    /// tenant has one (the first, scanning in tenant order; under
    /// buffered-epoch, the oldest queued epoch — the next to retire).
    pub fn persist_pending(&self) -> Option<u64> {
        self.draining.iter().find_map(|d| lock(d).front().map(|ds| ds.epoch))
    }

    /// The epoch tenant `t` will retire next, if any are draining.
    pub fn persist_pending_tenant(&self, t: TenantId) -> Option<u64> {
        lock(self.draining.get(t)?).front().map(|d| d.epoch)
    }

    /// Writes the owning tenant's draining-epoch value for `addr` to PM
    /// immediately, if one is pending — called before a newer value for
    /// the same line can be buffered, preserving write-back order across
    /// epochs. Hot path: the ctl lock is only tried (drain states are
    /// single-driver-only; see [`PaxDevice::resolve`]).
    fn drain_one_line_now(&self, addr: LineAddr) -> Result<()> {
        let Some(t) = self.tenants.tenant_of(addr) else {
            return Ok(());
        };
        let s = addr.0 as usize % self.stride;
        // Lock-free fast path: no drain in flight for this tenant means
        // nothing to order against (the depth mirror is bumped under ctl
        // before any value is queued, so a racing close is observed).
        if self.drain_depth[t].load(Ordering::Acquire) == 0 {
            return Ok(());
        }
        let Some(mut ctl) = try_lock(&self.draining[t]) else {
            return Ok(());
        };
        // Oldest epoch first: every queued epoch's buffered value for the
        // line must reach PM in close order before any newer value can be
        // captured, or a crash could leave a newer value under an older
        // committed epoch.
        for ds in ctl.iter_mut() {
            let Some(data) = ds.values.remove(&addr) else {
                continue;
            };
            let flush_to = ds.flush_to[s];
            let lane = t * self.stride + s;
            let h = &self.lanes[lane];
            let mut hot = self.hot_guard(lane);
            let _gate = h.wb_gate.lock();
            while h.watermark.durable() < flush_to {
                h.count_forced_flush();
                let pumped = match (&self.log_banks[lane], hot.as_deref_mut()) {
                    (Some(bank), _) => bank.pump(&mut self.pool.lock(), &self.clock, usize::MAX)?,
                    (None, Some(shard)) => {
                        shard.log.pump(&mut self.pool.lock(), &self.clock, usize::MAX)?
                    }
                    (None, None) => {
                        return Err(PmError::ProtocolViolation {
                            invariant: "locked-log lane pumped without the lane guard",
                        })
                    }
                };
                if pumped == 0 {
                    return Err(PmError::ProtocolViolation {
                        invariant: "draining epoch's undo entries are neither durable nor pending",
                    });
                }
            }
            tick(&self.clock, &mut self.pool.lock())?;
            {
                let mut pm = self.pool.lock();
                let abs = pm.layout().vpm_to_pool(addr.0)?;
                pm.write_line(abs, data)?;
            }
            h.count_writeback();
            self.trace.record(COMPONENT, TraceEvent::WriteBack { line: addr.0 });
        }
        Ok(())
    }
}

impl PaxDevice {
    /// `RdShared` service, shared by both [`HomeAgent`] impls.
    fn home_read_shared(&self, addr: LineAddr) -> Result<CacheLine> {
        let l = self.lane_of(addr)?;
        {
            let _hot = self.hot_guard(l);
            self.lanes[l].count_rd_shared();
        }
        self.trace
            .record(COMPONENT, TraceEvent::Coherence { op: "rd_shared".into(), line: addr.0 });
        self.background(l)?;
        self.resolve(l, addr)
    }

    /// `RdOwn` service, shared by both [`HomeAgent`] impls.
    fn home_read_own(&self, addr: LineAddr) -> Result<CacheLine> {
        let l = self.lane_of(addr)?;
        {
            let _hot = self.hot_guard(l);
            self.lanes[l].count_rd_own();
        }
        self.trace.record(COMPONENT, TraceEvent::Coherence { op: "rd_own".into(), line: addr.0 });
        self.background(l)?;
        let old = self.resolve(l, addr)?;
        // The paper's key move: log asynchronously and acknowledge the
        // host immediately — no stall for durability here. Acquire pairs
        // with the Release stores in `retire_epoch` /
        // `persist_async_tenant`: reading epoch N+1 guarantees this
        // thread also sees the lane state those commits published before
        // bumping the counter.
        let epoch = self.epochs[l / self.stride].load(Ordering::Acquire);
        {
            let h = &self.lanes[l];
            let mut hot = self.hot_guard(l);
            h.log_if_first(&self.trace, hot.as_deref_mut().map(|s| &mut s.log), epoch, addr, &old)?;
            // The ownership grant is the directory's set point: from here
            // the host plausibly holds the line modified. Gated so the
            // disabled ablation leaves the directory (and its gauges)
            // untouched.
            if self.config.directory.enabled {
                h.dir_note_owned(addr);
            }
        }
        Ok(old)
    }

    /// Clean-eviction service, shared by both [`HomeAgent`] impls.
    fn home_clean_evict(&self, addr: LineAddr) {
        if let Ok(l) = self.lane_of(addr) {
            let _hot = self.hot_guard(l);
            self.lanes[l].count_clean_evict();
            // Safe to untrack: Shared and Modified copies never coexist,
            // so a clean eviction means no core holds the line modified.
            self.lanes[l].dir_clear(addr);
        }
        self.trace
            .record(COMPONENT, TraceEvent::Coherence { op: "clean_evict".into(), line: addr.0 });
    }

    /// Dirty-eviction service, shared by both [`HomeAgent`] impls.
    fn home_dirty_evict(&self, addr: LineAddr, data: CacheLine) -> Result<()> {
        let l = self.lane_of(addr)?;
        {
            let _hot = self.hot_guard(l);
            self.lanes[l].count_dirty_evict();
            // The host just handed its modified copy back: the line needs
            // no persist-time snoop until the next `RdOwn`.
            self.lanes[l].dir_clear(addr);
        }
        self.trace
            .record(COMPONENT, TraceEvent::Coherence { op: "dirty_evict".into(), line: addr.0 });
        self.background(l)?;
        // Ordering with a draining epoch: the previous epoch's value for
        // this line must reach PM before any newer value can (otherwise a
        // stale drain write could land on top of this epoch's write back).
        self.drain_one_line_now(addr)?;
        let epoch = self.epochs[l / self.stride].load(Ordering::Acquire);
        let h = &self.lanes[l];
        let mut hot = self.hot_guard(l);
        let offset = match h.epoch_offset_of(addr) {
            Some(o) => o,
            None => {
                // Protocol anomaly: an eviction for a line we never saw an
                // ownership request for this epoch. The PM copy is still
                // the epoch-start value (write back is log-gated), so log
                // it now.
                h.count_unlogged_dirty_evict();
                let old = {
                    let mut pm = self.pool.lock();
                    let abs = pm.layout().vpm_to_pool(addr.0)?;
                    pm.read_line(abs)?
                };
                h.log_if_first(
                    &self.trace,
                    hot.as_deref_mut().map(|s| &mut s.log),
                    epoch,
                    addr,
                    &old,
                )?
            }
        };
        // Insert-then-dispose keeps a dirty victim indexed until its PM
        // write retires (the victim closure runs under the set lock);
        // the queue push happens-after the insert, matching the
        // consumer's pop-then-peek protocol.
        h.hbm_insert_disposing(
            &self.pool,
            &self.clock,
            &self.trace,
            hot.as_deref_mut().map(|s| &mut s.log),
            addr,
            HbmLine { data, dirty: true, log_offset: Some(offset) },
        )?;
        h.writeback_queue.push_back(addr);
        Ok(())
    }
}

impl HomeAgent for PaxDevice {
    fn read_shared(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.home_read_shared(addr)
    }

    fn read_own(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.home_read_own(addr)
    }

    fn clean_evict(&mut self, addr: LineAddr) {
        self.home_clean_evict(addr);
    }

    fn dirty_evict(&mut self, addr: LineAddr, data: CacheLine) -> Result<()> {
        self.home_dirty_evict(addr, data)
    }
}

/// The concurrent-engine entry point: every thread holds its own
/// `&PaxDevice` and serves coherence requests against the shared device
/// (the device is `Sync`; interior locks do the serializing).
impl HomeAgent for &PaxDevice {
    fn read_shared(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.home_read_shared(addr)
    }

    fn read_own(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.home_read_own(addr)
    }

    fn clean_evict(&mut self, addr: LineAddr) {
        self.home_clean_evict(addr);
    }

    fn dirty_evict(&mut self, addr: LineAddr, data: CacheLine) -> Result<()> {
        self.home_dirty_evict(addr, data)
    }
}

impl ShardedHome for PaxDevice {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of_line(&self, addr: LineAddr) -> usize {
        self.tenants.tenant_of(addr).map_or(addr.0 as usize % self.stride, |t| {
            t * self.stride + addr.0 as usize % self.stride
        })
    }
}

impl ShardedHome for &PaxDevice {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of_line(&self, addr: LineAddr) -> usize {
        ShardedHome::shard_of_line(*self, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbm::EvictionPolicy;
    use crate::tenant::even_split;
    use pax_cache::{CacheConfig, CoherentCache};
    use pax_pm::PoolConfig;

    fn setup() -> (PaxDevice, CoherentCache) {
        setup_sharded(1)
    }

    fn setup_sharded(shards: usize) -> (PaxDevice, CoherentCache) {
        setup_cfg(DeviceConfig::default(), shards)
    }

    fn setup_cfg(config: DeviceConfig, shards: usize) -> (PaxDevice, CoherentCache) {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let device = PaxDevice::open(pool, config.with_shards(shards)).unwrap();
        let cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        (device, cache)
    }

    fn setup_tenants(tenants: usize, shards: usize) -> (PaxDevice, CoherentCache) {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let regions = even_split(pool.layout().data_lines, tenants);
        let device =
            PaxDevice::open_multi(pool, DeviceConfig::default().with_shards(shards), regions)
                .unwrap();
        let cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        (device, cache)
    }

    #[test]
    fn device_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PaxDevice>();
    }

    #[test]
    fn open_fresh_pool_starts_epoch_one() {
        let (device, _) = setup();
        assert_eq!(device.current_epoch(), 1);
        assert_eq!(device.committed_epoch().unwrap(), 0);
        assert_eq!(device.recovery_report().rolled_back, 0);
    }

    #[test]
    fn store_triggers_exactly_one_undo_entry_per_epoch() {
        let (mut device, mut cache) = setup();
        let a = LineAddr(3);
        cache.write(a, CacheLine::filled(1), &mut device).unwrap();
        cache.write(a, CacheLine::filled(2), &mut device).unwrap(); // silent (M)
        assert_eq!(device.metrics().rd_own, 1);
        assert_eq!(device.metrics().undo_entries, 1);

        device.persist(&mut cache).unwrap();
        // Snoop downgraded the line; the next store re-announces.
        cache.write(a, CacheLine::filled(3), &mut device).unwrap();
        assert_eq!(device.metrics().rd_own, 2);
        assert_eq!(device.metrics().undo_entries, 2);
    }

    #[test]
    fn persist_commits_host_cached_values() {
        let (mut device, mut cache) = setup();
        let a = LineAddr(0);
        cache.write(a, CacheLine::filled(0x77), &mut device).unwrap();
        // Value only lives in the host cache; PM is still zero.
        let epoch = device.persist(&mut cache).unwrap();
        assert_eq!(epoch, 1);
        let mut pool = device.crash_into_pool();
        let abs = pool.layout().vpm_to_pool(0).unwrap();
        assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(0x77));
        assert_eq!(pool.committed_epoch().unwrap(), 1);
    }

    #[test]
    fn crash_before_persist_rolls_back_to_prior_epoch() {
        let (mut device, mut cache) = setup();
        let a = LineAddr(5);
        cache.write(a, CacheLine::filled(1), &mut device).unwrap();
        device.persist(&mut cache).unwrap(); // epoch 1: value 1

        cache.write(a, CacheLine::filled(2), &mut device).unwrap();
        // Force the new value to PM without persisting: evict the dirty
        // host line, then drain background write back.
        let evicted = cache.snoop_invalidate(a).unwrap();
        device.dirty_evict(a, evicted).unwrap();
        for _ in 0..64 {
            device.read_shared(LineAddr(40)).unwrap(); // pump background
        }
        // Crash. Recovery must restore value 1 (the epoch-1 snapshot).
        let pool = device.crash_into_pool();
        let mut device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
        assert!(device.recovery_report().rolled_back >= 1);
        let mut cache2 = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        assert_eq!(cache2.read(a, &mut device).unwrap(), CacheLine::filled(1));
    }

    #[test]
    fn reads_hit_hbm_after_first_touch() {
        let (mut device, mut cache) = setup();
        cache.read(LineAddr(9), &mut device).unwrap();
        cache.snoop_invalidate(LineAddr(9)); // force the host copy out
        cache.read(LineAddr(9), &mut device).unwrap();
        assert_eq!(device.metrics().rd_shared, 2);
        assert!(device.metrics().hbm_read_hits >= 1);
    }

    #[test]
    fn multiple_epochs_round_trip() {
        let (mut device, mut cache) = setup();
        for epoch in 1..=5u64 {
            cache.write(LineAddr(epoch), CacheLine::filled(epoch as u8), &mut device).unwrap();
            assert_eq!(device.persist(&mut cache).unwrap(), epoch);
        }
        assert_eq!(device.committed_epoch().unwrap(), 5);
        for epoch in 1..=5u64 {
            assert_eq!(
                cache.read(LineAddr(epoch), &mut device).unwrap(),
                CacheLine::filled(epoch as u8)
            );
        }
    }

    #[test]
    fn working_set_larger_than_hbm_still_persists() {
        // §3.3 "No Working Set Size Limits": HBM of 8 lines, epoch touches
        // 64 lines. Evictions must proactively write back without
        // breaking the snapshot.
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let config = DeviceConfig::default().with_hbm(HbmConfig {
            capacity_bytes: 8 * 64,
            ways: 2,
            policy: EvictionPolicy::PreferDurable,
        });
        let mut device = PaxDevice::open(pool, config).unwrap();
        let mut cache = CoherentCache::new(CacheConfig::tiny(4 * 64, 2)); // tiny host cache too
        for i in 0..64u64 {
            cache.write(LineAddr(i), CacheLine::filled(i as u8), &mut device).unwrap();
        }
        device.persist(&mut cache).unwrap();
        let mut pool = device.crash_into_pool();
        for i in 0..64u64 {
            let abs = pool.layout().vpm_to_pool(i).unwrap();
            assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(i as u8), "line {i}");
        }
    }

    #[test]
    fn unpersisted_epoch_is_invisible_after_crash() {
        let (mut device, mut cache) = setup();
        cache.write(LineAddr(1), CacheLine::filled(9), &mut device).unwrap();
        // No persist: crash loses the host-cached value AND any partial
        // device state; recovery sees epoch 0 (empty pool).
        let pool = device.crash_into_pool();
        let mut device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
        let mut cache2 = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        assert_eq!(cache2.read(LineAddr(1), &mut device).unwrap(), CacheLine::zeroed());
    }

    #[test]
    fn crash_clock_mid_persist_keeps_old_snapshot() {
        let (mut device, mut cache) = setup();
        cache.write(LineAddr(2), CacheLine::filled(1), &mut device).unwrap();
        device.persist(&mut cache).unwrap(); // epoch 1

        for i in 0..8u64 {
            cache.write(LineAddr(i), CacheLine::filled(0xEE), &mut device).unwrap();
        }
        // Arm the clock so persist crashes partway through (the batched
        // pipeline covers the 8-line epoch in very few durable steps).
        device.crash_clock().arm(device.crash_clock().steps_taken() + 1);
        let err = device.persist(&mut cache).unwrap_err();
        assert!(matches!(err, PmError::Crashed));

        let pool = device.crash_into_pool();
        let mut device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
        assert_eq!(device.committed_epoch().unwrap(), 1);
        let mut cache2 = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        // Epoch-1 state: line 2 == 1, everything else zero.
        assert_eq!(cache2.read(LineAddr(2), &mut device).unwrap(), CacheLine::filled(1));
        for i in [0u64, 1, 3, 4, 5, 6, 7] {
            assert_eq!(
                cache2.read(LineAddr(i), &mut device).unwrap(),
                CacheLine::zeroed(),
                "line {i}"
            );
        }
    }

    #[test]
    fn persist_clwb_is_crash_consistent_but_cold() {
        let (mut device, mut cache) = setup();
        for i in 0..8u64 {
            cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
        }
        let epoch = device.persist_clwb(&mut cache).unwrap();
        assert_eq!(epoch, 1);
        // CLWB evicted the working set from the host cache.
        for i in 0..8u64 {
            assert_eq!(cache.state_of(LineAddr(i)), None, "line {i} must be evicted");
        }
        // Durability matches the snoop-based protocol exactly.
        let mut pool = device.crash_into_pool();
        assert_eq!(pool.committed_epoch().unwrap(), 1);
        for i in 0..8u64 {
            let abs = pool.layout().vpm_to_pool(i).unwrap();
            assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(1));
        }
    }

    #[test]
    fn rdown_never_stalls_for_log_durability() {
        let (mut device, mut cache) = setup();
        // With pumping disabled, stores must still complete immediately.
        device.config.log_pump_batch = 0;
        device.config.writeback_batch = 0;
        for i in 0..16u64 {
            cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
        }
        assert_eq!(device.metrics().undo_entries, 16);
        assert_eq!(device.log_durable_offset(), 0, "nothing drained, yet no store stalled");
    }

    #[test]
    fn ticks_drain_the_log_without_foreground_traffic() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        // Pump interval so large the request path never pumps: background
        // progress can only come from explicit virtual ticks.
        let config = DeviceConfig::default().with_log_pump_interval(usize::MAX);
        let mut device = PaxDevice::open(pool, config).unwrap();
        let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        for i in 0..8u64 {
            cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
        }
        assert_eq!(device.log_durable_offset(), 0, "request path must not have pumped");

        let work = device.tick(16).unwrap();
        assert!(work > 0, "ticks must perform durable-write steps");
        assert_eq!(device.log_durable_offset(), 8, "16 ticks x 2 entries covers 8 appends");
        assert_eq!(device.ticks_elapsed(), 16);
        assert_eq!(device.metrics().sched_ticks, 16);
        // Working ticks leave trace evidence.
        assert!(device.trace_dump().contains("\"type\":\"tick\""));
    }

    #[test]
    fn tick_advances_a_draining_persist_to_commit() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let config = DeviceConfig::default().with_log_pump_interval(usize::MAX);
        let mut device = PaxDevice::open(pool, config).unwrap();
        let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        for i in 0..8u64 {
            cache.write(LineAddr(i), CacheLine::filled(7), &mut device).unwrap();
        }
        let epoch = device.persist_async(&mut cache).unwrap();
        assert_eq!(device.persist_pending(), Some(epoch));
        // Only virtual time moves the drain forward.
        for _ in 0..256 {
            if device.persist_pending().is_none() {
                break;
            }
            device.tick(1).unwrap();
        }
        assert_eq!(device.persist_pending(), None, "ticks alone must commit the epoch");
        assert_eq!(device.committed_epoch().unwrap(), epoch);
    }

    #[test]
    fn identical_tick_schedules_replay_identical_crash_states() {
        let run = |crash_at: u64| -> (u64, Vec<CacheLine>) {
            let pool = PmPool::create(PoolConfig::small()).unwrap();
            let mut device = PaxDevice::open(pool, DeviceConfig::default().with_shards(4)).unwrap();
            let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
            device.crash_clock().arm(crash_at);
            let mut interleave = || -> Result<()> {
                for i in 0..16u64 {
                    cache.write(LineAddr(i), CacheLine::filled(i as u8 + 1), &mut device)?;
                    device.tick(2)?;
                }
                device.persist(&mut cache)?;
                Ok(())
            };
            assert!(matches!(interleave(), Err(PmError::Crashed)));
            let pool = device.crash_into_pool();
            let mut device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
            let committed = device.committed_epoch().unwrap();
            let mut cache2 = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
            let state = (0..16u64)
                .map(|i| cache2.read(LineAddr(i), &mut device).unwrap())
                .collect::<Vec<_>>();
            (committed, state)
        };
        for crash_at in [3, 9, 17] {
            assert_eq!(run(crash_at), run(crash_at), "crash step {crash_at} must replay");
        }
    }

    #[test]
    fn skewed_traffic_no_longer_starves_other_shards() {
        let (mut device, mut cache) = setup_sharded(4);
        // Seed shard 1 with pending background work: a logged store whose
        // dirty line the host evicts back to the device.
        cache.write(LineAddr(1), CacheLine::filled(0xAB), &mut device).unwrap();
        let line = cache.snoop_invalidate(LineAddr(1)).unwrap();
        device.dirty_evict(LineAddr(1), line).unwrap();
        // Then hammer shard 0 only.
        for _ in 0..64 {
            device.read_shared(LineAddr(0)).unwrap();
        }
        let m = device.metrics();
        assert!(
            m.background_writebacks >= 1,
            "shard 1's dirty line must drain from donated idle steps, got {m:?}"
        );
        assert!(m.sched_idle_steps >= 1, "donated steps must be accounted");
    }

    #[test]
    fn sharded_device_routes_lines_by_modulo() {
        let (device, _) = setup_sharded(4);
        assert_eq!(device.shard_count(), 4);
        for i in 0..16u64 {
            assert_eq!(device.shard_of_line(LineAddr(i)), (i % 4) as usize);
        }
    }

    #[test]
    fn shard_count_is_a_telemetry_dimension() {
        let (device, _) = setup_sharded(4);
        assert_eq!(device.metric_snapshot().counter("shards"), 4);
        let (device1, _) = setup();
        assert_eq!(device1.metric_snapshot().counter("shards"), 1);
    }

    #[test]
    fn sharded_persist_commits_all_shards_atomically() {
        let (mut device, mut cache) = setup_sharded(4);
        // Touch lines landing in every shard.
        for i in 0..16u64 {
            cache.write(LineAddr(i), CacheLine::filled(i as u8 + 1), &mut device).unwrap();
        }
        assert_eq!(device.persist(&mut cache).unwrap(), 1);
        let mut pool = device.crash_into_pool();
        assert_eq!(pool.committed_epoch().unwrap(), 1);
        for i in 0..16u64 {
            let abs = pool.layout().vpm_to_pool(i).unwrap();
            assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(i as u8 + 1), "line {i}");
        }
    }

    #[test]
    fn sharded_metrics_merge_across_shards() {
        let (mut device, mut cache) = setup_sharded(4);
        for i in 0..12u64 {
            cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
        }
        // Typed view and merged snapshot agree, summed over shards.
        assert_eq!(device.metrics().rd_own, 12);
        assert_eq!(device.metrics().undo_entries, 12);
        assert_eq!(device.metric_snapshot().counter("rd_own"), 12);
        assert_eq!(device.metric_snapshot().counter("undo_entries"), 12);
    }

    #[test]
    fn sharded_crash_recovers_to_committed_snapshot() {
        let (mut device, mut cache) = setup_sharded(8);
        for i in 0..8u64 {
            cache.write(LineAddr(i), CacheLine::filled(0x11), &mut device).unwrap();
        }
        device.persist(&mut cache).unwrap(); // epoch 1
        for i in 0..8u64 {
            cache.write(LineAddr(i), CacheLine::filled(0x22), &mut device).unwrap();
        }
        // Unpersisted epoch 2 must vanish.
        let pool = device.crash_into_pool();
        let mut device = PaxDevice::open(pool, DeviceConfig::default().with_shards(8)).unwrap();
        let mut cache2 = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        for i in 0..8u64 {
            assert_eq!(
                cache2.read(LineAddr(i), &mut device).unwrap(),
                CacheLine::filled(0x11),
                "line {i}"
            );
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_geometry() {
        let mk = || PmPool::create(PoolConfig::small()).unwrap();
        let err = PaxDevice::open(mk(), DeviceConfig::default().with_shards(0)).unwrap_err();
        assert!(matches!(err, PmError::Config(_)), "got {err}");
        let err =
            PaxDevice::open(mk(), DeviceConfig::default().with_log_pump_interval(0)).unwrap_err();
        assert!(matches!(err, PmError::Config(_)), "got {err}");
        // HBM too small to give each of the 4 lanes one 8-way set.
        let tiny = DeviceConfig::default().with_shards(4).with_hbm(HbmConfig {
            capacity_bytes: 2 * 64 * 8,
            ways: 8,
            policy: EvictionPolicy::Lru,
        });
        let err = PaxDevice::open(mk(), tiny).unwrap_err();
        assert!(matches!(err, PmError::Config(_)), "got {err}");
        // Overlapping tenant regions are rejected before any state is
        // built.
        let regions = vec![TenantRegion::new(0, 64), TenantRegion::new(32, 64)];
        let err = PaxDevice::open_multi(mk(), DeviceConfig::default(), regions).unwrap_err();
        assert!(matches!(err, PmError::Config(_)), "got {err}");
    }

    #[test]
    fn tenant_persist_does_not_drain_the_other_tenants_epoch() {
        let (mut device, mut cache) = setup_tenants(2, 2);
        let b = device.tenants().region(1).vpm_base;
        cache.write(LineAddr(0), CacheLine::filled(0xA1), &mut device).unwrap();
        cache.write(LineAddr(b), CacheLine::filled(0xB1), &mut device).unwrap();
        assert_eq!(device.epoch_log_len_for(0), 1);
        assert_eq!(device.epoch_log_len_for(1), 1);

        // Tenant 0 persists; tenant 1's epoch stays open and uncommitted.
        assert_eq!(device.persist_tenant(0, &mut cache).unwrap(), 1);
        assert_eq!(device.committed_epoch_for(0).unwrap(), 1);
        assert_eq!(device.committed_epoch_for(1).unwrap(), 0);
        assert_eq!(device.epoch_log_len_for(1), 1, "tenant 1's epoch log must be untouched");
        assert_eq!(device.current_epoch_for(0), 2);
        assert_eq!(device.current_epoch_for(1), 1);
        // Tenant 1's line is still only host-cached: its epoch was not
        // flushed by tenant 0's barrier.
        assert!(cache.state_of(LineAddr(b)).is_some(), "tenant 1's line must stay cached");
    }

    #[test]
    fn tenant_async_persist_drains_independently() {
        let (mut device, mut cache) = setup_tenants(2, 2);
        let b = device.tenants().region(1).vpm_base;
        for i in 0..4u64 {
            cache.write(LineAddr(i), CacheLine::filled(0xA0 + i as u8), &mut device).unwrap();
            cache.write(LineAddr(b + i), CacheLine::filled(0xB0 + i as u8), &mut device).unwrap();
        }
        let ea = device.persist_async_tenant(0, &mut cache).unwrap();
        assert_eq!(device.persist_pending_tenant(0), Some(ea));
        assert_eq!(device.persist_pending_tenant(1), None);
        // Tenant 1 commits synchronously while tenant 0 is still
        // draining; the barrier must not complete tenant 0's drain.
        device.persist_tenant(1, &mut cache).unwrap();
        assert_eq!(device.committed_epoch_for(1).unwrap(), 1);
        device.persist_wait_tenant(0).unwrap();
        assert_eq!(device.committed_epoch_for(0).unwrap(), ea);
    }

    #[test]
    fn crash_mid_tenant_epoch_recovers_each_pool_independently() {
        let (mut device, mut cache) = setup_tenants(2, 2);
        let b = device.tenants().region(1).vpm_base;
        cache.write(LineAddr(0), CacheLine::filled(0xA1), &mut device).unwrap();
        cache.write(LineAddr(b), CacheLine::filled(0xB1), &mut device).unwrap();
        device.persist_tenant(0, &mut cache).unwrap();
        device.persist_tenant(1, &mut cache).unwrap();
        // Next epoch: both tenants write again, only tenant 1 persists.
        cache.write(LineAddr(0), CacheLine::filled(0xA2), &mut device).unwrap();
        cache.write(LineAddr(b), CacheLine::filled(0xB2), &mut device).unwrap();
        device.persist_tenant(1, &mut cache).unwrap();

        let pool = device.crash_into_pool();
        let regions = even_split(pool.layout().data_lines, 2);
        let mut device =
            PaxDevice::open_multi(pool, DeviceConfig::default().with_shards(2), regions).unwrap();
        assert_eq!(device.committed_epoch_for(0).unwrap(), 1);
        assert_eq!(device.committed_epoch_for(1).unwrap(), 2);
        let mut cache2 = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        // Tenant 0 rolls back to its epoch-1 snapshot; tenant 1 keeps its
        // epoch-2 data — no cross-contamination either way.
        assert_eq!(cache2.read(LineAddr(0), &mut device).unwrap(), CacheLine::filled(0xA1));
        assert_eq!(cache2.read(LineAddr(b), &mut device).unwrap(), CacheLine::filled(0xB2));
    }

    #[test]
    fn tenant_labels_conserve_counter_totals() {
        let (mut device, mut cache) = setup_tenants(2, 2);
        let b = device.tenants().region(1).vpm_base;
        for i in 0..4u64 {
            cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
        }
        for i in 0..2u64 {
            cache.write(LineAddr(b + i), CacheLine::filled(2), &mut device).unwrap();
        }
        device.persist_tenant(0, &mut cache).unwrap();
        let snap = device.metric_snapshot();
        assert_eq!(snap.counter("tenants"), 2);
        for name in ["rd_own", "undo_entries", "persists", "device_writebacks"] {
            assert_eq!(
                snap.counter(&format!("tenant0/{name}")) + snap.counter(&format!("tenant1/{name}")),
                snap.counter(name),
                "{name} must conserve across tenant labels"
            );
        }
        assert_eq!(snap.counter("tenant0/undo_entries"), 4);
        assert_eq!(snap.counter("tenant1/undo_entries"), 2);
        assert_eq!(snap.counter("tenant0/persists"), 1);
        assert_eq!(snap.counter("tenant1/persists"), 0);
    }

    #[test]
    fn adaptive_budgets_drain_backlog_faster() {
        let run = |adaptive: bool| -> u64 {
            let pool = PmPool::create(PoolConfig::small()).unwrap();
            let sched = if adaptive {
                SchedConfig::default().with_adaptive()
            } else {
                SchedConfig::default()
            };
            let config =
                DeviceConfig::default().with_log_pump_interval(usize::MAX).with_sched(sched);
            let mut device = PaxDevice::open(pool, config).unwrap();
            let mut cache = CoherentCache::new(CacheConfig::tiny(64 << 10, 8));
            for i in 0..64u64 {
                cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
            }
            let mut ticks = 0u64;
            while device.log_durable_offset() < 64 {
                device.tick(1).unwrap();
                ticks += 1;
                assert!(ticks < 1_000, "backlog must drain");
            }
            ticks
        };
        assert!(run(true) < run(false), "adaptive boost must drain a deep backlog in fewer ticks");
    }

    /// Host writes `n` lines, then gives every copy back via dirty
    /// eviction — the directory's filtered case.
    fn write_then_evict_all(device: &mut PaxDevice, cache: &mut CoherentCache, n: u64) {
        for i in 0..n {
            cache.write(LineAddr(i), CacheLine::filled(0x40 + i as u8), device).unwrap();
        }
        for i in 0..n {
            let data = cache.snoop_invalidate(LineAddr(i)).unwrap();
            device.dirty_evict(LineAddr(i), data).unwrap();
        }
    }

    #[test]
    fn directory_filters_snoops_for_lines_the_host_gave_up() {
        let (mut device, mut cache) = setup();
        write_then_evict_all(&mut device, &mut cache, 4);
        let before = device.metrics().snoops_sent;
        device.persist(&mut cache).unwrap();
        let m = device.metrics();
        assert_eq!(m.snoops_sent, before, "no snoops for lines the host handed back");
        assert_eq!(m.dir_filtered_snoops, 4);
        assert_eq!(m.dir_hits, 0);
        // The filtered persist still commits the evicted values.
        let mut pool = device.crash_into_pool();
        for i in 0..4u64 {
            let abs = pool.layout().vpm_to_pool(i).unwrap();
            assert_eq!(pool.read_line(abs).unwrap(), CacheLine::filled(0x40 + i as u8));
        }
    }

    #[test]
    fn directory_snoops_lines_the_host_still_owns() {
        let (mut device, mut cache) = setup();
        for i in 0..4u64 {
            cache.write(LineAddr(i), CacheLine::filled(9), &mut device).unwrap();
        }
        device.persist(&mut cache).unwrap();
        let m = device.metrics();
        assert_eq!(m.snoops_sent, 4, "host-cached lines must still be snooped");
        assert_eq!(m.dir_hits, 4);
        assert_eq!(m.dir_filtered_snoops, 0);
    }

    #[test]
    fn disabled_directory_snoops_every_logged_line() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let config = DeviceConfig::default().with_directory(DirectoryConfig::disabled());
        let mut device = PaxDevice::open(pool, config).unwrap();
        let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        write_then_evict_all(&mut device, &mut cache, 4);
        device.persist(&mut cache).unwrap();
        let m = device.metrics();
        assert_eq!(m.snoops_sent, 4, "ablation mode snoops unconditionally");
        assert_eq!(m.dir_filtered_snoops, 0);
        assert_eq!(m.dir_hits, 0);
        assert_eq!(m.dir_resident, 0, "disabled directory tracks nothing");
    }

    #[test]
    fn dir_resident_gauge_tracks_ownership_lifecycle() {
        let (mut device, mut cache) = setup();
        for i in 0..3u64 {
            cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
        }
        assert_eq!(device.metrics().dir_resident, 3);
        // A dirty eviction is give-up evidence.
        let data = cache.snoop_invalidate(LineAddr(0)).unwrap();
        device.dirty_evict(LineAddr(0), data).unwrap();
        assert_eq!(device.metrics().dir_resident, 2);
        // Persist snoops (and clears) the rest.
        device.persist(&mut cache).unwrap();
        assert_eq!(device.metrics().dir_resident, 0);
        // Crash empties the volatile directory and its gauge.
        for i in 0..3u64 {
            cache.write(LineAddr(i), CacheLine::filled(2), &mut device).unwrap();
        }
        assert_eq!(device.metrics().dir_resident, 3);
        let (_pool, _trace, snap) = device.crash_into_parts();
        assert_eq!(snap.counter("dir_resident"), 0);
    }

    #[test]
    fn persist_batches_contiguous_writebacks() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let config = DeviceConfig::default().with_persist_wb_batch(4);
        let mut device = PaxDevice::open(pool, config).unwrap();
        let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        for i in 0..8u64 {
            cache.write(LineAddr(i), CacheLine::filled(i as u8), &mut device).unwrap();
        }
        device.persist(&mut cache).unwrap();
        let m = device.metrics();
        assert_eq!(m.device_writebacks, 8, "every line still written");
        assert_eq!(m.wb_batches, 2, "8 contiguous lines at cap 4 = 2 batches");
    }

    #[test]
    fn batched_persist_takes_fewer_durable_steps() {
        let run = |batch: usize| -> u64 {
            let pool = PmPool::create(PoolConfig::small()).unwrap();
            let config = DeviceConfig::default().with_persist_wb_batch(batch);
            let mut device = PaxDevice::open(pool, config).unwrap();
            let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
            for i in 0..16u64 {
                cache.write(LineAddr(i), CacheLine::filled(1), &mut device).unwrap();
            }
            let before = device.crash_clock().steps_taken();
            device.persist(&mut cache).unwrap();
            device.crash_clock().steps_taken() - before
        };
        assert!(
            run(8) < run(1),
            "coalesced batches must persist the same epoch in fewer durable-write steps"
        );
    }

    #[test]
    fn tenant_hbm_shares_slice_lane_capacity() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let mut regions = even_split(pool.layout().data_lines, 2);
        regions[0] = regions[0].with_hbm_share(3);
        // Tenant 1 keeps the default share of 1.
        let config = DeviceConfig::default().with_hbm(HbmConfig {
            capacity_bytes: 64 * pax_pm::LINE_SIZE,
            ways: 2,
            policy: EvictionPolicy::Lru,
        });
        let device = PaxDevice::open_multi(pool, config, regions).unwrap();
        // 64 lines split 3:1 across tenants, one lane each.
        assert_eq!(device.lanes[0].hbm.capacity_lines(), 48);
        assert_eq!(device.lanes[1].hbm.capacity_lines(), 16);
    }

    #[test]
    fn small_hbm_share_is_floored_at_one_set() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let mut regions = even_split(pool.layout().data_lines, 2);
        regions[0] = regions[0].with_hbm_share(63);
        let config = DeviceConfig::default().with_hbm(HbmConfig {
            capacity_bytes: 64 * pax_pm::LINE_SIZE,
            ways: 8,
            policy: EvictionPolicy::Lru,
        });
        let device = PaxDevice::open_multi(pool, config, regions).unwrap();
        // Tenant 1's 1/64 share is one line — rounded up to a full 8-way
        // set so the lane still functions.
        assert_eq!(device.lanes[1].hbm.capacity_lines(), 8);
    }

    #[test]
    fn config_validation_rejects_zero_batch_and_zero_share() {
        let mk = || PmPool::create(PoolConfig::small()).unwrap();
        let err =
            PaxDevice::open(mk(), DeviceConfig::default().with_persist_wb_batch(0)).unwrap_err();
        assert!(matches!(err, PmError::Config(_)), "got {err}");
        let regions = vec![TenantRegion::new(0, 64).with_hbm_share(0)];
        let err = PaxDevice::open_multi(mk(), DeviceConfig::default(), regions).unwrap_err();
        assert!(matches!(err, PmError::Config(_)), "got {err}");
        assert!(err.to_string().contains("HBM share"));
    }

    #[test]
    fn dir_counters_conserve_across_tenant_labels() {
        let (mut device, mut cache) = setup_tenants(2, 2);
        let b = device.tenants().region(1).vpm_base;
        write_then_evict_all(&mut device, &mut cache, 4);
        for i in 0..2u64 {
            cache.write(LineAddr(b + i), CacheLine::filled(2), &mut device).unwrap();
        }
        device.persist(&mut cache).unwrap();
        let snap = device.metric_snapshot();
        for name in ["dir_hits", "dir_filtered_snoops", "wb_batches", "snoops_sent"] {
            assert_eq!(
                snap.counter(&format!("tenant0/{name}")) + snap.counter(&format!("tenant1/{name}")),
                snap.counter(name),
                "{name} must conserve across tenant labels"
            );
        }
        assert_eq!(snap.counter("dir_filtered_snoops"), 4, "tenant 0's evicted lines");
        assert_eq!(snap.counter("dir_hits"), 2, "tenant 1's still-cached lines");
    }

    /// Regression for the `persist_poll_try` starvation bug: a contended
    /// ctl lock used to be skipped silently and forever. Now every skip
    /// is counted, and once the streak passes `poll_skip_limit` the poll
    /// escalates to the bounded spin — which wins as soon as the holder
    /// lets go, so the async drain commits instead of starving.
    #[test]
    fn contended_poll_counts_skips_and_drains_after_release() {
        let (mut device, mut cache) = setup_cfg(DeviceConfig::default().with_poll_skip_limit(4), 1);
        for i in 0..6u64 {
            cache.write(LineAddr(i), CacheLine::filled(i as u8), &mut device).unwrap();
        }
        let epoch = device.persist_async(&mut cache).unwrap();
        {
            // A persist barrier on another thread, frozen mid-flight.
            let _ctl = lock(&device.draining[0]);
            for _ in 0..6 {
                device.persist_poll_try().unwrap();
            }
            let m = device.metrics();
            assert_eq!(m.persist_poll_skipped, 6, "every contended poll must be counted");
            assert_eq!(device.poll_skips[0].load(Ordering::Relaxed), 6, "streak armed");
        }
        // Holder gone: the next poll takes the fast path, resets the
        // streak, and the drain advances to commit.
        while device.persist_pending().is_some() {
            device.persist_poll_try().unwrap();
        }
        assert_eq!(device.poll_skips[0].load(Ordering::Relaxed), 0, "streak reset");
        assert_eq!(device.committed_epoch().unwrap(), epoch);
    }

    /// The two undo-bank engines must drive the machine identically in
    /// single-driver mode: same metrics, same durable epoch, same media
    /// state. (`tests/lockfree_log.rs` proves the byte-level half across
    /// random seeds; this is the quick in-crate smoke check.)
    #[test]
    fn cas_and_locked_engines_tick_identically() {
        let run = |config: DeviceConfig| {
            let pool = PmPool::create(PoolConfig::small()).unwrap();
            let mut device = PaxDevice::open(pool, config.with_shards(2)).unwrap();
            let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
            for i in 0..32u64 {
                cache.write(LineAddr(i % 11), CacheLine::filled(i as u8), &mut device).unwrap();
            }
            device.tick(8).unwrap();
            device.persist(&mut cache).unwrap();
            (device.metrics(), device.committed_epoch().unwrap())
        };
        let cas = run(DeviceConfig::default().with_cas_log());
        let locked = run(DeviceConfig::default().with_locked_log());
        assert_eq!(cas, locked);
    }

    /// Same twin-engine check for the HBM index: the concurrent set
    /// index and the mutex-era engine must drive the machine identically
    /// in single-driver mode. (`tests/hbm_lockfree.rs` proves the
    /// byte-level half across random seeds.)
    #[test]
    fn lockfree_and_locked_hbm_tick_identically() {
        let run = |config: DeviceConfig| {
            let pool = PmPool::create(PoolConfig::small()).unwrap();
            let mut device = PaxDevice::open(pool, config.with_shards(2)).unwrap();
            let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
            for i in 0..32u64 {
                cache.write(LineAddr(i % 11), CacheLine::filled(i as u8), &mut device).unwrap();
            }
            device.tick(8).unwrap();
            device.persist(&mut cache).unwrap();
            (device.metrics(), device.committed_epoch().unwrap())
        };
        let lockfree = run(DeviceConfig::default().with_lockfree_hbm());
        let locked = run(DeviceConfig::default().with_locked_hbm());
        assert_eq!(lockfree, locked);
    }

    /// The ISSUE's acceptance bar: a warm same-lane store takes **no**
    /// `Mutex<DeviceShard>` acquisition under the default (lock-free)
    /// engine, and still does under the `with_locked_hbm` baseline.
    /// Drives `read_own` through the `&PaxDevice` home agent directly —
    /// a host cache would keep the lines in M state and hide the device
    /// hot path entirely.
    #[test]
    fn store_hit_path_takes_no_lane_lock() {
        let run = |config: DeviceConfig| -> u64 {
            let pool = PmPool::create(PoolConfig::small()).unwrap();
            let device = PaxDevice::open(pool, config).unwrap();
            let mut home = &device;
            // Warm: first touch of each line misses HBM and may evict.
            for i in 0..16u64 {
                home.read_own(LineAddr(i)).unwrap();
            }
            let before = device.lane_lock_acquisitions();
            for _ in 0..4 {
                for i in 0..16u64 {
                    home.read_own(LineAddr(i)).unwrap();
                }
            }
            device.lane_lock_acquisitions() - before
        };
        assert_eq!(
            run(DeviceConfig::default().with_cas_log().with_lockfree_hbm()),
            0,
            "lockfree store hit path must not touch the lane mutex"
        );
        assert!(
            run(DeviceConfig::default().with_locked_hbm()) > 0,
            "locked baseline keeps the lane mutex on the hot path"
        );
    }

    /// Four real threads hammering one lane: the atomic counters must
    /// conserve exactly (no lost increments) and the epoch-log dedup
    /// must admit each line once.
    #[test]
    fn concurrent_same_lane_stores_preserve_telemetry_conservation() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let config = DeviceConfig::default().with_cas_log().with_lockfree_hbm();
        let device = PaxDevice::open(pool, config).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut home = &device;
                    for i in 0..200u64 {
                        home.read_own(LineAddr(i % 16)).unwrap();
                    }
                });
            }
        });
        let m = device.metrics();
        assert_eq!(m.rd_own, 800, "every RdOwn counted");
        assert_eq!(m.undo_entries, 16, "epoch-log dedup admits each line once");
        assert_eq!(m.hbm_hits + m.hbm_misses, 800, "every resolve classified");
    }

    #[test]
    fn config_rejects_zero_poll_skip_limit() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let err = PaxDevice::open(pool, DeviceConfig::default().with_poll_skip_limit(0));
        assert!(matches!(err.unwrap_err(), PmError::Config(_)));
    }
}
