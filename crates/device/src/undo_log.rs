//! The persistent, epoch-tagged undo log (§3.2–3.3).
//!
//! On every first-in-epoch `RdOwn` the device appends an entry recording
//! the line's *old* value. Appends are buffered in device SRAM and drained
//! to the pool's log region asynchronously; durability advances at a
//! monotonically increasing entry offset (the *watermark*), which is what
//! lets the device write modified data lines back to PM mid-epoch: a data
//! line may be written back as soon as the entry covering it is durable.
//!
//! # On-media format
//!
//! Each entry occupies [`ENTRY_LINES`] = 2 consecutive lines in the pool's
//! log region:
//!
//! ```text
//! line 0 (header): magic[8] | epoch u64 | vpm_line u64 | checksum u64
//! line 1 (data):   the 64-byte pre-image of the logged line
//! ```
//!
//! The checksum folds the data line with the header fields so recovery can
//! detect (and safely skip) entries torn by a crash mid-append: a torn
//! entry's data write back cannot have happened — write back is gated on
//! the entry being durable — so skipping it is always sound.

use pax_pm::{CacheLine, CrashOutcome, LineAddr, PmError, PmPool, Result, LINE_SIZE};

/// Lines per undo-log entry (header + pre-image).
pub const ENTRY_LINES: u64 = 2;

const LOG_MAGIC: &[u8; 8] = b"PAXUNDO1";

/// One undo-log record: "line `vpm_line` held `old` at the start of
/// `epoch`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoEntry {
    /// Epoch during which the line was first modified.
    pub epoch: u64,
    /// The vPM line the entry covers.
    pub vpm_line: LineAddr,
    /// The line's contents when the epoch began.
    pub old: CacheLine,
}

impl UndoEntry {
    fn checksum(&self) -> u64 {
        let mut sum = 0xfeed_face_cafe_beefu64;
        sum ^= self.epoch.rotate_left(17);
        sum ^= self.vpm_line.0.rotate_left(31);
        for chunk in self.old.as_bytes().chunks(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            sum = sum.rotate_left(7) ^ u64::from_le_bytes(b);
        }
        sum
    }

    fn header_line(&self) -> CacheLine {
        let mut l = CacheLine::zeroed();
        l.write_at(0, LOG_MAGIC);
        l.write_at(8, &self.epoch.to_le_bytes());
        l.write_at(16, &self.vpm_line.0.to_le_bytes());
        l.write_at(24, &self.checksum().to_le_bytes());
        l
    }

    fn parse(header: &CacheLine, data: &CacheLine) -> Option<UndoEntry> {
        if header.read_at(0, 8) != LOG_MAGIC {
            return None;
        }
        let mut buf = [0u8; 8];
        buf.copy_from_slice(header.read_at(8, 8));
        let epoch = u64::from_le_bytes(buf);
        buf.copy_from_slice(header.read_at(16, 8));
        let vpm_line = LineAddr(u64::from_le_bytes(buf));
        buf.copy_from_slice(header.read_at(24, 8));
        let stored_sum = u64::from_le_bytes(buf);
        let entry = UndoEntry { epoch, vpm_line, old: data.clone() };
        (entry.checksum() == stored_sum).then_some(entry)
    }
}

/// The device's undo-log writer: volatile append buffer + durable
/// watermark over the pool's log region.
#[derive(Debug)]
pub struct UndoLog {
    /// Entries appended but not yet written durably, oldest first.
    pending: Vec<UndoEntry>,
    /// Entries durably on media from the start of the region.
    durable_entries: u64,
    /// Capacity of the log region in entries.
    capacity_entries: u64,
    /// Total bytes of log writes issued (for write-amplification benches).
    bytes_written: u64,
}

impl UndoLog {
    /// A log writer over a pool's log region.
    pub fn new(pool: &PmPool) -> Self {
        UndoLog {
            pending: Vec::new(),
            durable_entries: 0,
            capacity_entries: pool.layout().log_lines / ENTRY_LINES,
            bytes_written: 0,
        }
    }

    /// Entries known durable; write back of a data line tagged with offset
    /// `o` is legal once `o < durable_offset()`.
    pub fn durable_offset(&self) -> u64 {
        self.durable_entries
    }

    /// Entries appended so far this epoch cycle (durable + pending).
    pub fn appended(&self) -> u64 {
        self.durable_entries + self.pending.len() as u64
    }

    /// Entries awaiting the background drain.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Capacity of the log region, in entries.
    pub fn capacity_entries(&self) -> u64 {
        self.capacity_entries
    }

    /// Total log bytes issued to media.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Appends an entry, returning its offset (entry index).
    ///
    /// The append itself is volatile — this is the asynchrony of §3.2: the
    /// host's `RdOwn` is acknowledged without waiting for durability.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::LogFull`] when the region is exhausted; the
    /// caller (libpax) should `persist()` to reset the log.
    pub fn append(&mut self, entry: UndoEntry) -> Result<u64> {
        let offset = self.appended();
        if offset >= self.capacity_entries {
            return Err(PmError::LogFull { capacity_entries: self.capacity_entries });
        }
        self.pending.push(entry);
        Ok(offset)
    }

    /// Drains up to `max_entries` pending entries to the pool's log region
    /// and advances the durable watermark. Returns entries drained.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] if the pool's crash clock fires, and
    /// media errors from the pool.
    pub fn pump(
        &mut self,
        pool: &mut PmPool,
        clock: &pax_pm::CrashClock,
        max_entries: usize,
    ) -> Result<usize> {
        let n = max_entries.min(self.pending.len());
        for _ in 0..n {
            if clock.tick() == CrashOutcome::Crashed {
                pool.crash();
                return Err(PmError::Crashed);
            }
            let entry = self.pending.remove(0);
            let base = pool.layout().log_start().0 + self.durable_entries * ENTRY_LINES;
            pool.write_line(LineAddr(base), entry.header_line())?;
            pool.write_line(LineAddr(base + 1), entry.old.clone())?;
            // The watermark only advances once both lines are durable.
            pool.drain();
            self.durable_entries += 1;
            self.bytes_written += (ENTRY_LINES as usize * LINE_SIZE) as u64;
        }
        Ok(n)
    }

    /// Drains everything pending (the synchronous step inside `persist()`).
    ///
    /// # Errors
    ///
    /// See [`UndoLog::pump`].
    pub fn flush(&mut self, pool: &mut PmPool, clock: &pax_pm::CrashClock) -> Result<()> {
        while !self.pending.is_empty() {
            self.pump(pool, clock, usize::MAX)?;
        }
        Ok(())
    }

    /// Resets the volatile tail after an epoch commits: subsequent appends
    /// overwrite the region from the start. Stale entries left on media
    /// belong to committed epochs and are ignored by recovery.
    pub fn reset_after_commit(&mut self) {
        debug_assert!(self.pending.is_empty(), "reset with undrained entries");
        self.pending.clear();
        self.durable_entries = 0;
    }

    /// Drops the volatile tail (power loss).
    pub fn crash(&mut self) {
        self.pending.clear();
    }

    /// Scans the pool's log region for valid entries (recovery, §3.4).
    ///
    /// Every slot is parsed; torn or never-written slots fail checksum
    /// validation and are skipped. Returns entries in on-media order.
    ///
    /// # Errors
    ///
    /// Surfaces media read errors.
    pub fn scan(pool: &mut PmPool) -> Result<Vec<(u64, UndoEntry)>> {
        let layout = pool.layout();
        let capacity = layout.log_lines / ENTRY_LINES;
        let mut out = Vec::new();
        for i in 0..capacity {
            let base = layout.log_start().0 + i * ENTRY_LINES;
            let header = pool.read_line(LineAddr(base))?;
            // Cheap pre-filter: never-written slots have no magic.
            if header.read_at(0, 8) != LOG_MAGIC {
                continue;
            }
            let data = pool.read_line(LineAddr(base + 1))?;
            if let Some(entry) = UndoEntry::parse(&header, &data) {
                out.push((i, entry));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_pm::{CrashClock, PoolConfig};

    fn pool() -> PmPool {
        PmPool::create(PoolConfig::small()).unwrap()
    }

    fn entry(epoch: u64, line: u64, fill: u8) -> UndoEntry {
        UndoEntry { epoch, vpm_line: LineAddr(line), old: CacheLine::filled(fill) }
    }

    #[test]
    fn append_assigns_monotonic_offsets() {
        let p = pool();
        let mut log = UndoLog::new(&p);
        assert_eq!(log.append(entry(1, 0, 0)).unwrap(), 0);
        assert_eq!(log.append(entry(1, 1, 0)).unwrap(), 1);
        assert_eq!(log.appended(), 2);
        assert_eq!(log.durable_offset(), 0); // nothing drained yet
    }

    #[test]
    fn pump_advances_watermark_incrementally() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        for i in 0..5 {
            log.append(entry(1, i, i as u8)).unwrap();
        }
        assert_eq!(log.pump(&mut p, &clock, 2).unwrap(), 2);
        assert_eq!(log.durable_offset(), 2);
        assert_eq!(log.pending_len(), 3);
        log.flush(&mut p, &clock).unwrap();
        assert_eq!(log.durable_offset(), 5);
    }

    #[test]
    fn scan_round_trips_entries() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(3, 7, 0xAA)).unwrap();
        log.append(entry(3, 9, 0xBB)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].1, entry(3, 7, 0xAA));
        assert_eq!(scanned[1].1, entry(3, 9, 0xBB));
    }

    #[test]
    fn pending_entries_are_lost_on_crash() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 0, 1)).unwrap();
        log.pump(&mut p, &clock, 1).unwrap();
        log.append(entry(1, 1, 2)).unwrap();
        log.crash();
        p.crash();
        let scanned = UndoLog::scan(&mut p).unwrap();
        assert_eq!(scanned.len(), 1, "only the drained entry survives");
        assert_eq!(scanned[0].1.vpm_line, LineAddr(0));
    }

    #[test]
    fn torn_entry_fails_checksum_and_is_skipped() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 0, 1)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        // Corrupt the data line of the entry (simulated torn write).
        let data_line = LineAddr(p.layout().log_start().0 + 1);
        p.write_line(data_line, CacheLine::filled(0xFF)).unwrap();
        p.drain();
        assert!(UndoLog::scan(&mut p).unwrap().is_empty());
    }

    #[test]
    fn log_full_is_reported() {
        let mut cfg = PoolConfig::small();
        cfg.log_bytes = 4 * LINE_SIZE; // room for 2 entries
        let p = PmPool::create(cfg).unwrap();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 0, 0)).unwrap();
        log.append(entry(1, 1, 0)).unwrap();
        assert!(matches!(log.append(entry(1, 2, 0)), Err(PmError::LogFull { .. })));
    }

    #[test]
    fn reset_after_commit_reuses_region() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 5, 1)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        log.reset_after_commit();
        assert_eq!(log.durable_offset(), 0);
        log.append(entry(2, 6, 2)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        // Slot 0 now holds the epoch-2 entry; the epoch-1 entry is gone.
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1.epoch, 2);
    }

    #[test]
    fn crash_clock_interrupts_pump() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        for i in 0..4 {
            log.append(entry(1, i, 0)).unwrap();
        }
        clock.arm(2); // two pump steps succeed, third crashes
        assert_eq!(log.pump(&mut p, &clock, 2).unwrap(), 2);
        assert!(matches!(log.flush(&mut p, &clock), Err(PmError::Crashed)));
        assert_eq!(log.durable_offset(), 2);
    }

    #[test]
    fn bytes_written_counts_both_lines() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 0, 0)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        assert_eq!(log.bytes_written(), 128);
    }
}
