//! The persistent, epoch-tagged undo log (§3.2–3.3).
//!
//! On every first-in-epoch `RdOwn` the device appends an entry recording
//! the line's *old* value. Appends are buffered in device SRAM and drained
//! to the pool's log region asynchronously; durability advances at a
//! monotonically increasing entry offset (the *watermark*), which is what
//! lets the device write modified data lines back to PM mid-epoch: a data
//! line may be written back as soon as the entry covering it is durable.
//!
//! # Offsets are logical and monotonic
//!
//! Entry offsets never reset: they count appends over the writer's whole
//! lifetime. The physical slot of offset `o` is `o % capacity`, so the
//! region is a ring. A slot may be overwritten only once the epoch of the
//! entry it holds has committed — [`UndoLog::recycle_to`] advances the
//! recycle watermark when that happens. This makes two things true by
//! construction:
//!
//! 1. a `log_offset` stamped on a buffered line stays comparable against
//!    [`UndoLog::durable_offset`] forever (committed entries are simply
//!    `< durable` for the rest of time — no stale-offset ambiguity), and
//! 2. the region can be recycled *incrementally* under overlapped epochs:
//!    committing epoch N frees exactly N's slots, even while epoch N+1 is
//!    already appending.
//!
//! # On-media format
//!
//! Each entry occupies [`ENTRY_LINES`] = 2 consecutive lines in its slot
//! of the pool's log region:
//!
//! ```text
//! line 0 (header): magic[8] | epoch u64 | vpm_line u64 | checksum u64 | tenant u32
//! line 1 (data):   the 64-byte pre-image of the logged line
//! ```
//!
//! The checksum folds the data line with the header fields so recovery can
//! detect (and safely skip) entries torn by a crash mid-append: a torn
//! entry's data write back cannot have happened — write back is gated on
//! the entry being durable — so skipping it is always sound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pax_pm::{CacheLine, CrashOutcome, LineAddr, PmError, PmPool, Result, LINE_SIZE};

/// The durable watermark of one [`UndoLog`], shared out-of-band.
///
/// The watermark is the llfree-style atomic that lets readers order
/// against the log *without* taking the lane lock that guards the
/// writer: `pump` publishes with a release store **after** the entry's
/// two lines are durably in the pool, and [`LogWatermark::durable`]
/// reads with an acquire load — so any offset a reader observes is
/// backed by media. `persist_poll`'s fast path uses this to skip
/// already-durable banks lock-free.
#[derive(Debug, Default)]
pub struct LogWatermark(AtomicU64);

impl LogWatermark {
    /// Entries known durable (acquire).
    pub fn durable(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    fn publish(&self, durable: u64) {
        self.0.store(durable, Ordering::Release);
    }
}

/// Lines per undo-log entry (header + pre-image).
pub const ENTRY_LINES: u64 = 2;

const LOG_MAGIC: &[u8; 8] = b"PAXUNDO1";

/// One undo-log record: "line `vpm_line` held `old` at the start of
/// `epoch`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoEntry {
    /// Epoch during which the line was first modified. Epoch numbers are
    /// **per tenant**: entries of different tenants are never compared.
    pub epoch: u64,
    /// The vPM line the entry covers.
    pub vpm_line: LineAddr,
    /// The pool context (tenant) the entry belongs to. Recovery rolls
    /// each entry back against *its own tenant's* committed epoch, so
    /// entries of different tenants can interleave freely in shared
    /// banks without cross-contaminating rollback.
    pub tenant: u32,
    /// The line's contents when the epoch began.
    pub old: CacheLine,
}

impl UndoEntry {
    /// An entry for the single-tenant (tenant 0) pool context.
    pub fn single(epoch: u64, vpm_line: LineAddr, old: CacheLine) -> Self {
        UndoEntry { epoch, vpm_line, tenant: 0, old }
    }

    fn checksum(&self) -> u64 {
        let mut sum = 0xfeed_face_cafe_beefu64;
        sum ^= self.epoch.rotate_left(17);
        sum ^= self.vpm_line.0.rotate_left(31);
        sum ^= (self.tenant as u64).rotate_left(47);
        for chunk in self.old.as_bytes().chunks(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            sum = sum.rotate_left(7) ^ u64::from_le_bytes(b);
        }
        sum
    }

    fn header_line(&self) -> CacheLine {
        let mut l = CacheLine::zeroed();
        l.write_at(0, LOG_MAGIC);
        l.write_at(8, &self.epoch.to_le_bytes());
        l.write_at(16, &self.vpm_line.0.to_le_bytes());
        l.write_at(24, &self.checksum().to_le_bytes());
        l.write_at(32, &self.tenant.to_le_bytes());
        l
    }

    fn parse(header: &CacheLine, data: &CacheLine) -> Option<UndoEntry> {
        if header.read_at(0, 8) != LOG_MAGIC {
            return None;
        }
        let mut buf = [0u8; 8];
        buf.copy_from_slice(header.read_at(8, 8));
        let epoch = u64::from_le_bytes(buf);
        buf.copy_from_slice(header.read_at(16, 8));
        let vpm_line = LineAddr(u64::from_le_bytes(buf));
        buf.copy_from_slice(header.read_at(24, 8));
        let stored_sum = u64::from_le_bytes(buf);
        let mut tbuf = [0u8; 4];
        tbuf.copy_from_slice(header.read_at(32, 4));
        let tenant = u32::from_le_bytes(tbuf);
        let entry = UndoEntry { epoch, vpm_line, tenant, old: data.clone() };
        (entry.checksum() == stored_sum).then_some(entry)
    }
}

/// The device's undo-log writer: volatile append buffer + durable
/// watermark over (a slice of) the pool's log region.
#[derive(Debug)]
pub struct UndoLog {
    /// Entries appended but not yet written durably, oldest first.
    /// A `VecDeque` because `pump` drains from the front: draining N
    /// entries is O(N), not the O(N²) a `Vec::remove(0)` loop would be.
    pending: VecDeque<UndoEntry>,
    /// Logical offset of the durable watermark (entries drained to media
    /// over the writer's lifetime; monotonic, never resets). Shared as an
    /// atomic so lock-free readers can order against it — see
    /// [`LogWatermark`].
    durable: Arc<LogWatermark>,
    /// Logical offsets below this belong to committed epochs; their slots
    /// may be overwritten.
    recycled_below: u64,
    /// First pool line of this writer's slice of the log region.
    region_start: u64,
    /// Capacity of this writer's slice, in entries.
    capacity_entries: u64,
    /// Total bytes of log writes issued (for write-amplification benches).
    bytes_written: u64,
}

impl UndoLog {
    /// A log writer over a pool's whole log region.
    pub fn new(pool: &PmPool) -> Self {
        let layout = pool.layout();
        Self::with_region(layout.log_start().0, layout.log_lines / ENTRY_LINES)
    }

    /// A log writer over `capacity_entries` slots starting at pool line
    /// `region_start` — how a sharded device gives each shard its own
    /// bank of the log region.
    pub fn with_region(region_start: u64, capacity_entries: u64) -> Self {
        UndoLog {
            pending: VecDeque::new(),
            durable: Arc::new(LogWatermark::default()),
            recycled_below: 0,
            region_start,
            capacity_entries,
            bytes_written: 0,
        }
    }

    /// Entries known durable; write back of a data line tagged with offset
    /// `o` is legal once `o < durable_offset()`.
    pub fn durable_offset(&self) -> u64 {
        self.durable.durable()
    }

    /// A shared handle onto this writer's durable watermark, readable
    /// without whatever lock guards the writer itself.
    pub fn watermark(&self) -> Arc<LogWatermark> {
        Arc::clone(&self.durable)
    }

    /// Entries appended so far over the writer's lifetime (durable +
    /// pending). The next append gets this offset.
    pub fn appended(&self) -> u64 {
        self.durable.durable() + self.pending.len() as u64
    }

    /// Entries awaiting the background drain.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Entries whose slots are still held by uncommitted epochs.
    pub fn live_entries(&self) -> u64 {
        self.appended() - self.recycled_below
    }

    /// Capacity of this writer's region slice, in entries.
    pub fn capacity_entries(&self) -> u64 {
        self.capacity_entries
    }

    /// Total log bytes issued to media.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Pool line of the slot backing logical offset `offset`.
    fn slot_base(&self, offset: u64) -> u64 {
        self.region_start + (offset % self.capacity_entries) * ENTRY_LINES
    }

    /// Appends an entry, returning its logical offset.
    ///
    /// The append itself is volatile — this is the asynchrony of §3.2: the
    /// host's `RdOwn` is acknowledged without waiting for durability.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::LogFull`] when every slot is held by an
    /// uncommitted epoch; the caller (libpax) should `persist()` to
    /// recycle the region.
    pub fn append(&mut self, entry: UndoEntry) -> Result<u64> {
        if self.live_entries() >= self.capacity_entries {
            return Err(PmError::LogFull { capacity_entries: self.capacity_entries });
        }
        let offset = self.appended();
        self.pending.push_back(entry);
        Ok(offset)
    }

    /// Drains up to `max_entries` pending entries to the log region and
    /// advances the durable watermark. Returns entries drained.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] if the pool's crash clock fires, and
    /// media errors from the pool.
    pub fn pump(
        &mut self,
        pool: &mut PmPool,
        clock: &pax_pm::CrashClock,
        max_entries: usize,
    ) -> Result<usize> {
        let n = max_entries.min(self.pending.len());
        for _ in 0..n {
            if clock.tick() == CrashOutcome::Crashed {
                pool.crash();
                return Err(PmError::Crashed);
            }
            let entry = self.pending.pop_front().expect("n bounded by pending length");
            let durable = self.durable.durable();
            let base = self.slot_base(durable);
            pool.write_line(LineAddr(base), entry.header_line())?;
            pool.write_line(LineAddr(base + 1), entry.old.clone())?;
            // The watermark only advances once both lines are durable:
            // the release store publishes the drained media state to any
            // thread that acquires the new offset.
            pool.drain();
            self.durable.publish(durable + 1);
            self.bytes_written += (ENTRY_LINES as usize * LINE_SIZE) as u64;
        }
        Ok(n)
    }

    /// Drains everything pending (the synchronous step inside `persist()`).
    ///
    /// # Errors
    ///
    /// See [`UndoLog::pump`].
    pub fn flush(&mut self, pool: &mut PmPool, clock: &pax_pm::CrashClock) -> Result<()> {
        while !self.pending.is_empty() {
            self.pump(pool, clock, usize::MAX)?;
        }
        Ok(())
    }

    /// Marks every entry below logical offset `watermark` as committed,
    /// freeing its slot for reuse. Called when the epoch that appended
    /// those entries durably commits; the watermark is clamped to the
    /// durable offset (an undrained entry cannot belong to a committed
    /// epoch) and never moves backwards.
    pub fn recycle_to(&mut self, watermark: u64) {
        self.recycled_below = self.recycled_below.max(watermark.min(self.durable.durable()));
    }

    /// Recycles the whole region after a fully-drained epoch commits (the
    /// synchronous-persist epilogue). Offsets stay monotonic; only slot
    /// ownership resets. Stale entries left on media belong to committed
    /// epochs and are ignored by recovery.
    pub fn reset_after_commit(&mut self) {
        debug_assert!(self.pending.is_empty(), "reset with undrained entries");
        self.recycle_to(self.durable.durable());
    }

    /// Drops the volatile tail (power loss).
    pub fn crash(&mut self) {
        self.pending.clear();
    }

    /// Scans the pool's log region for valid entries (recovery, §3.4).
    ///
    /// Every slot is parsed; torn or never-written slots fail checksum
    /// validation and are skipped. Returns entries in on-media slot order
    /// — **not** append order once the ring has wrapped; recovery orders
    /// rollback by epoch, which slot reuse cannot disturb (a slot is only
    /// overwritten after its epoch commits).
    ///
    /// # Errors
    ///
    /// Surfaces media read errors.
    pub fn scan(pool: &mut PmPool) -> Result<Vec<(u64, UndoEntry)>> {
        let layout = pool.layout();
        let capacity = layout.log_lines / ENTRY_LINES;
        let mut out = Vec::new();
        for i in 0..capacity {
            let base = layout.log_start().0 + i * ENTRY_LINES;
            let header = pool.read_line(LineAddr(base))?;
            // Cheap pre-filter: never-written slots have no magic.
            if header.read_at(0, 8) != LOG_MAGIC {
                continue;
            }
            let data = pool.read_line(LineAddr(base + 1))?;
            if let Some(entry) = UndoEntry::parse(&header, &data) {
                out.push((i, entry));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_pm::{CrashClock, PoolConfig};

    fn pool() -> PmPool {
        PmPool::create(PoolConfig::small()).unwrap()
    }

    fn entry(epoch: u64, line: u64, fill: u8) -> UndoEntry {
        UndoEntry::single(epoch, LineAddr(line), CacheLine::filled(fill))
    }

    #[test]
    fn tenant_tag_round_trips_and_is_checksummed() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(UndoEntry { tenant: 3, ..entry(1, 7, 0xAA) }).unwrap();
        log.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1.tenant, 3);
        // Flipping the on-media tenant field must fail the checksum: a
        // corrupted tag cannot silently reassign an entry to another pool.
        let header = LineAddr(p.layout().log_start().0);
        let mut line = p.read_line(header).unwrap();
        line.write_at(32, &5u32.to_le_bytes());
        p.write_line(header, line).unwrap();
        p.drain();
        assert!(UndoLog::scan(&mut p).unwrap().is_empty());
    }

    #[test]
    fn append_assigns_monotonic_offsets() {
        let p = pool();
        let mut log = UndoLog::new(&p);
        assert_eq!(log.append(entry(1, 0, 0)).unwrap(), 0);
        assert_eq!(log.append(entry(1, 1, 0)).unwrap(), 1);
        assert_eq!(log.appended(), 2);
        assert_eq!(log.durable_offset(), 0); // nothing drained yet
    }

    #[test]
    fn pump_advances_watermark_incrementally() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        for i in 0..5 {
            log.append(entry(1, i, i as u8)).unwrap();
        }
        assert_eq!(log.pump(&mut p, &clock, 2).unwrap(), 2);
        assert_eq!(log.durable_offset(), 2);
        assert_eq!(log.pending_len(), 3);
        log.flush(&mut p, &clock).unwrap();
        assert_eq!(log.durable_offset(), 5);
    }

    #[test]
    fn scan_round_trips_entries() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(3, 7, 0xAA)).unwrap();
        log.append(entry(3, 9, 0xBB)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].1, entry(3, 7, 0xAA));
        assert_eq!(scanned[1].1, entry(3, 9, 0xBB));
    }

    #[test]
    fn pending_entries_are_lost_on_crash() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 0, 1)).unwrap();
        log.pump(&mut p, &clock, 1).unwrap();
        log.append(entry(1, 1, 2)).unwrap();
        log.crash();
        p.crash();
        let scanned = UndoLog::scan(&mut p).unwrap();
        assert_eq!(scanned.len(), 1, "only the drained entry survives");
        assert_eq!(scanned[0].1.vpm_line, LineAddr(0));
    }

    #[test]
    fn torn_entry_fails_checksum_and_is_skipped() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 0, 1)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        // Corrupt the data line of the entry (simulated torn write).
        let data_line = LineAddr(p.layout().log_start().0 + 1);
        p.write_line(data_line, CacheLine::filled(0xFF)).unwrap();
        p.drain();
        assert!(UndoLog::scan(&mut p).unwrap().is_empty());
    }

    #[test]
    fn log_full_is_reported() {
        let mut cfg = PoolConfig::small();
        cfg.log_bytes = 4 * LINE_SIZE; // room for 2 entries
        let p = PmPool::create(cfg).unwrap();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 0, 0)).unwrap();
        log.append(entry(1, 1, 0)).unwrap();
        assert!(matches!(log.append(entry(1, 2, 0)), Err(PmError::LogFull { .. })));
    }

    #[test]
    fn reset_after_commit_reuses_slots_with_monotonic_offsets() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 5, 1)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        log.reset_after_commit();
        // Offsets keep counting — no ambiguity against stale buffered
        // offsets — but the region is free again.
        assert_eq!(log.durable_offset(), 1);
        assert_eq!(log.live_entries(), 0);
        assert_eq!(log.append(entry(2, 6, 2)).unwrap(), 1);
        log.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        // Both slots hold valid entries; recovery tells them apart by
        // epoch, not by position.
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned.iter().filter(|(_, e)| e.epoch == 2).count(), 1);
    }

    #[test]
    fn recycle_to_frees_slots_incrementally() {
        let mut cfg = PoolConfig::small();
        cfg.log_bytes = 8 * LINE_SIZE; // 4 slots
        let mut p = PmPool::create(cfg).unwrap();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        for i in 0..4 {
            log.append(entry(1, i, 0)).unwrap();
        }
        assert!(matches!(log.append(entry(2, 9, 0)), Err(PmError::LogFull { .. })));
        log.flush(&mut p, &clock).unwrap();
        // Epoch 1 committed up to offset 2: two slots free, two still live.
        log.recycle_to(2);
        assert_eq!(log.live_entries(), 2);
        assert_eq!(log.append(entry(2, 9, 0)).unwrap(), 4);
        assert_eq!(log.append(entry(2, 10, 0)).unwrap(), 5);
        assert!(matches!(log.append(entry(2, 11, 0)), Err(PmError::LogFull { .. })));
        // The wrapped entries physically overwrite the recycled slots.
        log.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        assert_eq!(scanned.len(), 4);
        assert_eq!(scanned.iter().filter(|(_, e)| e.epoch == 2).count(), 2);
    }

    #[test]
    fn recycle_to_clamps_to_durable_and_never_regresses() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        for i in 0..3 {
            log.append(entry(1, i, 0)).unwrap();
        }
        log.pump(&mut p, &clock, 1).unwrap();
        log.recycle_to(99); // clamped: only 1 entry is durable
        assert_eq!(log.live_entries(), 2);
        log.recycle_to(0); // never regresses
        assert_eq!(log.live_entries(), 2);
    }

    #[test]
    fn sharded_regions_do_not_overlap() {
        let mut p = pool();
        let clock = CrashClock::new();
        let layout = p.layout();
        let per_shard = 2u64;
        let mut a = UndoLog::with_region(layout.log_start().0, per_shard);
        let mut b = UndoLog::with_region(layout.log_start().0 + per_shard * ENTRY_LINES, per_shard);
        a.append(entry(1, 0, 0xA)).unwrap();
        a.append(entry(1, 2, 0xA)).unwrap();
        b.append(entry(1, 1, 0xB)).unwrap();
        a.flush(&mut p, &clock).unwrap();
        b.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        assert_eq!(scanned.len(), 3);
        // Shard B's entry landed in its own bank (slot index 2).
        assert_eq!(scanned[2].0, 2);
        assert_eq!(scanned[2].1.old, CacheLine::filled(0xB));
    }

    #[test]
    fn crash_clock_interrupts_pump() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        for i in 0..4 {
            log.append(entry(1, i, 0)).unwrap();
        }
        clock.arm(2); // two pump steps succeed, third crashes
        assert_eq!(log.pump(&mut p, &clock, 2).unwrap(), 2);
        assert!(matches!(log.flush(&mut p, &clock), Err(PmError::Crashed)));
        assert_eq!(log.durable_offset(), 2);
    }

    #[test]
    fn bytes_written_counts_both_lines() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 0, 0)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        assert_eq!(log.bytes_written(), 128);
    }

    #[test]
    fn large_pending_drain_is_linear() {
        // The remove(0) regression: draining N pending entries must be
        // O(N). 50k entries through repeated small pumps completes in
        // well under a second with a VecDeque; the old Vec::remove(0)
        // drain was O(N²) and took tens of seconds.
        let mut cfg = PoolConfig::small();
        cfg.log_bytes = 50_000 * (ENTRY_LINES as usize) * LINE_SIZE;
        let mut p = PmPool::create(cfg).unwrap();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        for i in 0..50_000u64 {
            log.append(entry(1, i % 1024, i as u8)).unwrap();
        }
        let start = std::time::Instant::now();
        log.flush(&mut p, &clock).unwrap();
        let per_entry_ns = start.elapsed().as_nanos() as u64 / 50_000;
        assert_eq!(log.durable_offset(), 50_000);
        // Generous bound: a linear drain spends ~100 ns/entry; the
        // quadratic one spent tens of µs/entry at this size.
        assert!(per_entry_ns < 10_000, "drain took {per_entry_ns} ns/entry");
    }
}
