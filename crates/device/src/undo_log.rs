//! The persistent, epoch-tagged undo log (§3.2–3.3).
//!
//! On every first-in-epoch `RdOwn` the device appends an entry recording
//! the line's *old* value. Appends are buffered in device SRAM and drained
//! to the pool's log region asynchronously; durability advances at a
//! monotonically increasing entry offset (the *watermark*), which is what
//! lets the device write modified data lines back to PM mid-epoch: a data
//! line may be written back as soon as the entry covering it is durable.
//!
//! # Offsets are logical and monotonic
//!
//! Entry offsets never reset: they count appends over the writer's whole
//! lifetime. The physical slot of offset `o` is `o % capacity`, so the
//! region is a ring. A slot may be overwritten only once the epoch of the
//! entry it holds has committed — [`UndoLog::recycle_to`] advances the
//! recycle watermark when that happens. This makes two things true by
//! construction:
//!
//! 1. a `log_offset` stamped on a buffered line stays comparable against
//!    [`UndoLog::durable_offset`] forever (committed entries are simply
//!    `< durable` for the rest of time — no stale-offset ambiguity), and
//! 2. the region can be recycled *incrementally* under overlapped epochs:
//!    committing epoch N frees exactly N's slots, even while epoch N+1 is
//!    already appending.
//!
//! # Two append engines, one contract
//!
//! The volatile tail has two interchangeable implementations:
//!
//! * **Locked** — the original `VecDeque` guarded by whatever lock guards
//!   the writer (the lane mutex in the device). Kept as the differential
//!   baseline behind `DeviceConfig::with_locked_log` / the `locked-log`
//!   cargo feature.
//! * **CAS** ([`AtomicBank`], the default) — a lock-free llfree-style
//!   reserve-then-fill ring: a CAS on one packed tail word reserves a
//!   slot, the entry is filled, then *release-published* via a per-slot
//!   ready word; the pump consumes a contiguous published prefix with an
//!   acquire scan. Concurrent appenders never serialize on a mutex, and
//!   the pump's media handoff needs no lane lock at all.
//!
//! Under a single driving thread the two engines issue the *identical*
//! sequence of media writes and crash-clock ticks (`tests/determinism.rs`
//! pins it; `tests/lockfree_log.rs` proves byte-identical durable state
//! differentially).
//!
//! # On-media format
//!
//! Each entry occupies [`ENTRY_LINES`] = 2 consecutive lines in its slot
//! of the pool's log region:
//!
//! ```text
//! line 0 (header): magic[8] | epoch u64 | vpm_line u64 | checksum u64 | tenant u32 | commit u8
//! line 1 (data):   the 64-byte pre-image of the logged line
//! ```
//!
//! The checksum folds the data line with the header fields — including
//! the commit mark — so recovery can detect (and safely skip) entries
//! torn by a crash mid-append: a torn entry's data write back cannot have
//! happened — write back is gated on the entry being durable — so
//! skipping it is always sound. The commit mark exists for the CAS
//! engine: a slot that was *reserved* but never *published* at the moment
//! of a crash never reaches media at all (the pump only drains published
//! slots), so whatever the slot's media lines hold is either a stale
//! committed entry or garbage that fails the magic/commit/checksum
//! gauntlet — reserved-but-unready slots are structurally invisible to
//! recovery.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pax_pm::{CacheLine, CrashOutcome, LineAddr, PmError, PmPool, Result, LINE_SIZE};

/// The durable watermark of one [`UndoLog`], shared out-of-band.
///
/// The watermark is the llfree-style atomic that lets readers order
/// against the log *without* taking the lane lock that guards the
/// writer: `pump` publishes with a release store **after** the entry's
/// two lines are durably in the pool, and [`LogWatermark::durable`]
/// reads with an acquire load — so any offset a reader observes is
/// backed by media. `persist_poll`'s fast path uses this to skip
/// already-durable banks lock-free.
#[derive(Debug, Default)]
pub struct LogWatermark(AtomicU64);

impl LogWatermark {
    /// Entries known durable (acquire; pairs with the release store in
    /// the pump after the media drain).
    pub fn durable(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    fn publish(&self, durable: u64) {
        self.0.store(durable, Ordering::Release);
    }
}

/// Lines per undo-log entry (header + pre-image).
pub const ENTRY_LINES: u64 = 2;

const LOG_MAGIC: &[u8; 8] = b"PAXUNDO1";

/// Header byte offset of the commit mark.
pub(crate) const COMMIT_OFFSET: usize = 36;

/// Value of the commit mark in every published header. [`UndoEntry::parse`]
/// rejects anything else, so a slot whose header was never fully written
/// by the pump (or was scribbled) cannot masquerade as a log record.
const COMMIT_MARK: u8 = 1;

/// One undo-log record: "line `vpm_line` held `old` at the start of
/// `epoch`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoEntry {
    /// Epoch during which the line was first modified. Epoch numbers are
    /// **per tenant**: entries of different tenants are never compared.
    pub epoch: u64,
    /// The vPM line the entry covers.
    pub vpm_line: LineAddr,
    /// The pool context (tenant) the entry belongs to. Recovery rolls
    /// each entry back against *its own tenant's* committed epoch, so
    /// entries of different tenants can interleave freely in shared
    /// banks without cross-contaminating rollback.
    pub tenant: u32,
    /// The line's contents when the epoch began.
    pub old: CacheLine,
}

impl UndoEntry {
    /// An entry for the single-tenant (tenant 0) pool context.
    pub fn single(epoch: u64, vpm_line: LineAddr, old: CacheLine) -> Self {
        UndoEntry { epoch, vpm_line, tenant: 0, old }
    }

    fn checksum(&self) -> u64 {
        let mut sum = 0xfeed_face_cafe_beefu64;
        sum ^= self.epoch.rotate_left(17);
        sum ^= self.vpm_line.0.rotate_left(31);
        sum ^= (self.tenant as u64).rotate_left(47);
        sum ^= (COMMIT_MARK as u64).rotate_left(11);
        for chunk in self.old.as_bytes().chunks(8) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            sum = sum.rotate_left(7) ^ u64::from_le_bytes(b);
        }
        sum
    }

    fn header_line(&self) -> CacheLine {
        let mut l = CacheLine::zeroed();
        l.write_at(0, LOG_MAGIC);
        l.write_at(8, &self.epoch.to_le_bytes());
        l.write_at(16, &self.vpm_line.0.to_le_bytes());
        l.write_at(24, &self.checksum().to_le_bytes());
        l.write_at(32, &self.tenant.to_le_bytes());
        l.write_at(COMMIT_OFFSET, &[COMMIT_MARK]);
        l
    }

    fn parse(header: &CacheLine, data: &CacheLine) -> Option<UndoEntry> {
        if header.read_at(0, 8) != LOG_MAGIC {
            return None;
        }
        // The commit mark gates everything else: only the pump writes
        // headers, and it only drains *published* slots, so a cleared
        // mark means the slot never held a completed append.
        if header.read_at(COMMIT_OFFSET, 1) != [COMMIT_MARK] {
            return None;
        }
        let mut buf = [0u8; 8];
        buf.copy_from_slice(header.read_at(8, 8));
        let epoch = u64::from_le_bytes(buf);
        buf.copy_from_slice(header.read_at(16, 8));
        let vpm_line = LineAddr(u64::from_le_bytes(buf));
        buf.copy_from_slice(header.read_at(24, 8));
        let stored_sum = u64::from_le_bytes(buf);
        let mut tbuf = [0u8; 4];
        tbuf.copy_from_slice(header.read_at(32, 4));
        let tenant = u32::from_le_bytes(tbuf);
        let entry = UndoEntry { epoch, vpm_line, tenant, old: data.clone() };
        (entry.checksum() == stored_sum).then_some(entry)
    }
}

/// Reserved-tail bits of the packed word (low 48: the monotonic logical
/// offset of the next reservation; 2⁴⁸ appends outlives any simulation).
const TAIL_MASK: u64 = (1 << 48) - 1;
/// One reservation in flight, in the high 16 bits of the packed word.
const INFLIGHT_UNIT: u64 = 1 << 48;

/// A 64-byte-aligned atomic so the hot tail word and the recycle
/// watermark never share a cache line with each other (or a neighbor) —
/// false sharing between appenders and recyclers would serialize the very
/// path the CAS exists to scale.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedAtomicU64(AtomicU64);

/// One reserve-then-fill slot of an [`AtomicBank`].
///
/// `ready == 0` means empty; `ready == offset + 1` means the pre-image
/// for logical offset `offset` is published (the `+1` keeps 0 free for
/// "empty", and comparing against the *exact* expected offset is what
/// makes the check ABA-proof across ring laps: a slot republished on a
/// later lap holds a different offset, so a stale pump scan can never
/// mistake it for the entry it is waiting on).
///
/// The entry box is a `Mutex` only because the crate forbids `unsafe`;
/// by protocol it is uncontended — exactly one appender owns a reserved
/// slot until it publishes, and exactly one pump consumes it after.
#[derive(Debug)]
struct Slot {
    ready: AtomicU64,
    entry: Mutex<Option<Box<UndoEntry>>>,
}

/// Lock-free undo-bank tail: CAS reservation on a packed head/tail word,
/// per-slot release publication, acquire-scan consumption (llfree-style).
///
/// All methods take `&self`. The protocol, in memory-ordering terms:
///
/// 1. **Reserve** — a CAS on the packed word claims logical offset `o`
///    and bumps the in-flight count (one word so the `log_reserved`
///    gauge is exact). The fullness check `tail − recycled ≥ capacity`
///    loads `recycled` with *acquire*, pairing with the *release*
///    `fetch_max` in [`AtomicBank::recycle_to`]; transitively (see step
///    4) the reservation happens-after the pump finished with the slot's
///    previous lap, so overwriting it is safe.
/// 2. **Fill** — the appender writes the entry into slot `o % capacity`
///    (uncontended by construction).
/// 3. **Publish** — `ready.store(o + 1, Release)`: everything the
///    appender wrote becomes visible to whoever acquires the ready word.
///    The in-flight count drops.
/// 4. **Consume** — the pump (externally serialized: it requires
///    `&mut PmPool`, and the device's media pool sits behind one mutex)
///    scans the contiguous published prefix from the durable watermark
///    with `ready.load(Acquire)`, writes both lines to media, clears
///    `ready`, drains, then `durable.publish(o + 1)` (release). Commit
///    recycles with a release `fetch_max`, closing the loop back to
///    step 1.
#[derive(Debug)]
pub struct AtomicBank {
    /// Packed word: low 48 bits = reserved tail (monotonic logical
    /// offset), high 16 bits = reservations in flight (reserved, not yet
    /// published).
    state: PaddedAtomicU64,
    /// Logical offsets below this belong to committed epochs; their
    /// slots may be reused. Only grows (release `fetch_max`).
    recycled: PaddedAtomicU64,
    /// The shared durable watermark (entries drained to media).
    durable: Arc<LogWatermark>,
    /// The volatile ring, one slot per in-capacity logical offset.
    slots: Box<[Slot]>,
    /// Failed reservation CAS attempts (contention telemetry).
    cas_retries: AtomicU64,
    /// Total bytes of log writes issued (write-amplification benches).
    bytes_written: AtomicU64,
    /// First pool line of this bank's slice of the log region.
    region_start: u64,
    /// Capacity of this bank's slice, in entries.
    capacity_entries: u64,
}

impl AtomicBank {
    fn new(region_start: u64, capacity_entries: u64, durable: Arc<LogWatermark>) -> Self {
        let slots = (0..capacity_entries)
            .map(|_| Slot { ready: AtomicU64::new(0), entry: Mutex::new(None) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        AtomicBank {
            state: PaddedAtomicU64::default(),
            recycled: PaddedAtomicU64::default(),
            durable,
            slots,
            cas_retries: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            region_start,
            capacity_entries,
        }
    }

    /// The logical offset the next reservation will claim (= entries
    /// appended over the bank's lifetime).
    pub fn reserved(&self) -> u64 {
        self.state.0.load(Ordering::Relaxed) & TAIL_MASK
    }

    /// Reservations currently in flight (reserved, not yet published) —
    /// the `log_reserved` gauge.
    pub fn in_flight(&self) -> u64 {
        self.state.0.load(Ordering::Relaxed) >> 48
    }

    /// Failed reservation CAS attempts so far — the `log_cas_retries`
    /// counter.
    pub fn cas_retries(&self) -> u64 {
        self.cas_retries.load(Ordering::Relaxed)
    }

    /// Entries known durable.
    pub fn durable_offset(&self) -> u64 {
        self.durable.durable()
    }

    /// A shared handle onto the durable watermark.
    pub fn watermark(&self) -> Arc<LogWatermark> {
        Arc::clone(&self.durable)
    }

    /// Entries reserved but not yet durable. (Loads `durable` first:
    /// both only grow and `durable ≤ tail` at every instant, so the
    /// later tail load can only over-approximate, never underflow.)
    pub fn pending_len(&self) -> usize {
        let durable = self.durable.durable();
        self.reserved().saturating_sub(durable) as usize
    }

    /// Entries whose slots are still held by uncommitted epochs.
    pub fn live_entries(&self) -> u64 {
        let recycled = self.recycled.0.load(Ordering::Acquire);
        self.reserved().saturating_sub(recycled)
    }

    /// Capacity of this bank's region slice, in entries.
    pub fn capacity_entries(&self) -> u64 {
        self.capacity_entries
    }

    /// Total log bytes issued to media.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Pool line of the slot backing logical offset `offset`.
    fn slot_base(&self, offset: u64) -> u64 {
        self.region_start + (offset % self.capacity_entries) * ENTRY_LINES
    }

    /// Lock-free append: reserve a slot with one CAS, fill it, publish
    /// it. Returns the entry's logical offset.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::LogFull`] when every slot is held by an
    /// uncommitted epoch — the same `tail − recycled ≥ capacity`
    /// condition as the locked engine's `live_entries()` check, so both
    /// engines refuse the same append.
    pub fn append(&self, entry: UndoEntry) -> Result<u64> {
        let mut cur = self.state.0.load(Ordering::Relaxed);
        let offset = loop {
            let tail = cur & TAIL_MASK;
            // Acquire on `recycled` pairs with the release `fetch_max`
            // in `recycle_to`: if the check admits us, the pump's last
            // use of the slot we are about to overwrite happened-before
            // this load (pump cleared `ready` → release-published
            // durable → committer acquired durable and release-maxed
            // `recycled` → we acquire `recycled`).
            if tail - self.recycled.0.load(Ordering::Acquire) >= self.capacity_entries {
                return Err(PmError::LogFull { capacity_entries: self.capacity_entries });
            }
            let next = ((cur >> 48) + 1) << 48 | (tail + 1);
            match self.state.0.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break tail,
                Err(now) => {
                    self.cas_retries.fetch_add(1, Ordering::Relaxed);
                    std::hint::spin_loop();
                    cur = now;
                }
            }
        };
        let slot = &self.slots[(offset % self.capacity_entries) as usize];
        debug_assert_eq!(
            slot.ready.load(Ordering::Relaxed),
            0,
            "reserved slot {offset} still published from a previous lap"
        );
        *slot.entry.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some(Box::new(entry));
        // Release: the filled entry becomes visible to the pump's
        // acquire scan exactly when the ready word does. `offset + 1`
        // (not a bare flag) makes the scan ABA-proof across ring laps.
        slot.ready.store(offset + 1, Ordering::Release);
        self.state.0.fetch_sub(INFLIGHT_UNIT, Ordering::Relaxed);
        Ok(offset)
    }

    /// Drains up to `max_entries` of the *contiguous published prefix*
    /// to the log region and advances the durable watermark. Returns
    /// entries drained; stops early at the first unpublished slot.
    ///
    /// Needs no lane lock: callers are serialized by `&mut PmPool` (the
    /// media pool lock), which is exactly the resource the pump consumes.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] if the pool's crash clock fires, and
    /// media errors from the pool.
    pub fn pump(
        &self,
        pool: &mut PmPool,
        clock: &pax_pm::CrashClock,
        max_entries: usize,
    ) -> Result<usize> {
        let mut drained = 0;
        while drained < max_entries {
            let durable = self.durable.durable();
            let slot = &self.slots[(durable % self.capacity_entries) as usize];
            // Acquire pairs with the publisher's release store: observing
            // `durable + 1` makes the boxed entry visible.
            if slot.ready.load(Ordering::Acquire) != durable + 1 {
                break;
            }
            if clock.tick() == CrashOutcome::Crashed {
                pool.crash();
                return Err(PmError::Crashed);
            }
            let entry = slot
                .entry
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("published slot holds its entry");
            // Clearing `ready` before publishing durability keeps the
            // reuse chain intact: clear → durable release → recycle
            // release-max → reserver acquire — a future lap's appender
            // can only see an empty slot.
            slot.ready.store(0, Ordering::Release);
            let base = self.slot_base(durable);
            pool.write_line(LineAddr(base), entry.header_line())?;
            pool.write_line(LineAddr(base + 1), entry.old.clone())?;
            // The watermark only advances once both lines are durable:
            // the release store publishes the drained media state to any
            // thread that acquires the new offset.
            pool.drain();
            self.durable.publish(durable + 1);
            self.bytes_written
                .fetch_add((ENTRY_LINES as usize * LINE_SIZE) as u64, Ordering::Relaxed);
            drained += 1;
        }
        Ok(drained)
    }

    /// Drains until everything reserved *at entry* is durable (the
    /// synchronous step inside `persist()`).
    ///
    /// If the scan meets a reservation that is filled but not yet
    /// published (only possible with a concurrent appender), it yields
    /// and re-scans — the publisher finishes without taking any lock, so
    /// this cannot live-lock.
    ///
    /// # Errors
    ///
    /// See [`AtomicBank::pump`].
    pub fn flush(&self, pool: &mut PmPool, clock: &pax_pm::CrashClock) -> Result<()> {
        let target = self.reserved();
        while self.durable.durable() < target {
            if self.pump(pool, clock, usize::MAX)? == 0 {
                std::thread::yield_now();
            }
        }
        Ok(())
    }

    /// Marks every entry below logical offset `watermark` as committed,
    /// freeing its slot for reuse; clamped to the durable offset and
    /// never regresses. The release `fetch_max` pairs with the acquire
    /// load in [`AtomicBank::append`]'s fullness check (see the protocol
    /// docs on the type).
    pub fn recycle_to(&self, watermark: u64) {
        let clamped = watermark.min(self.durable.durable());
        self.recycled.0.fetch_max(clamped, Ordering::AcqRel);
    }

    /// Recycles the whole region after a fully-drained epoch commits.
    pub fn reset_after_commit(&self) {
        debug_assert_eq!(self.pending_len(), 0, "reset with undrained entries");
        self.recycle_to(self.durable.durable());
    }

    /// Drops the volatile tail (power loss): reservations, published
    /// entries, and in-flight counts all vanish; only media (and the
    /// watermark describing it) survives. Callers must have exclusive
    /// access in practice (the engine's crash path is stop-the-world).
    pub fn crash(&self) {
        for slot in self.slots.iter() {
            slot.ready.store(0, Ordering::Relaxed);
            *slot.entry.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        }
        self.state.0.store(self.durable.durable(), Ordering::Relaxed);
    }
}

/// The volatile append engine backing one [`UndoLog`].
#[derive(Debug)]
enum Backing {
    /// The original mutex-guarded tail (guarded by the caller's lock).
    Locked {
        /// Entries appended but not yet written durably, oldest first.
        /// A `VecDeque` because `pump` drains from the front: draining N
        /// entries is O(N), not the O(N²) a `Vec::remove(0)` loop would
        /// be.
        pending: VecDeque<UndoEntry>,
        /// Logical offsets below this belong to committed epochs.
        recycled_below: u64,
        /// Total bytes of log writes issued.
        bytes_written: u64,
    },
    /// The lock-free reserve-then-fill ring.
    Cas(Arc<AtomicBank>),
}

/// The device's undo-log writer: volatile append engine + durable
/// watermark over (a slice of) the pool's log region.
#[derive(Debug)]
pub struct UndoLog {
    backing: Backing,
    /// Logical offset of the durable watermark (entries drained to media
    /// over the writer's lifetime; monotonic, never resets). Shared as an
    /// atomic so lock-free readers can order against it — see
    /// [`LogWatermark`].
    durable: Arc<LogWatermark>,
    /// First pool line of this writer's slice of the log region.
    region_start: u64,
    /// Capacity of this writer's slice, in entries.
    capacity_entries: u64,
}

impl UndoLog {
    /// A CAS-engine log writer over a pool's whole log region.
    pub fn new(pool: &PmPool) -> Self {
        let layout = pool.layout();
        Self::with_region(layout.log_start().0, layout.log_lines / ENTRY_LINES)
    }

    /// A log writer over `capacity_entries` slots starting at pool line
    /// `region_start` — how a sharded device gives each shard its own
    /// bank of the log region. Uses the lock-free CAS engine.
    pub fn with_region(region_start: u64, capacity_entries: u64) -> Self {
        Self::with_region_mode(region_start, capacity_entries, false)
    }

    /// Like [`UndoLog::with_region`] but `locked` selects the original
    /// mutex-guarded engine (the `DeviceConfig::with_locked_log`
    /// differential baseline).
    pub fn with_region_mode(region_start: u64, capacity_entries: u64, locked: bool) -> Self {
        let durable = Arc::new(LogWatermark::default());
        let backing = if locked {
            Backing::Locked { pending: VecDeque::new(), recycled_below: 0, bytes_written: 0 }
        } else {
            Backing::Cas(Arc::new(AtomicBank::new(
                region_start,
                capacity_entries,
                Arc::clone(&durable),
            )))
        };
        UndoLog { backing, durable, region_start, capacity_entries }
    }

    /// A locked-engine log writer over a pool's whole log region.
    pub fn new_locked(pool: &PmPool) -> Self {
        let layout = pool.layout();
        Self::with_region_mode(layout.log_start().0, layout.log_lines / ENTRY_LINES, true)
    }

    /// The lock-free bank, when this writer uses the CAS engine — the
    /// handle the device shares so appends and pumps can bypass the lane
    /// lock entirely.
    pub fn bank(&self) -> Option<Arc<AtomicBank>> {
        match &self.backing {
            Backing::Cas(bank) => Some(Arc::clone(bank)),
            Backing::Locked { .. } => None,
        }
    }

    /// Entries known durable; write back of a data line tagged with offset
    /// `o` is legal once `o < durable_offset()`.
    pub fn durable_offset(&self) -> u64 {
        self.durable.durable()
    }

    /// A shared handle onto this writer's durable watermark, readable
    /// without whatever lock guards the writer itself.
    pub fn watermark(&self) -> Arc<LogWatermark> {
        Arc::clone(&self.durable)
    }

    /// Entries appended so far over the writer's lifetime (durable +
    /// pending). The next append gets this offset.
    pub fn appended(&self) -> u64 {
        match &self.backing {
            Backing::Locked { pending, .. } => self.durable.durable() + pending.len() as u64,
            Backing::Cas(bank) => bank.reserved(),
        }
    }

    /// Entries awaiting the background drain.
    pub fn pending_len(&self) -> usize {
        match &self.backing {
            Backing::Locked { pending, .. } => pending.len(),
            Backing::Cas(bank) => bank.pending_len(),
        }
    }

    /// Entries whose slots are still held by uncommitted epochs.
    pub fn live_entries(&self) -> u64 {
        match &self.backing {
            Backing::Locked { recycled_below, .. } => self.appended() - recycled_below,
            Backing::Cas(bank) => bank.live_entries(),
        }
    }

    /// Capacity of this writer's region slice, in entries.
    pub fn capacity_entries(&self) -> u64 {
        self.capacity_entries
    }

    /// Total log bytes issued to media.
    pub fn bytes_written(&self) -> u64 {
        match &self.backing {
            Backing::Locked { bytes_written, .. } => *bytes_written,
            Backing::Cas(bank) => bank.bytes_written(),
        }
    }

    /// Appends an entry, returning its logical offset.
    ///
    /// The append itself is volatile — this is the asynchrony of §3.2: the
    /// host's `RdOwn` is acknowledged without waiting for durability.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::LogFull`] when every slot is held by an
    /// uncommitted epoch; the caller (libpax) should `persist()` to
    /// recycle the region.
    pub fn append(&mut self, entry: UndoEntry) -> Result<u64> {
        match &mut self.backing {
            Backing::Locked { pending, recycled_below, .. } => {
                let appended = self.durable.durable() + pending.len() as u64;
                if appended - *recycled_below >= self.capacity_entries {
                    return Err(PmError::LogFull { capacity_entries: self.capacity_entries });
                }
                pending.push_back(entry);
                Ok(appended)
            }
            Backing::Cas(bank) => bank.append(entry),
        }
    }

    /// Drains up to `max_entries` pending entries to the log region and
    /// advances the durable watermark. Returns entries drained.
    ///
    /// # Errors
    ///
    /// Surfaces [`PmError::Crashed`] if the pool's crash clock fires, and
    /// media errors from the pool.
    pub fn pump(
        &mut self,
        pool: &mut PmPool,
        clock: &pax_pm::CrashClock,
        max_entries: usize,
    ) -> Result<usize> {
        match &mut self.backing {
            Backing::Locked { pending, bytes_written, .. } => {
                let n = max_entries.min(pending.len());
                for _ in 0..n {
                    if clock.tick() == CrashOutcome::Crashed {
                        pool.crash();
                        return Err(PmError::Crashed);
                    }
                    let entry = pending.pop_front().expect("n bounded by pending length");
                    let durable = self.durable.durable();
                    let base = self.region_start + (durable % self.capacity_entries) * ENTRY_LINES;
                    pool.write_line(LineAddr(base), entry.header_line())?;
                    pool.write_line(LineAddr(base + 1), entry.old.clone())?;
                    // The watermark only advances once both lines are
                    // durable: the release store publishes the drained
                    // media state to any thread acquiring the offset.
                    pool.drain();
                    self.durable.publish(durable + 1);
                    *bytes_written += (ENTRY_LINES as usize * LINE_SIZE) as u64;
                }
                Ok(n)
            }
            Backing::Cas(bank) => bank.pump(pool, clock, max_entries),
        }
    }

    /// Drains everything pending (the synchronous step inside `persist()`).
    ///
    /// # Errors
    ///
    /// See [`UndoLog::pump`].
    pub fn flush(&mut self, pool: &mut PmPool, clock: &pax_pm::CrashClock) -> Result<()> {
        if let Backing::Cas(bank) = &self.backing {
            return bank.flush(pool, clock);
        }
        while self.pending_len() > 0 {
            self.pump(pool, clock, usize::MAX)?;
        }
        Ok(())
    }

    /// Marks every entry below logical offset `watermark` as committed,
    /// freeing its slot for reuse. Called when the epoch that appended
    /// those entries durably commits; the watermark is clamped to the
    /// durable offset (an undrained entry cannot belong to a committed
    /// epoch) and never moves backwards.
    pub fn recycle_to(&mut self, watermark: u64) {
        match &mut self.backing {
            Backing::Locked { recycled_below, .. } => {
                *recycled_below = (*recycled_below).max(watermark.min(self.durable.durable()));
            }
            Backing::Cas(bank) => bank.recycle_to(watermark),
        }
    }

    /// Recycles the whole region after a fully-drained epoch commits (the
    /// synchronous-persist epilogue). Offsets stay monotonic; only slot
    /// ownership resets. Stale entries left on media belong to committed
    /// epochs and are ignored by recovery.
    pub fn reset_after_commit(&mut self) {
        debug_assert_eq!(self.pending_len(), 0, "reset with undrained entries");
        let durable = self.durable.durable();
        self.recycle_to(durable);
    }

    /// Drops the volatile tail (power loss).
    pub fn crash(&mut self) {
        match &mut self.backing {
            Backing::Locked { pending, .. } => pending.clear(),
            Backing::Cas(bank) => bank.crash(),
        }
    }

    /// Scans the pool's log region for valid entries (recovery, §3.4).
    ///
    /// Every slot is parsed; torn or never-written slots fail checksum
    /// validation and are skipped, and slots whose header lacks the
    /// commit mark — which is what a reserved-but-never-published CAS
    /// slot's media can look like at worst — are rejected the same way.
    /// Returns entries in on-media slot order — **not** append order once
    /// the ring has wrapped; recovery orders rollback by epoch, which
    /// slot reuse cannot disturb (a slot is only overwritten after its
    /// epoch commits).
    ///
    /// # Errors
    ///
    /// Surfaces media read errors.
    pub fn scan(pool: &mut PmPool) -> Result<Vec<(u64, UndoEntry)>> {
        let layout = pool.layout();
        let capacity = layout.log_lines / ENTRY_LINES;
        let mut out = Vec::new();
        for i in 0..capacity {
            let base = layout.log_start().0 + i * ENTRY_LINES;
            let header = pool.read_line(LineAddr(base))?;
            // Cheap pre-filter: never-written slots have no magic.
            if header.read_at(0, 8) != LOG_MAGIC {
                continue;
            }
            let data = pool.read_line(LineAddr(base + 1))?;
            if let Some(entry) = UndoEntry::parse(&header, &data) {
                out.push((i, entry));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_pm::{CrashClock, PoolConfig};

    fn pool() -> PmPool {
        PmPool::create(PoolConfig::small()).unwrap()
    }

    fn entry(epoch: u64, line: u64, fill: u8) -> UndoEntry {
        UndoEntry::single(epoch, LineAddr(line), CacheLine::filled(fill))
    }

    /// Both engines over a pool's whole log region, for parity loops.
    fn both_modes(p: &PmPool) -> Vec<UndoLog> {
        vec![UndoLog::new(p), UndoLog::new_locked(p)]
    }

    #[test]
    fn tenant_tag_round_trips_and_is_checksummed() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(UndoEntry { tenant: 3, ..entry(1, 7, 0xAA) }).unwrap();
        log.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1.tenant, 3);
        // Flipping the on-media tenant field must fail the checksum: a
        // corrupted tag cannot silently reassign an entry to another pool.
        let header = LineAddr(p.layout().log_start().0);
        let mut line = p.read_line(header).unwrap();
        line.write_at(32, &5u32.to_le_bytes());
        p.write_line(header, line).unwrap();
        p.drain();
        assert!(UndoLog::scan(&mut p).unwrap().is_empty());
    }

    #[test]
    fn cleared_commit_mark_is_invisible_to_scan() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 7, 0xAA)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        assert_eq!(UndoLog::scan(&mut p).unwrap().len(), 1);
        // Zeroing just the commit mark models the worst a
        // reserved-but-unpublished slot could leave behind: a
        // plausible-looking header that never completed publication.
        let header = LineAddr(p.layout().log_start().0);
        let mut line = p.read_line(header).unwrap();
        line.write_at(COMMIT_OFFSET, &[0u8]);
        p.write_line(header, line).unwrap();
        p.drain();
        assert!(UndoLog::scan(&mut p).unwrap().is_empty());
    }

    #[test]
    fn append_assigns_monotonic_offsets_in_both_modes() {
        let p = pool();
        for mut log in both_modes(&p) {
            assert_eq!(log.append(entry(1, 0, 0)).unwrap(), 0);
            assert_eq!(log.append(entry(1, 1, 0)).unwrap(), 1);
            assert_eq!(log.appended(), 2);
            assert_eq!(log.durable_offset(), 0); // nothing drained yet
        }
    }

    #[test]
    fn pump_advances_watermark_incrementally_in_both_modes() {
        let clock = CrashClock::new();
        for locked in [false, true] {
            let mut p = pool();
            let layout = p.layout();
            let mut log = UndoLog::with_region_mode(
                layout.log_start().0,
                layout.log_lines / ENTRY_LINES,
                locked,
            );
            for i in 0..5 {
                log.append(entry(1, i, i as u8)).unwrap();
            }
            assert_eq!(log.pump(&mut p, &clock, 2).unwrap(), 2);
            assert_eq!(log.durable_offset(), 2);
            assert_eq!(log.pending_len(), 3);
            log.flush(&mut p, &clock).unwrap();
            assert_eq!(log.durable_offset(), 5);
            assert_eq!(log.bytes_written(), 5 * 128);
        }
    }

    #[test]
    fn engines_produce_identical_media_bytes() {
        // The differential core: same appends through either engine ⇒
        // byte-identical log region.
        let clock = CrashClock::new();
        let mut images = Vec::new();
        for locked in [false, true] {
            let mut p = pool();
            let layout = p.layout();
            let mut log = UndoLog::with_region_mode(
                layout.log_start().0,
                layout.log_lines / ENTRY_LINES,
                locked,
            );
            for i in 0..32u64 {
                log.append(UndoEntry {
                    tenant: (i % 3) as u32,
                    ..entry(1 + i / 10, i % 7, i as u8)
                })
                .unwrap();
            }
            log.flush(&mut p, &clock).unwrap();
            let lines: Vec<CacheLine> =
                (0..64).map(|i| p.read_line(LineAddr(layout.log_start().0 + i)).unwrap()).collect();
            images.push(lines);
        }
        assert_eq!(images[0], images[1]);
    }

    #[test]
    fn scan_round_trips_entries() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(3, 7, 0xAA)).unwrap();
        log.append(entry(3, 9, 0xBB)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].1, entry(3, 7, 0xAA));
        assert_eq!(scanned[1].1, entry(3, 9, 0xBB));
    }

    #[test]
    fn pending_entries_are_lost_on_crash_in_both_modes() {
        let clock = CrashClock::new();
        for locked in [false, true] {
            let mut p = pool();
            let layout = p.layout();
            let mut log = UndoLog::with_region_mode(
                layout.log_start().0,
                layout.log_lines / ENTRY_LINES,
                locked,
            );
            log.append(entry(1, 0, 1)).unwrap();
            log.pump(&mut p, &clock, 1).unwrap();
            log.append(entry(1, 1, 2)).unwrap();
            log.crash();
            p.crash();
            assert_eq!(log.pending_len(), 0);
            let scanned = UndoLog::scan(&mut p).unwrap();
            assert_eq!(scanned.len(), 1, "only the drained entry survives");
            assert_eq!(scanned[0].1.vpm_line, LineAddr(0));
        }
    }

    #[test]
    fn torn_entry_fails_checksum_and_is_skipped() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 0, 1)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        // Corrupt the data line of the entry (simulated torn write).
        let data_line = LineAddr(p.layout().log_start().0 + 1);
        p.write_line(data_line, CacheLine::filled(0xFF)).unwrap();
        p.drain();
        assert!(UndoLog::scan(&mut p).unwrap().is_empty());
    }

    #[test]
    fn log_full_is_reported_in_both_modes() {
        let mut cfg = PoolConfig::small();
        cfg.log_bytes = 4 * LINE_SIZE; // room for 2 entries
        let p = PmPool::create(cfg).unwrap();
        for mut log in both_modes(&p) {
            log.append(entry(1, 0, 0)).unwrap();
            log.append(entry(1, 1, 0)).unwrap();
            assert!(matches!(log.append(entry(1, 2, 0)), Err(PmError::LogFull { .. })));
        }
    }

    #[test]
    fn reset_after_commit_reuses_slots_with_monotonic_offsets() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 5, 1)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        log.reset_after_commit();
        // Offsets keep counting — no ambiguity against stale buffered
        // offsets — but the region is free again.
        assert_eq!(log.durable_offset(), 1);
        assert_eq!(log.live_entries(), 0);
        assert_eq!(log.append(entry(2, 6, 2)).unwrap(), 1);
        log.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        // Both slots hold valid entries; recovery tells them apart by
        // epoch, not by position.
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned.iter().filter(|(_, e)| e.epoch == 2).count(), 1);
    }

    #[test]
    fn recycle_to_frees_slots_incrementally_in_both_modes() {
        let clock = CrashClock::new();
        for locked in [false, true] {
            let mut cfg = PoolConfig::small();
            cfg.log_bytes = 8 * LINE_SIZE; // 4 slots
            let mut p = PmPool::create(cfg).unwrap();
            let layout = p.layout();
            let mut log = UndoLog::with_region_mode(layout.log_start().0, 4, locked);
            for i in 0..4 {
                log.append(entry(1, i, 0)).unwrap();
            }
            assert!(matches!(log.append(entry(2, 9, 0)), Err(PmError::LogFull { .. })));
            log.flush(&mut p, &clock).unwrap();
            // Epoch 1 committed up to offset 2: two slots free, two live.
            log.recycle_to(2);
            assert_eq!(log.live_entries(), 2);
            assert_eq!(log.append(entry(2, 9, 0)).unwrap(), 4);
            assert_eq!(log.append(entry(2, 10, 0)).unwrap(), 5);
            assert!(matches!(log.append(entry(2, 11, 0)), Err(PmError::LogFull { .. })));
            // The wrapped entries physically overwrite the recycled slots.
            log.flush(&mut p, &clock).unwrap();
            let scanned = UndoLog::scan(&mut p).unwrap();
            assert_eq!(scanned.len(), 4);
            assert_eq!(scanned.iter().filter(|(_, e)| e.epoch == 2).count(), 2);
        }
    }

    #[test]
    fn recycle_to_clamps_to_durable_and_never_regresses() {
        let clock = CrashClock::new();
        for locked in [false, true] {
            let mut p = pool();
            let layout = p.layout();
            let mut log = UndoLog::with_region_mode(
                layout.log_start().0,
                layout.log_lines / ENTRY_LINES,
                locked,
            );
            for i in 0..3 {
                log.append(entry(1, i, 0)).unwrap();
            }
            log.pump(&mut p, &clock, 1).unwrap();
            log.recycle_to(99); // clamped: only 1 entry is durable
            assert_eq!(log.live_entries(), 2);
            log.recycle_to(0); // never regresses
            assert_eq!(log.live_entries(), 2);
        }
    }

    #[test]
    fn sharded_regions_do_not_overlap() {
        let mut p = pool();
        let clock = CrashClock::new();
        let layout = p.layout();
        let per_shard = 2u64;
        let mut a = UndoLog::with_region(layout.log_start().0, per_shard);
        let mut b = UndoLog::with_region(layout.log_start().0 + per_shard * ENTRY_LINES, per_shard);
        a.append(entry(1, 0, 0xA)).unwrap();
        a.append(entry(1, 2, 0xA)).unwrap();
        b.append(entry(1, 1, 0xB)).unwrap();
        a.flush(&mut p, &clock).unwrap();
        b.flush(&mut p, &clock).unwrap();
        let scanned = UndoLog::scan(&mut p).unwrap();
        assert_eq!(scanned.len(), 3);
        // Shard B's entry landed in its own bank (slot index 2).
        assert_eq!(scanned[2].0, 2);
        assert_eq!(scanned[2].1.old, CacheLine::filled(0xB));
    }

    #[test]
    fn crash_clock_interrupts_pump_in_both_modes() {
        for locked in [false, true] {
            let mut p = pool();
            let clock = CrashClock::new();
            let layout = p.layout();
            let mut log = UndoLog::with_region_mode(
                layout.log_start().0,
                layout.log_lines / ENTRY_LINES,
                locked,
            );
            for i in 0..4 {
                log.append(entry(1, i, 0)).unwrap();
            }
            clock.arm(clock.steps_taken() + 2); // two pump steps, then crash
            assert_eq!(log.pump(&mut p, &clock, 2).unwrap(), 2);
            assert!(matches!(log.flush(&mut p, &clock), Err(PmError::Crashed)));
            assert_eq!(log.durable_offset(), 2);
            clock.reset();
        }
    }

    #[test]
    fn bytes_written_counts_both_lines() {
        let mut p = pool();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        log.append(entry(1, 0, 0)).unwrap();
        log.flush(&mut p, &clock).unwrap();
        assert_eq!(log.bytes_written(), 128);
    }

    #[test]
    fn large_pending_drain_is_linear() {
        // The remove(0) regression: draining N pending entries must be
        // O(N). 50k entries through repeated small pumps completes in
        // well under a second with a VecDeque; the old Vec::remove(0)
        // drain was O(N²) and took tens of seconds.
        let mut cfg = PoolConfig::small();
        cfg.log_bytes = 50_000 * (ENTRY_LINES as usize) * LINE_SIZE;
        let mut p = PmPool::create(cfg).unwrap();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&p);
        for i in 0..50_000u64 {
            log.append(entry(1, i % 1024, i as u8)).unwrap();
        }
        let start = std::time::Instant::now();
        log.flush(&mut p, &clock).unwrap();
        let per_entry_ns = start.elapsed().as_nanos() as u64 / 50_000;
        assert_eq!(log.durable_offset(), 50_000);
        // Generous bound: a linear drain spends ~100 ns/entry; the
        // quadratic one spent tens of µs/entry at this size.
        assert!(per_entry_ns < 10_000, "drain took {per_entry_ns} ns/entry");
    }

    #[test]
    fn concurrent_appends_reserve_unique_contiguous_offsets() {
        // The lock-free claim itself: N threads hammering one bank get
        // disjoint offsets covering exactly 0..N*OPS, every reservation
        // is published, and the in-flight gauge settles back to zero.
        const THREADS: usize = 4;
        const OPS: u64 = 2_000;
        let log = UndoLog::with_region(0, THREADS as u64 * OPS + 1);
        let bank = log.bank().unwrap();
        let per_thread: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let bank = Arc::clone(&bank);
                    s.spawn(move || {
                        (0..OPS)
                            .map(|i| {
                                bank.append(UndoEntry { tenant: t as u32, ..entry(1, i, t as u8) })
                                    .unwrap()
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<u64> = per_thread.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..THREADS as u64 * OPS).collect();
        assert_eq!(all, expect, "offsets must be unique and contiguous");
        assert_eq!(bank.reserved(), THREADS as u64 * OPS);
        assert_eq!(bank.in_flight(), 0, "every reservation was published");
        assert_eq!(bank.pending_len(), THREADS * OPS as usize);
    }

    #[test]
    fn concurrent_appends_drain_through_a_racing_pump() {
        // Appenders and the pump run simultaneously; the pump's acquire
        // scan must only ever consume published entries, in offset order,
        // and everything drains.
        const THREADS: usize = 3;
        const OPS: u64 = 1_000;
        let mut cfg = PoolConfig::small();
        cfg.log_bytes = ((THREADS as u64 * OPS + 1) * ENTRY_LINES) as usize * LINE_SIZE;
        let mut p = PmPool::create(cfg).unwrap();
        let clock = CrashClock::new();
        let log = UndoLog::new(&p);
        let bank = log.bank().unwrap();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let bank = Arc::clone(&bank);
                s.spawn(move || {
                    for i in 0..OPS {
                        bank.append(UndoEntry { tenant: t as u32, ..entry(1, i, t as u8) })
                            .unwrap();
                    }
                });
            }
            // This thread is the pump (it owns the pool exclusively).
            while bank.durable_offset() < THREADS as u64 * OPS {
                if bank.pump(&mut p, &clock, 64).unwrap() == 0 {
                    std::thread::yield_now();
                }
            }
        });
        assert_eq!(bank.durable_offset(), THREADS as u64 * OPS);
        assert_eq!(UndoLog::scan(&mut p).unwrap().len(), THREADS * OPS as usize);
    }
}
