//! A CXL.cache endpoint wrapping the device.
//!
//! [`PaxDevice`] implements [`HomeAgent`] directly — convenient for tests —
//! but a real deployment talks over the link. [`CxlEndpoint`] makes the
//! protocol explicit: every host request is encoded as an
//! [`H2DReq`], pushed through the endpoint's
//! [`Transport`], translated by the platform's
//! [`CoherenceAdapter`] (the §4 adapter layer), dispatched to the device,
//! and answered with a [`D2HResp`] — so message counts,
//! payload bytes, and wire-time accounting come from the *actual* traffic
//! of the run, and an Enzian-shaped message stream exercises the same
//! device logic as a native CXL one.

use pax_cache::{HomeAgent, HostSnoop};
use pax_cxl::{CoherenceAdapter, D2HResp, EciMsg, H2DReq, Transport};
use pax_pm::{CacheLine, LatencyProfile, LineAddr, PmError, Result};

use crate::device::PaxDevice;
use crate::metrics::DeviceMetrics;

/// The device behind a modelled link (see module docs).
#[derive(Debug)]
pub struct CxlEndpoint<A> {
    device: PaxDevice,
    adapter: A,
    transport: Transport,
    /// Native messages the adapter filtered as noise (Enzian only).
    filtered: u64,
}

impl<A: CoherenceAdapter> CxlEndpoint<A> {
    /// Wraps `device` behind `adapter`, with channel latencies taken from
    /// the adapter's platform and `profile`.
    pub fn new(device: PaxDevice, adapter: A, profile: &LatencyProfile) -> Self {
        let one_way = adapter.one_way_latency_ns(profile).max(1);
        CxlEndpoint { device, adapter, transport: Transport::new(one_way), filtered: 0 }
    }

    /// The wrapped device (persist, metrics, crash control).
    pub fn device(&self) -> &PaxDevice {
        &self.device
    }

    /// Mutable access to the wrapped device.
    pub fn device_mut(&mut self) -> &mut PaxDevice {
        &mut self.device
    }

    /// Consumes the endpoint, returning the device.
    pub fn into_device(self) -> PaxDevice {
        self.device
    }

    /// Link-traffic statistics accumulated by the run.
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// Native messages the adapter dropped as microarchitectural noise.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Device metrics passthrough.
    pub fn metrics(&self) -> DeviceMetrics {
        self.device.metrics()
    }

    /// Delegates an epoch persist to the device (D2H snoops are issued by
    /// the device against `cache` as in the direct path; their counts are
    /// recorded on the transport).
    ///
    /// # Errors
    ///
    /// See [`PaxDevice::persist`].
    pub fn persist(&mut self, cache: &mut impl HostSnoop) -> Result<u64> {
        let snoops_before = self.device.metrics().snoops_sent;
        let epoch = self.device.persist(cache)?;
        let snoops = self.device.metrics().snoops_sent - snoops_before;
        for _ in 0..snoops {
            self.transport.d2h_req.push(pax_cxl::D2HReq::SnpData { addr: LineAddr(0) });
            self.transport.d2h_req.pop();
            self.transport
                .h2d_resp
                .push_with_data(pax_cxl::H2DResp::SnpResp { addr: LineAddr(0), data: None });
            self.transport.h2d_resp.pop();
        }
        Ok(epoch)
    }

    /// Feeds a *platform-native* message (e.g. an Enzian bus event)
    /// through the adapter into the device, returning the device's
    /// response if the message had a CXL equivalent.
    ///
    /// # Errors
    ///
    /// Propagates device errors for translated messages.
    pub fn deliver_native(&mut self, native: EciMsg) -> Result<Option<D2HResp>> {
        match self.adapter.translate(native) {
            None => {
                self.filtered += 1;
                Ok(None)
            }
            Some(req) => self.dispatch(req).map(Some),
        }
    }

    /// Pushes `req` through the H2D channel, services it at the device,
    /// and returns the response after it crosses the D2H channel.
    fn dispatch(&mut self, req: H2DReq) -> Result<D2HResp> {
        if req.carries_data() {
            self.transport.h2d_req.push_with_data(req.clone());
        } else {
            self.transport.h2d_req.push(req.clone());
        }
        let req = self.transport.h2d_req.pop().expect("just pushed");
        let resp = match req {
            H2DReq::RdShared { addr } => {
                let data = self.device.read_shared(addr)?;
                D2HResp::GoData { addr, data }
            }
            H2DReq::RdOwn { addr } => {
                let data = self.device.read_own(addr)?;
                D2HResp::GoData { addr, data }
            }
            H2DReq::CleanEvict { addr } => {
                self.device.clean_evict(addr);
                D2HResp::Go { addr }
            }
            H2DReq::DirtyEvict { addr, data } => {
                self.device.dirty_evict(addr, data)?;
                D2HResp::Go { addr }
            }
            // `H2DReq` is non-exhaustive: future opcodes must be wired
            // explicitly rather than silently dropped.
            other => return Err(PmError::BadPool(format!("unhandled request opcode {other:?}"))),
        };
        if matches!(resp, D2HResp::GoData { .. }) {
            self.transport.d2h_resp.push_with_data(resp);
        } else {
            self.transport.d2h_resp.push(resp);
        }
        Ok(self.transport.d2h_resp.pop().expect("just pushed"))
    }
}

impl<A: CoherenceAdapter> HomeAgent for CxlEndpoint<A> {
    fn read_shared(&mut self, addr: LineAddr) -> Result<CacheLine> {
        match self.dispatch(H2DReq::RdShared { addr })? {
            D2HResp::GoData { data, .. } => Ok(data),
            _ => Err(PmError::BadPool("protocol violation: RdShared answered without data".into())),
        }
    }

    fn read_own(&mut self, addr: LineAddr) -> Result<CacheLine> {
        match self.dispatch(H2DReq::RdOwn { addr })? {
            D2HResp::GoData { data, .. } => Ok(data),
            _ => Err(PmError::BadPool("protocol violation: RdOwn answered without data".into())),
        }
    }

    fn clean_evict(&mut self, addr: LineAddr) {
        let _ = self.dispatch(H2DReq::CleanEvict { addr });
    }

    fn dirty_evict(&mut self, addr: LineAddr, data: CacheLine) -> Result<()> {
        self.dispatch(H2DReq::DirtyEvict { addr, data })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use pax_cache::{CacheConfig, CoherentCache};
    use pax_cxl::{CxlNative, EnzianAdapter};
    use pax_pm::{PmPool, PoolConfig};

    fn endpoint<A: CoherenceAdapter>(adapter: A) -> CxlEndpoint<A> {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
        CxlEndpoint::new(device, adapter, &LatencyProfile::c6420())
    }

    #[test]
    fn full_flow_through_the_link() {
        let mut ep = endpoint(CxlNative);
        let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        cache.write(LineAddr(1), CacheLine::filled(7), &mut ep).unwrap();
        assert_eq!(cache.read(LineAddr(1), &mut ep).unwrap(), CacheLine::filled(7));
        let epoch = ep.persist(&mut cache).unwrap();
        assert_eq!(epoch, 1);
        // Traffic was really accounted on the transport.
        assert!(ep.transport().total_messages() >= 2);
        assert_eq!(ep.metrics().rd_own, 1);
    }

    #[test]
    fn dirty_evictions_carry_payload_bytes() {
        let mut ep = endpoint(CxlNative);
        // 1-way tiny cache: the second write evicts the first dirty line.
        let mut cache = CoherentCache::new(CacheConfig::tiny(64, 1));
        cache.write(LineAddr(0), CacheLine::filled(1), &mut ep).unwrap();
        cache.write(LineAddr(1), CacheLine::filled(2), &mut ep).unwrap();
        assert!(ep.transport().total_data_bytes() >= 64, "eviction data crossed the link");
    }

    #[test]
    fn enzian_stream_filters_noise_but_matches_cxl_semantics() {
        let mut enzian = endpoint(EnzianAdapter::new());
        // A raw bus stream with interleaved noise:
        enzian.deliver_native(EciMsg::PrefetchProbe { addr: LineAddr(0) }).unwrap();
        let r = enzian.deliver_native(EciMsg::StoreMiss { addr: LineAddr(0) }).unwrap().unwrap();
        assert!(matches!(r, D2HResp::GoData { .. }));
        enzian.deliver_native(EciMsg::DvmOp).unwrap();
        enzian
            .deliver_native(EciMsg::VictimDirty { addr: LineAddr(0), data: CacheLine::filled(9) })
            .unwrap();
        assert_eq!(enzian.filtered(), 2);
        // The store intent was undo-logged exactly as on CXL.
        assert_eq!(enzian.metrics().undo_entries, 1);
        assert_eq!(enzian.metrics().dirty_evicts, 1);
    }

    #[test]
    fn filtered_snoops_never_cross_the_link() {
        // The snoop filter's win is visible as wire traffic: lines the
        // host dirty-evicted before the persist cost no D2H snoop
        // messages at all.
        let mut ep = endpoint(CxlNative);
        // 2-way tiny host cache over 4 lines: the working set spills and
        // every dirty line comes back via DirtyEvict.
        let mut cache = CoherentCache::new(CacheConfig::tiny(2 * 64, 1));
        for i in 0..4u64 {
            cache.write(LineAddr(i), CacheLine::filled(i as u8), &mut ep).unwrap();
        }
        for i in 0..4u64 {
            if let Some(data) = cache.snoop_invalidate(LineAddr(i)) {
                ep.dirty_evict(LineAddr(i), data).unwrap();
            }
        }
        let before = ep.transport().total_messages();
        ep.persist(&mut cache).unwrap();
        assert_eq!(
            ep.transport().total_messages(),
            before,
            "no snoop pairs for lines the host already gave up"
        );
        assert_eq!(ep.metrics().dir_filtered_snoops, 4);
    }

    #[test]
    fn enzian_link_is_slower_than_cxl() {
        let cxl = endpoint(CxlNative);
        let enzian = endpoint(EnzianAdapter::new());
        assert!(
            enzian.transport().round_trip_ns() > cxl.transport().round_trip_ns(),
            "enzian {} vs cxl {}",
            enzian.transport().round_trip_ns(),
            cxl.transport().round_trip_ns()
        );
    }

    #[test]
    fn crash_recovery_works_through_the_endpoint() {
        let mut ep = endpoint(CxlNative);
        let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        cache.write(LineAddr(3), CacheLine::filled(5), &mut ep).unwrap();
        ep.persist(&mut cache).unwrap();
        cache.write(LineAddr(3), CacheLine::filled(6), &mut ep).unwrap();

        let pool = ep.into_device().crash_into_pool();
        let device = PaxDevice::open(pool, DeviceConfig::default()).unwrap();
        let mut ep = CxlEndpoint::new(device, CxlNative, &LatencyProfile::c6420());
        let mut cache = CoherentCache::new(CacheConfig::tiny(16 << 10, 8));
        assert_eq!(cache.read(LineAddr(3), &mut ep).unwrap(), CacheLine::filled(5));
    }
}
