//! Virtual-time device scheduler.
//!
//! The paper's home agent makes background progress continuously — "the
//! device may write back a dirty line at any time once its undo entry is
//! durable" (§3.2) — yet a functional simulation needs that progress to
//! be *deterministic and replayable*, or armed crash points stop
//! reproducing. [`DeviceScheduler`] squares the two: background engines
//! advance only on explicit **virtual ticks**
//! ([`PaxDevice::tick`](crate::PaxDevice::tick)), and each tick runs a
//! fixed per-shard budget of work in a fixed shard order. Same writes +
//! same tick schedule ⇒ the same sequence of durable-write steps ⇒ the
//! same [`CrashClock`](pax_pm::CrashClock) crash state, always.
//!
//! The scheduler also owns the *foreground* pump bookkeeping: each shard
//! earns credit from its own routed requests (replacing the old global
//! `requests_since_pump` counter), and every pump donates one round-robin
//! step to a different shard that has pending work but no traffic — so a
//! shard can no longer starve behind a skewed access pattern.

/// Per-tick engine budgets of a [`DeviceScheduler`].
///
/// The defaults match the request-path pump rates
/// ([`DeviceConfig::log_pump_batch`](crate::DeviceConfig::log_pump_batch)
/// = 2, `writeback_batch` = 1) and the persist drain rate `persist_poll`
/// historically hard-coded (4), so a device driven only by foreground
/// traffic behaves exactly as before this scheduler existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Undo-log entries each shard's logging engine drains per tick.
    pub log_drain_per_tick: usize,
    /// Dirty-durable lines each shard writes back per tick (§3.3's
    /// proactive write back).
    pub writeback_per_tick: usize,
    /// Lines of a draining non-blocking persist written back per tick
    /// (and per `persist_poll`).
    pub persist_drain_per_tick: usize,
}

impl SchedConfig {
    /// Returns the config with a different log-drain budget.
    pub fn with_log_drain(mut self, n: usize) -> Self {
        self.log_drain_per_tick = n;
        self
    }

    /// Returns the config with a different write-back budget.
    pub fn with_writeback(mut self, n: usize) -> Self {
        self.writeback_per_tick = n;
        self
    }

    /// Returns the config with a different persist-drain budget.
    pub fn with_persist_drain(mut self, n: usize) -> Self {
        self.persist_drain_per_tick = n;
        self
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig { log_drain_per_tick: 2, writeback_per_tick: 1, persist_drain_per_tick: 4 }
    }
}

/// Deterministic run-queue state for one device: virtual time, per-shard
/// foreground pump credits, and the round-robin cursor for idle-shard
/// service (see module docs).
#[derive(Debug)]
pub struct DeviceScheduler {
    /// Virtual ticks executed so far.
    ticks: u64,
    /// Foreground requests each shard has accumulated toward its next
    /// pump (its private run-queue depth).
    credits: Vec<usize>,
    /// Round-robin cursor over shards for the donated idle-shard step.
    cursor: usize,
}

impl DeviceScheduler {
    /// A scheduler for a device with `shards` run queues.
    pub(crate) fn new(shards: usize) -> Self {
        DeviceScheduler { ticks: 0, credits: vec![0; shards.max(1)], cursor: 0 }
    }

    /// Virtual ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Advances virtual time by one tick.
    pub(crate) fn advance(&mut self) -> u64 {
        self.ticks += 1;
        self.ticks
    }

    /// Charges one foreground request to `shard`'s run queue; `true` when
    /// the shard has accumulated `interval` requests and its pump is due
    /// (the credit resets).
    pub(crate) fn charge(&mut self, shard: usize, interval: usize) -> bool {
        let credit = &mut self.credits[shard];
        *credit += 1;
        if *credit >= interval.max(1) {
            *credit = 0;
            true
        } else {
            false
        }
    }

    /// The next shard other than `routed` whose run queue reports pending
    /// work, scanning round-robin from the cursor (which advances past the
    /// pick, so service rotates fairly under sustained skew).
    pub(crate) fn next_idle(
        &mut self,
        shards: usize,
        routed: usize,
        has_work: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        for i in 0..shards {
            let s = (self.cursor + i) % shards;
            if s != routed && has_work(s) {
                self.cursor = (s + 1) % shards;
                return Some(s);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budgets_match_the_legacy_pump_rates() {
        let c = SchedConfig::default();
        assert_eq!(c.log_drain_per_tick, 2);
        assert_eq!(c.writeback_per_tick, 1);
        assert_eq!(c.persist_drain_per_tick, 4);
    }

    #[test]
    fn charge_is_per_shard_and_respects_the_interval() {
        let mut sched = DeviceScheduler::new(2);
        // Interval 2: every other request per shard, independently.
        assert!(!sched.charge(0, 2));
        assert!(!sched.charge(1, 2), "shard 1's credit is its own");
        assert!(sched.charge(0, 2));
        assert!(sched.charge(1, 2));
        assert!(!sched.charge(0, 2), "credit reset after the pump");
        // Interval 1 (and the degenerate 0) pump every request.
        assert!(sched.charge(1, 1));
        assert!(sched.charge(1, 0));
    }

    #[test]
    fn next_idle_round_robins_and_skips_the_routed_shard() {
        let mut sched = DeviceScheduler::new(4);
        let all = |_s: usize| true;
        assert_eq!(sched.next_idle(4, 0, all), Some(1));
        assert_eq!(sched.next_idle(4, 0, all), Some(2));
        assert_eq!(sched.next_idle(4, 0, all), Some(3));
        assert_eq!(sched.next_idle(4, 0, all), Some(1), "cursor wraps past the routed shard");
        assert_eq!(sched.next_idle(4, 2, |s| s == 2), None, "only the routed shard has work");
        assert_eq!(sched.next_idle(1, 0, all), None, "an unsharded device has no other shard");
    }

    #[test]
    fn virtual_time_is_monotonic() {
        let mut sched = DeviceScheduler::new(1);
        assert_eq!(sched.ticks(), 0);
        assert_eq!(sched.advance(), 1);
        assert_eq!(sched.advance(), 2);
        assert_eq!(sched.ticks(), 2);
    }
}
