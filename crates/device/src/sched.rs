//! Virtual-time device scheduler.
//!
//! The paper's home agent makes background progress continuously — "the
//! device may write back a dirty line at any time once its undo entry is
//! durable" (§3.2) — yet a functional simulation needs that progress to
//! be *deterministic and replayable*, or armed crash points stop
//! reproducing. [`DeviceScheduler`] squares the two: background engines
//! advance only on explicit **virtual ticks**
//! ([`PaxDevice::tick`](crate::PaxDevice::tick)), and each tick runs a
//! fixed per-shard budget of work in a fixed shard order. Same writes +
//! same tick schedule ⇒ the same sequence of durable-write steps ⇒ the
//! same [`CrashClock`](pax_pm::CrashClock) crash state, always.
//!
//! The scheduler also owns the *foreground* pump bookkeeping: each shard
//! earns credit from its own routed requests (replacing the old global
//! `requests_since_pump` counter), and every pump donates one round-robin
//! step to a different shard that has pending work but no traffic — so a
//! shard can no longer starve behind a skewed access pattern.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Per-tick engine budgets of a [`DeviceScheduler`].
///
/// The defaults match the request-path pump rates
/// ([`DeviceConfig::log_pump_batch`](crate::DeviceConfig::log_pump_batch)
/// = 2, `writeback_batch` = 1) and the persist drain rate `persist_poll`
/// historically hard-coded (4), so a device driven only by foreground
/// traffic behaves exactly as before this scheduler existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Undo-log entries each shard's logging engine drains per tick.
    pub log_drain_per_tick: usize,
    /// Dirty-durable lines each shard writes back per tick (§3.3's
    /// proactive write back).
    pub writeback_per_tick: usize,
    /// Coalesced write-back *batches* of a draining non-blocking persist
    /// issued per tick (and per `persist_poll`); each batch covers up to
    /// `DeviceConfig::persist_wb_batch` contiguous lines in one
    /// durable-write step.
    pub persist_drain_per_tick: usize,
    /// When true, each lane's effective log-drain budget adapts to its
    /// pending-log depth: it doubles (up to `log_drain_per_tick *
    /// log_boost_max`) whenever the depth reaches `log_high_water`, and
    /// halves back toward the base whenever it falls to `log_low_water`.
    /// The inputs are pure device state — queue depths, never wall-clock
    /// time — so tick-schedule crash replay stays deterministic.
    pub adaptive: bool,
    /// Pending-depth threshold that grows the boost (adaptive mode).
    pub log_high_water: usize,
    /// Pending-depth threshold that decays the boost (adaptive mode).
    pub log_low_water: usize,
    /// Ceiling on the adaptive boost multiplier.
    pub log_boost_max: usize,
}

impl SchedConfig {
    /// Returns the config with a different log-drain budget.
    pub fn with_log_drain(mut self, n: usize) -> Self {
        self.log_drain_per_tick = n;
        self
    }

    /// Returns the config with a different write-back budget.
    pub fn with_writeback(mut self, n: usize) -> Self {
        self.writeback_per_tick = n;
        self
    }

    /// Returns the config with a different persist-drain budget.
    pub fn with_persist_drain(mut self, n: usize) -> Self {
        self.persist_drain_per_tick = n;
        self
    }

    /// Enables adaptive log-drain budgets with the default watermarks.
    pub fn with_adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Enables adaptive budgets with explicit watermarks and boost cap.
    pub fn with_adaptive_watermarks(mut self, high: usize, low: usize, boost_max: usize) -> Self {
        self.adaptive = true;
        self.log_high_water = high;
        self.log_low_water = low;
        self.log_boost_max = boost_max.max(1);
        self
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            log_drain_per_tick: 2,
            writeback_per_tick: 1,
            persist_drain_per_tick: 4,
            adaptive: false,
            log_high_water: 16,
            log_low_water: 4,
            log_boost_max: 8,
        }
    }
}

/// Per-poll persist-drain budget, scaled by how many closed epochs the
/// tenant has queued: `persist_drain_per_tick * open_epochs`, each term
/// floored at 1. With at most one queued epoch (the strict and epoch
/// persistency models) this is exactly the historical per-poll budget;
/// under buffered-epoch the drain engine keeps per-epoch service constant
/// as the queue deepens instead of letting K epochs share one budget.
pub(crate) fn persist_drain_budget(cfg: &SchedConfig, open_epochs: usize) -> usize {
    cfg.persist_drain_per_tick.max(1).saturating_mul(open_epochs.max(1))
}

/// Weighted share of a per-shard tick budget: `base * weight /
/// active_weight`, floored at 1 so a tenant with pending work always
/// makes progress — starvation is impossible by construction, whatever
/// the weights. With one active tenant the share is the whole budget.
pub(crate) fn weighted_budget(base: usize, weight: u64, active_weight: u64) -> usize {
    if base == 0 {
        return 0;
    }
    ((base as u64 * weight) / active_weight.max(1)).max(1) as usize
}

/// Deterministic run-queue state for one device: virtual time, per-shard
/// foreground pump credits, and the round-robin cursor for idle-shard
/// service (see module docs).
///
/// All state is atomic and every method takes `&self`: foreground
/// threads charge their own lane's credit without serializing on a
/// scheduler lock. Under a single driver the relaxed atomics degenerate
/// to plain sequential updates, so tick-schedule replay determinism is
/// untouched.
#[derive(Debug)]
pub struct DeviceScheduler {
    /// Virtual ticks executed so far.
    ticks: AtomicU64,
    /// Foreground requests each lane has accumulated toward its next
    /// pump (its private run-queue depth).
    credits: Vec<AtomicUsize>,
    /// Round-robin cursor over lanes for the donated idle-lane step.
    cursor: AtomicUsize,
    /// Adaptive log-drain boost multiplier per lane (1 = base rate).
    boosts: Vec<AtomicUsize>,
}

impl DeviceScheduler {
    /// A scheduler for a device with `lanes` run queues (one per tenant ×
    /// shard pair; an unsharded single-tenant device has exactly one).
    pub(crate) fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        DeviceScheduler {
            ticks: AtomicU64::new(0),
            credits: (0..lanes).map(|_| AtomicUsize::new(0)).collect(),
            cursor: AtomicUsize::new(0),
            boosts: (0..lanes).map(|_| AtomicUsize::new(1)).collect(),
        }
    }

    /// The effective log-drain budget of `lane` this tick: the configured
    /// base times the lane's adaptive boost (1 when adaptive mode is off).
    pub(crate) fn log_budget(&self, lane: usize, cfg: &SchedConfig) -> usize {
        if cfg.adaptive {
            cfg.log_drain_per_tick * self.boosts[lane].load(Ordering::Relaxed)
        } else {
            cfg.log_drain_per_tick
        }
    }

    /// The current adaptive boost multiplier of `lane`.
    pub fn boost(&self, lane: usize) -> usize {
        self.boosts[lane].load(Ordering::Relaxed)
    }

    /// Feeds `lane`'s observed pending-log depth into the adaptive
    /// controller. Depth is device state, never wall-clock, preserving
    /// the replay-determinism contract.
    pub(crate) fn observe_log_depth(&self, lane: usize, pending: usize, cfg: &SchedConfig) {
        if !cfg.adaptive {
            return;
        }
        let boost = &self.boosts[lane];
        let cur = boost.load(Ordering::Relaxed);
        if pending >= cfg.log_high_water {
            boost.store((cur * 2).min(cfg.log_boost_max.max(1)), Ordering::Relaxed);
        } else if pending <= cfg.log_low_water {
            boost.store((cur / 2).max(1), Ordering::Relaxed);
        }
    }

    /// Virtual ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Advances virtual time by one tick.
    pub(crate) fn advance(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Charges one foreground request to `shard`'s run queue; `true` when
    /// the shard has accumulated `interval` requests and its pump is due
    /// (the credit resets).
    pub(crate) fn charge(&self, shard: usize, interval: usize) -> bool {
        let interval = interval.max(1);
        let credit = &self.credits[shard];
        let mut cur = credit.load(Ordering::Relaxed);
        loop {
            let (next, due) = if cur + 1 >= interval { (0, true) } else { (cur + 1, false) };
            match credit.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return due,
                Err(now) => cur = now,
            }
        }
    }

    /// The next shard other than `routed` whose run queue reports pending
    /// work, scanning round-robin from the cursor (which advances past the
    /// pick, so service rotates fairly under sustained skew).
    pub(crate) fn next_idle(
        &self,
        shards: usize,
        routed: usize,
        has_work: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        let cursor = self.cursor.load(Ordering::Relaxed);
        for i in 0..shards {
            let s = (cursor + i) % shards;
            if s != routed && has_work(s) {
                self.cursor.store((s + 1) % shards, Ordering::Relaxed);
                return Some(s);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budgets_match_the_legacy_pump_rates() {
        let c = SchedConfig::default();
        assert_eq!(c.log_drain_per_tick, 2);
        assert_eq!(c.writeback_per_tick, 1);
        assert_eq!(c.persist_drain_per_tick, 4);
    }

    #[test]
    fn charge_is_per_shard_and_respects_the_interval() {
        let sched = DeviceScheduler::new(2);
        // Interval 2: every other request per shard, independently.
        assert!(!sched.charge(0, 2));
        assert!(!sched.charge(1, 2), "shard 1's credit is its own");
        assert!(sched.charge(0, 2));
        assert!(sched.charge(1, 2));
        assert!(!sched.charge(0, 2), "credit reset after the pump");
        // Interval 1 (and the degenerate 0) pump every request.
        assert!(sched.charge(1, 1));
        assert!(sched.charge(1, 0));
    }

    #[test]
    fn next_idle_round_robins_and_skips_the_routed_shard() {
        let sched = DeviceScheduler::new(4);
        let all = |_s: usize| true;
        assert_eq!(sched.next_idle(4, 0, all), Some(1));
        assert_eq!(sched.next_idle(4, 0, all), Some(2));
        assert_eq!(sched.next_idle(4, 0, all), Some(3));
        assert_eq!(sched.next_idle(4, 0, all), Some(1), "cursor wraps past the routed shard");
        assert_eq!(sched.next_idle(4, 2, |s| s == 2), None, "only the routed shard has work");
        assert_eq!(sched.next_idle(1, 0, all), None, "an unsharded device has no other shard");
    }

    #[test]
    fn weighted_budget_splits_by_weight_with_a_floor_of_one() {
        // Two active tenants at 3:1 split a budget of 4.
        assert_eq!(weighted_budget(4, 3, 4), 3);
        assert_eq!(weighted_budget(4, 1, 4), 1);
        // A lone tenant gets the whole budget.
        assert_eq!(weighted_budget(4, 7, 7), 4);
        // Tiny weights still make progress; a zero base stays disabled.
        assert_eq!(weighted_budget(2, 1, 100), 1);
        assert_eq!(weighted_budget(0, 1, 2), 0);
    }

    #[test]
    fn persist_drain_budget_scales_with_queued_epochs() {
        let cfg = SchedConfig::default();
        // Empty or single-epoch queues get exactly the legacy budget.
        assert_eq!(persist_drain_budget(&cfg, 0), cfg.persist_drain_per_tick);
        assert_eq!(persist_drain_budget(&cfg, 1), cfg.persist_drain_per_tick);
        // Deeper buffered-epoch queues scale linearly.
        assert_eq!(persist_drain_budget(&cfg, 4), 4 * cfg.persist_drain_per_tick);
        // A zero configured budget still makes progress (persist_wait
        // must terminate).
        assert_eq!(persist_drain_budget(&cfg.with_persist_drain(0), 2), 2);
    }

    #[test]
    fn adaptive_boost_grows_at_high_water_and_decays_at_low_water() {
        let cfg = SchedConfig::default().with_adaptive_watermarks(8, 2, 4);
        let sched = DeviceScheduler::new(1);
        assert_eq!(sched.log_budget(0, &cfg), cfg.log_drain_per_tick);
        sched.observe_log_depth(0, 8, &cfg);
        assert_eq!(sched.boost(0), 2);
        sched.observe_log_depth(0, 20, &cfg);
        assert_eq!(sched.boost(0), 4);
        sched.observe_log_depth(0, 100, &cfg);
        assert_eq!(sched.boost(0), 4, "boost is capped");
        assert_eq!(sched.log_budget(0, &cfg), 2 * 4);
        // Between the watermarks the boost holds steady.
        sched.observe_log_depth(0, 5, &cfg);
        assert_eq!(sched.boost(0), 4);
        sched.observe_log_depth(0, 2, &cfg);
        assert_eq!(sched.boost(0), 2);
        sched.observe_log_depth(0, 0, &cfg);
        sched.observe_log_depth(0, 0, &cfg);
        assert_eq!(sched.boost(0), 1, "boost decays back to the base rate");
    }

    #[test]
    fn non_adaptive_mode_ignores_depth_observations() {
        let cfg = SchedConfig::default();
        let sched = DeviceScheduler::new(1);
        sched.observe_log_depth(0, 1_000, &cfg);
        assert_eq!(sched.boost(0), 1);
        assert_eq!(sched.log_budget(0, &cfg), cfg.log_drain_per_tick);
    }

    #[test]
    fn virtual_time_is_monotonic() {
        let sched = DeviceScheduler::new(1);
        assert_eq!(sched.ticks(), 0);
        assert_eq!(sched.advance(), 1);
        assert_eq!(sched.advance(), 2);
        assert_eq!(sched.ticks(), 2);
    }
}
