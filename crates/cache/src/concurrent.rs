//! Concurrent set-associative index: `SetAssoc` semantics behind per-set
//! locks plus a lock-free presence probe.
//!
//! `ConcurrentSetAssoc<T>` is the shared-index twin of [`SetAssoc`]: the
//! same set geometry, the same single logical LRU clock, and the same
//! victim-selection rules, but every operation takes `&self` so many
//! threads can drive disjoint sets (and, with short critical sections,
//! even the same set) without an exclusive borrow of the whole index.
//!
//! Concurrency design:
//!
//! - Each set is a [`std::sync::Mutex`] over its ways. Critical sections
//!   are tiny (scan ≤ `ways` entries, mutate one), so a plain mutex is a
//!   spinlock in practice and keeps the crate `forbid(unsafe_code)`.
//! - Each set also carries a 64-bit *presence signature* (a one-word
//!   Bloom filter over the addresses resident in the set). A reader
//!   probes the signature with an `Acquire` load before locking; a clear
//!   bit proves a definite miss and the probe returns without touching
//!   the lock at all. Set bits may be stale (false positives after
//!   eviction are allowed until the next rebuild), which only costs a
//!   lock acquisition — never a wrong answer.
//! - The LRU clock is one global `AtomicU64` bumped with `fetch_add`, so
//!   a single-threaded driver observes exactly the same stamp sequence
//!   as `SetAssoc`'s plain `u64` clock (deterministic replay holds).
//! - `insert_with` runs the caller's eviction `dispose` closure while
//!   *still holding the set lock*: a victim is never invisible (absent
//!   from the index) before its disposal side effects complete, closing
//!   the stale-read window a drop-lock-then-dispose scheme would open.
//!
//! Lock ordering: callers may acquire downstream locks (pool, trace)
//! inside `dispose`/`get` closures; `ConcurrentSetAssoc` itself never
//! takes more than one set lock at a time except in the documented
//! whole-index walks (`for_each_mut`, `clear`), which lock sets strictly
//! in index order.
//!
//! [`SetAssoc`]: crate::SetAssoc

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use pax_pm::{LineAddr, LINE_SIZE};

/// One resident line: address tag, payload, and LRU stamp.
#[derive(Debug)]
struct Way<T> {
    addr: LineAddr,
    payload: T,
    last_use: u64,
}

/// One set: locked ways plus the lock-free presence signature.
#[derive(Debug)]
struct SetSlot<T> {
    ways: Mutex<Vec<Way<T>>>,
    /// One-word Bloom filter over resident addresses; bit index =
    /// [`sig_bit`]. Cleared bits prove absence; set bits may be stale.
    sig: AtomicU64,
}

/// Hash an address to its presence-signature bit (0..64).
fn sig_bit(addr: LineAddr) -> u64 {
    1u64 << (addr.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
}

/// Rebuild a set's signature from its resident ways (after a removal).
fn rebuild_sig<T>(ways: &[Way<T>]) -> u64 {
    ways.iter().fold(0u64, |sig, w| sig | sig_bit(w.addr))
}

/// A set-associative index shared across threads.
///
/// See the module docs for the concurrency design. The observable
/// single-driver behaviour (hit/miss outcomes, victim choice, LRU
/// stamps) is bit-identical to [`SetAssoc`](crate::SetAssoc).
#[derive(Debug)]
pub struct ConcurrentSetAssoc<T> {
    sets: Vec<SetSlot<T>>,
    ways: usize,
    clock: AtomicU64,
    resident: AtomicUsize,
}

impl<T> ConcurrentSetAssoc<T> {
    /// Build an index with `num_sets` sets of `ways` ways each.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0, "need at least one set");
        assert!(ways > 0, "need at least one way");
        let sets = (0..num_sets)
            .map(|_| SetSlot { ways: Mutex::new(Vec::with_capacity(ways)), sig: AtomicU64::new(0) })
            .collect();
        Self { sets, ways, clock: AtomicU64::new(0), resident: AtomicUsize::new(0) }
    }

    /// Build an index sized to `bytes` of line storage with the given
    /// associativity, mirroring `SetAssoc::with_capacity_bytes`.
    ///
    /// # Panics
    /// Panics if `bytes` holds fewer lines than one full set.
    pub fn with_capacity_bytes(bytes: usize, ways: usize) -> Self {
        let lines = bytes / LINE_SIZE;
        assert!(
            lines >= ways,
            "capacity {bytes} bytes holds {lines} lines, fewer than {ways} ways"
        );
        Self::new(lines / ways, ways)
    }

    fn set_of(&self, addr: LineAddr) -> &SetSlot<T> {
        &self.sets[(addr.0 as usize) % self.sets.len()]
    }

    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// True when no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total line capacity (`sets × ways`).
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Look up `addr`, running `f` on the payload under the set lock.
    ///
    /// Advances the LRU clock even on a miss (matching
    /// `SetAssoc::get_mut`) and freshens the line's stamp on a hit. A
    /// clear presence-signature bit short-circuits to `None` without
    /// locking the set.
    pub fn get<R>(&self, addr: LineAddr, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let stamp = self.stamp();
        let set = self.set_of(addr);
        if set.sig.load(Ordering::Acquire) & sig_bit(addr) == 0 {
            return None;
        }
        let mut ways = set.ways.lock().unwrap_or_else(|e| e.into_inner());
        let way = ways.iter_mut().find(|w| w.addr == addr)?;
        way.last_use = stamp;
        Some(f(&mut way.payload))
    }

    /// Run `f` on `addr`'s payload without disturbing LRU state.
    pub fn peek<R>(&self, addr: LineAddr, f: impl FnOnce(&T) -> R) -> Option<R> {
        let set = self.set_of(addr);
        if set.sig.load(Ordering::Acquire) & sig_bit(addr) == 0 {
            return None;
        }
        let ways = set.ways.lock().unwrap_or_else(|e| e.into_inner());
        ways.iter().find(|w| w.addr == addr).map(|w| f(&w.payload))
    }

    /// Run `f` mutably on `addr`'s payload without disturbing LRU state.
    pub fn peek_mut<R>(&self, addr: LineAddr, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let set = self.set_of(addr);
        if set.sig.load(Ordering::Acquire) & sig_bit(addr) == 0 {
            return None;
        }
        let mut ways = set.ways.lock().unwrap_or_else(|e| e.into_inner());
        ways.iter_mut().find(|w| w.addr == addr).map(|w| f(&mut w.payload))
    }

    /// Insert `payload` at `addr`, evicting a victim if the set is full.
    ///
    /// Victim selection mirrors `SetAssoc::insert_with_policy`: among
    /// ways for which `prefer` returns true the least-recently-used one
    /// is chosen; if none is preferred, the overall LRU way is evicted.
    /// On a hit the payload is replaced in place (and its stamp
    /// freshened) with no eviction.
    ///
    /// `dispose` runs on the victim *while the set lock is held*, so the
    /// victim stays invisible-atomically: no other thread can observe
    /// the index without the victim before disposal completes. Returns
    /// `dispose`'s result when a victim was evicted, `None` otherwise.
    pub fn insert_with<R>(
        &self,
        addr: LineAddr,
        payload: T,
        prefer: impl Fn(&T) -> bool,
        dispose: impl FnOnce(LineAddr, T) -> R,
    ) -> Option<R> {
        let stamp = self.stamp();
        let set = self.set_of(addr);
        let mut ways = set.ways.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(way) = ways.iter_mut().find(|w| w.addr == addr) {
            way.payload = payload;
            way.last_use = stamp;
            return None;
        }
        let victim = if ways.len() >= self.ways {
            let preferred = ways
                .iter()
                .enumerate()
                .filter(|(_, w)| prefer(&w.payload))
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i);
            let idx = preferred.unwrap_or_else(|| {
                ways.iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.last_use)
                    .map(|(i, _)| i)
                    .expect("full set has at least one way")
            });
            Some(ways.swap_remove(idx))
        } else {
            None
        };
        ways.push(Way { addr, payload, last_use: stamp });
        match victim {
            Some(v) => {
                set.sig.store(rebuild_sig(&ways), Ordering::Release);
                // Dispose under the set lock: the victim must not be
                // missing from the index while its data is still in
                // flight to its home location.
                Some(dispose(v.addr, v.payload))
            }
            None => {
                set.sig.fetch_or(sig_bit(addr), Ordering::Release);
                self.resident.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert only if `addr` is absent; an existing line (and its LRU
    /// stamp) is left untouched. Otherwise identical to [`insert_with`].
    ///
    /// [`insert_with`]: Self::insert_with
    pub fn insert_if_absent_with<R>(
        &self,
        addr: LineAddr,
        payload: T,
        prefer: impl Fn(&T) -> bool,
        dispose: impl FnOnce(LineAddr, T) -> R,
    ) -> Option<R> {
        let stamp = self.stamp();
        let set = self.set_of(addr);
        let mut ways = set.ways.lock().unwrap_or_else(|e| e.into_inner());
        if ways.iter().any(|w| w.addr == addr) {
            return None;
        }
        let victim = if ways.len() >= self.ways {
            let preferred = ways
                .iter()
                .enumerate()
                .filter(|(_, w)| prefer(&w.payload))
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i);
            let idx = preferred.unwrap_or_else(|| {
                ways.iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.last_use)
                    .map(|(i, _)| i)
                    .expect("full set has at least one way")
            });
            Some(ways.swap_remove(idx))
        } else {
            None
        };
        ways.push(Way { addr, payload, last_use: stamp });
        match victim {
            Some(v) => {
                set.sig.store(rebuild_sig(&ways), Ordering::Release);
                Some(dispose(v.addr, v.payload))
            }
            None => {
                set.sig.fetch_or(sig_bit(addr), Ordering::Release);
                self.resident.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Remove and return `addr`'s payload, if resident.
    pub fn remove(&self, addr: LineAddr) -> Option<T> {
        let set = self.set_of(addr);
        if set.sig.load(Ordering::Acquire) & sig_bit(addr) == 0 {
            return None;
        }
        let mut ways = set.ways.lock().unwrap_or_else(|e| e.into_inner());
        let idx = ways.iter().position(|w| w.addr == addr)?;
        let way = ways.swap_remove(idx);
        set.sig.store(rebuild_sig(&ways), Ordering::Release);
        self.resident.fetch_sub(1, Ordering::Relaxed);
        Some(way.payload)
    }

    /// Visit every resident line mutably, without disturbing LRU state.
    ///
    /// Sets are locked one at a time in index order, so concurrent
    /// operations on other sets proceed; within a set, visit order is
    /// way order (matching `SetAssoc::iter`).
    pub fn for_each_mut(&self, mut f: impl FnMut(LineAddr, &mut T)) {
        for set in &self.sets {
            let mut ways = set.ways.lock().unwrap_or_else(|e| e.into_inner());
            for way in ways.iter_mut() {
                f(way.addr, &mut way.payload);
            }
        }
    }

    /// Drop every resident line.
    pub fn clear(&self) {
        for set in &self.sets {
            let mut ways = set.ways.lock().unwrap_or_else(|e| e.into_inner());
            let n = ways.len();
            ways.clear();
            set.sig.store(0, Ordering::Release);
            self.resident.fetch_sub(n, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> ConcurrentSetAssoc<u64> {
        // 2 sets x 2 ways.
        ConcurrentSetAssoc::new(2, 2)
    }

    #[test]
    fn get_hits_and_misses_like_setassoc() {
        let c = idx();
        assert!(c.get(LineAddr(0), |_| ()).is_none());
        assert!(c.insert_with(LineAddr(0), 7, |_| true, |_, _| ()).is_none());
        assert_eq!(c.get(LineAddr(0), |v| *v), Some(7));
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn full_set_evicts_lru_and_disposes_under_lock() {
        let c = idx();
        // Addresses 0, 2, 4 all land in set 0.
        c.insert_with(LineAddr(0), 10, |_| true, |_, _| ());
        c.insert_with(LineAddr(2), 20, |_| true, |_, _| ());
        // Touch 0 so 2 becomes LRU.
        c.get(LineAddr(0), |_| ());
        let evicted = c.insert_with(LineAddr(4), 40, |_| true, |a, v| (a, v));
        assert_eq!(evicted, Some((LineAddr(2), 20)));
        assert_eq!(c.len(), 2);
        assert!(c.peek(LineAddr(2), |_| ()).is_none());
        assert_eq!(c.peek(LineAddr(0), |v| *v), Some(10));
        assert_eq!(c.peek(LineAddr(4), |v| *v), Some(40));
    }

    #[test]
    fn preferred_victim_wins_over_lru() {
        let c = idx();
        c.insert_with(LineAddr(0), 1, |_| true, |_, _| ());
        c.insert_with(LineAddr(2), 2, |_| true, |_, _| ());
        // Prefer even payloads: 2 is evicted even though 0 is LRU.
        let evicted = c.insert_with(LineAddr(4), 5, |v| *v % 2 == 0, |a, v| (a, v));
        assert_eq!(evicted, Some((LineAddr(2), 2)));
    }

    #[test]
    fn replace_in_place_on_hit_evicts_nothing() {
        let c = idx();
        c.insert_with(LineAddr(0), 1, |_| true, |_, _| ());
        c.insert_with(LineAddr(2), 2, |_| true, |_, _| ());
        assert!(c.insert_with(LineAddr(0), 9, |_| true, |_, _| ()).is_none());
        assert_eq!(c.peek(LineAddr(0), |v| *v), Some(9));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_if_absent_keeps_existing_payload() {
        let c = idx();
        c.insert_with(LineAddr(0), 1, |_| true, |_, _| ());
        assert!(c.insert_if_absent_with(LineAddr(0), 9, |_| true, |_, _| ()).is_none());
        assert_eq!(c.peek(LineAddr(0), |v| *v), Some(1));
        assert!(c.insert_if_absent_with(LineAddr(2), 2, |_| true, |_, _| ()).is_none());
        assert_eq!(c.peek(LineAddr(2), |v| *v), Some(2));
    }

    #[test]
    fn remove_and_clear_track_residency() {
        let c = idx();
        c.insert_with(LineAddr(0), 1, |_| true, |_, _| ());
        c.insert_with(LineAddr(1), 2, |_| true, |_, _| ());
        assert_eq!(c.remove(LineAddr(0)), Some(1));
        assert_eq!(c.remove(LineAddr(0)), None);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert!(c.peek(LineAddr(1), |_| ()).is_none());
    }

    #[test]
    fn for_each_mut_visits_everything_in_set_order() {
        let c = idx();
        for a in 0..4u64 {
            c.insert_with(LineAddr(a), a, |_| true, |_, _| ());
        }
        let mut seen = Vec::new();
        c.for_each_mut(|addr, v| {
            *v += 100;
            seen.push(addr.0);
        });
        // Set 0 holds even addresses, set 1 odd; within a set, insertion order.
        assert_eq!(seen, vec![0, 2, 1, 3]);
        assert_eq!(c.peek(LineAddr(3), |v| *v), Some(103));
    }

    #[test]
    fn stale_signature_bits_never_produce_false_hits() {
        let c = ConcurrentSetAssoc::new(1, 1);
        c.insert_with(LineAddr(0), 1, |_| true, |_, _| ());
        // Evict 0 by inserting 1 (same single set).
        c.insert_with(LineAddr(1), 2, |_| true, |_, _| ());
        assert!(c.get(LineAddr(0), |_| ()).is_none());
        assert_eq!(c.get(LineAddr(1), |v| *v), Some(2));
    }

    #[test]
    fn concurrent_inserts_keep_residency_consistent() {
        let c = std::sync::Arc::new(ConcurrentSetAssoc::new(64, 4));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..256u64 {
                        c.insert_with(LineAddr(t * 256 + i), i, |_| true, |_, _| ());
                    }
                });
            }
        });
        assert_eq!(c.len(), c.capacity());
        let mut count = 0;
        c.for_each_mut(|_, _| count += 1);
        assert_eq!(count, c.len());
    }
}
