//! Three-level miss-rate instrumentation.
//!
//! Fig. 2a of the paper is built by *measuring* L1/L2/LLC miss rates for a
//! hash-table workload and *composing* them with per-level latencies. The
//! [`Hierarchy`] reproduces the measurement half: it is a tag-only,
//! inclusive L1/L2/LLC stack that classifies each access by the level that
//! serves it. It deliberately carries no data — the functional side lives
//! in [`CoherentCache`](crate::CoherentCache) — so the same access stream
//! can drive both without the instrument perturbing correctness.

use pax_pm::LineAddr;
use pax_telemetry::{Counter, MetricSet, MetricSnapshot};

use crate::cache::CacheConfig;
use crate::set::SetAssoc;

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the private L2.
    L2,
    /// Hit in the shared last-level cache.
    Llc,
    /// Miss everywhere; served by memory (DRAM, PM, or the PAX device).
    Memory,
}

/// Geometry of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Last-level cache geometry.
    pub llc: CacheConfig,
}

impl HierarchyConfig {
    /// The Cloudlab c6420 (Xeon Gold 6142) hierarchy used in Fig. 2a.
    pub const fn c6420() -> Self {
        HierarchyConfig {
            l1: CacheConfig::l1_c6420(),
            l2: CacheConfig::l2_c6420(),
            llc: CacheConfig::llc_c6420(),
        }
    }

    /// A scaled-down hierarchy (1⁄64 of each level) so simulations whose
    /// working sets are scaled down by the same factor see realistic miss
    /// rates without gigabyte-sized tag arrays.
    pub const fn c6420_scaled() -> Self {
        HierarchyConfig {
            l1: CacheConfig::tiny((32 << 10) / 64, 8),
            l2: CacheConfig::tiny((1 << 20) / 64, 16),
            llc: CacheConfig::tiny((22 << 20) / 64, 11),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::c6420()
    }
}

/// Hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that probed this level.
    pub accesses: u64,
    /// Accesses served by this level.
    pub hits: u64,
}

impl LevelStats {
    /// Misses at this level (continue downward).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Local miss ratio (misses / accesses); zero when never accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// Per-level statistics for the whole hierarchy.
///
/// A point-in-time view over the hierarchy's [`MetricSet`] registry,
/// which owns the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 counters.
    pub l1: LevelStats,
    /// L2 counters.
    pub l2: LevelStats,
    /// LLC counters.
    pub llc: LevelStats,
}

impl HierarchyStats {
    /// Total accesses issued to the hierarchy.
    pub fn total_accesses(&self) -> u64 {
        self.l1.accesses
    }

    /// Accesses that fell through to memory.
    pub fn memory_accesses(&self) -> u64 {
        self.llc.misses()
    }
}

/// Counter handles for the hierarchy's [`MetricSet`]: an
/// `(accesses, hits)` pair per level.
#[derive(Debug, Clone, Copy)]
struct HierarchyCounters {
    l1_accesses: Counter,
    l1_hits: Counter,
    l2_accesses: Counter,
    l2_hits: Counter,
    llc_accesses: Counter,
    llc_hits: Counter,
}

impl HierarchyCounters {
    fn register(metrics: &mut MetricSet) -> Self {
        HierarchyCounters {
            l1_accesses: metrics.counter("l1_accesses"),
            l1_hits: metrics.counter("l1_hits"),
            l2_accesses: metrics.counter("l2_accesses"),
            l2_hits: metrics.counter("l2_hits"),
            llc_accesses: metrics.counter("llc_accesses"),
            llc_hits: metrics.counter("llc_hits"),
        }
    }

    fn view(&self, metrics: &MetricSet) -> HierarchyStats {
        HierarchyStats {
            l1: LevelStats {
                accesses: metrics.get(self.l1_accesses),
                hits: metrics.get(self.l1_hits),
            },
            l2: LevelStats {
                accesses: metrics.get(self.l2_accesses),
                hits: metrics.get(self.l2_hits),
            },
            llc: LevelStats {
                accesses: metrics.get(self.llc_accesses),
                hits: metrics.get(self.llc_hits),
            },
        }
    }
}

/// Tag-only inclusive L1/L2/LLC stack (see module docs).
#[derive(Debug)]
pub struct Hierarchy {
    l1: SetAssoc<()>,
    l2: SetAssoc<()>,
    llc: SetAssoc<()>,
    metrics: MetricSet,
    ctr: HierarchyCounters,
}

impl Hierarchy {
    /// Creates an empty hierarchy with the given geometry.
    pub fn new(config: HierarchyConfig) -> Self {
        let mut metrics = MetricSet::new("cache_hierarchy");
        let ctr = HierarchyCounters::register(&mut metrics);
        Hierarchy {
            l1: SetAssoc::with_capacity_bytes(config.l1.capacity_bytes, config.l1.ways),
            l2: SetAssoc::with_capacity_bytes(config.l2.capacity_bytes, config.l2.ways),
            llc: SetAssoc::with_capacity_bytes(config.llc.capacity_bytes, config.llc.ways),
            metrics,
            ctr,
        }
    }

    /// Cumulative per-level statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.ctr.view(&self.metrics)
    }

    /// Snapshot of the hierarchy's metric registry.
    pub fn metrics(&self) -> MetricSnapshot {
        self.metrics.snapshot()
    }

    /// Classifies one access to `addr` and updates tag state.
    pub fn access(&mut self, addr: LineAddr) -> ServedBy {
        self.metrics.inc(self.ctr.l1_accesses);
        if self.l1.get_mut(addr).is_some() {
            self.metrics.inc(self.ctr.l1_hits);
            return ServedBy::L1;
        }
        self.metrics.inc(self.ctr.l2_accesses);
        if self.l2.get_mut(addr).is_some() {
            self.metrics.inc(self.ctr.l2_hits);
            self.fill_l1(addr);
            return ServedBy::L2;
        }
        self.metrics.inc(self.ctr.llc_accesses);
        if self.llc.get_mut(addr).is_some() {
            self.metrics.inc(self.ctr.llc_hits);
            self.fill_l2(addr);
            self.fill_l1(addr);
            return ServedBy::Llc;
        }
        // Miss everywhere: fill all levels (inclusive hierarchy).
        if let Some((victim, ())) = self.llc.insert(addr, ()) {
            // Back-invalidate to preserve inclusion.
            self.l1.remove(victim);
            self.l2.remove(victim);
        }
        self.fill_l2(addr);
        self.fill_l1(addr);
        ServedBy::Memory
    }

    fn fill_l1(&mut self, addr: LineAddr) {
        self.l1.insert(addr, ());
    }

    fn fill_l2(&mut self, addr: LineAddr) {
        self.l2.insert(addr, ());
    }

    /// Invalidates `addr` everywhere (device snoop or eviction elsewhere).
    pub fn invalidate(&mut self, addr: LineAddr) {
        self.l1.remove(addr);
        self.l2.remove(addr);
        self.llc.remove(addr);
    }

    /// Empties all tag state (context switch / crash).
    pub fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.llc.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1: CacheConfig::tiny(4 * 64, 2),
            l2: CacheConfig::tiny(16 * 64, 4),
            llc: CacheConfig::tiny(64 * 64, 8),
        })
    }

    #[test]
    fn first_touch_misses_everywhere_then_hits_l1() {
        let mut h = tiny();
        assert_eq!(h.access(LineAddr(0)), ServedBy::Memory);
        assert_eq!(h.access(LineAddr(0)), ServedBy::L1);
        assert_eq!(h.stats().l1.hits, 1);
        assert_eq!(h.stats().memory_accesses(), 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = tiny();
        // L1 has 2 sets × 2 ways; lines 0,2,4,6 all map to set 0.
        for a in [0u64, 2, 4] {
            h.access(LineAddr(a));
        }
        // Line 0 was evicted from L1 (LRU) but still resides in L2.
        assert_eq!(h.access(LineAddr(0)), ServedBy::L2);
    }

    #[test]
    fn inclusion_is_preserved_on_llc_eviction() {
        let mut h = Hierarchy::new(HierarchyConfig {
            l1: CacheConfig::tiny(2 * 64, 2),
            l2: CacheConfig::tiny(2 * 64, 2),
            llc: CacheConfig::tiny(2 * 64, 2),
        });
        h.access(LineAddr(0));
        h.access(LineAddr(1));
        h.access(LineAddr(2)); // evicts 0 or 1 from LLC and back-invalidates
        let evicted = if h.llc.contains(LineAddr(0)) { LineAddr(1) } else { LineAddr(0) };
        assert!(!h.l1.contains(evicted));
        assert!(!h.l2.contains(evicted));
        assert_eq!(h.access(evicted), ServedBy::Memory);
    }

    #[test]
    fn miss_ratio_math() {
        let s = LevelStats { accesses: 10, hits: 4 };
        assert_eq!(s.misses(), 6);
        assert!((s.miss_ratio() - 0.6).abs() < 1e-12);
        assert_eq!(LevelStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn uniform_scan_larger_than_llc_mostly_misses() {
        let mut h = tiny(); // LLC: 64 lines
                            // Two sequential sweeps over 256 lines: every access misses LLC
                            // because LRU evicts lines long before they are revisited.
        let mut memory = 0;
        for _ in 0..2 {
            for a in 0..256u64 {
                if h.access(LineAddr(a)) == ServedBy::Memory {
                    memory += 1;
                }
            }
        }
        assert!(memory >= 500, "expected thrashing, got {memory} memory accesses");
    }

    #[test]
    fn invalidate_forces_refetch() {
        let mut h = tiny();
        h.access(LineAddr(9));
        h.invalidate(LineAddr(9));
        assert_eq!(h.access(LineAddr(9)), ServedBy::Memory);
    }
}
