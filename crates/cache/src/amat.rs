//! Average memory access time (AMAT) composition — the Fig. 2a model.
//!
//! The paper estimates how much a PAX between PM and the application slows
//! individual loads/stores by combining measured L1/L2/LLC miss rates with
//! per-level latencies:
//!
//! ```text
//! AMAT = t_L1 + m_L1 · ( t_L2 + m_L2 · ( t_LLC + m_LLC · t_mem ) )
//! ```
//!
//! where `t_mem` depends on what serves LLC misses: DRAM, a PM DIMM, or a
//! PAX device reached over CXL or Enzian's ECI (whose interposition adds
//! latency, partially hidden by an on-device HBM cache).

use pax_pm::{LatencyProfile, Platform};

use crate::hierarchy::HierarchyStats;

/// What serves LLC misses in an AMAT scenario (the four Fig. 2a bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MemKind {
    /// Volatile DRAM; not crash consistent.
    Dram,
    /// PM DIMM accessed directly; not crash consistent.
    PmDirect,
    /// PM behind a CXL-attached PAX; crash consistent.
    PmViaCxl,
    /// PM behind an Enzian-attached PAX prototype; crash consistent.
    PmViaEnzian,
}

impl MemKind {
    /// All four scenarios in the order Fig. 2a plots them.
    pub const ALL: [MemKind; 4] =
        [MemKind::Dram, MemKind::PmDirect, MemKind::PmViaCxl, MemKind::PmViaEnzian];

    /// The label used in the figure.
    pub fn label(self) -> &'static str {
        match self {
            MemKind::Dram => "DRAM",
            MemKind::PmDirect => "PM",
            MemKind::PmViaCxl => "PM via CXL",
            MemKind::PmViaEnzian => "PM via Enzian",
        }
    }

    /// Whether the scenario survives crashes with consistency.
    pub fn crash_consistent(self) -> bool {
        matches!(self, MemKind::PmViaCxl | MemKind::PmViaEnzian)
    }
}

/// An AMAT estimate decomposed by hierarchy level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmatBreakdown {
    /// Scenario the estimate is for.
    pub kind: MemKind,
    /// t_L1 (paid by every access).
    pub l1_ns: f64,
    /// m_L1 · t_L2 contribution.
    pub l2_ns: f64,
    /// m_L1 · m_L2 · t_LLC contribution.
    pub llc_ns: f64,
    /// m_L1 · m_L2 · m_LLC · t_mem contribution.
    pub memory_ns: f64,
    /// Effective t_mem used (media + interposition, after HBM caching).
    pub t_mem_ns: f64,
}

impl AmatBreakdown {
    /// The total AMAT in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.l1_ns + self.l2_ns + self.llc_ns + self.memory_ns
    }
}

/// Composes miss rates and latencies into AMAT estimates.
#[derive(Debug, Clone, Copy)]
pub struct AmatEstimator {
    profile: LatencyProfile,
    /// Fraction of device-interposed LLC misses served by the device's HBM
    /// cache instead of PM (0.0 disables the HBM model).
    hbm_hit_rate: f64,
}

impl AmatEstimator {
    /// An estimator over `profile` with the HBM cache disabled.
    pub fn new(profile: LatencyProfile) -> Self {
        AmatEstimator { profile, hbm_hit_rate: 0.0 }
    }

    /// Enables the on-device HBM cache model: `rate` of interposed misses
    /// hit HBM (latency `profile.hbm_ns`) instead of PM.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `0.0..=1.0`.
    pub fn with_hbm_hit_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "hit rate must be a probability");
        self.hbm_hit_rate = rate;
        self
    }

    /// The latency profile in use.
    pub fn profile(&self) -> LatencyProfile {
        self.profile
    }

    /// Effective memory service time for `kind`, in ns.
    pub fn t_mem_ns(&self, kind: MemKind) -> f64 {
        let p = &self.profile;
        match kind {
            MemKind::Dram => p.dram.read_ns as f64,
            MemKind::PmDirect => p.pm.read_ns as f64,
            MemKind::PmViaCxl => self.interposed_ns(Platform::Cxl),
            MemKind::PmViaEnzian => self.interposed_ns(Platform::Enzian),
        }
    }

    fn interposed_ns(&self, platform: Platform) -> f64 {
        let p = &self.profile;
        let backing =
            self.hbm_hit_rate * p.hbm_ns as f64 + (1.0 - self.hbm_hit_rate) * p.pm.read_ns as f64;
        p.interposition_ns(platform) as f64 + backing
    }

    /// The Fig. 2a estimate: AMAT for `kind` given measured miss rates.
    pub fn amat(&self, stats: &HierarchyStats, kind: MemKind) -> AmatBreakdown {
        let p = &self.profile;
        let m1 = stats.l1.miss_ratio();
        let m2 = stats.l2.miss_ratio();
        let m3 = stats.llc.miss_ratio();
        let t_mem = self.t_mem_ns(kind);
        AmatBreakdown {
            kind,
            l1_ns: p.l1_ns as f64,
            l2_ns: m1 * p.l2_ns as f64,
            llc_ns: m1 * m2 * p.llc_ns as f64,
            memory_ns: m1 * m2 * m3 * t_mem,
            t_mem_ns: t_mem,
        }
    }

    /// Estimates for all four Fig. 2a scenarios.
    pub fn figure_2a(&self, stats: &HierarchyStats) -> [AmatBreakdown; 4] {
        MemKind::ALL.map(|k| self.amat(stats, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::LevelStats;

    fn stats(m1: f64, m2: f64, m3: f64) -> HierarchyStats {
        let n = 1_000_000u64;
        let l1 = LevelStats { accesses: n, hits: ((1.0 - m1) * n as f64) as u64 };
        let a2 = l1.misses();
        let l2 = LevelStats { accesses: a2, hits: ((1.0 - m2) * a2 as f64) as u64 };
        let a3 = l2.misses();
        let llc = LevelStats { accesses: a3, hits: ((1.0 - m3) * a3 as f64) as u64 };
        HierarchyStats { l1, l2, llc }
    }

    #[test]
    fn ordering_matches_figure_2a() {
        let est = AmatEstimator::new(LatencyProfile::c6420());
        let s = stats(0.3, 0.5, 0.6);
        let [dram, pm, cxl, enzian] = est.figure_2a(&s);
        assert!(dram.total_ns() < pm.total_ns());
        assert!(pm.total_ns() < cxl.total_ns());
        assert!(cxl.total_ns() < enzian.total_ns());
    }

    #[test]
    fn cxl_overhead_is_modest() {
        // §5: "crash consistency for PM via a CXL-based PAX may only add
        // 25% to application-experienced AMAT" — with the measured-style
        // miss rates, the overhead over raw PM must stay well under 50%.
        let est = AmatEstimator::new(LatencyProfile::c6420());
        let s = stats(0.3, 0.5, 0.6);
        let pm = est.amat(&s, MemKind::PmDirect).total_ns();
        let cxl = est.amat(&s, MemKind::PmViaCxl).total_ns();
        let overhead = (cxl - pm) / pm;
        assert!(overhead > 0.0 && overhead < 0.5, "overhead {overhead}");
    }

    #[test]
    fn zero_miss_rates_collapse_to_l1() {
        let est = AmatEstimator::new(LatencyProfile::c6420());
        let s = stats(0.0, 0.0, 0.0);
        for k in MemKind::ALL {
            let b = est.amat(&s, k);
            assert_eq!(b.total_ns(), est.profile().l1_ns as f64);
            assert_eq!(b.memory_ns, 0.0);
        }
    }

    #[test]
    fn hbm_cache_reduces_interposed_amat() {
        let s = stats(0.3, 0.5, 0.9);
        let without = AmatEstimator::new(LatencyProfile::c6420());
        let with = AmatEstimator::new(LatencyProfile::c6420()).with_hbm_hit_rate(0.8);
        let a = without.amat(&s, MemKind::PmViaCxl).total_ns();
        let b = with.amat(&s, MemKind::PmViaCxl).total_ns();
        assert!(b < a);
        // HBM does not change DRAM/PM-direct numbers.
        assert_eq!(
            without.amat(&s, MemKind::Dram).total_ns(),
            with.amat(&s, MemKind::Dram).total_ns()
        );
    }

    #[test]
    #[should_panic]
    fn hbm_rate_must_be_probability() {
        let _ = AmatEstimator::new(LatencyProfile::c6420()).with_hbm_hit_rate(1.5);
    }

    #[test]
    fn labels_and_consistency_flags() {
        assert_eq!(MemKind::Dram.label(), "DRAM");
        assert!(MemKind::PmViaCxl.crash_consistent());
        assert!(!MemKind::PmDirect.crash_consistent());
    }
}
