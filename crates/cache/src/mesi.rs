//! MESI coherence states.
//!
//! The host cache holds each resident line in one of the four MESI states.
//! PAX's whole trick (§3) hangs off two transitions:
//!
//! * a store to a line not held in `M`/`E` forces a *read-for-ownership*
//!   to the home agent — the device's chance to undo-log the old value;
//! * a device snoop (`SnpData` at `persist()`) downgrades `M`/`E` to `S`,
//!   forcing the *next* store in the new epoch to announce itself again.

use std::fmt;

/// The MESI state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Dirty and exclusive: this cache holds the only, modified copy.
    Modified,
    /// Clean and exclusive: may be written without informing the home.
    Exclusive,
    /// Clean, possibly shared with the home/device.
    Shared,
    /// Not present (tracked implicitly by absence; used in transitions).
    Invalid,
}

impl MesiState {
    /// Whether a store may proceed without a coherence message.
    pub fn can_write_silently(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// Whether a load may be served from this copy.
    pub fn can_read(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// Whether this copy must be written back when dropped.
    pub fn is_dirty(self) -> bool {
        matches!(self, MesiState::Modified)
    }

    /// The state after the line is written (must be writable first).
    ///
    /// # Panics
    ///
    /// Panics if called on a state that cannot be written silently;
    /// callers must upgrade via the home agent first.
    pub fn after_write(self) -> MesiState {
        assert!(self.can_write_silently(), "write to non-exclusive line requires upgrade");
        MesiState::Modified
    }

    /// The state after a `SnpData` snoop (downgrade to shared).
    pub fn after_snoop_shared(self) -> MesiState {
        match self {
            MesiState::Invalid => MesiState::Invalid,
            _ => MesiState::Shared,
        }
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MesiState::Modified => 'M',
            MesiState::Exclusive => 'E',
            MesiState::Shared => 'S',
            MesiState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_write_permissions() {
        assert!(MesiState::Modified.can_write_silently());
        assert!(MesiState::Exclusive.can_write_silently());
        assert!(!MesiState::Shared.can_write_silently());
        assert!(!MesiState::Invalid.can_write_silently());
    }

    #[test]
    fn write_dirties() {
        assert_eq!(MesiState::Exclusive.after_write(), MesiState::Modified);
        assert_eq!(MesiState::Modified.after_write(), MesiState::Modified);
    }

    #[test]
    #[should_panic]
    fn write_to_shared_panics() {
        let _ = MesiState::Shared.after_write();
    }

    #[test]
    fn snoop_downgrades() {
        assert_eq!(MesiState::Modified.after_snoop_shared(), MesiState::Shared);
        assert_eq!(MesiState::Exclusive.after_snoop_shared(), MesiState::Shared);
        assert_eq!(MesiState::Shared.after_snoop_shared(), MesiState::Shared);
        assert_eq!(MesiState::Invalid.after_snoop_shared(), MesiState::Invalid);
    }

    #[test]
    fn only_modified_is_dirty() {
        assert!(MesiState::Modified.is_dirty());
        assert!(!MesiState::Exclusive.is_dirty());
        assert!(!MesiState::Shared.is_dirty());
    }

    #[test]
    fn display_single_letter() {
        assert_eq!(MesiState::Modified.to_string(), "M");
        assert_eq!(MesiState::Invalid.to_string(), "I");
    }
}
