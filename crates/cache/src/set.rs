//! A generic set-associative array with LRU replacement.
//!
//! Both the host caches and the PAX device's HBM cache are set-associative
//! structures that differ only in what they store per line. [`SetAssoc<T>`]
//! factors that shape out: it maps a [`LineAddr`] tag to a payload `T`,
//! evicting the least-recently-used way of a set when it fills.

use pax_pm::LineAddr;

/// One occupied way of a set.
#[derive(Debug, Clone)]
struct Way<T> {
    addr: LineAddr,
    payload: T,
    /// Monotonic counter value at last touch; smallest = LRU victim.
    last_use: u64,
}

/// A set-associative map from line addresses to payloads with LRU eviction.
///
/// # Example
///
/// ```
/// use pax_cache::SetAssoc;
/// use pax_pm::LineAddr;
///
/// let mut sa: SetAssoc<u32> = SetAssoc::new(2, 1); // 2 sets × 1 way
/// assert_eq!(sa.insert(LineAddr(0), 10), None);
/// // Address 2 maps to the same set as 0 (2 % 2 == 0) and evicts it.
/// let evicted = sa.insert(LineAddr(2), 20);
/// assert_eq!(evicted, Some((LineAddr(0), 10)));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssoc<T> {
    sets: Vec<Vec<Way<T>>>,
    ways: usize,
    clock: u64,
}

impl<T> SetAssoc<T> {
    /// Creates an array with `num_sets` sets of `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `ways` is zero.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0, "cache must have at least one set");
        assert!(ways > 0, "cache must have at least one way");
        SetAssoc { sets: (0..num_sets).map(|_| Vec::with_capacity(ways)).collect(), ways, clock: 0 }
    }

    /// Builds an array sized for `capacity_bytes` of 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds fewer lines than `ways`.
    pub fn with_capacity_bytes(capacity_bytes: usize, ways: usize) -> Self {
        let lines = capacity_bytes / pax_pm::LINE_SIZE;
        assert!(lines >= ways, "capacity must hold at least one full set");
        Self::new(lines / ways, ways)
    }

    fn set_index(&self, addr: LineAddr) -> usize {
        (addr.0 % self.sets.len() as u64) as usize
    }

    /// Number of lines currently resident.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the array holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Looks up `addr`, updating LRU order on hit.
    pub fn get_mut(&mut self, addr: LineAddr) -> Option<&mut T> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(addr);
        self.sets[set].iter_mut().find(|w| w.addr == addr).map(|w| {
            w.last_use = clock;
            &mut w.payload
        })
    }

    /// Looks up `addr` without disturbing LRU order (for assertions).
    pub fn peek(&self, addr: LineAddr) -> Option<&T> {
        let set = self.set_index(addr);
        self.sets[set].iter().find(|w| w.addr == addr).map(|w| &w.payload)
    }

    /// Looks up `addr` mutably without disturbing LRU order.
    ///
    /// Background maintenance (log drain, device write-back) must be
    /// able to flip payload flags without promoting the line to MRU —
    /// promotion would let housekeeping traffic overwrite the recency
    /// signal left by real accesses.
    pub fn peek_mut(&mut self, addr: LineAddr) -> Option<&mut T> {
        let set = self.set_index(addr);
        self.sets[set].iter_mut().find(|w| w.addr == addr).map(|w| &mut w.payload)
    }

    /// Whether `addr` is resident.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.peek(addr).is_some()
    }

    /// Inserts (or replaces) `addr`'s payload, returning an LRU victim if a
    /// set overflowed — the caller decides what an eviction means (write
    /// back, drop, stall…).
    pub fn insert(&mut self, addr: LineAddr, payload: T) -> Option<(LineAddr, T)> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_index(addr);
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.addr == addr) {
            w.payload = payload;
            w.last_use = clock;
            return None;
        }
        let victim = if set.len() >= self.ways {
            let (lru_idx, _) =
                set.iter().enumerate().min_by_key(|(_, w)| w.last_use).expect("set is non-empty");
            let w = set.swap_remove(lru_idx);
            Some((w.addr, w.payload))
        } else {
            None
        };
        set.push(Way { addr, payload, last_use: clock });
        victim
    }

    /// Inserts like [`SetAssoc::insert`], but chooses the victim with
    /// `prefer`: among occupied ways, the way whose payload `prefer`
    /// returns `true` for with the oldest use is evicted first; if none
    /// match, plain LRU applies.
    ///
    /// The PAX device uses this for §3.3's policy of preferring to evict
    /// lines whose undo-log entries are already durable.
    pub fn insert_with_policy(
        &mut self,
        addr: LineAddr,
        payload: T,
        prefer: impl Fn(&T) -> bool,
    ) -> Option<(LineAddr, T)> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_index(addr);
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.addr == addr) {
            w.payload = payload;
            w.last_use = clock;
            return None;
        }
        let victim = if set.len() >= self.ways {
            let preferred = set
                .iter()
                .enumerate()
                .filter(|(_, w)| prefer(&w.payload))
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i);
            let idx = preferred.unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.last_use)
                    .map(|(i, _)| i)
                    .expect("set is non-empty")
            });
            let w = set.swap_remove(idx);
            Some((w.addr, w.payload))
        } else {
            None
        };
        set.push(Way { addr, payload, last_use: clock });
        victim
    }

    /// Removes `addr`, returning its payload.
    pub fn remove(&mut self, addr: LineAddr) -> Option<T> {
        let set = self.set_index(addr);
        let pos = self.sets[set].iter().position(|w| w.addr == addr)?;
        Some(self.sets[set].swap_remove(pos).payload)
    }

    /// Iterates over all resident `(addr, payload)` pairs in no particular
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.sets.iter().flatten().map(|w| (w.addr, &w.payload))
    }

    /// Drains every resident line, leaving the array empty.
    pub fn drain_all(&mut self) -> Vec<(LineAddr, T)> {
        let mut out = Vec::with_capacity(self.len());
        for set in &mut self.sets {
            for w in set.drain(..) {
                out.push((w.addr, w.payload));
            }
        }
        out
    }

    /// Removes every resident line without returning them.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_updates_payload_access() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(4, 2);
        sa.insert(LineAddr(1), 11);
        assert_eq!(sa.get_mut(LineAddr(1)), Some(&mut 11));
        *sa.get_mut(LineAddr(1)).unwrap() = 12;
        assert_eq!(sa.peek(LineAddr(1)), Some(&12));
        assert_eq!(sa.get_mut(LineAddr(2)), None);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        // One set, two ways: 0 and 4 and 8 all collide (mod 4 = 0).
        let mut sa: SetAssoc<&str> = SetAssoc::new(4, 2);
        sa.insert(LineAddr(0), "a");
        sa.insert(LineAddr(4), "b");
        sa.get_mut(LineAddr(0)); // touch "a"; "b" is now LRU
        let victim = sa.insert(LineAddr(8), "c");
        assert_eq!(victim, Some((LineAddr(4), "b")));
        assert!(sa.contains(LineAddr(0)));
        assert!(sa.contains(LineAddr(8)));
    }

    #[test]
    fn peek_mut_mutates_without_promoting() {
        // One set, two ways: 0 and 4 and 8 all collide (mod 4 = 0).
        let mut sa: SetAssoc<u32> = SetAssoc::new(4, 2);
        sa.insert(LineAddr(0), 1);
        sa.insert(LineAddr(4), 2);
        // A peek_mut of the LRU line must leave it LRU.
        *sa.peek_mut(LineAddr(0)).unwrap() = 10;
        let victim = sa.insert(LineAddr(8), 3);
        assert_eq!(victim, Some((LineAddr(0), 10)));
        assert_eq!(sa.peek_mut(LineAddr(12)), None);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(1, 1);
        sa.insert(LineAddr(0), 1);
        assert_eq!(sa.insert(LineAddr(0), 2), None);
        assert_eq!(sa.peek(LineAddr(0)), Some(&2));
    }

    #[test]
    fn policy_eviction_prefers_matching_ways() {
        // One set, two ways; payload bool = "cheap to evict".
        let mut sa: SetAssoc<bool> = SetAssoc::new(1, 2);
        sa.insert(LineAddr(0), false);
        sa.insert(LineAddr(1), true);
        sa.get_mut(LineAddr(1)); // make the preferred line also the MRU line
        let victim = sa.insert_with_policy(LineAddr(2), false, |cheap| *cheap);
        // LRU alone would pick LineAddr(0); the policy overrides to pick 1.
        assert_eq!(victim, Some((LineAddr(1), true)));
    }

    #[test]
    fn policy_falls_back_to_lru() {
        let mut sa: SetAssoc<bool> = SetAssoc::new(1, 2);
        sa.insert(LineAddr(0), false);
        sa.insert(LineAddr(1), false);
        let victim = sa.insert_with_policy(LineAddr(2), false, |cheap| *cheap);
        assert_eq!(victim, Some((LineAddr(0), false)));
    }

    #[test]
    fn capacity_bytes_constructor() {
        let sa: SetAssoc<()> = SetAssoc::with_capacity_bytes(32 << 10, 8);
        assert_eq!(sa.capacity(), 512); // 32 KiB / 64 B
    }

    #[test]
    fn remove_and_drain() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(4, 2);
        sa.insert(LineAddr(1), 1);
        sa.insert(LineAddr(2), 2);
        assert_eq!(sa.remove(LineAddr(1)), Some(1));
        assert_eq!(sa.remove(LineAddr(1)), None);
        let drained = sa.drain_all();
        assert_eq!(drained, vec![(LineAddr(2), 2)]);
        assert!(sa.is_empty());
    }

    #[test]
    fn iter_sees_all_lines() {
        let mut sa: SetAssoc<u32> = SetAssoc::new(8, 2);
        for i in 0..10u64 {
            sa.insert(LineAddr(i), i as u32);
        }
        assert_eq!(sa.iter().count(), 10);
    }
}
