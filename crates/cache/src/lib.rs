//! Host-CPU cache hierarchy simulator for the PAX reproduction.
//!
//! The paper's mechanism lives entirely in the coherence traffic between
//! the host CPU's caches and the device that is the *home agent* for vPM
//! addresses. This crate models the host side:
//!
//! * [`set`] — a generic set-associative array with LRU replacement,
//!   reused by every cache in the workspace (L1/L2/LLC here).
//! * [`concurrent`] — the shared (`&self`) twin of [`set`]: per-set
//!   locks plus a lock-free presence probe, used by the device HBM
//!   cache in `pax-device` so same-lane stores scale across threads.
//! * [`mesi`] — MESI coherence states and their legal transitions.
//! * [`cache`] — the functional, data-carrying coherent cache
//!   ([`CoherentCache`]): it holds real line contents, requests lines from
//!   a [`HomeAgent`] on misses and upgrades, answers snoops, and loses its
//!   dirty lines on crash (unless the platform has eADR). This is the
//!   component whose behaviour makes crash consistency hard.
//! * [`hierarchy`] — the three-level (L1/L2/LLC) statistics hierarchy used
//!   to measure per-level miss rates exactly as the paper's Fig. 2a
//!   methodology requires.
//! * [`amat`] — composes miss rates with a
//!   [`LatencyProfile`](pax_pm::LatencyProfile) into average memory access
//!   times for DRAM, PM, PM-via-CXL and PM-via-Enzian.
//!
//! # Example
//!
//! ```
//! # fn main() -> pax_pm::Result<()> {
//! use pax_cache::{CoherentCache, CacheConfig, MemoryHome};
//! use pax_pm::{DramMedia, LineAddr};
//!
//! let mut home = MemoryHome::new(DramMedia::new(1 << 20));
//! let mut cache = CoherentCache::new(CacheConfig::llc_c6420());
//! let addr = LineAddr(7);
//! let mut line = cache.read(addr, &mut home)?;
//! line.write_at(0, &42u64.to_le_bytes());
//! cache.write(addr, line, &mut home)?;
//! assert_eq!(cache.read(addr, &mut home)?.read_at(0, 8), &42u64.to_le_bytes());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amat;
pub mod cache;
pub mod complex;
pub mod concurrent;
pub mod hierarchy;
pub mod mesi;
pub mod set;

pub use amat::{AmatBreakdown, AmatEstimator, MemKind};
pub use cache::{CacheConfig, CacheStats, CoherentCache, HomeAgent, MemoryHome};
pub use complex::{ComplexStats, CoreComplex, HostSnoop, ShardedHome, SharedComplex};
pub use concurrent::ConcurrentSetAssoc;
pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyStats, LevelStats};
pub use mesi::MesiState;
pub use set::SetAssoc;
