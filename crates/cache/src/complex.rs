//! A multi-core host: per-core coherent caches over one home agent.
//!
//! The single [`CoherentCache`] models the socket as one coherence unit —
//! sufficient for most experiments because the home agent (the PAX
//! device) sees one request stream either way. What it cannot express is
//! §3.5's concurrent structure access with *core-to-core* line transfers,
//! which resolve inside the socket without informing the device. The
//! [`CoreComplex`] adds that: N private caches, MESI kept coherent among
//! them, and only socket-leaving traffic (true misses, write backs)
//! reaching the [`HomeAgent`].
//!
//! The PAX-relevant consequence, preserved here exactly: when a modified
//! line migrates from core A to core B, the device is *not* informed — it
//! already undo-logged the line at A's original `RdOwn`, and `persist()`
//! recollects the final value by snooping every core (§3.3), so coverage
//! is unaffected. The tests pin this down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use pax_pm::{CacheLine, LineAddr, PersistenceDomain, Result};
use pax_telemetry::{Counter, MetricSet, MetricSnapshot};

use crate::cache::{CacheConfig, CacheStats, CoherentCache, HomeAgent};

/// The host-side snoop surface `persist()` needs: downgrade or invalidate
/// a line across *all* host caches, returning the freshest data.
///
/// Implemented by the single-cache model and by [`CoreComplex`], so the
/// device's epoch protocol is agnostic to the host's core count.
pub trait HostSnoop {
    /// Downgrades every copy of `addr` to shared; returns the data if any
    /// cache held the line.
    fn snoop_shared(&mut self, addr: LineAddr) -> Option<CacheLine>;

    /// Invalidates every copy of `addr`; returns the data only if a cache
    /// held it modified.
    fn snoop_invalidate(&mut self, addr: LineAddr) -> Option<CacheLine>;
}

impl HostSnoop for CoherentCache {
    fn snoop_shared(&mut self, addr: LineAddr) -> Option<CacheLine> {
        CoherentCache::snoop_shared(self, addr)
    }

    fn snoop_invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        CoherentCache::snoop_invalidate(self, addr)
    }
}

/// A [`HomeAgent`] whose per-line state is split into address-interleaved
/// shards — independent banks that can service requests for different
/// lines concurrently (the PAX device's HBM slices and log banks).
///
/// The host side doesn't route *to* a shard — the interleave is the
/// home's own — but knowing the mapping lets the complex account which
/// bank each request lands on ([`CoreComplex::read_on`] /
/// [`CoreComplex::write_on`]), which is what the throughput model and the
/// cross-layer telemetry need to see shard parallelism.
pub trait ShardedHome: HomeAgent {
    /// Number of address-interleaved shards.
    fn shard_count(&self) -> usize;

    /// The shard whose banks own `addr`.
    fn shard_of_line(&self, addr: LineAddr) -> usize;
}

/// Cross-core traffic counters.
///
/// A point-in-time view over the complex's [`MetricSet`] registry,
/// which owns the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComplexStats {
    /// Lines served core-to-core without a home-agent request.
    pub cache_to_cache_transfers: u64,
    /// Copies invalidated in peer cores on a store.
    pub peer_invalidations: u64,
}

/// N per-core caches kept coherent over one home agent (see module docs).
#[derive(Debug)]
pub struct CoreComplex {
    cores: Vec<CoherentCache>,
    metrics: MetricSet,
    cache_to_cache_transfers: Counter,
    peer_invalidations: Counter,
    /// Accesses issued through `read_on`/`write_on`, by home shard; grown
    /// to the home's shard count on first use.
    shard_traffic: Vec<u64>,
}

impl CoreComplex {
    /// A complex of `n` cores, each with a private cache of `config`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, config: CacheConfig) -> Self {
        assert!(n > 0, "need at least one core");
        let mut metrics = MetricSet::new("core_complex");
        let cache_to_cache_transfers = metrics.counter("cache_to_cache_transfers");
        let peer_invalidations = metrics.counter("peer_invalidations");
        CoreComplex {
            cores: (0..n).map(|_| CoherentCache::new(config)).collect(),
            metrics,
            cache_to_cache_transfers,
            peer_invalidations,
            shard_traffic: Vec::new(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Cross-core traffic counters.
    pub fn stats(&self) -> ComplexStats {
        ComplexStats {
            cache_to_cache_transfers: self.metrics.get(self.cache_to_cache_transfers),
            peer_invalidations: self.metrics.get(self.peer_invalidations),
        }
    }

    /// Snapshot of the complex's own registry (cross-core traffic only;
    /// per-core cache counters come via [`CoreComplex::cache_metrics`]).
    pub fn metrics(&self) -> MetricSnapshot {
        self.metrics.snapshot()
    }

    /// One `"host_cache"` snapshot summing every core's cache registry.
    pub fn cache_metrics(&self) -> MetricSnapshot {
        self.cores
            .iter()
            .fold(MetricSnapshot::empty("host_cache"), |acc, c| acc.merge(&c.metrics()))
    }

    /// Per-core cache statistics.
    pub fn core_stats(&self, core: usize) -> CacheStats {
        self.cores[core].stats()
    }

    /// A load by `core`.
    ///
    /// Served in priority order: own cache → a peer's copy (core-to-core
    /// transfer; a peer's modified copy is written back to the home to
    /// keep it the owner of dirty data) → the home agent.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn read(
        &mut self,
        core: usize,
        addr: LineAddr,
        home: &mut impl HomeAgent,
    ) -> Result<CacheLine> {
        if self.cores[core].state_of(addr).is_some() {
            return self.cores[core].read(addr, home);
        }
        // Probe peers before leaving the socket.
        if let Some(peer) = self.peer_with(addr, core) {
            let was_dirty = self.cores[peer].state_of(addr).is_some_and(|s| s.is_dirty());
            let data = self.cores[peer].snoop_shared(addr).expect("peer held the line");
            if was_dirty {
                // Ownership of dirty data returns to the home when the
                // line becomes shared (MESI has no shared-dirty state).
                home.dirty_evict(addr, data.clone())?;
            }
            self.metrics.inc(self.cache_to_cache_transfers);
            self.cores[core].install_shared(addr, data.clone(), home)?;
            return Ok(data);
        }
        self.cores[core].read(addr, home)
    }

    /// A store by `core`: peers' copies are invalidated; a peer's
    /// modified copy migrates directly (no home message — the line was
    /// already logged when that peer gained ownership).
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn write(
        &mut self,
        core: usize,
        addr: LineAddr,
        data: CacheLine,
        home: &mut impl HomeAgent,
    ) -> Result<()> {
        // Invalidate every peer copy; capture migrating dirty ownership.
        let mut migrated_dirty = false;
        for peer in 0..self.cores.len() {
            if peer == core {
                continue;
            }
            if self.cores[peer].state_of(addr).is_some() {
                let dirty = self.cores[peer].snoop_invalidate(addr);
                self.metrics.inc(self.peer_invalidations);
                if dirty.is_some() {
                    migrated_dirty = true;
                }
            }
        }
        if migrated_dirty {
            // Silent M-to-M migration: install directly as modified.
            self.metrics.inc(self.cache_to_cache_transfers);
            return self.cores[core].install_modified(addr, data, home);
        }
        self.cores[core].write(addr, data, home)
    }

    /// Like [`CoreComplex::read`], against a [`ShardedHome`]: the access
    /// is additionally accounted to the shard owning `addr`, so callers
    /// can observe how evenly the interleave spreads the workload.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn read_on(
        &mut self,
        core: usize,
        addr: LineAddr,
        home: &mut impl ShardedHome,
    ) -> Result<CacheLine> {
        self.note_shard(home.shard_count(), home.shard_of_line(addr));
        self.read(core, addr, home)
    }

    /// Like [`CoreComplex::write`], against a [`ShardedHome`], with the
    /// same per-shard accounting as [`CoreComplex::read_on`].
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn write_on(
        &mut self,
        core: usize,
        addr: LineAddr,
        data: CacheLine,
        home: &mut impl ShardedHome,
    ) -> Result<()> {
        self.note_shard(home.shard_count(), home.shard_of_line(addr));
        self.write(core, addr, data, home)
    }

    fn note_shard(&mut self, count: usize, shard: usize) {
        if self.shard_traffic.len() < count {
            self.shard_traffic.resize(count, 0);
        }
        self.shard_traffic[shard] += 1;
    }

    /// Accesses issued through [`CoreComplex::read_on`] /
    /// [`CoreComplex::write_on`] per home shard. Empty until the first
    /// sharded access.
    pub fn shard_traffic(&self) -> &[u64] {
        &self.shard_traffic
    }

    fn peer_with(&self, addr: LineAddr, not: usize) -> Option<usize> {
        (0..self.cores.len()).find(|&i| i != not && self.cores[i].state_of(addr).is_some())
    }

    /// Writes back every dirty line in every core.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    pub fn flush_all(&mut self, home: &mut impl HomeAgent) -> Result<()> {
        for c in &mut self.cores {
            c.flush_all(home)?;
        }
        Ok(())
    }

    /// Simulates power loss across all cores.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures during an eADR flush.
    pub fn crash(&mut self, domain: PersistenceDomain, home: &mut impl HomeAgent) -> Result<()> {
        for c in &mut self.cores {
            c.crash(domain, home)?;
        }
        Ok(())
    }
}

impl HostSnoop for CoreComplex {
    fn snoop_shared(&mut self, addr: LineAddr) -> Option<CacheLine> {
        let mut best: Option<CacheLine> = None;
        for c in &mut self.cores {
            let was_dirty = c.state_of(addr).is_some_and(|s| s.is_dirty());
            if let Some(data) = CoherentCache::snoop_shared(c, addr) {
                if was_dirty || best.is_none() {
                    best = Some(data);
                }
            }
        }
        best
    }

    fn snoop_invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        let mut dirty = None;
        for c in &mut self.cores {
            if let Some(d) = CoherentCache::snoop_invalidate(c, addr) {
                dirty = Some(d);
            }
        }
        dirty
    }
}

/// Number of presence-filter slots (hash buckets over line addresses).
const PRESENCE_SLOTS: usize = 1024;

/// [`CoreComplex`] for real OS threads: per-core caches behind their own
/// locks, cross-core coherence kept with a one-lock-at-a-time probe
/// protocol, and a conservative presence filter that skips peer probes
/// for lines no peer can hold.
///
/// The coherence *protocol* is [`CoreComplex`]'s, call for call: own-hit
/// → peer transfer (dirty copies return ownership to the home) → home
/// agent. What changes is the locking: each core's cache sits behind its
/// own `Mutex`, and no operation ever holds two core locks at once — a
/// probe locks the peer, extracts the line, unlocks, and only then locks
/// the requesting core to install. That makes the lock order trivially
/// acyclic (core locks are leaves of the device's `ctl → core → lane →
/// pool` hierarchy) at the cost of a window in which a line migrates
/// between probe and install. The contract, inherited from the paper's
/// §3.5, absorbs that window: structure code over vPM must serialize its
/// own conflicting same-line accesses (thread-safe structures), and any
/// access pattern so serialized observes exactly the single-driver
/// protocol. Under one driving thread every lock is uncontended and the
/// call sequence is bit-identical to [`CoreComplex`].
///
/// The presence filter is a never-cleared bitmap: slot = hash of the
/// line address, bits = cores that ever installed a line hashing there.
/// A probe consults it before touching any peer lock; absent bits prove
/// the peer never held the line (installs set the bit first), so the
/// probe — which in [`CoreComplex`] would miss in every peer without a
/// single home call or metric increment — is skipped without taking the
/// locks. False positives (hash aliasing, evicted lines) only cost a
/// redundant probe. With more than 64 cores the bit encoding would
/// alias, so the filter disables itself and every probe runs.
#[derive(Debug)]
pub struct SharedComplex {
    cores: Vec<Mutex<CoherentCache>>,
    metrics: MetricSet,
    cache_to_cache_transfers: Counter,
    peer_invalidations: Counter,
    /// Accesses issued through `read_on`/`write_on`, by home shard; grown
    /// to the home's shard count on first use.
    shard_traffic: RwLock<Vec<AtomicU64>>,
    /// Per-slot core-presence bitmaps (see type docs). Empty when the
    /// filter is disabled (`cores > 64`).
    presence: Vec<AtomicU64>,
}

impl SharedComplex {
    /// A complex of `n` cores, each with a private cache of `config`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, config: CacheConfig) -> Self {
        assert!(n > 0, "need at least one core");
        let mut metrics = MetricSet::new("core_complex");
        let cache_to_cache_transfers = metrics.counter("cache_to_cache_transfers");
        let peer_invalidations = metrics.counter("peer_invalidations");
        let presence = if n <= 64 {
            (0..PRESENCE_SLOTS).map(|_| AtomicU64::new(0)).collect()
        } else {
            Vec::new()
        };
        SharedComplex {
            cores: (0..n).map(|_| Mutex::new(CoherentCache::new(config))).collect(),
            metrics,
            cache_to_cache_transfers,
            peer_invalidations,
            shard_traffic: RwLock::new(Vec::new()),
            presence,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    fn slot(addr: LineAddr) -> usize {
        (addr.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % PRESENCE_SLOTS
    }

    /// Records that `core` is installing a line at `addr`. Must happen
    /// before the install is visible so absent bits stay proof of
    /// absence.
    ///
    /// Ordering: `Release`, pairing with the `Acquire` load in
    /// [`SharedComplex::peer_may_hold`]. The bit is set *before* the
    /// core's install is published (the install happens under the core
    /// lock taken after this call); a relaxed store here could let
    /// another thread observe the installed line through the core lock
    /// while still reading a stale zero bit — and a zero bit licenses
    /// skipping that core's probe entirely.
    fn note_present(&self, core: usize, addr: LineAddr) {
        if !self.presence.is_empty() {
            self.presence[Self::slot(addr)].fetch_or(1 << core, Ordering::Release);
        }
    }

    /// `false` only when no peer of `core` can possibly hold `addr`.
    ///
    /// Ordering: `Acquire`, pairing with [`SharedComplex::note_present`]'s
    /// `Release` `fetch_or` — a set bit happens-after the installer
    /// announced itself, so a `false` here is real proof of absence, not
    /// a stale read racing an in-flight install.
    fn peer_may_hold(&self, core: usize, addr: LineAddr) -> bool {
        if self.presence.is_empty() {
            return true;
        }
        self.presence[Self::slot(addr)].load(Ordering::Acquire) & !(1u64 << core) != 0
    }

    /// Cross-core traffic counters.
    pub fn stats(&self) -> ComplexStats {
        ComplexStats {
            cache_to_cache_transfers: self.metrics.get(self.cache_to_cache_transfers),
            peer_invalidations: self.metrics.get(self.peer_invalidations),
        }
    }

    /// Snapshot of the complex's own registry (cross-core traffic only;
    /// per-core cache counters come via [`SharedComplex::cache_metrics`]).
    pub fn metrics(&self) -> MetricSnapshot {
        self.metrics.snapshot()
    }

    /// One `"host_cache"` snapshot summing every core's cache registry.
    pub fn cache_metrics(&self) -> MetricSnapshot {
        self.cores
            .iter()
            .fold(MetricSnapshot::empty("host_cache"), |acc, c| acc.merge(&lock(c).metrics()))
    }

    /// Per-core cache statistics.
    pub fn core_stats(&self, core: usize) -> CacheStats {
        lock(&self.cores[core]).stats()
    }

    /// A load by `core` (see [`CoreComplex::read`] for the protocol).
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn read(
        &self,
        core: usize,
        addr: LineAddr,
        home: &mut impl HomeAgent,
    ) -> Result<CacheLine> {
        {
            let mut own = lock(&self.cores[core]);
            if own.state_of(addr).is_some() {
                return own.read(addr, home);
            }
        }
        // Probe peers before leaving the socket — one lock at a time.
        if self.peer_may_hold(core, addr) {
            for peer in 0..self.cores.len() {
                if peer == core {
                    continue;
                }
                let transfer = {
                    let mut p = lock(&self.cores[peer]);
                    if p.state_of(addr).is_some() {
                        let was_dirty = p.state_of(addr).is_some_and(|s| s.is_dirty());
                        let data = p.snoop_shared(addr).expect("peer held the line");
                        Some((was_dirty, data))
                    } else {
                        None
                    }
                };
                if let Some((was_dirty, data)) = transfer {
                    if was_dirty {
                        // Ownership of dirty data returns to the home when
                        // the line becomes shared.
                        home.dirty_evict(addr, data.clone())?;
                    }
                    self.metrics.inc(self.cache_to_cache_transfers);
                    self.note_present(core, addr);
                    lock(&self.cores[core]).install_shared(addr, data.clone(), home)?;
                    return Ok(data);
                }
            }
        }
        self.note_present(core, addr);
        lock(&self.cores[core]).read(addr, home)
    }

    /// A store by `core` (see [`CoreComplex::write`] for the protocol).
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn write(
        &self,
        core: usize,
        addr: LineAddr,
        data: CacheLine,
        home: &mut impl HomeAgent,
    ) -> Result<()> {
        // Invalidate every peer copy; capture migrating dirty ownership.
        let mut migrated_dirty = false;
        if self.peer_may_hold(core, addr) {
            for peer in 0..self.cores.len() {
                if peer == core {
                    continue;
                }
                let mut p = lock(&self.cores[peer]);
                if p.state_of(addr).is_some() {
                    let dirty = p.snoop_invalidate(addr);
                    self.metrics.inc(self.peer_invalidations);
                    if dirty.is_some() {
                        migrated_dirty = true;
                    }
                }
            }
        }
        self.note_present(core, addr);
        if migrated_dirty {
            // Silent M-to-M migration: install directly as modified.
            self.metrics.inc(self.cache_to_cache_transfers);
            return lock(&self.cores[core]).install_modified(addr, data, home);
        }
        lock(&self.cores[core]).write(addr, data, home)
    }

    /// Read-modify-write by `core`: load (with peer transfer), apply `f`,
    /// store.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    pub fn update(
        &self,
        core: usize,
        addr: LineAddr,
        home: &mut impl HomeAgent,
        f: impl FnOnce(&mut CacheLine),
    ) -> Result<()> {
        let mut line = self.read(core, addr, home)?;
        f(&mut line);
        self.write(core, addr, line, home)
    }

    /// Like [`SharedComplex::read`], against a [`ShardedHome`], accounting
    /// the access to the shard owning `addr`.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    pub fn read_on(
        &self,
        core: usize,
        addr: LineAddr,
        home: &mut impl ShardedHome,
    ) -> Result<CacheLine> {
        self.note_shard(home.shard_count(), home.shard_of_line(addr));
        self.read(core, addr, home)
    }

    /// Like [`SharedComplex::write`], against a [`ShardedHome`], with the
    /// same per-shard accounting as [`SharedComplex::read_on`].
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    pub fn write_on(
        &self,
        core: usize,
        addr: LineAddr,
        data: CacheLine,
        home: &mut impl ShardedHome,
    ) -> Result<()> {
        self.note_shard(home.shard_count(), home.shard_of_line(addr));
        self.write(core, addr, data, home)
    }

    /// Like [`SharedComplex::update`], against a [`ShardedHome`], with
    /// per-shard accounting on both the load and the store.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    pub fn update_on(
        &self,
        core: usize,
        addr: LineAddr,
        home: &mut impl ShardedHome,
        f: impl FnOnce(&mut CacheLine),
    ) -> Result<()> {
        let mut line = self.read_on(core, addr, home)?;
        f(&mut line);
        self.write_on(core, addr, line, home)
    }

    fn note_shard(&self, count: usize, shard: usize) {
        {
            let traffic = self.shard_traffic.read().unwrap_or_else(|e| e.into_inner());
            if shard < traffic.len() {
                traffic[shard].fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let mut traffic = self.shard_traffic.write().unwrap_or_else(|e| e.into_inner());
        while traffic.len() < count {
            traffic.push(AtomicU64::new(0));
        }
        traffic[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// Accesses issued through [`SharedComplex::read_on`] /
    /// [`SharedComplex::write_on`] per home shard. Empty until the first
    /// sharded access.
    pub fn shard_traffic(&self) -> Vec<u64> {
        self.shard_traffic
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Writes back every dirty line in every core.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    pub fn flush_all(&self, home: &mut impl HomeAgent) -> Result<()> {
        for c in &self.cores {
            lock(c).flush_all(home)?;
        }
        Ok(())
    }

    /// Simulates power loss across all cores.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures during an eADR flush.
    pub fn crash(&self, domain: PersistenceDomain, home: &mut impl HomeAgent) -> Result<()> {
        for c in &self.cores {
            lock(c).crash(domain, home)?;
        }
        Ok(())
    }

    /// Downgrades every copy of `addr` to shared, one core lock at a
    /// time; returns the freshest data ([`HostSnoop::snoop_shared`]
    /// through `&self`).
    pub fn snoop_shared_all(&self, addr: LineAddr) -> Option<CacheLine> {
        let mut best: Option<CacheLine> = None;
        for c in &self.cores {
            let mut c = lock(c);
            let was_dirty = c.state_of(addr).is_some_and(|s| s.is_dirty());
            if let Some(data) = c.snoop_shared(addr) {
                if was_dirty || best.is_none() {
                    best = Some(data);
                }
            }
        }
        best
    }

    /// Invalidates every copy of `addr`, one core lock at a time; returns
    /// the data only if a copy was dirty.
    pub fn snoop_invalidate_all(&self, addr: LineAddr) -> Option<CacheLine> {
        let mut dirty = None;
        for c in &self.cores {
            if let Some(d) = lock(c).snoop_invalidate(addr) {
                dirty = Some(d);
            }
        }
        dirty
    }
}

impl HostSnoop for SharedComplex {
    fn snoop_shared(&mut self, addr: LineAddr) -> Option<CacheLine> {
        self.snoop_shared_all(addr)
    }

    fn snoop_invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        self.snoop_invalidate_all(addr)
    }
}

/// Shim for `HostSnoop` callers that only have `&SharedComplex`.
impl HostSnoop for &SharedComplex {
    fn snoop_shared(&mut self, addr: LineAddr) -> Option<CacheLine> {
        self.snoop_shared_all(addr)
    }

    fn snoop_invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        self.snoop_invalidate_all(addr)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::MemoryHome;
    use pax_pm::{DramMedia, Memory};

    fn setup(cores: usize) -> (CoreComplex, MemoryHome<DramMedia>) {
        (
            CoreComplex::new(cores, CacheConfig::tiny(4 << 10, 4)),
            MemoryHome::new(DramMedia::new(1 << 20)),
        )
    }

    #[test]
    fn cores_share_clean_lines_without_home_traffic() {
        let (mut cx, mut home) = setup(4);
        cx.read(0, LineAddr(1), &mut home).unwrap();
        let misses_after_first = home.memory().stats().line_reads;
        for core in 1..4 {
            cx.read(core, LineAddr(1), &mut home).unwrap();
        }
        assert_eq!(
            home.memory().stats().line_reads,
            misses_after_first,
            "peer copies must be served core-to-core"
        );
        assert_eq!(cx.stats().cache_to_cache_transfers, 3);
    }

    #[test]
    fn store_invalidates_peer_copies() {
        let (mut cx, mut home) = setup(2);
        cx.read(0, LineAddr(0), &mut home).unwrap();
        cx.read(1, LineAddr(0), &mut home).unwrap();
        cx.write(0, LineAddr(0), CacheLine::filled(9), &mut home).unwrap();
        assert!(cx.stats().peer_invalidations >= 1);
        // Core 1 re-reads and must see the new value (via transfer).
        assert_eq!(cx.read(1, LineAddr(0), &mut home).unwrap(), CacheLine::filled(9));
    }

    #[test]
    fn dirty_migration_is_silent_to_the_home() {
        let (mut cx, mut home) = setup(2);
        cx.write(0, LineAddr(3), CacheLine::filled(1), &mut home).unwrap();
        let writes_before = home.memory().stats().line_writes;
        // Core 1 takes over the modified line.
        cx.write(1, LineAddr(3), CacheLine::filled(2), &mut home).unwrap();
        // Migration itself produced no home write (PAX already logged the
        // line at core 0's RdOwn).
        assert_eq!(home.memory().stats().line_writes, writes_before);
        assert_eq!(cx.read(1, LineAddr(3), &mut home).unwrap(), CacheLine::filled(2));
    }

    #[test]
    fn reading_a_peers_dirty_line_returns_ownership_to_home() {
        let (mut cx, mut home) = setup(2);
        cx.write(0, LineAddr(5), CacheLine::filled(7), &mut home).unwrap();
        let v = cx.read(1, LineAddr(5), &mut home).unwrap();
        assert_eq!(v, CacheLine::filled(7));
        // The dirty data reached the home (write back on downgrade).
        assert_eq!(home.memory_mut().read_line(LineAddr(5)).unwrap(), CacheLine::filled(7));
    }

    #[test]
    fn complex_snoop_finds_the_modified_copy() {
        let (mut cx, mut home) = setup(4);
        cx.read(0, LineAddr(2), &mut home).unwrap();
        cx.write(3, LineAddr(2), CacheLine::filled(4), &mut home).unwrap();
        assert_eq!(HostSnoop::snoop_shared(&mut cx, LineAddr(2)), Some(CacheLine::filled(4)));
        // All cores are now shared; a store must upgrade again.
        cx.write(1, LineAddr(2), CacheLine::filled(5), &mut home).unwrap();
        assert_eq!(HostSnoop::snoop_invalidate(&mut cx, LineAddr(2)), Some(CacheLine::filled(5)));
        assert_eq!(HostSnoop::snoop_invalidate(&mut cx, LineAddr(2)), None);
    }

    /// A test home that stripes lines across `shards` banks by modulo —
    /// the same interleave the PAX device uses.
    struct StripedHome {
        inner: MemoryHome<DramMedia>,
        shards: usize,
    }

    impl HomeAgent for StripedHome {
        fn read_shared(&mut self, addr: LineAddr) -> Result<CacheLine> {
            self.inner.read_shared(addr)
        }
        fn read_own(&mut self, addr: LineAddr) -> Result<CacheLine> {
            self.inner.read_own(addr)
        }
        fn clean_evict(&mut self, addr: LineAddr) {
            self.inner.clean_evict(addr)
        }
        fn dirty_evict(&mut self, addr: LineAddr, data: CacheLine) -> Result<()> {
            self.inner.dirty_evict(addr, data)
        }
    }

    impl ShardedHome for StripedHome {
        fn shard_count(&self) -> usize {
            self.shards
        }
        fn shard_of_line(&self, addr: LineAddr) -> usize {
            addr.0 as usize % self.shards
        }
    }

    #[test]
    fn sharded_accesses_are_accounted_per_bank() {
        let mut cx = CoreComplex::new(2, CacheConfig::tiny(4 << 10, 4));
        let mut home = StripedHome { inner: MemoryHome::new(DramMedia::new(1 << 20)), shards: 4 };
        assert!(cx.shard_traffic().is_empty(), "no sharded traffic yet");
        // 8 writes + 8 reads over lines 0..8: every shard sees 2 lines,
        // twice each.
        for i in 0..8u64 {
            cx.write_on(0, LineAddr(i), CacheLine::filled(i as u8), &mut home).unwrap();
        }
        for i in 0..8u64 {
            assert_eq!(cx.read_on(1, LineAddr(i), &mut home).unwrap(), CacheLine::filled(i as u8));
        }
        assert_eq!(cx.shard_traffic(), &[4, 4, 4, 4]);
    }

    #[test]
    fn sharded_routing_matches_unsharded_protocol() {
        // read_on/write_on are accounting wrappers: coherence behaviour
        // (invalidations, transfers) must be identical to read/write.
        let mut cx_a = CoreComplex::new(2, CacheConfig::tiny(4 << 10, 4));
        let mut cx_b = CoreComplex::new(2, CacheConfig::tiny(4 << 10, 4));
        let mut home_a = StripedHome { inner: MemoryHome::new(DramMedia::new(1 << 20)), shards: 4 };
        let mut home_b = MemoryHome::new(DramMedia::new(1 << 20));
        for i in 0..6u64 {
            cx_a.write_on(0, LineAddr(i), CacheLine::filled(1), &mut home_a).unwrap();
            cx_b.write(0, LineAddr(i), CacheLine::filled(1), &mut home_b).unwrap();
            cx_a.read_on(1, LineAddr(i), &mut home_a).unwrap();
            cx_b.read(1, LineAddr(i), &mut home_b).unwrap();
        }
        assert_eq!(cx_a.stats(), cx_b.stats());
    }

    #[test]
    fn shared_complex_matches_core_complex_single_driver() {
        // Same op sequence through both complexes: identical stats,
        // identical data, identical home-visible traffic.
        let mut cx = CoreComplex::new(2, CacheConfig::tiny(4 << 10, 4));
        let sx = SharedComplex::new(2, CacheConfig::tiny(4 << 10, 4));
        let mut home_a = MemoryHome::new(DramMedia::new(1 << 20));
        let mut home_b = MemoryHome::new(DramMedia::new(1 << 20));
        for i in 0..16u64 {
            cx.write(0, LineAddr(i), CacheLine::filled(i as u8), &mut home_a).unwrap();
            sx.write(0, LineAddr(i), CacheLine::filled(i as u8), &mut home_b).unwrap();
        }
        for i in 0..16u64 {
            let a = cx.read(1, LineAddr(i), &mut home_a).unwrap();
            let b = sx.read(1, LineAddr(i), &mut home_b).unwrap();
            assert_eq!(a, b);
        }
        cx.write(1, LineAddr(3), CacheLine::filled(99), &mut home_a).unwrap();
        sx.write(1, LineAddr(3), CacheLine::filled(99), &mut home_b).unwrap();
        assert_eq!(cx.stats(), sx.stats());
        for core in 0..2 {
            assert_eq!(cx.core_stats(core), sx.core_stats(core));
        }
        assert_eq!(home_a.memory().stats(), home_b.memory().stats());
        let a: Vec<_> = cx.cache_metrics().counters().map(|(k, v)| (k.to_string(), v)).collect();
        let b: Vec<_> = sx.cache_metrics().counters().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn shared_complex_snoops_match() {
        let sx = SharedComplex::new(4, CacheConfig::tiny(4 << 10, 4));
        let mut home = MemoryHome::new(DramMedia::new(1 << 20));
        sx.read(0, LineAddr(2), &mut home).unwrap();
        sx.write(3, LineAddr(2), CacheLine::filled(4), &mut home).unwrap();
        assert_eq!(sx.snoop_shared_all(LineAddr(2)), Some(CacheLine::filled(4)));
        sx.write(1, LineAddr(2), CacheLine::filled(5), &mut home).unwrap();
        assert_eq!(sx.snoop_invalidate_all(LineAddr(2)), Some(CacheLine::filled(5)));
        assert_eq!(sx.snoop_invalidate_all(LineAddr(2)), None);
    }

    #[test]
    fn shared_complex_threads_on_disjoint_lines() {
        use std::sync::Arc;
        // 4 real threads, each its own core and a disjoint line range over
        // a shared DRAM home behind a mutex. Every thread's final stores
        // must be visible afterwards and no cross-core traffic may appear.
        let sx = Arc::new(SharedComplex::new(4, CacheConfig::tiny(16 << 10, 4)));
        let home = Arc::new(Mutex::new(MemoryHome::new(DramMedia::new(1 << 20))));
        let mut handles = Vec::new();
        for core in 0..4usize {
            let sx = Arc::clone(&sx);
            let home = Arc::clone(&home);
            handles.push(std::thread::spawn(move || {
                struct LockedHome(Arc<Mutex<MemoryHome<DramMedia>>>);
                impl HomeAgent for LockedHome {
                    fn read_shared(&mut self, addr: LineAddr) -> Result<CacheLine> {
                        lock(&self.0).read_shared(addr)
                    }
                    fn read_own(&mut self, addr: LineAddr) -> Result<CacheLine> {
                        lock(&self.0).read_own(addr)
                    }
                    fn clean_evict(&mut self, addr: LineAddr) {
                        lock(&self.0).clean_evict(addr)
                    }
                    fn dirty_evict(&mut self, addr: LineAddr, data: CacheLine) -> Result<()> {
                        lock(&self.0).dirty_evict(addr, data)
                    }
                }
                let mut h = LockedHome(home);
                let base = core as u64 * 1000;
                for round in 0..50u8 {
                    for i in 0..32u64 {
                        sx.write(core, LineAddr(base + i), CacheLine::filled(round), &mut h)
                            .unwrap();
                    }
                }
                for i in 0..32u64 {
                    assert_eq!(
                        sx.read(core, LineAddr(base + i), &mut h).unwrap(),
                        CacheLine::filled(49)
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sx.stats(), ComplexStats::default(), "disjoint lines: no peer traffic");
    }

    #[test]
    fn crash_loses_all_cores_dirty_lines() {
        let (mut cx, mut home) = setup(3);
        for core in 0..3 {
            cx.write(core, LineAddr(core as u64 + 10), CacheLine::filled(1), &mut home).unwrap();
        }
        cx.crash(PersistenceDomain::Adr, &mut home).unwrap();
        for core in 0..3 {
            assert_eq!(cx.core_stats(core).dirty_lines_lost, 1);
        }
    }
}
