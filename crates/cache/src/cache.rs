//! The functional, data-carrying coherent CPU cache.
//!
//! [`CoherentCache`] models the host cache system as one coherence unit
//! (the paper never needs per-core detail: the home agent sees one request
//! stream per socket). It holds real line data in MESI states and talks to
//! a [`HomeAgent`] — the memory controller for ordinary addresses, or the
//! PAX device for vPM addresses — exactly at the points real hardware
//! would:
//!
//! * **read miss** → [`HomeAgent::read_shared`], line installed in `S`
//!   (the home keeps visibility so it can snoop later; this matches the
//!   device-as-home behaviour PAX relies on);
//! * **write to non-exclusive line** → [`HomeAgent::read_own`]; the home
//!   learns the line is about to be modified *before* the new value exists
//!   — the hook PAX undo-logging hangs on (§3.1 "Stores");
//! * **eviction** → [`HomeAgent::dirty_evict`] with data for `M` lines,
//!   [`HomeAgent::clean_evict`] otherwise;
//! * **snoops** — [`CoherentCache::snoop_shared`] downgrades and returns
//!   the current value, which is how `persist()` collects lines the CPU
//!   modified but never evicted (§3.3).
//!
//! A crash ([`CoherentCache::crash`]) discards all dirty lines unless the
//! persistence domain is eADR — the precise hazard the paper's §1 sets up.

use pax_pm::{CacheLine, LineAddr, Memory, PersistenceDomain, Result};
use pax_telemetry::{Counter, MetricSet, MetricSnapshot};

use crate::mesi::MesiState;
use crate::set::SetAssoc;

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// L1D of the Cloudlab c6420's Xeon Gold 6142: 32 KiB, 8-way.
    pub const fn l1_c6420() -> Self {
        CacheConfig { capacity_bytes: 32 << 10, ways: 8 }
    }

    /// L2 of the c6420: 1 MiB, 16-way.
    pub const fn l2_c6420() -> Self {
        CacheConfig { capacity_bytes: 1 << 20, ways: 16 }
    }

    /// LLC of the c6420: 22 MiB, 11-way (shared).
    pub const fn llc_c6420() -> Self {
        CacheConfig { capacity_bytes: 22 << 20, ways: 11 }
    }

    /// A tiny cache that forces frequent evictions; used by tests that
    /// need to exercise the write-back paths quickly.
    pub const fn tiny(capacity_bytes: usize, ways: usize) -> Self {
        CacheConfig { capacity_bytes, ways }
    }
}

/// Event counts for one [`CoherentCache`].
///
/// A point-in-time view over the cache's [`MetricSet`] registry, which
/// owns the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads served without contacting the home agent.
    pub read_hits: u64,
    /// Loads that required a `read_shared` to the home agent.
    pub read_misses: u64,
    /// Stores to lines already held in `M`/`E` (silent).
    pub write_hits: u64,
    /// Stores that required a `read_own` (miss or `S`→`M` upgrade).
    pub write_upgrades: u64,
    /// Dirty lines written back on eviction.
    pub dirty_evictions: u64,
    /// Clean lines dropped on eviction.
    pub clean_evictions: u64,
    /// Snoops that found the line present.
    pub snoop_hits: u64,
    /// Snoops that found nothing.
    pub snoop_misses: u64,
    /// Dirty lines lost to a crash (not eADR).
    pub dirty_lines_lost: u64,
}

/// Counter handles for one cache's [`MetricSet`].
#[derive(Debug, Clone, Copy)]
struct CacheCounters {
    read_hits: Counter,
    read_misses: Counter,
    write_hits: Counter,
    write_upgrades: Counter,
    dirty_evictions: Counter,
    clean_evictions: Counter,
    snoop_hits: Counter,
    snoop_misses: Counter,
    dirty_lines_lost: Counter,
}

impl CacheCounters {
    fn register(metrics: &mut MetricSet) -> Self {
        CacheCounters {
            read_hits: metrics.counter("read_hits"),
            read_misses: metrics.counter("read_misses"),
            write_hits: metrics.counter("write_hits"),
            write_upgrades: metrics.counter("write_upgrades"),
            dirty_evictions: metrics.counter("dirty_evictions"),
            clean_evictions: metrics.counter("clean_evictions"),
            snoop_hits: metrics.counter("snoop_hits"),
            snoop_misses: metrics.counter("snoop_misses"),
            dirty_lines_lost: metrics.counter("dirty_lines_lost"),
        }
    }

    fn view(&self, metrics: &MetricSet) -> CacheStats {
        CacheStats {
            read_hits: metrics.get(self.read_hits),
            read_misses: metrics.get(self.read_misses),
            write_hits: metrics.get(self.write_hits),
            write_upgrades: metrics.get(self.write_upgrades),
            dirty_evictions: metrics.get(self.dirty_evictions),
            clean_evictions: metrics.get(self.clean_evictions),
            snoop_hits: metrics.get(self.snoop_hits),
            snoop_misses: metrics.get(self.snoop_misses),
            dirty_lines_lost: metrics.get(self.dirty_lines_lost),
        }
    }
}

/// The home side of the coherence protocol for some address range.
///
/// Implemented by [`MemoryHome`] (plain memory controller) here and by the
/// PAX device (via its CXL endpoint) in `pax-device`.
pub trait HomeAgent {
    /// The CPU requests `addr` in shared state (read miss).
    ///
    /// # Errors
    ///
    /// Out-of-bounds addresses and simulated crashes are surfaced as
    /// [`pax_pm::PmError`].
    fn read_shared(&mut self, addr: LineAddr) -> Result<CacheLine>;

    /// The CPU requests `addr` for ownership: it is about to modify the
    /// line. Returns the current contents. This is the message PAX's undo
    /// logging interposes on.
    ///
    /// # Errors
    ///
    /// See [`HomeAgent::read_shared`].
    fn read_own(&mut self, addr: LineAddr) -> Result<CacheLine>;

    /// The CPU drops a clean copy of `addr`.
    fn clean_evict(&mut self, addr: LineAddr);

    /// The CPU writes back the modified contents of `addr`.
    ///
    /// # Errors
    ///
    /// See [`HomeAgent::read_shared`].
    fn dirty_evict(&mut self, addr: LineAddr, data: CacheLine) -> Result<()>;
}

/// A plain memory controller fronting a [`Memory`] medium — the home agent
/// for non-vPM address ranges (DRAM, or PM accessed directly without PAX).
#[derive(Debug)]
pub struct MemoryHome<M> {
    memory: M,
}

impl<M: Memory> MemoryHome<M> {
    /// Wraps a medium in a pass-through home agent.
    pub fn new(memory: M) -> Self {
        MemoryHome { memory }
    }

    /// Shared access to the underlying medium.
    pub fn memory(&self) -> &M {
        &self.memory
    }

    /// Mutable access to the underlying medium (tests crash it, etc.).
    pub fn memory_mut(&mut self) -> &mut M {
        &mut self.memory
    }

    /// Unwraps the home agent.
    pub fn into_inner(self) -> M {
        self.memory
    }
}

impl<M: Memory> HomeAgent for MemoryHome<M> {
    fn read_shared(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.memory.read_line(addr)
    }

    fn read_own(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.memory.read_line(addr)
    }

    fn clean_evict(&mut self, _addr: LineAddr) {}

    fn dirty_evict(&mut self, addr: LineAddr, data: CacheLine) -> Result<()> {
        self.memory.write_line(addr, data)
    }
}

#[derive(Debug, Clone)]
struct CachedLine {
    state: MesiState,
    data: CacheLine,
}

/// The host CPU's coherent cache (see module docs).
#[derive(Debug)]
pub struct CoherentCache {
    lines: SetAssoc<CachedLine>,
    metrics: MetricSet,
    ctr: CacheCounters,
}

impl CoherentCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let mut metrics = MetricSet::new("host_cache");
        let ctr = CacheCounters::register(&mut metrics);
        CoherentCache {
            lines: SetAssoc::with_capacity_bytes(config.capacity_bytes, config.ways),
            metrics,
            ctr,
        }
    }

    /// Cumulative event counts.
    pub fn stats(&self) -> CacheStats {
        self.ctr.view(&self.metrics)
    }

    /// Snapshot of the cache's metric registry.
    pub fn metrics(&self) -> MetricSnapshot {
        self.metrics.snapshot()
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// The MESI state of `addr`, if resident (for tests and assertions).
    pub fn state_of(&self, addr: LineAddr) -> Option<MesiState> {
        self.lines.peek(addr).map(|l| l.state)
    }

    fn install(
        &mut self,
        addr: LineAddr,
        line: CachedLine,
        home: &mut impl HomeAgent,
    ) -> Result<()> {
        if let Some((vaddr, victim)) = self.lines.insert(addr, line) {
            if victim.state.is_dirty() {
                self.metrics.inc(self.ctr.dirty_evictions);
                home.dirty_evict(vaddr, victim.data)?;
            } else {
                self.metrics.inc(self.ctr.clean_evictions);
                home.clean_evict(vaddr);
            }
        }
        Ok(())
    }

    /// Loads the line at `addr`, fetching it from `home` on a miss.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures (bounds, simulated crash).
    pub fn read(&mut self, addr: LineAddr, home: &mut impl HomeAgent) -> Result<CacheLine> {
        if let Some(l) = self.lines.get_mut(addr) {
            self.metrics.inc(self.ctr.read_hits);
            return Ok(l.data.clone());
        }
        self.metrics.inc(self.ctr.read_misses);
        let data = home.read_shared(addr)?;
        self.install(addr, CachedLine { state: MesiState::Shared, data: data.clone() }, home)?;
        Ok(data)
    }

    /// Stores `data` to the line at `addr`.
    ///
    /// If the line is held in `M`/`E` the store is silent; otherwise the
    /// cache first issues [`HomeAgent::read_own`] — informing the device —
    /// and only then modifies the line.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures (bounds, simulated crash).
    pub fn write(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        home: &mut impl HomeAgent,
    ) -> Result<()> {
        if let Some(l) = self.lines.get_mut(addr) {
            if l.state.can_write_silently() {
                self.metrics.inc(self.ctr.write_hits);
                l.state = l.state.after_write();
                l.data = data;
                return Ok(());
            }
        }
        // Miss, or resident in S: request ownership (the PAX hook).
        self.metrics.inc(self.ctr.write_upgrades);
        home.read_own(addr)?;
        self.install(addr, CachedLine { state: MesiState::Modified, data }, home)
    }

    /// Read-modify-write convenience: loads the line, applies `f`, stores
    /// the result. This is how typed sub-line accessors mutate fields.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures (bounds, simulated crash).
    pub fn update(
        &mut self,
        addr: LineAddr,
        home: &mut impl HomeAgent,
        f: impl FnOnce(&mut CacheLine),
    ) -> Result<()> {
        let mut line = self.read(addr, home)?;
        f(&mut line);
        self.write(addr, line, home)
    }

    /// Installs a line received from a *peer cache* in shared state —
    /// no home-agent request is issued for the data (core-to-core
    /// transfer); `home` only receives a potential eviction victim.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures from victim write back.
    pub fn install_shared(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        home: &mut impl HomeAgent,
    ) -> Result<()> {
        self.install(addr, CachedLine { state: MesiState::Shared, data }, home)
    }

    /// Installs a line whose *modified ownership* migrated from a peer
    /// cache (silent M-to-M transfer; the home was informed when the
    /// original owner gained exclusivity).
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures from victim write back.
    pub fn install_modified(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        home: &mut impl HomeAgent,
    ) -> Result<()> {
        self.install(addr, CachedLine { state: MesiState::Modified, data }, home)
    }

    /// Handles a device→host `SnpData` snoop: downgrades `addr` to `S` and
    /// returns the current contents if resident. A dirty line stays
    /// resident (now clean+shared) — the home receives the data in the
    /// return value, matching CXL's snoop-with-data response.
    pub fn snoop_shared(&mut self, addr: LineAddr) -> Option<CacheLine> {
        match self.lines.get_mut(addr) {
            Some(l) => {
                self.metrics.inc(self.ctr.snoop_hits);
                l.state = l.state.after_snoop_shared();
                Some(l.data.clone())
            }
            None => {
                self.metrics.inc(self.ctr.snoop_misses);
                None
            }
        }
    }

    /// Handles a device→host `SnpInv` snoop: invalidates `addr`, returning
    /// the data if the copy was dirty.
    pub fn snoop_invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        match self.lines.remove(addr) {
            Some(l) => {
                self.metrics.inc(self.ctr.snoop_hits);
                l.state.is_dirty().then_some(l.data)
            }
            None => {
                self.metrics.inc(self.ctr.snoop_misses);
                None
            }
        }
    }

    /// Writes back every dirty line and drops everything (a full cache
    /// flush, e.g. `wbinvd` or an eADR power-loss flush).
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures.
    pub fn flush_all(&mut self, home: &mut impl HomeAgent) -> Result<()> {
        for (addr, l) in self.lines.drain_all() {
            if l.state.is_dirty() {
                self.metrics.inc(self.ctr.dirty_evictions);
                home.dirty_evict(addr, l.data)?;
            } else {
                self.metrics.inc(self.ctr.clean_evictions);
                home.clean_evict(addr);
            }
        }
        Ok(())
    }

    /// Simulates power loss. Under eADR dirty lines are flushed to `home`
    /// first (the platform guarantees it); otherwise they are lost.
    ///
    /// # Errors
    ///
    /// Propagates home-agent failures during an eADR flush.
    pub fn crash(&mut self, domain: PersistenceDomain, home: &mut impl HomeAgent) -> Result<()> {
        if domain.cpu_caches_survive() {
            return self.flush_all(home);
        }
        let lost = self.lines.iter().filter(|(_, l)| l.state.is_dirty()).count();
        self.metrics.add(self.ctr.dirty_lines_lost, lost as u64);
        self.lines.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_pm::{DramMedia, PmMedia};

    fn dram_home(bytes: usize) -> MemoryHome<DramMedia> {
        MemoryHome::new(DramMedia::new(bytes))
    }

    #[test]
    fn read_miss_then_hit() {
        let mut home = dram_home(1 << 16);
        let mut c = CoherentCache::new(CacheConfig::tiny(4096, 4));
        c.read(LineAddr(1), &mut home).unwrap();
        c.read(LineAddr(1), &mut home).unwrap();
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.state_of(LineAddr(1)), Some(MesiState::Shared));
    }

    #[test]
    fn write_to_shared_upgrades_once() {
        let mut home = dram_home(1 << 16);
        let mut c = CoherentCache::new(CacheConfig::tiny(4096, 4));
        c.read(LineAddr(2), &mut home).unwrap(); // install in S
        c.write(LineAddr(2), CacheLine::filled(1), &mut home).unwrap(); // upgrade
        c.write(LineAddr(2), CacheLine::filled(2), &mut home).unwrap(); // silent
        assert_eq!(c.stats().write_upgrades, 1);
        assert_eq!(c.stats().write_hits, 1);
        assert_eq!(c.state_of(LineAddr(2)), Some(MesiState::Modified));
    }

    #[test]
    fn dirty_eviction_reaches_memory() {
        let mut home = dram_home(1 << 20);
        // 1 set × 1 way: any second line evicts the first.
        let mut c = CoherentCache::new(CacheConfig::tiny(64, 1));
        c.write(LineAddr(0), CacheLine::filled(9), &mut home).unwrap();
        c.write(LineAddr(1), CacheLine::filled(8), &mut home).unwrap();
        assert_eq!(c.stats().dirty_evictions, 1);
        assert_eq!(home.memory_mut().read_line(LineAddr(0)).unwrap(), CacheLine::filled(9));
    }

    #[test]
    fn snoop_shared_returns_data_and_downgrades() {
        let mut home = dram_home(1 << 16);
        let mut c = CoherentCache::new(CacheConfig::tiny(4096, 4));
        c.write(LineAddr(3), CacheLine::filled(5), &mut home).unwrap();
        let data = c.snoop_shared(LineAddr(3)).unwrap();
        assert_eq!(data, CacheLine::filled(5));
        assert_eq!(c.state_of(LineAddr(3)), Some(MesiState::Shared));
        // A store after the snoop must upgrade again — this is what makes
        // per-epoch logging sound (§3.3).
        c.write(LineAddr(3), CacheLine::filled(6), &mut home).unwrap();
        assert_eq!(c.stats().write_upgrades, 2);
    }

    #[test]
    fn snoop_invalidate_returns_dirty_data_only() {
        let mut home = dram_home(1 << 16);
        let mut c = CoherentCache::new(CacheConfig::tiny(4096, 4));
        c.write(LineAddr(1), CacheLine::filled(1), &mut home).unwrap();
        assert_eq!(c.snoop_invalidate(LineAddr(1)), Some(CacheLine::filled(1)));
        assert_eq!(c.state_of(LineAddr(1)), None);

        c.read(LineAddr(2), &mut home).unwrap();
        assert_eq!(c.snoop_invalidate(LineAddr(2)), None); // clean: no data
        assert_eq!(c.snoop_invalidate(LineAddr(2)), None); // absent: miss
        assert_eq!(c.stats().snoop_misses, 1);
    }

    #[test]
    fn crash_without_eadr_loses_dirty_lines() {
        let mut pm = MemoryHome::new(PmMedia::new(1 << 16, PersistenceDomain::Adr));
        let mut c = CoherentCache::new(CacheConfig::tiny(4096, 4));
        c.write(LineAddr(0), CacheLine::filled(7), &mut pm).unwrap();
        c.crash(PersistenceDomain::Adr, &mut pm).unwrap();
        assert_eq!(c.stats().dirty_lines_lost, 1);
        pm.memory_mut().crash();
        // The store never reached PM: this is the §1 inconsistency hazard.
        assert_eq!(pm.memory_mut().read_line(LineAddr(0)).unwrap(), CacheLine::zeroed());
    }

    #[test]
    fn crash_with_eadr_flushes_dirty_lines() {
        let mut pm = MemoryHome::new(PmMedia::new(1 << 16, PersistenceDomain::Eadr));
        let mut c = CoherentCache::new(CacheConfig::tiny(4096, 4));
        c.write(LineAddr(0), CacheLine::filled(7), &mut pm).unwrap();
        c.crash(PersistenceDomain::Eadr, &mut pm).unwrap();
        pm.memory_mut().crash();
        assert_eq!(pm.memory_mut().read_line(LineAddr(0)).unwrap(), CacheLine::filled(7));
    }

    #[test]
    fn update_applies_sub_line_mutation() {
        let mut home = dram_home(1 << 16);
        let mut c = CoherentCache::new(CacheConfig::tiny(4096, 4));
        c.update(LineAddr(0), &mut home, |l| l.write_at(8, &[1, 2, 3])).unwrap();
        let line = c.read(LineAddr(0), &mut home).unwrap();
        assert_eq!(line.read_at(8, 3), &[1, 2, 3]);
        assert_eq!(line.read_at(0, 8), &[0; 8]);
    }

    #[test]
    fn flush_all_empties_cache_and_persists() {
        let mut home = dram_home(1 << 16);
        let mut c = CoherentCache::new(CacheConfig::tiny(4096, 4));
        c.write(LineAddr(0), CacheLine::filled(1), &mut home).unwrap();
        c.read(LineAddr(1), &mut home).unwrap();
        c.flush_all(&mut home).unwrap();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(home.memory_mut().read_line(LineAddr(0)).unwrap(), CacheLine::filled(1));
    }
}
