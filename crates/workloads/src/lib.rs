//! Deterministic key-value workload generators for the PAX benchmarks.
//!
//! The paper's evaluation uses two workload shapes: a read-only
//! hash-table benchmark with "small 8 B keys and values and a uniform
//! random key access distribution" (Fig. 2a) and a "write-only workload"
//! (Fig. 2b). This crate generates those — plus Zipfian skew and
//! YCSB-style mixes for the extended experiments — as reproducible,
//! seeded operation streams.
//!
//! # Example
//!
//! ```
//! use pax_workloads::{OpMix, WorkloadSpec};
//!
//! let spec = WorkloadSpec::fig2a_read_only(10_000, 100).with_seed(7);
//! let ops: Vec<_> = spec.ops().collect();
//! assert_eq!(ops.len(), 100);
//! assert!(ops.iter().all(|op| op.is_read()));
//! // Deterministic: the same seed yields the same stream.
//! assert_eq!(ops, spec.ops().collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod mix;
pub mod spec;

pub use dist::KeyDistribution;
pub use mix::OpMix;
pub use spec::{Op, WorkloadSpec};
