//! Operation mixes.

/// Percentages of each operation type in a workload (must sum to 100),
/// plus an optional persist cadence for flush-heavy mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Point lookups.
    pub read_pct: u8,
    /// Inserts of possibly-new keys.
    pub insert_pct: u8,
    /// Overwrites of existing keys.
    pub update_pct: u8,
    /// Removals.
    pub remove_pct: u8,
    /// Issue a `persist()` after every `n` operations; 0 (the default
    /// for every preset but [`OpMix::flush_heavy`]) never persists
    /// mid-run. This is the knob that stresses a persistency model's
    /// barrier frequency instead of only its store throughput.
    pub persist_every: usize,
}

impl OpMix {
    /// Constructs a mix, validating the percentages.
    ///
    /// # Panics
    ///
    /// Panics if the fields do not sum to 100.
    pub fn new(read_pct: u8, insert_pct: u8, update_pct: u8, remove_pct: u8) -> Self {
        let m = OpMix { read_pct, insert_pct, update_pct, remove_pct, persist_every: 0 };
        assert_eq!(
            read_pct as u32 + insert_pct as u32 + update_pct as u32 + remove_pct as u32,
            100,
            "op mix must sum to 100"
        );
        m
    }

    /// Fig. 2a's workload: 100% `get()`.
    pub const fn read_only() -> Self {
        OpMix { read_pct: 100, insert_pct: 0, update_pct: 0, remove_pct: 0, persist_every: 0 }
    }

    /// Fig. 2b's workload: write-only inserts.
    pub const fn write_only() -> Self {
        OpMix { read_pct: 0, insert_pct: 100, update_pct: 0, remove_pct: 0, persist_every: 0 }
    }

    /// YCSB-A: 50% reads, 50% updates.
    pub const fn ycsb_a() -> Self {
        OpMix { read_pct: 50, insert_pct: 0, update_pct: 50, remove_pct: 0, persist_every: 0 }
    }

    /// YCSB-B: 95% reads, 5% updates.
    pub const fn ycsb_b() -> Self {
        OpMix { read_pct: 95, insert_pct: 0, update_pct: 5, remove_pct: 0, persist_every: 0 }
    }

    /// A churn mix exercising allocation recycling: inserts vs removals.
    pub const fn churn() -> Self {
        OpMix { read_pct: 20, insert_pct: 40, update_pct: 0, remove_pct: 40, persist_every: 0 }
    }

    /// The flush-heavy mix: write-only inserts with a persist barrier
    /// every 8 operations — transaction-log cadence, where the
    /// persistency model's barrier cost dominates end-to-end throughput.
    pub const fn flush_heavy() -> Self {
        OpMix { read_pct: 0, insert_pct: 100, update_pct: 0, remove_pct: 0, persist_every: 8 }
    }

    /// Returns the mix persisting after every `n` operations (0 disables
    /// mid-run persists).
    pub const fn persist_every(mut self, n: usize) -> Self {
        self.persist_every = n;
        self
    }

    /// Fraction of operations that mutate state.
    pub fn write_fraction(&self) -> f64 {
        (self.insert_pct + self.update_pct + self.remove_pct) as f64 / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sum_to_100() {
        for m in [
            OpMix::read_only(),
            OpMix::write_only(),
            OpMix::ycsb_a(),
            OpMix::ycsb_b(),
            OpMix::churn(),
            OpMix::flush_heavy(),
        ] {
            assert_eq!(
                m.read_pct as u32 + m.insert_pct as u32 + m.update_pct as u32 + m.remove_pct as u32,
                100
            );
        }
    }

    #[test]
    #[should_panic]
    fn bad_mix_rejected() {
        OpMix::new(50, 10, 10, 10);
    }

    #[test]
    fn write_fraction() {
        assert_eq!(OpMix::read_only().write_fraction(), 0.0);
        assert_eq!(OpMix::write_only().write_fraction(), 1.0);
        assert_eq!(OpMix::ycsb_a().write_fraction(), 0.5);
    }

    #[test]
    fn persist_cadence_defaults_off_and_composes() {
        assert_eq!(OpMix::write_only().persist_every, 0);
        assert_eq!(OpMix::new(50, 50, 0, 0).persist_every, 0);
        assert_eq!(OpMix::flush_heavy().persist_every, 8);
        assert_eq!(OpMix::write_only().persist_every(4).persist_every, 4);
        assert_eq!(OpMix::flush_heavy().persist_every(0).persist_every, 0);
    }
}
