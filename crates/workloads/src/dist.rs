//! Key-selection distributions.

use rand::Rng;

/// How keys are drawn from the key space `0..n`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum KeyDistribution {
    /// Every key equally likely — the paper's Fig. 2a workload.
    Uniform,
    /// Zipfian with skew `theta` (YCSB uses 0.99); popular keys dominate.
    Zipfian {
        /// Skew parameter in `(0, 1)`; larger = more skewed.
        theta: f64,
    },
    /// Keys drawn in ascending sequence (scan-like locality).
    Sequential,
}

impl KeyDistribution {
    /// Builds a sampler for a key space of `n` keys.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or a Zipfian `theta` is outside `(0, 1)`.
    pub fn sampler(self, n: u64) -> KeySampler {
        assert!(n > 0, "key space must be non-empty");
        match self {
            KeyDistribution::Uniform => KeySampler::Uniform { n },
            KeyDistribution::Zipfian { theta } => {
                assert!(theta > 0.0 && theta < 1.0, "zipfian theta must be in (0, 1), got {theta}");
                // Gray et al.'s quick Zipfian sampler, as used by YCSB.
                let zetan = zeta(n, theta);
                let zeta2 = zeta(2, theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                KeySampler::Zipfian { n, theta, zetan, alpha, eta }
            }
            KeyDistribution::Sequential => KeySampler::Sequential { n, next: 0 },
        }
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for small n; sampled-extrapolated for large n so construction
    // stays O(1e6) instead of O(n).
    const EXACT_LIMIT: u64 = 1_000_000;
    if n <= EXACT_LIMIT {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=EXACT_LIMIT).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        // Integral approximation of the tail.
        let tail =
            ((n as f64).powf(1.0 - theta) - (EXACT_LIMIT as f64).powf(1.0 - theta)) / (1.0 - theta);
        head + tail
    }
}

/// A prepared sampler over a fixed key space (see [`KeyDistribution`]).
#[derive(Debug, Clone)]
pub enum KeySampler {
    /// Uniform sampler state.
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// Zipfian sampler state (Gray's method).
    Zipfian {
        /// Key-space size.
        n: u64,
        /// Skew.
        theta: f64,
        /// Precomputed harmonic normalizer.
        zetan: f64,
        /// Precomputed `1/(1-theta)`.
        alpha: f64,
        /// Precomputed eta.
        eta: f64,
    },
    /// Sequential sampler state.
    Sequential {
        /// Key-space size.
        n: u64,
        /// Next key to emit.
        next: u64,
    },
}

impl KeySampler {
    /// Draws the next key.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> u64 {
        match self {
            KeySampler::Uniform { n } => rng.gen_range(0..*n),
            KeySampler::Zipfian { n, theta, zetan, alpha, eta } => {
                let u: f64 = rng.gen();
                let uz = u * *zetan;
                if uz < 1.0 {
                    0
                } else if uz < 1.0 + 0.5f64.powf(*theta) {
                    1
                } else {
                    let rank = (*n as f64 * (*eta * u - *eta + 1.0).powf(*alpha)) as u64;
                    // Scramble so hot keys spread over the key space, as
                    // YCSB's scrambled-zipfian does.
                    scramble(rank.min(*n - 1)) % *n
                }
            }
            KeySampler::Sequential { n, next } => {
                let k = *next;
                *next = (*next + 1) % *n;
                k
            }
        }
    }
}

fn scramble(k: u64) -> u64 {
    // FNV-style scrambling keeps the rank→key mapping stable.
    let mut h = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_key_space() {
        let mut s = KeyDistribution::Uniform.sampler(100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let k = s.sample(&mut rng);
            assert!(k < 100);
            seen.insert(k);
        }
        assert_eq!(seen.len(), 100, "uniform should touch every key");
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut s = KeyDistribution::Zipfian { theta: 0.99 }.sampler(10_000);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(s.sample(&mut rng)).or_insert(0u64) += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freq.iter().take(10).sum();
        assert!(
            top10 > 20_000 / 4,
            "top-10 keys should dominate a 0.99-zipfian, got {top10}/20000"
        );
    }

    #[test]
    fn sequential_wraps() {
        let mut s = KeyDistribution::Sequential.sampler(3);
        let mut rng = StdRng::seed_from_u64(3);
        let ks: Vec<u64> = (0..7).map(|_| s.sample(&mut rng)).collect();
        assert_eq!(ks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn zipfian_keys_stay_in_range() {
        let mut s = KeyDistribution::Zipfian { theta: 0.5 }.sampler(7);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic]
    fn zero_keys_rejected() {
        KeyDistribution::Uniform.sampler(0);
    }

    #[test]
    #[should_panic]
    fn bad_theta_rejected() {
        KeyDistribution::Zipfian { theta: 1.5 }.sampler(10);
    }

    #[test]
    fn zeta_large_n_is_finite_and_monotone() {
        let a = zeta(1_000_000, 0.99);
        let b = zeta(10_000_000, 0.99);
        assert!(a.is_finite() && b.is_finite());
        assert!(b > a);
    }
}
