//! Workload specifications and operation streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::{KeyDistribution, KeySampler};
use crate::mix::OpMix;

/// One key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Get(u64),
    /// Insert (or overwrite) `key → value`.
    Insert(u64, u64),
    /// Overwrite of a (presumed existing) key.
    Update(u64, u64),
    /// Removal.
    Remove(u64),
}

impl Op {
    /// The key the operation targets.
    pub fn key(&self) -> u64 {
        match self {
            Op::Get(k) | Op::Insert(k, _) | Op::Update(k, _) | Op::Remove(k) => *k,
        }
    }

    /// Whether the operation is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Get(_))
    }
}

/// A reproducible workload: key space, mix, distribution, length, seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Size of the key space.
    pub keys: u64,
    /// Number of operations to generate.
    pub ops: u64,
    /// Key-selection distribution.
    pub dist: KeyDistribution,
    /// Operation mix.
    pub mix: OpMix,
    /// RNG seed (same seed ⇒ same stream).
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's Fig. 2a workload: uniform-random `get()`s over small
    /// keys/values.
    pub fn fig2a_read_only(keys: u64, ops: u64) -> Self {
        WorkloadSpec {
            keys,
            ops,
            dist: KeyDistribution::Uniform,
            mix: OpMix::read_only(),
            seed: 42,
        }
    }

    /// The paper's Fig. 2b workload: write-only inserts, uniform keys.
    pub fn fig2b_write_only(keys: u64, ops: u64) -> Self {
        WorkloadSpec {
            keys,
            ops,
            dist: KeyDistribution::Uniform,
            mix: OpMix::write_only(),
            seed: 42,
        }
    }

    /// Returns the spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the spec with a different distribution.
    pub fn with_dist(mut self, dist: KeyDistribution) -> Self {
        self.dist = dist;
        self
    }

    /// Returns the spec with a different mix.
    pub fn with_mix(mut self, mix: OpMix) -> Self {
        self.mix = mix;
        self
    }

    /// The operation stream, deterministically derived from the seed.
    pub fn ops(&self) -> OpStream {
        OpStream {
            rng: StdRng::seed_from_u64(self.seed),
            sampler: self.dist.sampler(self.keys),
            mix: self.mix,
            remaining: self.ops,
        }
    }

    /// Keys to preload before running a read/update-heavy stream (every
    /// key in the space, so lookups hit).
    pub fn load_keys(&self) -> impl Iterator<Item = u64> {
        0..self.keys
    }
}

/// Iterator over a spec's operations (see [`WorkloadSpec::ops`]).
#[derive(Debug, Clone)]
pub struct OpStream {
    rng: StdRng,
    sampler: KeySampler,
    mix: OpMix,
    remaining: u64,
}

impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let key = self.sampler.sample(&mut self.rng);
        let roll: u8 = self.rng.gen_range(0..100);
        let value: u64 = self.rng.gen();
        let m = self.mix;
        Some(if roll < m.read_pct {
            Op::Get(key)
        } else if roll < m.read_pct + m.insert_pct {
            Op::Insert(key, value)
        } else if roll < m.read_pct + m.insert_pct + m.update_pct {
            Op::Update(key, value)
        } else {
            Op::Remove(key)
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for OpStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let spec = WorkloadSpec::fig2b_write_only(1000, 500).with_seed(9);
        let a: Vec<Op> = spec.ops().collect();
        let b: Vec<Op> = spec.ops().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<Op> = WorkloadSpec::fig2b_write_only(1000, 100).with_seed(1).ops().collect();
        let b: Vec<Op> = WorkloadSpec::fig2b_write_only(1000, 100).with_seed(2).ops().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_proportions_are_respected() {
        let spec = WorkloadSpec {
            keys: 100,
            ops: 10_000,
            dist: KeyDistribution::Uniform,
            mix: OpMix::ycsb_b(),
            seed: 3,
        };
        let reads = spec.ops().filter(Op::is_read).count();
        assert!((9_200..=9_800).contains(&reads), "95% reads expected, got {reads}");
    }

    #[test]
    fn fig2a_is_pure_reads_and_fig2b_pure_inserts() {
        assert!(WorkloadSpec::fig2a_read_only(10, 100).ops().all(|o| o.is_read()));
        assert!(WorkloadSpec::fig2b_write_only(10, 100)
            .ops()
            .all(|o| matches!(o, Op::Insert(_, _))));
    }

    #[test]
    fn exact_size_iterator() {
        let mut s = WorkloadSpec::fig2a_read_only(10, 5).ops();
        assert_eq!(s.len(), 5);
        s.next();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Insert(3, 4).key(), 3);
        assert!(!Op::Remove(1).is_read());
    }
}
