//! The §5.1 "combining with paging" hybrid.
//!
//! "The application could directly map PM pages as read-only; on a write
//! page fault, the page could (be) remapped at read/write through
//! addresses assigned to vPM, letting PAX track changes to the page at
//! cache line granularity."
//!
//! [`HybridSpace`] models that deployment: the *first* store to a page per
//! epoch pays one trap (the remap) but logs **nothing** at page
//! granularity; thereafter the page's modifications are undo-logged per
//! 64 B line, PAX-style. Compared in the `write_amp` bench against pure
//! paging (amortizes traps, huge log) and pure PAX (no traps, line log).

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use libpax::{MemSpace, PaxError};
use pax_device::{UndoEntry, UndoLog};
use pax_pm::{CrashClock, LineAddr, PmError, PmPool, PoolConfig, LINE_SIZE};

use crate::costs::{CostReport, Costed};

#[derive(Debug)]
struct State {
    pool: PmPool,
    log: UndoLog,
    clock: CrashClock,
    epoch: u64,
    touched_pages: HashSet<u64>,
    logged_lines: HashSet<LineAddr>,
}

#[derive(Debug)]
struct Inner {
    state: Option<State>,
    costs: CostReport,
    /// Undo entries the background engine drains per store burst; 0
    /// disables draining outside `persist()`.
    background_pump_batch: usize,
}

/// A [`MemSpace`] combining page-fault mapping with line-granularity
/// PAX tracking (see module docs).
#[derive(Debug, Clone)]
pub struct HybridSpace {
    inner: Arc<Mutex<Inner>>,
    capacity: u64,
}

impl HybridSpace {
    /// Creates a hybrid space over a fresh pool.
    ///
    /// # Errors
    ///
    /// Propagates pool-layout errors.
    pub fn create(config: PoolConfig) -> libpax::Result<Self> {
        Self::open(PmPool::create(config)?)
    }

    /// Opens an existing pool, rolling back any uncommitted epoch.
    ///
    /// # Errors
    ///
    /// Propagates media errors from recovery.
    pub fn open(mut pool: PmPool) -> libpax::Result<Self> {
        let report = pax_device::recover(&mut pool)?;
        let capacity = pool.layout().data_lines * LINE_SIZE as u64;
        let log = UndoLog::new(&pool);
        Ok(HybridSpace {
            inner: Arc::new(Mutex::new(Inner {
                state: Some(State {
                    pool,
                    log,
                    clock: CrashClock::new(),
                    epoch: report.committed_epoch + 1,
                    touched_pages: HashSet::new(),
                    logged_lines: HashSet::new(),
                }),
                costs: CostReport::default(),
                background_pump_batch: 2,
            })),
            capacity,
        })
    }

    /// Returns the space with a different background pump batch — the
    /// undo entries drained per store burst (the analogue of the PAX
    /// device's per-tick log-drain budget; 0 defers all draining to
    /// [`HybridSpace::persist`]).
    pub fn with_background_pump_batch(self, n: usize) -> Self {
        self.inner.lock().background_pump_batch = n;
        self
    }

    /// Undo entries drained durably to PM so far.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn log_durable_entries(&self) -> libpax::Result<u64> {
        let inner = self.inner.lock();
        let state = inner.state.as_ref().ok_or(PaxError::Pm(PmError::Crashed))?;
        Ok(state.log.durable_offset())
    }

    /// Ends the epoch: drain, commit, re-protect pages.
    ///
    /// # Errors
    ///
    /// Fails after a simulated crash; propagates media errors.
    pub fn persist(&self) -> libpax::Result<u64> {
        let mut inner = self.inner.lock();
        let Inner { state, costs, .. } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        state.log.flush(&mut state.pool, &state.clock)?;
        state.pool.drain();
        costs.sfences += 1;
        let committed = state.epoch;
        state.pool.commit_epoch(committed)?;
        costs.sfences += 1;
        state.epoch += 1;
        state.touched_pages.clear();
        state.logged_lines.clear();
        state.log.reset_after_commit();
        Ok(committed)
    }

    /// Simulates power loss, returning the durable pool.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn crash(&self) -> libpax::Result<PmPool> {
        let mut inner = self.inner.lock();
        let mut state = inner.state.take().ok_or(PaxError::Pm(PmError::Crashed))?;
        state.pool.crash();
        Ok(state.pool)
    }

    fn check(&self, addr: u64, len: usize) -> libpax::Result<()> {
        if addr.checked_add(len as u64).is_none_or(|e| e > self.capacity) {
            return Err(PaxError::OutOfMemory {
                requested: addr.saturating_add(len as u64),
                capacity: self.capacity,
            });
        }
        Ok(())
    }
}

impl MemSpace for HybridSpace {
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> libpax::Result<()> {
        self.check(addr, buf.len())?;
        let mut inner = self.inner.lock();
        let Inner { state, costs, .. } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        let mut done = 0;
        let mut cur = addr;
        while done < buf.len() {
            let vline = LineAddr::from_byte_addr(cur);
            let off = (cur - vline.byte_addr()) as usize;
            let n = (LINE_SIZE - off).min(buf.len() - done);
            let abs = state.pool.layout().vpm_to_pool(vline.0)?;
            costs.pm_reads += 1;
            let line = state.pool.read_line(abs)?;
            buf[done..done + n].copy_from_slice(line.read_at(off, n));
            done += n;
            cur += n as u64;
        }
        Ok(())
    }

    fn write_bytes(&self, addr: u64, data: &[u8]) -> libpax::Result<()> {
        self.check(addr, data.len())?;
        let mut inner = self.inner.lock();
        let Inner { state, costs, .. } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        let mut done = 0;
        let mut cur = addr;
        while done < data.len() {
            let vline = LineAddr::from_byte_addr(cur);
            let page = vline.page();

            // First touch per page: one remap trap, no page-sized logging.
            if state.touched_pages.insert(page) {
                costs.traps += 1;
            }
            // First touch per line: PAX-style 64 B undo entry, logged
            // asynchronously (no SFENCE charged to the application).
            if state.logged_lines.insert(vline) {
                let abs = state.pool.layout().vpm_to_pool(vline.0)?;
                let old = state.pool.read_line(abs)?;
                costs.pm_reads += 1;
                state.log.append(UndoEntry::single(state.epoch, vline, old))?;
                costs.log_bytes += 128;
                costs.pm_write_bytes += 128;
            }

            let off = (cur - vline.byte_addr()) as usize;
            let n = (LINE_SIZE - off).min(data.len() - done);
            let abs = state.pool.layout().vpm_to_pool(vline.0)?;
            let mut line = state.pool.read_line(abs)?;
            costs.pm_reads += 1;
            line.write_at(off, &data[done..done + n]);
            state.pool.write_line(abs, line)?;
            costs.pm_write_bytes += LINE_SIZE as u64;
            costs.app_write_bytes += n as u64;
            done += n;
            cur += n as u64;
        }
        // Model asynchronous draining: a bounded background pump.
        let Inner { state, background_pump_batch, .. } = &mut *inner;
        if *background_pump_batch > 0 {
            if let Some(state) = state.as_mut() {
                state
                    .log
                    .pump(&mut state.pool, &state.clock, *background_pump_batch)
                    .map_err(PaxError::from)?;
            }
        }
        Ok(())
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }
}

impl Costed for HybridSpace {
    fn costs(&self) -> CostReport {
        self.inner.lock().costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_per_page_log_per_line() {
        let s = HybridSpace::create(PoolConfig::small()).unwrap();
        s.write_u64(0, 1).unwrap(); // page 0, line 0: trap + line log
        s.write_u64(8, 2).unwrap(); // same line: nothing new
        s.write_u64(64, 3).unwrap(); // page 0, line 1: line log only
        s.write_u64(4096, 4).unwrap(); // page 1: trap + line log
        let c = s.costs();
        assert_eq!(c.traps, 2);
        assert_eq!(c.log_bytes, 3 * 128);
        assert_eq!(c.sfences, 0, "logging is asynchronous");
    }

    #[test]
    fn far_lower_amplification_than_paging() {
        let s = HybridSpace::create(PoolConfig::small()).unwrap();
        s.write_u64(0, 1).unwrap();
        // 128 B log + 64 B data for 8 app bytes = 24×, vs paging's >500×.
        let amp = s.costs().write_amplification();
        assert!(amp < 30.0, "amp = {amp}");
    }

    #[test]
    fn pump_batch_is_configurable() {
        // Default batch drains incrementally as stores arrive.
        let s = HybridSpace::create(PoolConfig::small()).unwrap();
        for i in 0..8u64 {
            s.write_u64(i * LINE_SIZE as u64, i).unwrap();
        }
        assert!(s.log_durable_entries().unwrap() > 0, "default batch drains in the background");

        // Batch 0 defers every entry to persist().
        let deferred =
            HybridSpace::create(PoolConfig::small()).unwrap().with_background_pump_batch(0);
        for i in 0..8u64 {
            deferred.write_u64(i * LINE_SIZE as u64, i).unwrap();
        }
        assert_eq!(deferred.log_durable_entries().unwrap(), 0, "batch 0 must not drain");
        deferred.persist().unwrap();
        assert_eq!(deferred.log_durable_entries().unwrap(), 8, "persist flushes everything");
    }

    #[test]
    fn crash_recovery_matches_pax_semantics() {
        let s = HybridSpace::create(PoolConfig::small()).unwrap();
        s.write_u64(0, 1).unwrap();
        s.persist().unwrap();
        s.write_u64(0, 2).unwrap();
        // Make sure the epoch-2 log entry is durable, then crash: the
        // rollback path must restore the persisted value.
        for _ in 0..64 {
            let mut b = [0u8; 8];
            s.read_bytes(512, &mut b).unwrap();
        }
        let pool = s.crash().unwrap();
        let s2 = HybridSpace::open(pool).unwrap();
        assert_eq!(s2.read_u64(0).unwrap(), 1);
    }
}
