//! Redo-log write-ahead logging (§2).
//!
//! "In redo logging, structure operations log all locations and values to
//! be updated; once the log entries persist, updates to the structure are
//! applied. On a crash, missing updates are applied from the log."
//!
//! [`RedoSpace`] buffers a transaction's writes (read-your-writes) and
//! logs the *new* values; commit drains the log (SFENCE), writes the
//! commit record (SFENCE), then applies the buffered writes to the
//! structure. Recovery re-applies the last committed transaction's
//! entries — idempotent, so a crash between commit and apply is safe.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use libpax::{MemSpace, PaxError};
use pax_device::{UndoEntry, UndoLog};
use pax_pm::{CacheLine, CrashClock, LineAddr, PmError, PmPool, PoolConfig, LINE_SIZE};

use crate::costs::{CostReport, Costed};

#[derive(Debug)]
struct State {
    pool: PmPool,
    /// Same on-media entry format as the undo log; here `old` carries the
    /// *new* value (redo semantics are in the recovery direction).
    log: UndoLog,
    clock: CrashClock,
    txid: u64,
    tx_open: bool,
    /// The transaction's pending writes (redo buffer).
    buffer: HashMap<LineAddr, CacheLine>,
}

#[derive(Debug)]
struct Inner {
    state: Option<State>,
    costs: CostReport,
}

/// A [`MemSpace`] with redo-log WAL (see module docs).
#[derive(Debug, Clone)]
pub struct RedoSpace {
    inner: Arc<Mutex<Inner>>,
    capacity: u64,
}

impl RedoSpace {
    /// Creates a redo space over a fresh pool.
    ///
    /// # Errors
    ///
    /// Propagates pool-layout errors.
    pub fn create(config: PoolConfig) -> libpax::Result<Self> {
        Self::open(PmPool::create(config)?)
    }

    /// Opens an existing pool, re-applying the last committed
    /// transaction's logged writes (redo recovery).
    ///
    /// # Errors
    ///
    /// Propagates media errors.
    pub fn open(mut pool: PmPool) -> libpax::Result<Self> {
        let committed = pool.committed_epoch()?;
        for (_, entry) in UndoLog::scan(&mut pool)? {
            if entry.epoch == committed {
                let abs = pool.layout().vpm_to_pool(entry.vpm_line.0)?;
                pool.write_line(abs, entry.old)?; // `old` holds the new value
            }
            // epoch > committed: uncommitted, discard; < committed: stale.
        }
        pool.drain();
        let capacity = pool.layout().data_lines * LINE_SIZE as u64;
        let log = UndoLog::new(&pool);
        Ok(RedoSpace {
            inner: Arc::new(Mutex::new(Inner {
                state: Some(State {
                    pool,
                    log,
                    clock: CrashClock::new(),
                    txid: committed + 1,
                    tx_open: false,
                    buffer: HashMap::new(),
                }),
                costs: CostReport::default(),
            })),
            capacity,
        })
    }

    /// Opens an explicit transaction.
    ///
    /// # Errors
    ///
    /// Fails after a simulated crash.
    pub fn begin_tx(&self) -> libpax::Result<()> {
        let mut inner = self.inner.lock();
        let state = inner.state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        state.tx_open = true;
        Ok(())
    }

    /// Commits: log new values (durable, SFENCE), commit record (SFENCE),
    /// then apply the buffered writes to the structure.
    ///
    /// # Errors
    ///
    /// Fails after a simulated crash; propagates media errors.
    pub fn commit_tx(&self) -> libpax::Result<()> {
        let mut inner = self.inner.lock();
        let Inner { state, costs } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;

        // Log every buffered line's new value.
        let mut lines: Vec<(LineAddr, CacheLine)> =
            state.buffer.iter().map(|(a, l)| (*a, l.clone())).collect();
        lines.sort_by_key(|(a, _)| a.0);
        for (addr, data) in &lines {
            state.log.append(UndoEntry::single(state.txid, *addr, data.clone()))?;
            costs.log_bytes += 128;
            costs.pm_write_bytes += 128;
        }
        state.log.flush(&mut state.pool, &state.clock)?;
        costs.sfences += 1;

        // Commit record.
        state.pool.commit_epoch(state.txid)?;
        costs.sfences += 1;

        // Apply to the structure (may be interrupted; recovery re-applies).
        for (addr, data) in lines {
            let abs = state.pool.layout().vpm_to_pool(addr.0)?;
            state.pool.write_line(abs, data)?;
            costs.pm_write_bytes += LINE_SIZE as u64;
        }
        state.pool.drain();
        costs.sfences += 1;

        state.txid += 1;
        state.tx_open = false;
        state.buffer.clear();
        state.log.reset_after_commit();
        Ok(())
    }

    /// Runs `f` inside a transaction.
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error without committing.
    pub fn tx<R>(&self, f: impl FnOnce() -> libpax::Result<R>) -> libpax::Result<R> {
        self.begin_tx()?;
        let r = f()?;
        self.commit_tx()?;
        Ok(r)
    }

    /// Simulates power loss, returning the durable pool.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn crash(&self) -> libpax::Result<PmPool> {
        let mut inner = self.inner.lock();
        let mut state = inner.state.take().ok_or(PaxError::Pm(PmError::Crashed))?;
        state.pool.crash();
        Ok(state.pool)
    }

    fn check(&self, addr: u64, len: usize) -> libpax::Result<()> {
        if addr.checked_add(len as u64).is_none_or(|e| e > self.capacity) {
            return Err(PaxError::OutOfMemory {
                requested: addr.saturating_add(len as u64),
                capacity: self.capacity,
            });
        }
        Ok(())
    }
}

impl MemSpace for RedoSpace {
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> libpax::Result<()> {
        self.check(addr, buf.len())?;
        let mut inner = self.inner.lock();
        let Inner { state, costs } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        let mut done = 0;
        let mut cur = addr;
        while done < buf.len() {
            let vline = LineAddr::from_byte_addr(cur);
            let off = (cur - vline.byte_addr()) as usize;
            let n = (LINE_SIZE - off).min(buf.len() - done);
            // Read-your-writes: buffered lines win.
            let line = match state.buffer.get(&vline) {
                Some(l) => l.clone(),
                None => {
                    let abs = state.pool.layout().vpm_to_pool(vline.0)?;
                    costs.pm_reads += 1;
                    state.pool.read_line(abs)?
                }
            };
            buf[done..done + n].copy_from_slice(line.read_at(off, n));
            done += n;
            cur += n as u64;
        }
        Ok(())
    }

    fn write_bytes(&self, addr: u64, data: &[u8]) -> libpax::Result<()> {
        self.check(addr, data.len())?;
        let implicit;
        {
            let mut inner = self.inner.lock();
            let Inner { state, costs } = &mut *inner;
            let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
            implicit = !state.tx_open;
            let mut done = 0;
            let mut cur = addr;
            while done < data.len() {
                let vline = LineAddr::from_byte_addr(cur);
                let off = (cur - vline.byte_addr()) as usize;
                let n = (LINE_SIZE - off).min(data.len() - done);
                let mut line = match state.buffer.get(&vline) {
                    Some(l) => l.clone(),
                    None => {
                        let abs = state.pool.layout().vpm_to_pool(vline.0)?;
                        costs.pm_reads += 1;
                        state.pool.read_line(abs)?
                    }
                };
                line.write_at(off, &data[done..done + n]);
                state.buffer.insert(vline, line);
                costs.app_write_bytes += n as u64;
                done += n;
                cur += n as u64;
            }
        }
        if implicit {
            self.commit_tx()?;
        }
        Ok(())
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }
}

impl Costed for RedoSpace {
    fn costs(&self) -> CostReport {
        self.inner.lock().costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_writes_survive_crash() {
        let space = RedoSpace::create(PoolConfig::small()).unwrap();
        space
            .tx(|| {
                space.write_u64(0, 7)?;
                space.write_u64(100, 8)
            })
            .unwrap();
        let pool = space.crash().unwrap();
        let space2 = RedoSpace::open(pool).unwrap();
        assert_eq!(space2.read_u64(0).unwrap(), 7);
        assert_eq!(space2.read_u64(100).unwrap(), 8);
    }

    #[test]
    fn uncommitted_writes_vanish() {
        let space = RedoSpace::create(PoolConfig::small()).unwrap();
        space.begin_tx().unwrap();
        space.write_u64(0, 99).unwrap();
        // Read-your-writes inside the tx:
        assert_eq!(space.read_u64(0).unwrap(), 99);
        let pool = space.crash().unwrap();
        let space2 = RedoSpace::open(pool).unwrap();
        assert_eq!(space2.read_u64(0).unwrap(), 0, "uncommitted redo entries discarded");
    }

    #[test]
    fn redo_recovery_reapplies_committed_tx() {
        // Simulate crash *between* commit record and apply: build the
        // state by hand — commit record present, structure not updated.
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        let clock = CrashClock::new();
        let mut log = UndoLog::new(&pool);
        log.append(UndoEntry::single(
            1,
            LineAddr(3),
            CacheLine::filled(0x44), // redo: the NEW value
        ))
        .unwrap();
        log.flush(&mut pool, &clock).unwrap();
        pool.commit_epoch(1).unwrap();
        // Structure line still zero: apply never ran.

        let space = RedoSpace::open(pool).unwrap();
        let mut buf = [0u8; 8];
        space.read_bytes(3 * 64, &mut buf).unwrap();
        assert_eq!(buf, [0x44; 8]);
    }

    #[test]
    fn commit_pays_bounded_sfences() {
        let space = RedoSpace::create(PoolConfig::small()).unwrap();
        space
            .tx(|| {
                for i in 0..10u64 {
                    space.write_u64(i * 64, i)?;
                }
                Ok(())
            })
            .unwrap();
        // Redo needs only 3 ordering points per tx regardless of size —
        // versus one per touched line for undo WAL.
        assert_eq!(space.costs().sfences, 3);
    }
}
