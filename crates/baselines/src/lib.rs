//! Crash-consistency baselines the paper compares PAX against.
//!
//! Each baseline is a [`MemSpace`](libpax::MemSpace) adapter, so the *same
//! unmodified structure code* from `libpax::structures` runs on every
//! mechanism — which is precisely how the comparison stays apples-to-apples:
//!
//! * [`DirectPmSpace`] — stores go straight to PM with no consistency
//!   mechanism ("PM Direct" in Fig. 2b; fast but broken after a crash).
//! * [`WalSpace`] — PMDK-style **synchronous undo-log WAL**: every store
//!   first appends the old value to a persistent log and waits for an
//!   SFENCE before the data write proceeds (§2). Counts the fences and
//!   log traffic the paper blames for PMDK's 2× slowdown.
//! * [`RedoSpace`] — redo-log WAL: stores buffer in the log during a
//!   transaction and are applied at commit (§2's other variant).
//! * [`PageFaultSpace`] — page-protection tracking [12, 15, 20]: the
//!   first store to each page per epoch takes a >1 µs trap and logs the
//!   whole 4 KiB page, reproducing the trap overhead and 64× write
//!   amplification the paper cites (§1).
//! * [`HybridSpace`] — the §5.1 "combining with paging" idea: first touch
//!   per page pays one trap, after which modifications are tracked at
//!   cache-line granularity.
//!
//! Every adapter reports a [`CostReport`] of countable events which the
//! bench harness multiplies by [`LatencyProfile`](pax_pm::LatencyProfile)
//! constants — the paper's own estimation methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod direct;
pub mod hybrid;
pub mod pagefault;
pub mod redo;
pub mod wal;

pub use costs::{CostReport, Costed};
pub use direct::DirectPmSpace;
pub use hybrid::HybridSpace;
pub use pagefault::PageFaultSpace;
pub use redo::RedoSpace;
pub use wal::WalSpace;
