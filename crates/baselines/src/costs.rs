//! Event counting and latency composition for baseline mechanisms.

use pax_pm::LatencyProfile;

/// Countable events a crash-consistency mechanism performed.
///
/// The bench harness converts a report to nanoseconds with
/// [`CostReport::estimate_ns`], mirroring the paper's methodology of
/// composing measured event counts with published latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Line-sized reads that reached PM.
    pub pm_reads: u64,
    /// Writes that reached PM (data + log), in bytes.
    pub pm_write_bytes: u64,
    /// Ordering stalls (SFENCE + drain) the mechanism required.
    pub sfences: u64,
    /// Write-protection page-fault traps taken.
    pub traps: u64,
    /// Bytes of *log* traffic (subset of `pm_write_bytes`).
    pub log_bytes: u64,
    /// Bytes the application actually asked to write.
    pub app_write_bytes: u64,
}

impl CostReport {
    /// Write amplification: total PM write traffic per application byte.
    pub fn write_amplification(&self) -> f64 {
        if self.app_write_bytes == 0 {
            0.0
        } else {
            self.pm_write_bytes as f64 / self.app_write_bytes as f64
        }
    }

    /// Nanoseconds of mechanism overhead under `profile`.
    ///
    /// PM writes are charged per line started (the ADR write path);
    /// fences and traps at their profile costs.
    pub fn estimate_ns(&self, profile: &LatencyProfile) -> f64 {
        let line = pax_pm::LINE_SIZE as f64;
        let write_lines = self.pm_write_bytes as f64 / line;
        self.pm_reads as f64 * profile.pm.read_ns as f64
            + write_lines * profile.pm.write_ns as f64
            + self.sfences as f64 * profile.sfence_ns as f64
            + self.traps as f64 * profile.trap_ns as f64
    }

    /// The difference between two snapshots of a report (for per-phase
    /// accounting in benches).
    pub fn delta_since(&self, earlier: &CostReport) -> CostReport {
        CostReport {
            pm_reads: self.pm_reads - earlier.pm_reads,
            pm_write_bytes: self.pm_write_bytes - earlier.pm_write_bytes,
            sfences: self.sfences - earlier.sfences,
            traps: self.traps - earlier.traps,
            log_bytes: self.log_bytes - earlier.log_bytes,
            app_write_bytes: self.app_write_bytes - earlier.app_write_bytes,
        }
    }
}

/// A mechanism that can report its cumulative costs.
pub trait Costed {
    /// Cumulative event counts since construction.
    fn costs(&self) -> CostReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_math() {
        let r = CostReport { pm_write_bytes: 4096, app_write_bytes: 64, ..Default::default() };
        assert_eq!(r.write_amplification(), 64.0);
        assert_eq!(CostReport::default().write_amplification(), 0.0);
    }

    #[test]
    fn estimate_charges_each_component() {
        let p = LatencyProfile::c6420();
        let base = CostReport::default().estimate_ns(&p);
        assert_eq!(base, 0.0);
        let r = CostReport { traps: 1, ..Default::default() };
        assert_eq!(r.estimate_ns(&p), p.trap_ns as f64);
        let r = CostReport { sfences: 2, ..Default::default() };
        assert_eq!(r.estimate_ns(&p), 2.0 * p.sfence_ns as f64);
        let r = CostReport { pm_write_bytes: 128, ..Default::default() };
        assert_eq!(r.estimate_ns(&p), 2.0 * p.pm.write_ns as f64);
    }

    #[test]
    fn delta_subtracts() {
        let a = CostReport { sfences: 5, pm_reads: 3, ..Default::default() };
        let b = CostReport { sfences: 2, pm_reads: 1, ..Default::default() };
        let d = a.delta_since(&b);
        assert_eq!(d.sfences, 3);
        assert_eq!(d.pm_reads, 2);
    }
}
