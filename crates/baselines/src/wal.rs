//! PMDK-style synchronous undo-log write-ahead logging (§2).
//!
//! "In undo logging, the existing value stored in a persistent structure
//! is logged for each location that must be modified. After a log entry
//! recording the prior value persists, modifications are applied directly
//! to the structure." The key cost: *after ... persists* — every first
//! store to a line inside a transaction stalls on an SFENCE before the
//! data write may proceed, and the commit adds two more ordering points.
//!
//! [`WalSpace`] reuses the device crate's log format and recovery routine
//! — the mechanism is identical to PAX's; only the synchrony differs,
//! which is exactly the paper's comparison.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use libpax::{MemSpace, PaxError};
use pax_device::{recover, UndoEntry, UndoLog};
use pax_pm::{CrashClock, LineAddr, PmError, PmPool, PoolConfig, LINE_SIZE};

use crate::costs::{CostReport, Costed};

#[derive(Debug)]
struct State {
    pool: PmPool,
    log: UndoLog,
    clock: CrashClock,
    /// Transaction being built (= committed txid + 1).
    txid: u64,
    /// Whether an explicit transaction is open.
    tx_open: bool,
    /// vPM lines already logged in the current transaction.
    logged: HashSet<LineAddr>,
}

#[derive(Debug)]
struct Inner {
    state: Option<State>,
    costs: CostReport,
}

/// A [`MemSpace`] with PMDK-style synchronous undo WAL (see module docs).
#[derive(Debug, Clone)]
pub struct WalSpace {
    inner: Arc<Mutex<Inner>>,
    capacity: u64,
}

impl WalSpace {
    /// Creates a WAL space over a fresh pool.
    ///
    /// # Errors
    ///
    /// Propagates pool-layout errors.
    pub fn create(config: PoolConfig) -> libpax::Result<Self> {
        let pool = PmPool::create(config)?;
        Self::open(pool)
    }

    /// Opens (and recovers, exactly like libpax §3.4) an existing pool.
    ///
    /// # Errors
    ///
    /// Propagates media errors from recovery.
    pub fn open(mut pool: PmPool) -> libpax::Result<Self> {
        let report = recover(&mut pool)?;
        let capacity = pool.layout().data_lines * LINE_SIZE as u64;
        let log = UndoLog::new(&pool);
        Ok(WalSpace {
            inner: Arc::new(Mutex::new(Inner {
                state: Some(State {
                    pool,
                    log,
                    clock: CrashClock::new(),
                    txid: report.committed_epoch + 1,
                    tx_open: false,
                    logged: HashSet::new(),
                }),
                costs: CostReport::default(),
            })),
            capacity,
        })
    }

    /// Opens an explicit transaction; subsequent writes log-then-store
    /// until [`WalSpace::commit_tx`].
    ///
    /// # Errors
    ///
    /// Fails after a simulated crash.
    pub fn begin_tx(&self) -> libpax::Result<()> {
        let mut inner = self.inner.lock();
        let state = inner.state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        state.tx_open = true;
        Ok(())
    }

    /// Commits the open transaction: drains data writes (SFENCE), writes
    /// the commit record, drains again (SFENCE).
    ///
    /// # Errors
    ///
    /// Fails after a simulated crash.
    pub fn commit_tx(&self) -> libpax::Result<()> {
        let mut inner = self.inner.lock();
        let Inner { state, costs } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        state.pool.drain();
        costs.sfences += 1;
        let txid = state.txid;
        state.pool.commit_epoch(txid)?;
        costs.sfences += 1;
        state.txid += 1;
        state.tx_open = false;
        state.logged.clear();
        state.log.reset_after_commit();
        Ok(())
    }

    /// Runs `f` inside a transaction (begin, run, commit).
    ///
    /// # Errors
    ///
    /// Propagates `f`'s error without committing.
    pub fn tx<R>(&self, f: impl FnOnce() -> libpax::Result<R>) -> libpax::Result<R> {
        self.begin_tx()?;
        let r = f()?;
        self.commit_tx()?;
        Ok(r)
    }

    /// Simulates power loss, returning the durable pool for reopening.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn crash(&self) -> libpax::Result<PmPool> {
        let mut inner = self.inner.lock();
        let mut state = inner.state.take().ok_or(PaxError::Pm(PmError::Crashed))?;
        state.pool.crash();
        Ok(state.pool)
    }

    /// The committed transaction id (recovery point).
    ///
    /// # Errors
    ///
    /// Fails after a simulated crash.
    pub fn committed_txid(&self) -> libpax::Result<u64> {
        let mut inner = self.inner.lock();
        let state = inner.state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        Ok(state.pool.committed_epoch()?)
    }

    fn check(&self, addr: u64, len: usize) -> libpax::Result<()> {
        if addr.checked_add(len as u64).is_none_or(|e| e > self.capacity) {
            return Err(PaxError::OutOfMemory {
                requested: addr.saturating_add(len as u64),
                capacity: self.capacity,
            });
        }
        Ok(())
    }
}

impl MemSpace for WalSpace {
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> libpax::Result<()> {
        self.check(addr, buf.len())?;
        let mut inner = self.inner.lock();
        let Inner { state, costs } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        let mut done = 0;
        let mut cur = addr;
        while done < buf.len() {
            let vline = LineAddr::from_byte_addr(cur);
            let off = (cur - vline.byte_addr()) as usize;
            let n = (LINE_SIZE - off).min(buf.len() - done);
            let abs = state.pool.layout().vpm_to_pool(vline.0)?;
            let line = state.pool.read_line(abs)?;
            costs.pm_reads += 1;
            buf[done..done + n].copy_from_slice(line.read_at(off, n));
            done += n;
            cur += n as u64;
        }
        Ok(())
    }

    fn write_bytes(&self, addr: u64, data: &[u8]) -> libpax::Result<()> {
        self.check(addr, data.len())?;
        let mut inner = self.inner.lock();
        let Inner { state, costs } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        // Writes outside an explicit tx behave as singleton transactions;
        // PMDK would abort, we stay permissive but still log.
        let implicit = !state.tx_open;
        let mut done = 0;
        let mut cur = addr;
        while done < data.len() {
            let vline = LineAddr::from_byte_addr(cur);
            let off = (cur - vline.byte_addr()) as usize;
            let n = (LINE_SIZE - off).min(data.len() - done);
            let abs = state.pool.layout().vpm_to_pool(vline.0)?;

            // Log-then-store: first touch per tx logs the pre-image and
            // STALLS until it is durable (the §2 SFENCE).
            if !state.logged.contains(&vline) {
                let old = state.pool.read_line(abs)?;
                costs.pm_reads += 1;
                state.log.append(UndoEntry::single(state.txid, vline, old))?;
                state.log.flush(&mut state.pool, &state.clock)?;
                costs.sfences += 1;
                costs.log_bytes += 128;
                costs.pm_write_bytes += 128;
                state.logged.insert(vline);
            }

            let mut line = state.pool.read_line(abs)?;
            costs.pm_reads += 1;
            line.write_at(off, &data[done..done + n]);
            state.pool.write_line(abs, line)?;
            costs.pm_write_bytes += LINE_SIZE as u64;
            costs.app_write_bytes += n as u64;
            done += n;
            cur += n as u64;
        }
        drop(inner);
        if implicit {
            self.commit_tx()?;
        }
        Ok(())
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }
}

impl Costed for WalSpace {
    fn costs(&self) -> CostReport {
        self.inner.lock().costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libpax::{Heap, PHashMap};

    #[test]
    fn committed_tx_survives_crash() {
        let space = WalSpace::create(PoolConfig::small()).unwrap();
        space
            .tx(|| {
                space.write_u64(0, 11)?;
                space.write_u64(4096, 22)
            })
            .unwrap();
        let pool = space.crash().unwrap();
        let space2 = WalSpace::open(pool).unwrap();
        assert_eq!(space2.read_u64(0).unwrap(), 11);
        assert_eq!(space2.read_u64(4096).unwrap(), 22);
    }

    #[test]
    fn uncommitted_tx_rolls_back() {
        let space = WalSpace::create(PoolConfig::small()).unwrap();
        space.tx(|| space.write_u64(0, 1)).unwrap();
        space.begin_tx().unwrap();
        space.write_u64(0, 99).unwrap();
        space.write_u64(128, 77).unwrap();
        // No commit: crash.
        let pool = space.crash().unwrap();
        let space2 = WalSpace::open(pool).unwrap();
        assert_eq!(space2.read_u64(0).unwrap(), 1, "rolled back to committed value");
        assert_eq!(space2.read_u64(128).unwrap(), 0);
    }

    #[test]
    fn every_first_touch_pays_an_sfence() {
        let space = WalSpace::create(PoolConfig::small()).unwrap();
        space.begin_tx().unwrap();
        space.write_u64(0, 1).unwrap(); // line 0: log + sfence
        space.write_u64(8, 2).unwrap(); // line 0 again: no new log
        space.write_u64(64, 3).unwrap(); // line 1: log + sfence
        space.commit_tx().unwrap(); // 2 more sfences
        let c = space.costs();
        assert_eq!(c.sfences, 2 + 2);
        assert_eq!(c.log_bytes, 2 * 128);
    }

    #[test]
    fn unmodified_structure_code_is_crash_safe_under_wal() {
        let space = WalSpace::create(PoolConfig::small().with_data_bytes(4 << 20)).unwrap();
        {
            let heap = Heap::attach(space.clone()).unwrap();
            let m: PHashMap<u64, u64, _, Heap<_>> = PHashMap::attach(heap).unwrap();
            space
                .tx(|| {
                    m.insert(1, 100)?;
                    m.insert(2, 200)?;
                    Ok(())
                })
                .unwrap();
        }
        let pool = space.crash().unwrap();
        let space2 = WalSpace::open(pool).unwrap();
        let m2: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(space2).unwrap()).unwrap();
        assert_eq!(m2.get(1).unwrap(), Some(100));
        assert_eq!(m2.get(2).unwrap(), Some(200));
    }

    #[test]
    fn implicit_writes_are_singleton_txs() {
        let space = WalSpace::create(PoolConfig::small()).unwrap();
        space.write_u64(0, 5).unwrap();
        assert_eq!(space.committed_txid().unwrap(), 1);
        let pool = space.crash().unwrap();
        let space2 = WalSpace::open(pool).unwrap();
        assert_eq!(space2.read_u64(0).unwrap(), 5);
    }

    #[test]
    fn accesses_fail_after_crash() {
        let space = WalSpace::create(PoolConfig::small()).unwrap();
        space.crash().unwrap();
        assert!(space.read_u64(0).is_err());
        assert!(space.crash().is_err());
    }
}
