//! Direct PM access with no crash-consistency mechanism ("PM Direct").
//!
//! Every store goes straight to the PM medium. This is the fast-but-unsafe
//! upper bound of Fig. 2b: after a crash, partially applied operations are
//! simply visible — the `baseline_equivalence` integration test
//! demonstrates the resulting inconsistency that PAX prevents.

use std::sync::Arc;

use parking_lot::Mutex;

use libpax::{MemSpace, PaxError};
use pax_pm::{CacheLine, LineAddr, Memory, PersistenceDomain, PmMedia, LINE_SIZE};

use crate::costs::{CostReport, Costed};

#[derive(Debug)]
struct Inner {
    media: PmMedia,
    costs: CostReport,
}

/// A [`MemSpace`] writing through to raw PM (see module docs).
#[derive(Debug, Clone)]
pub struct DirectPmSpace {
    inner: Arc<Mutex<Inner>>,
    capacity: u64,
}

impl DirectPmSpace {
    /// A direct-PM space of `capacity_bytes` under ADR.
    pub fn new(capacity_bytes: usize) -> Self {
        DirectPmSpace {
            inner: Arc::new(Mutex::new(Inner {
                media: PmMedia::new(capacity_bytes, PersistenceDomain::Adr),
                costs: CostReport::default(),
            })),
            capacity: capacity_bytes as u64,
        }
    }

    /// Simulates power loss (ADR: queued writes drain; nothing else
    /// happens — there is no recovery mechanism to run).
    pub fn crash(&self) {
        self.inner.lock().media.crash();
    }
}

impl MemSpace for DirectPmSpace {
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> libpax::Result<()> {
        if addr.checked_add(buf.len() as u64).is_none_or(|e| e > self.capacity) {
            return Err(PaxError::OutOfMemory {
                requested: addr.saturating_add(buf.len() as u64),
                capacity: self.capacity,
            });
        }
        let mut inner = self.inner.lock();
        let mut done = 0;
        let mut cur = addr;
        while done < buf.len() {
            let line = LineAddr::from_byte_addr(cur);
            let off = (cur - line.byte_addr()) as usize;
            let n = (LINE_SIZE - off).min(buf.len() - done);
            let data = inner.media.read_line(line).map_err(PaxError::from)?;
            inner.costs.pm_reads += 1;
            buf[done..done + n].copy_from_slice(data.read_at(off, n));
            done += n;
            cur += n as u64;
        }
        Ok(())
    }

    fn write_bytes(&self, addr: u64, data: &[u8]) -> libpax::Result<()> {
        if addr.checked_add(data.len() as u64).is_none_or(|e| e > self.capacity) {
            return Err(PaxError::OutOfMemory {
                requested: addr.saturating_add(data.len() as u64),
                capacity: self.capacity,
            });
        }
        let mut inner = self.inner.lock();
        let mut done = 0;
        let mut cur = addr;
        while done < data.len() {
            let line = LineAddr::from_byte_addr(cur);
            let off = (cur - line.byte_addr()) as usize;
            let n = (LINE_SIZE - off).min(data.len() - done);
            let mut l: CacheLine = if off == 0 && n == LINE_SIZE {
                CacheLine::zeroed()
            } else {
                inner.media.read_line(line).map_err(PaxError::from)?
            };
            l.write_at(off, &data[done..done + n]);
            inner.media.write_line(line, l).map_err(PaxError::from)?;
            inner.costs.pm_write_bytes += LINE_SIZE as u64;
            inner.costs.app_write_bytes += n as u64;
            done += n;
            cur += n as u64;
        }
        Ok(())
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }
}

impl Costed for DirectPmSpace {
    fn costs(&self) -> CostReport {
        self.inner.lock().costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libpax::{Heap, PHashMap};

    #[test]
    fn structures_run_unmodified() {
        let space = DirectPmSpace::new(1 << 20);
        let heap = Heap::attach(space.clone()).unwrap();
        let m: PHashMap<u64, u64, _, Heap<_>> = PHashMap::attach(heap).unwrap();
        m.insert(1, 10).unwrap();
        assert_eq!(m.get(1).unwrap(), Some(10));
    }

    #[test]
    fn no_logging_means_amplification_near_line_ratio() {
        let space = DirectPmSpace::new(1 << 20);
        space.write_u64(0, 7).unwrap();
        let c = space.costs();
        assert_eq!(c.log_bytes, 0);
        assert_eq!(c.sfences, 0);
        assert_eq!(c.traps, 0);
        assert_eq!(c.app_write_bytes, 8);
        assert_eq!(c.pm_write_bytes, 64);
    }

    #[test]
    fn data_survives_adr_crash_without_consistency() {
        let space = DirectPmSpace::new(1 << 20);
        space.write_u64(128, 42).unwrap();
        space.crash();
        // The raw bytes survive — but nothing guarantees they form a
        // consistent structure state; that is the point of this baseline.
        assert_eq!(space.read_u64(128).unwrap(), 42);
    }

    #[test]
    fn bounds_checked() {
        let space = DirectPmSpace::new(128);
        assert!(space.write_u64(121, 1).is_err());
        assert!(space.read_u64(u64::MAX - 1).is_err());
    }
}
