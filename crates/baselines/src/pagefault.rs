//! Page-protection-based change tracking [12, 15, 20].
//!
//! The black-box approach the paper positions PAX against (§1): map the
//! pool read-only; the first store to each page takes a write
//! page fault (>1 µs on modern x86), the handler logs the whole 4 KiB
//! page pre-image, remaps the page writable, and the epoch continues.
//! `persist()` write-protects everything again and commits.
//!
//! Costs reproduced here: one [`trap`](crate::CostReport::traps) and
//! 4 KiB of log traffic per touched page per epoch — a 64× write
//! amplification over PAX's 64 B line granularity when writes are sparse.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use libpax::{MemSpace, PaxError};
use pax_device::{UndoEntry, UndoLog};
use pax_pm::{CrashClock, LineAddr, PmError, PmPool, PoolConfig, LINE_SIZE, PAGE_SIZE};

use crate::costs::{CostReport, Costed};

const LINES_PER_PAGE: u64 = (PAGE_SIZE / LINE_SIZE) as u64;

#[derive(Debug)]
struct State {
    pool: PmPool,
    log: UndoLog,
    clock: CrashClock,
    epoch: u64,
    /// Pages already faulted (and logged) this epoch.
    touched_pages: HashSet<u64>,
}

#[derive(Debug)]
struct Inner {
    state: Option<State>,
    costs: CostReport,
}

/// A [`MemSpace`] tracked at page granularity via write faults (see
/// module docs).
#[derive(Debug, Clone)]
pub struct PageFaultSpace {
    inner: Arc<Mutex<Inner>>,
    capacity: u64,
}

impl PageFaultSpace {
    /// Creates a page-fault-tracked space over a fresh pool.
    ///
    /// The pool's log region must hold a page image (64 undo entries) per
    /// page the workload touches per epoch; size generously.
    ///
    /// # Errors
    ///
    /// Propagates pool-layout errors.
    pub fn create(config: PoolConfig) -> libpax::Result<Self> {
        Self::open(PmPool::create(config)?)
    }

    /// Opens an existing pool, rolling back pages of any uncommitted
    /// epoch (same undo recovery as PAX, at page granularity).
    ///
    /// # Errors
    ///
    /// Propagates media errors from recovery.
    pub fn open(mut pool: PmPool) -> libpax::Result<Self> {
        let report = pax_device::recover(&mut pool)?;
        let capacity = pool.layout().data_lines * LINE_SIZE as u64;
        let log = UndoLog::new(&pool);
        Ok(PageFaultSpace {
            inner: Arc::new(Mutex::new(Inner {
                state: Some(State {
                    pool,
                    log,
                    clock: CrashClock::new(),
                    epoch: report.committed_epoch + 1,
                    touched_pages: HashSet::new(),
                }),
                costs: CostReport::default(),
            })),
            capacity,
        })
    }

    /// Ends the epoch: drains everything, commits, and re-protects all
    /// pages so the next epoch faults afresh.
    ///
    /// # Errors
    ///
    /// Fails after a simulated crash; propagates media errors.
    pub fn persist(&self) -> libpax::Result<u64> {
        let mut inner = self.inner.lock();
        let Inner { state, costs } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        state.log.flush(&mut state.pool, &state.clock)?;
        state.pool.drain();
        costs.sfences += 1;
        let committed = state.epoch;
        state.pool.commit_epoch(committed)?;
        costs.sfences += 1;
        state.epoch += 1;
        state.touched_pages.clear();
        state.log.reset_after_commit();
        Ok(committed)
    }

    /// Simulates power loss, returning the durable pool.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn crash(&self) -> libpax::Result<PmPool> {
        let mut inner = self.inner.lock();
        let mut state = inner.state.take().ok_or(PaxError::Pm(PmError::Crashed))?;
        state.pool.crash();
        Ok(state.pool)
    }

    fn check(&self, addr: u64, len: usize) -> libpax::Result<()> {
        if addr.checked_add(len as u64).is_none_or(|e| e > self.capacity) {
            return Err(PaxError::OutOfMemory {
                requested: addr.saturating_add(len as u64),
                capacity: self.capacity,
            });
        }
        Ok(())
    }
}

impl MemSpace for PageFaultSpace {
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> libpax::Result<()> {
        self.check(addr, buf.len())?;
        let mut inner = self.inner.lock();
        let Inner { state, costs } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        let mut done = 0;
        let mut cur = addr;
        while done < buf.len() {
            let vline = LineAddr::from_byte_addr(cur);
            let off = (cur - vline.byte_addr()) as usize;
            let n = (LINE_SIZE - off).min(buf.len() - done);
            let abs = state.pool.layout().vpm_to_pool(vline.0)?;
            costs.pm_reads += 1;
            let line = state.pool.read_line(abs)?;
            buf[done..done + n].copy_from_slice(line.read_at(off, n));
            done += n;
            cur += n as u64;
        }
        Ok(())
    }

    fn write_bytes(&self, addr: u64, data: &[u8]) -> libpax::Result<()> {
        self.check(addr, data.len())?;
        let mut inner = self.inner.lock();
        let Inner { state, costs } = &mut *inner;
        let state = state.as_mut().ok_or(PaxError::Pm(PmError::Crashed))?;
        let mut done = 0;
        let mut cur = addr;
        while done < data.len() {
            let vline = LineAddr::from_byte_addr(cur);
            let page = vline.page();

            // The write fault: first store to this page this epoch.
            if !state.touched_pages.contains(&page) {
                costs.traps += 1;
                // Log the entire 4 KiB pre-image, line by line.
                for i in 0..LINES_PER_PAGE {
                    let pline = LineAddr(page * LINES_PER_PAGE + i);
                    let abs = state.pool.layout().vpm_to_pool(pline.0)?;
                    let old = state.pool.read_line(abs)?;
                    costs.pm_reads += 1;
                    state.log.append(UndoEntry::single(state.epoch, pline, old))?;
                    costs.log_bytes += 128;
                    costs.pm_write_bytes += 128;
                }
                // The handler flushes the page image before remapping.
                state.log.flush(&mut state.pool, &state.clock)?;
                costs.sfences += 1;
                state.touched_pages.insert(page);
            }

            let off = (cur - vline.byte_addr()) as usize;
            let n = (LINE_SIZE - off).min(data.len() - done);
            let abs = state.pool.layout().vpm_to_pool(vline.0)?;
            let mut line = state.pool.read_line(abs)?;
            costs.pm_reads += 1;
            line.write_at(off, &data[done..done + n]);
            state.pool.write_line(abs, line)?;
            costs.pm_write_bytes += LINE_SIZE as u64;
            costs.app_write_bytes += n as u64;
            done += n;
            cur += n as u64;
        }
        Ok(())
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }
}

impl Costed for PageFaultSpace {
    fn costs(&self) -> CostReport {
        self.inner.lock().costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> PageFaultSpace {
        // Log must hold several page images: 16 pages × 64 entries × 128 B.
        PageFaultSpace::create(PoolConfig::small().with_log_bytes(16 * 64 * 128)).unwrap()
    }

    #[test]
    fn one_trap_per_page_per_epoch() {
        let s = space();
        s.write_u64(0, 1).unwrap(); // page 0: trap
        s.write_u64(8, 2).unwrap(); // page 0: no trap
        s.write_u64(4096, 3).unwrap(); // page 1: trap
        assert_eq!(s.costs().traps, 2);
        s.persist().unwrap();
        s.write_u64(0, 4).unwrap(); // page 0 again, new epoch: trap
        assert_eq!(s.costs().traps, 3);
    }

    #[test]
    fn page_granularity_write_amplification() {
        let s = space();
        s.write_u64(0, 1).unwrap(); // 8 app bytes
        let c = s.costs();
        // One page image (64 entries × 128 B) + one 64 B data line.
        assert_eq!(c.log_bytes, 64 * 128);
        assert!(c.write_amplification() > 500.0, "amp = {}", c.write_amplification());
    }

    #[test]
    fn crash_rolls_back_to_last_persist() {
        let s = space();
        s.write_u64(0, 1).unwrap();
        s.persist().unwrap();
        s.write_u64(0, 2).unwrap();
        s.write_u64(4096, 3).unwrap();
        let pool = s.crash().unwrap();
        let s2 = PageFaultSpace::open(pool).unwrap();
        assert_eq!(s2.read_u64(0).unwrap(), 1, "page rolled back");
        assert_eq!(s2.read_u64(4096).unwrap(), 0);
    }

    #[test]
    fn persisted_state_survives() {
        let s = space();
        s.write_u64(100, 42).unwrap();
        s.persist().unwrap();
        let pool = s.crash().unwrap();
        let s2 = PageFaultSpace::open(pool).unwrap();
        assert_eq!(s2.read_u64(100).unwrap(), 42);
    }
}
