//! `pax-alloc` — compatibility façade over the `libpax` bitmap
//! allocator.
//!
//! The llfree-style allocator used to live in this crate; since PR 10 it
//! is `libpax::balloc`, so that [`BitmapAlloc`] can be the default pool
//! allocator behind `Persistent::new` (a crate downstream of `libpax`
//! cannot supply `libpax`'s defaults). This crate re-exports the full
//! public surface so existing `pax_alloc::` imports keep compiling;
//! prefer importing from `libpax` directly in new code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use libpax::balloc::{layout, recover, BitmapAlloc, DEFAULT_CORES};
