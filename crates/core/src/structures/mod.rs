//! Volatile-style collections, generic over any [`MemSpace`].
//!
//! These structures contain **no crash-consistency code whatsoever** — no
//! logging, no flushes, no ordering barriers. They are ordinary collection
//! implementations that read and write a [`MemSpace`] through a
//! [`Heap`](crate::Heap). Attached to a [`VolatileSpace`](crate::VolatileSpace)
//! they are plain volatile structures; attached to a [`VPm`](crate::VPm)
//! they become crash-consistent persistent structures with snapshot
//! semantics, because the PAX device interposes below them. That is the
//! paper's central claim ("black-box code reuse", §1) demonstrated as
//! code: one implementation, two worlds.
//!
//! Concurrency follows §3.5: each structure serializes its operations
//! internally (a coarse lock), and callers must quiesce operations before
//! `persist()`.

mod pbtree;
mod phash;
mod plist;
mod pring;
mod pvec;

pub use pbtree::{PBTreeMap, MIN_DEGREE};
pub use phash::PHashMap;
pub use plist::PList;
pub use pring::PRing;
pub use pvec::PVec;

use crate::MemSpace;

/// Shared helper: FNV-1a over encoded bytes; stable across runs so hash
/// placements survive reopen.
pub(crate) fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Final avalanche so sequential keys spread over buckets.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// Shared helper: encode a `Pod` into a fresh buffer.
pub(crate) fn encode_pod<P: crate::Pod>(value: &P) -> Vec<u8> {
    let mut buf = vec![0u8; P::SIZE];
    value.encode(&mut buf);
    buf
}

/// Shared helper: read a `Pod` at `addr`.
pub(crate) fn read_pod<P: crate::Pod, S: MemSpace>(space: &S, addr: u64) -> crate::Result<P> {
    let mut buf = vec![0u8; P::SIZE];
    space.read_bytes(addr, &mut buf)?;
    Ok(P::decode(&buf))
}

/// Shared helper: write a `Pod` at `addr`.
pub(crate) fn write_pod<P: crate::Pod, S: MemSpace>(
    space: &S,
    addr: u64,
    value: &P,
) -> crate::Result<()> {
    space.write_bytes(addr, &encode_pod(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        // Sequential u64 keys land in different low bits.
        let h: Vec<u64> = (0u64..16).map(|k| hash_bytes(&k.to_le_bytes()) % 16).collect();
        let distinct: std::collections::HashSet<_> = h.iter().collect();
        assert!(distinct.len() > 8, "poor spread: {h:?}");
    }
}
