//! A bounded ring buffer (SPSC-style queue) written in volatile style.
//!
//! Common in exactly the workloads the paper motivates (ingest pipelines,
//! device queues): fixed capacity decided at creation, O(1) push/pop, no
//! allocation on the hot path — every operation mutates just the slot
//! line plus the head/tail line, so it is also the structure with the
//! smallest per-op undo-log footprint.

use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::allocator::PmAllocator;
use crate::error::PaxError;
#[cfg(test)]
use crate::heap::Heap;
use crate::pod::Pod;
use crate::space::MemSpace;
use crate::Result;

const MAGIC: u64 = u64::from_le_bytes(*b"PAXRING1");

const H_MAGIC: u64 = 0;
const H_DATA: u64 = 8;
const H_CAP: u64 = 16;
const H_HEAD: u64 = 24; // next slot to pop
const H_TAIL: u64 = 32; // next slot to push
const HEADER_BYTES: u64 = 40;

/// A persistent-or-volatile bounded ring buffer.
///
/// # Example
///
/// ```
/// use libpax::{Heap, PRing, VolatileSpace};
///
/// # fn main() -> libpax::Result<()> {
/// let heap = Heap::attach(VolatileSpace::new(1 << 20))?;
/// let ring: PRing<u64, _, Heap<_>> = PRing::create(heap, 4)?;
/// ring.push(1)?;
/// ring.push(2)?;
/// assert_eq!(ring.pop()?, Some(1));
/// assert_eq!(ring.len()?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PRing<T, S = crate::VPm, A = crate::balloc::BitmapAlloc<S>>
where
    S: MemSpace,
{
    heap: A,
    header: u64,
    lock: Arc<Mutex<()>>,
    _marker: PhantomData<(T, S)>,
}

impl<T: Pod, S: MemSpace, A: PmAllocator<S>> PRing<T, S, A> {
    /// Creates a ring of `capacity` slots rooted in `heap`, or attaches
    /// to the existing one (in which case `capacity` is ignored — the
    /// persisted capacity wins).
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::Corrupt`] if the root is another structure;
    /// propagates allocation errors. `capacity` must be non-zero.
    pub fn create(heap: A, capacity: u64) -> Result<Self> {
        let root = heap.root()?;
        let header = if root == 0 {
            if capacity == 0 {
                return Err(PaxError::Corrupt("ring capacity must be non-zero".into()));
            }
            let header = heap.alloc(HEADER_BYTES)?;
            let data = heap.alloc(capacity * T::SIZE as u64)?;
            let s = heap.space();
            s.write_u64(header + H_DATA, data)?;
            s.write_u64(header + H_CAP, capacity)?;
            s.write_u64(header + H_HEAD, 0)?;
            s.write_u64(header + H_TAIL, 0)?;
            s.write_u64(header + H_MAGIC, MAGIC)?;
            heap.set_root(header)?;
            header
        } else {
            if heap.space().read_u64(root + H_MAGIC)? != MAGIC {
                return Err(PaxError::Corrupt("root is not a PRing".into()));
            }
            root
        };
        Ok(PRing { heap, header, lock: Arc::new(Mutex::new(())), _marker: PhantomData })
    }

    /// Attaches to an existing ring (alias of [`PRing::create`] with a
    /// placeholder capacity, for the [`PStructure`](crate::PStructure)
    /// pattern).
    ///
    /// # Errors
    ///
    /// See [`PRing::create`].
    pub fn attach(heap: A) -> Result<Self> {
        Self::create(heap, 64)
    }

    fn meta(&self) -> Result<(u64, u64, u64, u64)> {
        let s = self.heap.space();
        Ok((
            s.read_u64(self.header + H_DATA)?,
            s.read_u64(self.header + H_CAP)?,
            s.read_u64(self.header + H_HEAD)?,
            s.read_u64(self.header + H_TAIL)?,
        ))
    }

    /// Slots in use.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn len(&self) -> Result<u64> {
        let (_, _, head, tail) = self.meta()?;
        Ok(tail - head)
    }

    /// Whether the ring holds no elements.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Total slot capacity.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn capacity(&self) -> Result<u64> {
        Ok(self.meta()?.1)
    }

    /// Appends `value`; returns `false` (without writing) when full.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn push(&self, value: T) -> Result<bool> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (data, cap, head, tail) = self.meta()?;
        if tail - head == cap {
            return Ok(false);
        }
        let slot = tail % cap;
        super::write_pod(s, data + slot * T::SIZE as u64, &value)?;
        s.write_u64(self.header + H_TAIL, tail + 1)?;
        Ok(true)
    }

    /// Removes the oldest element.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn pop(&self) -> Result<Option<T>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (data, cap, head, tail) = self.meta()?;
        if head == tail {
            return Ok(None);
        }
        let slot = head % cap;
        let value = super::read_pod(s, data + slot * T::SIZE as u64)?;
        s.write_u64(self.header + H_HEAD, head + 1)?;
        Ok(Some(value))
    }

    /// Reads the oldest element without removing it.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn peek(&self) -> Result<Option<T>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (data, cap, head, tail) = self.meta()?;
        if head == tail {
            return Ok(None);
        }
        Ok(Some(super::read_pod(s, data + (head % cap) * T::SIZE as u64)?))
    }

    /// The allocator this ring lives in.
    pub fn heap(&self) -> &A {
        &self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VolatileSpace;

    fn ring(cap: u64) -> PRing<u32, VolatileSpace, Heap<VolatileSpace>> {
        PRing::create(Heap::attach(VolatileSpace::new(1 << 20)).unwrap(), cap).unwrap()
    }

    #[test]
    fn fifo_order_with_wraparound() {
        let r = ring(4);
        for round in 0..5u32 {
            for i in 0..4 {
                assert!(r.push(round * 10 + i).unwrap());
            }
            assert!(!r.push(99).unwrap(), "full ring rejects");
            for i in 0..4 {
                assert_eq!(r.pop().unwrap(), Some(round * 10 + i));
            }
            assert_eq!(r.pop().unwrap(), None);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let r = ring(2);
        r.push(5).unwrap();
        assert_eq!(r.peek().unwrap(), Some(5));
        assert_eq!(r.peek().unwrap(), Some(5));
        assert_eq!(r.len().unwrap(), 1);
        assert_eq!(r.pop().unwrap(), Some(5));
        assert_eq!(r.peek().unwrap(), None);
    }

    #[test]
    fn len_and_capacity() {
        let r = ring(8);
        assert!(r.is_empty().unwrap());
        assert_eq!(r.capacity().unwrap(), 8);
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.len().unwrap(), 2);
    }

    #[test]
    fn reattach_preserves_contents_and_capacity() {
        let space = VolatileSpace::new(1 << 20);
        {
            let r: PRing<u32, _, Heap<_>> =
                PRing::create(Heap::attach(space.clone()).unwrap(), 3).unwrap();
            r.push(7).unwrap();
        }
        // Different capacity argument is ignored on reattach.
        let r: PRing<u32, _, Heap<_>> = PRing::create(Heap::attach(space).unwrap(), 999).unwrap();
        assert_eq!(r.capacity().unwrap(), 3);
        assert_eq!(r.pop().unwrap(), Some(7));
    }

    #[test]
    fn zero_capacity_rejected() {
        let heap = Heap::attach(VolatileSpace::new(1 << 20)).unwrap();
        assert!(PRing::<u32, _, Heap<_>>::create(heap, 0).is_err());
    }
}
