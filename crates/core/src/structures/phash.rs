//! A separate-chaining hash map written in volatile style.
//!
//! The Rust analogue of the paper's `std::unordered_map` example: ordinary
//! hash-table code (bucket array, chain nodes, incremental growth) whose
//! only interface to memory is the [`Heap`]/[`MemSpace`] pair. Nothing in
//! this file knows about epochs, logs, or flushes.

use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::allocator::PmAllocator;
use crate::error::PaxError;
#[cfg(test)]
use crate::heap::Heap;
use crate::pod::Pod;
use crate::space::MemSpace;
use crate::Result;

use super::{encode_pod, hash_bytes, read_pod, write_pod};

const MAGIC: u64 = u64::from_le_bytes(*b"PAXHMAP1");
const INITIAL_BUCKETS: u64 = 16;
/// Grow when `len > buckets * LOAD_NUM / LOAD_DEN`.
const LOAD_NUM: u64 = 2;
const LOAD_DEN: u64 = 1;

// Header field offsets (relative to the header allocation).
const H_MAGIC: u64 = 0;
const H_BUCKETS_ADDR: u64 = 8;
const H_NBUCKETS: u64 = 16;
const H_LEN: u64 = 24;
const HEADER_BYTES: u64 = 32;

// Node layout: next(8) | key | value.
const N_NEXT: u64 = 0;
const N_KEY: u64 = 8;

/// A persistent-or-volatile hash map from `K` to `V` (see module docs).
///
/// # Example
///
/// ```
/// use libpax::{Heap, PHashMap, VolatileSpace};
///
/// # fn main() -> libpax::Result<()> {
/// let heap = Heap::attach(VolatileSpace::new(1 << 20))?;
/// let map: PHashMap<u64, u64, _, Heap<_>> = PHashMap::attach(heap)?;
/// map.insert(1, 100)?;
/// assert_eq!(map.get(1)?, Some(100));
/// assert_eq!(map.remove(1)?, Some(100));
/// assert!(map.is_empty()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PHashMap<K, V, S = crate::VPm, A = crate::balloc::BitmapAlloc<S>>
where
    S: MemSpace,
{
    heap: A,
    header: u64,
    lock: Arc<Mutex<()>>,
    _marker: PhantomData<(K, V, S)>,
}

impl<K: Pod, V: Pod, S: MemSpace, A: PmAllocator<S>> PHashMap<K, V, S, A> {
    fn node_bytes() -> u64 {
        8 + K::SIZE as u64 + V::SIZE as u64
    }

    /// Opens the map rooted in `heap`, creating it on first use.
    ///
    /// If the heap root is unset, a fresh empty map is allocated and
    /// rooted; otherwise the existing map is validated and attached —
    /// construction and recovery are the same call (§3.4).
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::Corrupt`] when the root points at something
    /// that is not a map, and propagates allocation/space errors.
    pub fn attach(heap: A) -> Result<Self> {
        let root = heap.root()?;
        let header = if root == 0 {
            let header = heap.alloc(HEADER_BYTES)?;
            let buckets = Self::alloc_buckets(&heap, INITIAL_BUCKETS)?;
            let s = heap.space();
            s.write_u64(header + H_BUCKETS_ADDR, buckets)?;
            s.write_u64(header + H_NBUCKETS, INITIAL_BUCKETS)?;
            s.write_u64(header + H_LEN, 0)?;
            s.write_u64(header + H_MAGIC, MAGIC)?;
            heap.set_root(header)?;
            header
        } else {
            let magic = heap.space().read_u64(root + H_MAGIC)?;
            if magic != MAGIC {
                return Err(PaxError::Corrupt(format!("root is not a PHashMap ({magic:#x})")));
            }
            root
        };
        Ok(PHashMap { heap, header, lock: Arc::new(Mutex::new(())), _marker: PhantomData })
    }

    fn alloc_buckets(heap: &A, n: u64) -> Result<u64> {
        let addr = heap.alloc(n * 8)?;
        for i in 0..n {
            heap.space().write_u64(addr + i * 8, 0)?;
        }
        Ok(addr)
    }

    fn bucket_of(&self, key: &K, nbuckets: u64) -> u64 {
        hash_bytes(&encode_pod(key)) % nbuckets
    }

    fn meta(&self) -> Result<(u64, u64, u64)> {
        let s = self.heap.space();
        Ok((
            s.read_u64(self.header + H_BUCKETS_ADDR)?,
            s.read_u64(self.header + H_NBUCKETS)?,
            s.read_u64(self.header + H_LEN)?,
        ))
    }

    /// Number of elements.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn len(&self) -> Result<u64> {
        Ok(self.meta()?.2)
    }

    /// Whether the map is empty.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn get(&self, key: K) -> Result<Option<V>> {
        let _g = self.lock.lock();
        self.get_locked(&key)
    }

    fn get_locked(&self, key: &K) -> Result<Option<V>> {
        let s = self.heap.space();
        let (buckets, nbuckets, _) = self.meta()?;
        let mut node = s.read_u64(buckets + self.bucket_of(key, nbuckets) * 8)?;
        let want = encode_pod(key);
        while node != 0 {
            let mut kbuf = vec![0u8; K::SIZE];
            s.read_bytes(node + N_KEY, &mut kbuf)?;
            if kbuf == want {
                return Ok(Some(read_pod(s, node + N_KEY + K::SIZE as u64)?));
            }
            node = s.read_u64(node + N_NEXT)?;
        }
        Ok(None)
    }

    /// Inserts `key → value`, returning the previous value if present.
    ///
    /// # Errors
    ///
    /// Propagates allocation and space errors.
    pub fn insert(&self, key: K, value: V) -> Result<Option<V>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (buckets, nbuckets, len) = self.meta()?;
        let slot = buckets + self.bucket_of(&key, nbuckets) * 8;
        let head = s.read_u64(slot)?;
        let want = encode_pod(&key);

        // Update in place when present.
        let mut node = head;
        while node != 0 {
            let mut kbuf = vec![0u8; K::SIZE];
            s.read_bytes(node + N_KEY, &mut kbuf)?;
            if kbuf == want {
                let vaddr = node + N_KEY + K::SIZE as u64;
                let old = read_pod(s, vaddr)?;
                write_pod(s, vaddr, &value)?;
                return Ok(Some(old));
            }
            node = s.read_u64(node + N_NEXT)?;
        }

        // New node, pushed at the chain head; head pointer written last so
        // concurrent readers never see a half-written node.
        let node = self.heap.alloc(Self::node_bytes())?;
        s.write_u64(node + N_NEXT, head)?;
        s.write_bytes(node + N_KEY, &want)?;
        write_pod(s, node + N_KEY + K::SIZE as u64, &value)?;
        s.write_u64(slot, node)?;
        s.write_u64(self.header + H_LEN, len + 1)?;

        if len + 1 > nbuckets * LOAD_NUM / LOAD_DEN {
            self.grow(nbuckets * 2)?;
        }
        Ok(None)
    }

    /// Removes `key`, returning its value if present.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn remove(&self, key: K) -> Result<Option<V>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (buckets, nbuckets, len) = self.meta()?;
        let slot = buckets + self.bucket_of(&key, nbuckets) * 8;
        let want = encode_pod(&key);

        let mut prev: Option<u64> = None;
        let mut node = s.read_u64(slot)?;
        while node != 0 {
            let next = s.read_u64(node + N_NEXT)?;
            let mut kbuf = vec![0u8; K::SIZE];
            s.read_bytes(node + N_KEY, &mut kbuf)?;
            if kbuf == want {
                let value = read_pod(s, node + N_KEY + K::SIZE as u64)?;
                match prev {
                    Some(p) => s.write_u64(p + N_NEXT, next)?,
                    None => s.write_u64(slot, next)?,
                }
                self.heap.free(node, Self::node_bytes())?;
                s.write_u64(self.header + H_LEN, len - 1)?;
                return Ok(Some(value));
            }
            prev = Some(node);
            node = next;
        }
        Ok(None)
    }

    /// Rehashes into `new_n` buckets (nodes are relinked, not copied).
    fn grow(&self, new_n: u64) -> Result<()> {
        let s = self.heap.space();
        let (old_buckets, old_n, _) = self.meta()?;
        let new_buckets = Self::alloc_buckets(&self.heap, new_n)?;
        for b in 0..old_n {
            let mut node = s.read_u64(old_buckets + b * 8)?;
            while node != 0 {
                let next = s.read_u64(node + N_NEXT)?;
                let mut kbuf = vec![0u8; K::SIZE];
                s.read_bytes(node + N_KEY, &mut kbuf)?;
                let nb = hash_bytes(&kbuf) % new_n;
                let nslot = new_buckets + nb * 8;
                let nhead = s.read_u64(nslot)?;
                s.write_u64(node + N_NEXT, nhead)?;
                s.write_u64(nslot, node)?;
                node = next;
            }
        }
        s.write_u64(self.header + H_BUCKETS_ADDR, new_buckets)?;
        s.write_u64(self.header + H_NBUCKETS, new_n)?;
        self.heap.free(old_buckets, old_n * 8)?;
        Ok(())
    }

    /// Collects all `(key, value)` pairs in unspecified order.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn entries(&self) -> Result<Vec<(K, V)>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (buckets, nbuckets, len) = self.meta()?;
        let mut out = Vec::with_capacity(len as usize);
        for b in 0..nbuckets {
            let mut node = s.read_u64(buckets + b * 8)?;
            while node != 0 {
                let key: K = read_pod(s, node + N_KEY)?;
                let value: V = read_pod(s, node + N_KEY + K::SIZE as u64)?;
                out.push((key, value));
                node = s.read_u64(node + N_NEXT)?;
            }
        }
        Ok(out)
    }

    /// Current bucket count (tests exercise growth through this).
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn bucket_count(&self) -> Result<u64> {
        Ok(self.meta()?.1)
    }

    /// The allocator this map lives in.
    pub fn heap(&self) -> &A {
        &self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VolatileSpace;

    fn map() -> PHashMap<u64, u64, VolatileSpace, Heap<VolatileSpace>> {
        PHashMap::attach(Heap::attach(VolatileSpace::new(4 << 20)).unwrap()).unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let m = map();
        assert_eq!(m.insert(1, 10).unwrap(), None);
        assert_eq!(m.insert(2, 20).unwrap(), None);
        assert_eq!(m.get(1).unwrap(), Some(10));
        assert_eq!(m.get(3).unwrap(), None);
        assert_eq!(m.insert(1, 11).unwrap(), Some(10));
        assert_eq!(m.len().unwrap(), 2);
        assert_eq!(m.remove(1).unwrap(), Some(11));
        assert_eq!(m.remove(1).unwrap(), None);
        assert_eq!(m.len().unwrap(), 1);
    }

    #[test]
    fn growth_preserves_contents() {
        let m = map();
        for k in 0..1000u64 {
            m.insert(k, k * 3).unwrap();
        }
        assert!(m.bucket_count().unwrap() > INITIAL_BUCKETS);
        for k in 0..1000u64 {
            assert_eq!(m.get(k).unwrap(), Some(k * 3), "key {k}");
        }
        assert_eq!(m.len().unwrap(), 1000);
    }

    #[test]
    fn entries_collects_everything() {
        let m = map();
        for k in 0..50u64 {
            m.insert(k, k + 1).unwrap();
        }
        let mut e = m.entries().unwrap();
        e.sort_unstable();
        assert_eq!(e.len(), 50);
        assert_eq!(e[0], (0, 1));
        assert_eq!(e[49], (49, 50));
    }

    #[test]
    fn reattach_finds_existing_map() {
        let space = VolatileSpace::new(4 << 20);
        {
            let m: PHashMap<u64, u64, _, Heap<_>> =
                PHashMap::attach(Heap::attach(space.clone()).unwrap()).unwrap();
            m.insert(7, 77).unwrap();
        }
        let m2: PHashMap<u64, u64, _, Heap<_>> =
            PHashMap::attach(Heap::attach(space).unwrap()).unwrap();
        assert_eq!(m2.get(7).unwrap(), Some(77));
    }

    #[test]
    fn array_keys_work() {
        let heap = Heap::attach(VolatileSpace::new(1 << 20)).unwrap();
        let m: PHashMap<[u8; 8], u32, _, Heap<_>> = PHashMap::attach(heap).unwrap();
        m.insert(*b"keykey01", 5).unwrap();
        assert_eq!(m.get(*b"keykey01").unwrap(), Some(5));
        assert_eq!(m.get(*b"keykey02").unwrap(), None);
    }

    #[test]
    fn removal_mid_chain() {
        // Force collisions with a 1-bucket... cannot; rely on 16 buckets
        // and enough keys that chains form.
        let m = map();
        for k in 0..64u64 {
            m.insert(k, k).unwrap();
        }
        for k in (0..64u64).step_by(2) {
            assert_eq!(m.remove(k).unwrap(), Some(k));
        }
        for k in 0..64u64 {
            assert_eq!(m.get(k).unwrap(), (k % 2 == 1).then_some(k), "key {k}");
        }
    }

    #[test]
    fn corrupt_root_is_detected() {
        let space = VolatileSpace::new(1 << 20);
        let heap = Heap::attach(space).unwrap();
        let junk = heap.alloc(64).unwrap();
        heap.set_root(junk).unwrap();
        assert!(matches!(
            PHashMap::<u64, u64, _, Heap<_>>::attach(heap),
            Err(PaxError::Corrupt(_))
        ));
    }

    #[test]
    fn concurrent_inserts_do_not_lose_entries() {
        let m = std::sync::Arc::new(map());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = std::sync::Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    m.insert(t * 1000 + i, i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len().unwrap(), 1000);
    }
}
