//! A doubly-linked list written in volatile style.

use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::allocator::PmAllocator;
use crate::error::PaxError;
#[cfg(test)]
use crate::heap::Heap;
use crate::pod::Pod;
use crate::space::MemSpace;
use crate::Result;

use super::{read_pod, write_pod};

const MAGIC: u64 = u64::from_le_bytes(*b"PAXLIST1");

const H_MAGIC: u64 = 0;
const H_HEAD: u64 = 8;
const H_TAIL: u64 = 16;
const H_LEN: u64 = 24;
const HEADER_BYTES: u64 = 32;

// Node layout: prev(8) | next(8) | value.
const N_PREV: u64 = 0;
const N_NEXT: u64 = 8;
const N_VALUE: u64 = 16;

/// A persistent-or-volatile doubly-linked list (deque operations at both
/// ends); see [`structures`](crate::structures).
///
/// # Example
///
/// ```
/// use libpax::{Heap, PList, VolatileSpace};
///
/// # fn main() -> libpax::Result<()> {
/// let l: PList<u64, _, Heap<_>> = PList::attach(Heap::attach(VolatileSpace::new(1 << 20))?)?;
/// l.push_back(2)?;
/// l.push_front(1)?;
/// l.push_back(3)?;
/// assert_eq!(l.to_vec()?, vec![1, 2, 3]);
/// assert_eq!(l.pop_front()?, Some(1));
/// assert_eq!(l.pop_back()?, Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PList<T, S = crate::VPm, A = crate::balloc::BitmapAlloc<S>>
where
    S: MemSpace,
{
    heap: A,
    header: u64,
    lock: Arc<Mutex<()>>,
    _marker: PhantomData<(T, S)>,
}

impl<T: Pod, S: MemSpace, A: PmAllocator<S>> PList<T, S, A> {
    fn node_bytes() -> u64 {
        16 + T::SIZE as u64
    }

    /// Opens the list rooted in `heap`, creating it on first use.
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::Corrupt`] if the root is something else, and
    /// propagates allocation/space errors.
    pub fn attach(heap: A) -> Result<Self> {
        let root = heap.root()?;
        let header = if root == 0 {
            let header = heap.alloc(HEADER_BYTES)?;
            let s = heap.space();
            s.write_u64(header + H_HEAD, 0)?;
            s.write_u64(header + H_TAIL, 0)?;
            s.write_u64(header + H_LEN, 0)?;
            s.write_u64(header + H_MAGIC, MAGIC)?;
            heap.set_root(header)?;
            header
        } else {
            if heap.space().read_u64(root + H_MAGIC)? != MAGIC {
                return Err(PaxError::Corrupt("root is not a PList".into()));
            }
            root
        };
        Ok(PList { heap, header, lock: Arc::new(Mutex::new(())), _marker: PhantomData })
    }

    fn meta(&self) -> Result<(u64, u64, u64)> {
        let s = self.heap.space();
        Ok((
            s.read_u64(self.header + H_HEAD)?,
            s.read_u64(self.header + H_TAIL)?,
            s.read_u64(self.header + H_LEN)?,
        ))
    }

    /// Number of elements.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn len(&self) -> Result<u64> {
        Ok(self.meta()?.2)
    }

    /// Whether the list is empty.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    fn new_node(&self, value: &T) -> Result<u64> {
        let node = self.heap.alloc(Self::node_bytes())?;
        let s = self.heap.space();
        s.write_u64(node + N_PREV, 0)?;
        s.write_u64(node + N_NEXT, 0)?;
        write_pod(s, node + N_VALUE, value)?;
        Ok(node)
    }

    /// Appends at the back.
    ///
    /// # Errors
    ///
    /// Propagates allocation/space errors.
    pub fn push_back(&self, value: T) -> Result<()> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (head, tail, len) = self.meta()?;
        let node = self.new_node(&value)?;
        if tail == 0 {
            debug_assert_eq!(head, 0);
            s.write_u64(self.header + H_HEAD, node)?;
        } else {
            s.write_u64(tail + N_NEXT, node)?;
            s.write_u64(node + N_PREV, tail)?;
        }
        s.write_u64(self.header + H_TAIL, node)?;
        s.write_u64(self.header + H_LEN, len + 1)?;
        Ok(())
    }

    /// Prepends at the front.
    ///
    /// # Errors
    ///
    /// Propagates allocation/space errors.
    pub fn push_front(&self, value: T) -> Result<()> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (head, tail, len) = self.meta()?;
        let node = self.new_node(&value)?;
        if head == 0 {
            debug_assert_eq!(tail, 0);
            s.write_u64(self.header + H_TAIL, node)?;
        } else {
            s.write_u64(head + N_PREV, node)?;
            s.write_u64(node + N_NEXT, head)?;
        }
        s.write_u64(self.header + H_HEAD, node)?;
        s.write_u64(self.header + H_LEN, len + 1)?;
        Ok(())
    }

    /// Removes from the front.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn pop_front(&self) -> Result<Option<T>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (head, _tail, len) = self.meta()?;
        if head == 0 {
            return Ok(None);
        }
        let value = read_pod(s, head + N_VALUE)?;
        let next = s.read_u64(head + N_NEXT)?;
        s.write_u64(self.header + H_HEAD, next)?;
        if next == 0 {
            s.write_u64(self.header + H_TAIL, 0)?;
        } else {
            s.write_u64(next + N_PREV, 0)?;
        }
        s.write_u64(self.header + H_LEN, len - 1)?;
        self.heap.free(head, Self::node_bytes())?;
        Ok(Some(value))
    }

    /// Removes from the back.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn pop_back(&self) -> Result<Option<T>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (_head, tail, len) = self.meta()?;
        if tail == 0 {
            return Ok(None);
        }
        let value = read_pod(s, tail + N_VALUE)?;
        let prev = s.read_u64(tail + N_PREV)?;
        s.write_u64(self.header + H_TAIL, prev)?;
        if prev == 0 {
            s.write_u64(self.header + H_HEAD, 0)?;
        } else {
            s.write_u64(prev + N_NEXT, 0)?;
        }
        s.write_u64(self.header + H_LEN, len - 1)?;
        self.heap.free(tail, Self::node_bytes())?;
        Ok(Some(value))
    }

    /// Collects all elements front-to-back.
    ///
    /// # Errors
    ///
    /// Propagates space errors; returns [`PaxError::Corrupt`] if the list
    /// is longer than its recorded length (a cycle).
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (head, _tail, len) = self.meta()?;
        let mut out = Vec::with_capacity(len as usize);
        let mut node = head;
        while node != 0 {
            if out.len() as u64 > len {
                return Err(PaxError::Corrupt("list cycle detected".into()));
            }
            out.push(read_pod(s, node + N_VALUE)?);
            node = s.read_u64(node + N_NEXT)?;
        }
        Ok(out)
    }

    /// The allocator this list lives in.
    pub fn heap(&self) -> &A {
        &self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VolatileSpace;

    fn list() -> PList<u64, VolatileSpace, Heap<VolatileSpace>> {
        PList::attach(Heap::attach(VolatileSpace::new(1 << 20)).unwrap()).unwrap()
    }

    #[test]
    fn deque_operations() {
        let l = list();
        l.push_back(2).unwrap();
        l.push_front(1).unwrap();
        l.push_back(3).unwrap();
        assert_eq!(l.to_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(l.pop_back().unwrap(), Some(3));
        assert_eq!(l.pop_front().unwrap(), Some(1));
        assert_eq!(l.pop_front().unwrap(), Some(2));
        assert_eq!(l.pop_front().unwrap(), None);
        assert_eq!(l.pop_back().unwrap(), None);
        assert!(l.is_empty().unwrap());
    }

    #[test]
    fn single_element_edge_cases() {
        let l = list();
        l.push_front(9).unwrap();
        assert_eq!(l.pop_back().unwrap(), Some(9));
        assert!(l.is_empty().unwrap());
        l.push_back(8).unwrap();
        assert_eq!(l.pop_front().unwrap(), Some(8));
        assert!(l.is_empty().unwrap());
    }

    #[test]
    fn long_list_round_trip() {
        let l = list();
        for i in 0..500 {
            l.push_back(i).unwrap();
        }
        assert_eq!(l.len().unwrap(), 500);
        assert_eq!(l.to_vec().unwrap(), (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn nodes_are_recycled() {
        let l = list();
        let heap_headroom_before = l.heap().headroom().unwrap();
        for _ in 0..100 {
            l.push_back(1).unwrap();
            l.pop_front().unwrap();
        }
        let consumed = heap_headroom_before - l.heap().headroom().unwrap();
        assert!(consumed <= 64, "alloc/free cycles consumed {consumed} bytes");
    }

    #[test]
    fn reattach_preserves_order() {
        let space = VolatileSpace::new(1 << 20);
        {
            let l: PList<u32, _, Heap<_>> =
                PList::attach(Heap::attach(space.clone()).unwrap()).unwrap();
            l.push_back(1).unwrap();
            l.push_back(2).unwrap();
        }
        let l2: PList<u32, _, Heap<_>> = PList::attach(Heap::attach(space).unwrap()).unwrap();
        assert_eq!(l2.to_vec().unwrap(), vec![1, 2]);
    }
}
