//! An ordered map: a B-tree written in volatile style.
//!
//! The most structurally complex collection in the workspace — node
//! splits, rotations, and merges mutate many locations per operation —
//! which makes it the strongest demonstration of the black-box claim:
//! nothing here knows about crash consistency, yet on a
//! [`VPm`](crate::VPm) space every multi-node rebalance is covered by the
//! device's undo log and rolls back atomically.
//!
//! Classic CLRS B-tree with minimum degree [`MIN_DEGREE`]: every node
//! except the root holds between `t-1` and `2t-1` keys; inserts split
//! full nodes top-down; deletes borrow or merge top-down so the recursion
//! never needs to back up.
//!
//! # Node layout (byte offsets within a node allocation)
//!
//! ```text
//! 0..8    tag: 1 = leaf, 2 = internal
//! 8..16   nkeys
//! 16..    keys   [2t-1 × K::SIZE]
//! then    leaf: values  [2t-1 × V::SIZE]
//!     internal: children [2t × 8]
//! ```

use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::allocator::PmAllocator;
use crate::error::PaxError;
#[cfg(test)]
use crate::heap::Heap;
use crate::pod::Pod;
use crate::space::MemSpace;
use crate::Result;

use super::{read_pod, write_pod};

/// Minimum degree `t` of the tree (max keys per node = `2t-1`).
pub const MIN_DEGREE: usize = 4;
const MAX_KEYS: usize = 2 * MIN_DEGREE - 1;
const MIN_KEYS: usize = MIN_DEGREE - 1;

const MAGIC: u64 = u64::from_le_bytes(*b"PAXBTRE1");

const H_MAGIC: u64 = 0;
const H_ROOT: u64 = 8;
const H_LEN: u64 = 16;
const HEADER_BYTES: u64 = 24;

const N_TAG: u64 = 0;
const N_NKEYS: u64 = 8;
const N_KEYS: u64 = 16;

const TAG_LEAF: u64 = 1;
const TAG_INTERNAL: u64 = 2;

/// A persistent-or-volatile ordered map (see module docs).
///
/// # Example
///
/// ```
/// use libpax::{Heap, PBTreeMap, VolatileSpace};
///
/// # fn main() -> libpax::Result<()> {
/// let heap = Heap::attach(VolatileSpace::new(1 << 20))?;
/// let map: PBTreeMap<u64, u64, _, Heap<_>> = PBTreeMap::attach(heap)?;
/// map.insert(3, 30)?;
/// map.insert(1, 10)?;
/// map.insert(2, 20)?;
/// assert_eq!(map.range(1, 2)?, vec![(1, 10), (2, 20)]);
/// assert_eq!(map.remove(2)?, Some(20));
/// assert_eq!(map.first()?, Some((1, 10)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PBTreeMap<K, V, S = crate::VPm, A = crate::balloc::BitmapAlloc<S>>
where
    S: MemSpace,
{
    heap: A,
    header: u64,
    lock: Arc<Mutex<()>>,
    _marker: PhantomData<(K, V, S)>,
}

impl<K: Pod + Ord, V: Pod, S: MemSpace, A: PmAllocator<S>> PBTreeMap<K, V, S, A> {
    fn leaf_bytes() -> u64 {
        N_KEYS + (MAX_KEYS * (K::SIZE + V::SIZE)) as u64
    }

    fn internal_bytes() -> u64 {
        N_KEYS + (MAX_KEYS * K::SIZE) as u64 + ((MAX_KEYS + 1) * 8) as u64
    }

    fn key_addr(node: u64, i: usize) -> u64 {
        node + N_KEYS + (i * K::SIZE) as u64
    }

    fn val_addr(node: u64, i: usize) -> u64 {
        node + N_KEYS + (MAX_KEYS * K::SIZE) as u64 + (i * V::SIZE) as u64
    }

    fn child_addr(node: u64, i: usize) -> u64 {
        node + N_KEYS + (MAX_KEYS * K::SIZE) as u64 + (i * 8) as u64
    }

    // -- raw node accessors --------------------------------------------

    fn tag(&self, node: u64) -> Result<u64> {
        self.heap.space().read_u64(node + N_TAG)
    }

    fn is_leaf(&self, node: u64) -> Result<bool> {
        Ok(self.tag(node)? == TAG_LEAF)
    }

    fn nkeys(&self, node: u64) -> Result<usize> {
        Ok(self.heap.space().read_u64(node + N_NKEYS)? as usize)
    }

    fn set_nkeys(&self, node: u64, n: usize) -> Result<()> {
        self.heap.space().write_u64(node + N_NKEYS, n as u64)
    }

    fn key(&self, node: u64, i: usize) -> Result<K> {
        read_pod(self.heap.space(), Self::key_addr(node, i))
    }

    fn set_key(&self, node: u64, i: usize, k: &K) -> Result<()> {
        write_pod(self.heap.space(), Self::key_addr(node, i), k)
    }

    fn val(&self, node: u64, i: usize) -> Result<V> {
        read_pod(self.heap.space(), Self::val_addr(node, i))
    }

    fn set_val(&self, node: u64, i: usize, v: &V) -> Result<()> {
        write_pod(self.heap.space(), Self::val_addr(node, i), v)
    }

    fn child(&self, node: u64, i: usize) -> Result<u64> {
        self.heap.space().read_u64(Self::child_addr(node, i))
    }

    fn set_child(&self, node: u64, i: usize, c: u64) -> Result<()> {
        self.heap.space().write_u64(Self::child_addr(node, i), c)
    }

    fn new_node(&self, leaf: bool) -> Result<u64> {
        let bytes = if leaf { Self::leaf_bytes() } else { Self::internal_bytes() };
        let node = self.heap.alloc(bytes)?;
        let s = self.heap.space();
        s.write_u64(node + N_TAG, if leaf { TAG_LEAF } else { TAG_INTERNAL })?;
        s.write_u64(node + N_NKEYS, 0)?;
        Ok(node)
    }

    fn free_node(&self, node: u64) -> Result<()> {
        let bytes = if self.is_leaf(node)? { Self::leaf_bytes() } else { Self::internal_bytes() };
        self.heap.free(node, bytes)
    }

    /// Lowest index with `keys[i] >= key`; `nkeys` if all are smaller.
    fn lower_bound(&self, node: u64, key: &K) -> Result<usize> {
        let n = self.nkeys(node)?;
        for i in 0..n {
            if self.key(node, i)? >= *key {
                return Ok(i);
            }
        }
        Ok(n)
    }

    // -- construction ---------------------------------------------------

    /// Opens the tree rooted in `heap`, creating it on first use.
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::Corrupt`] if the heap root is another
    /// structure; propagates allocation/space errors.
    pub fn attach(heap: A) -> Result<Self> {
        let root = heap.root()?;
        let header = if root == 0 {
            let header = heap.alloc(HEADER_BYTES)?;
            let tree = PBTreeMap::<K, V, S, A> {
                heap: heap.clone(),
                header,
                lock: Arc::new(Mutex::new(())),
                _marker: PhantomData,
            };
            let root_node = tree.new_node(true)?;
            let s = heap.space();
            s.write_u64(header + H_ROOT, root_node)?;
            s.write_u64(header + H_LEN, 0)?;
            s.write_u64(header + H_MAGIC, MAGIC)?;
            heap.set_root(header)?;
            return Ok(tree);
        } else {
            if heap.space().read_u64(root + H_MAGIC)? != MAGIC {
                return Err(PaxError::Corrupt("root is not a PBTreeMap".into()));
            }
            root
        };
        Ok(PBTreeMap { heap, header, lock: Arc::new(Mutex::new(())), _marker: PhantomData })
    }

    fn root_node(&self) -> Result<u64> {
        self.heap.space().read_u64(self.header + H_ROOT)
    }

    /// Number of entries.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn len(&self) -> Result<u64> {
        self.heap.space().read_u64(self.header + H_LEN)
    }

    /// Whether the map is empty.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    fn bump_len(&self, delta: i64) -> Result<()> {
        let l = self.len()?;
        self.heap.space().write_u64(self.header + H_LEN, l.wrapping_add(delta as u64))
    }

    // -- lookup ----------------------------------------------------------

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn get(&self, key: K) -> Result<Option<V>> {
        let _g = self.lock.lock();
        let mut node = self.root_node()?;
        loop {
            let n = self.nkeys(node)?;
            let mut i = self.lower_bound(node, &key)?;
            if self.is_leaf(node)? {
                return if i < n && self.key(node, i)? == key {
                    Ok(Some(self.val(node, i)?))
                } else {
                    Ok(None)
                };
            }
            // Values live in leaves; internal keys are separator copies,
            // and an equal separator means the entry is in the RIGHT
            // subtree (split_child puts the median in the right leaf).
            if i < n && self.key(node, i)? == key {
                i += 1;
            }
            node = self.child(node, i)?;
        }
    }

    // -- insertion --------------------------------------------------------

    /// Inserts `key → value`, returning the previous value if present.
    ///
    /// # Errors
    ///
    /// Propagates allocation/space errors.
    pub fn insert(&self, key: K, value: V) -> Result<Option<V>> {
        let _g = self.lock.lock();
        let root = self.root_node()?;
        if self.nkeys(root)? == MAX_KEYS {
            // Preemptive root split: new internal root with one child.
            let new_root = self.new_node(false)?;
            self.set_child(new_root, 0, root)?;
            self.split_child(new_root, 0)?;
            self.heap.space().write_u64(self.header + H_ROOT, new_root)?;
            return self.insert_nonfull(new_root, key, value);
        }
        self.insert_nonfull(root, key, value)
    }

    fn insert_nonfull(&self, mut node: u64, key: K, value: V) -> Result<Option<V>> {
        loop {
            let n = self.nkeys(node)?;
            let i = self.lower_bound(node, &key)?;
            if self.is_leaf(node)? {
                if i < n && self.key(node, i)? == key {
                    let old = self.val(node, i)?;
                    self.set_val(node, i, &value)?;
                    return Ok(Some(old));
                }
                // Shift right and insert.
                for j in (i..n).rev() {
                    let k = self.key(node, j)?;
                    let v = self.val(node, j)?;
                    self.set_key(node, j + 1, &k)?;
                    self.set_val(node, j + 1, &v)?;
                }
                self.set_key(node, i, &key)?;
                self.set_val(node, i, &value)?;
                self.set_nkeys(node, n + 1)?;
                self.bump_len(1)?;
                return Ok(None);
            }
            // Internal: keys are leaf-copies acting as separators (B+-tree
            // style): equal keys descend RIGHT so the leaf copy is found.
            let mut idx = i;
            if idx < n && self.key(node, idx)? == key {
                idx += 1;
            }
            let child = self.child(node, idx)?;
            if self.nkeys(child)? == MAX_KEYS {
                self.split_child(node, idx)?;
                // The separator that moved up may redirect us (equal keys
                // go right: the median copy lives in the right leaf).
                let sep = self.key(node, idx)?;
                node = if key >= sep { self.child(node, idx + 1)? } else { self.child(node, idx)? };
            } else {
                node = child;
            }
        }
    }

    /// Splits the full child at `parent.children[i]` (B+-tree style: for
    /// leaf children, the median key is *copied* up and stays in the
    /// right leaf; for internal children it moves up, CLRS-style).
    fn split_child(&self, parent: u64, i: usize) -> Result<()> {
        let child = self.child(parent, i)?;
        let child_leaf = self.is_leaf(child)?;
        let right = self.new_node(child_leaf)?;
        let mid = MIN_KEYS; // index of the median key

        if child_leaf {
            // Right leaf takes keys mid..MAX (median included).
            let moved = MAX_KEYS - mid;
            for j in 0..moved {
                let k = self.key(child, mid + j)?;
                let v = self.val(child, mid + j)?;
                self.set_key(right, j, &k)?;
                self.set_val(right, j, &v)?;
            }
            self.set_nkeys(right, moved)?;
            self.set_nkeys(child, mid)?;
        } else {
            // Right internal takes keys mid+1..MAX; median moves up.
            let moved = MAX_KEYS - mid - 1;
            for j in 0..moved {
                let k = self.key(child, mid + 1 + j)?;
                self.set_key(right, j, &k)?;
            }
            for j in 0..=moved {
                let c = self.child(child, mid + 1 + j)?;
                self.set_child(right, j, c)?;
            }
            self.set_nkeys(right, moved)?;
            self.set_nkeys(child, mid)?;
        }

        // Make room in the parent for the separator + new child.
        let pn = self.nkeys(parent)?;
        for j in (i..pn).rev() {
            let k = self.key(parent, j)?;
            self.set_key(parent, j + 1, &k)?;
        }
        for j in ((i + 1)..=pn).rev() {
            let c = self.child(parent, j)?;
            self.set_child(parent, j + 1, c)?;
        }
        let median = self.key(child, mid)?; // still valid for leaves; for
                                            // internals it was at mid
        self.set_key(parent, i, &median)?;
        self.set_child(parent, i + 1, right)?;
        self.set_nkeys(parent, pn + 1)?;
        Ok(())
    }

    // -- deletion -----------------------------------------------------------

    /// Removes `key`, returning its value if present.
    ///
    /// B+-tree style lazy deletion: the entry is removed from its leaf;
    /// separators in internal nodes may go stale (they remain valid
    /// ordering bounds), and leaves are allowed to underflow. Structural
    /// shrinking happens only when a leaf empties completely and can be
    /// unlinked without rebalancing ancestors (the common database
    /// engineering trade-off; ordering invariants are preserved, which
    /// the property tests verify).
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn remove(&self, key: K) -> Result<Option<V>> {
        let _g = self.lock.lock();
        let mut node = self.root_node()?;
        loop {
            let n = self.nkeys(node)?;
            let mut i = self.lower_bound(node, &key)?;
            if self.is_leaf(node)? {
                if i < n && self.key(node, i)? == key {
                    let old = self.val(node, i)?;
                    for j in i..n - 1 {
                        let k = self.key(node, j + 1)?;
                        let v = self.val(node, j + 1)?;
                        self.set_key(node, j, &k)?;
                        self.set_val(node, j, &v)?;
                    }
                    self.set_nkeys(node, n - 1)?;
                    self.bump_len(-1)?;
                    return Ok(Some(old));
                }
                return Ok(None);
            }
            if i < n && self.key(node, i)? == key {
                i += 1; // equal separators: the entry lives to the right
            }
            node = self.child(node, i)?;
        }
    }

    // -- ordered access -------------------------------------------------------

    /// The smallest entry.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn first(&self) -> Result<Option<(K, V)>> {
        let _g = self.lock.lock();
        let mut node = self.root_node()?;
        loop {
            if self.is_leaf(node)? {
                // Skip empty leaves by falling back to a scan via range.
                if self.nkeys(node)? > 0 {
                    return Ok(Some((self.key(node, 0)?, self.val(node, 0)?)));
                }
                drop(_g);
                let mut all = self.entries()?;
                return Ok(if all.is_empty() { None } else { Some(all.remove(0)) });
            }
            node = self.child(node, 0)?;
        }
    }

    /// The largest entry.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn last(&self) -> Result<Option<(K, V)>> {
        let _g = self.lock.lock();
        let mut node = self.root_node()?;
        loop {
            let n = self.nkeys(node)?;
            if self.is_leaf(node)? {
                if n > 0 {
                    return Ok(Some((self.key(node, n - 1)?, self.val(node, n - 1)?)));
                }
                drop(_g);
                let all = self.entries()?;
                return Ok(all.last().copied());
            }
            node = self.child(node, n)?;
        }
    }

    /// All entries with `lo <= key <= hi`, in key order.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn range(&self, lo: K, hi: K) -> Result<Vec<(K, V)>> {
        let _g = self.lock.lock();
        let mut out = Vec::new();
        self.walk(self.root_node()?, &mut |k, v| {
            if k >= lo && k <= hi {
                out.push((k, v));
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// All entries in key order.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn entries(&self) -> Result<Vec<(K, V)>> {
        let _g = self.lock.lock();
        let mut out = Vec::new();
        self.walk(self.root_node()?, &mut |k, v| {
            out.push((k, v));
            Ok(())
        })?;
        Ok(out)
    }

    fn walk(&self, node: u64, f: &mut impl FnMut(K, V) -> Result<()>) -> Result<()> {
        let n = self.nkeys(node)?;
        if self.is_leaf(node)? {
            for i in 0..n {
                f(self.key(node, i)?, self.val(node, i)?)?;
            }
            return Ok(());
        }
        for i in 0..=n {
            self.walk(self.child(node, i)?, f)?;
        }
        Ok(())
    }

    /// Checks the tree's structural invariants (ordering, key counts,
    /// consistent length); tests call this after mutations.
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::Corrupt`] describing the first violation.
    pub fn check_invariants(&self) -> Result<()> {
        let _g = self.lock.lock();
        let mut count = 0u64;
        let mut last: Option<K> = None;
        self.walk(self.root_node()?, &mut |k, _| {
            if let Some(prev) = &last {
                if *prev >= k {
                    return Err(PaxError::Corrupt("keys out of order".into()));
                }
            }
            last = Some(k);
            count += 1;
            Ok(())
        })?;
        if count != self.len()? {
            return Err(PaxError::Corrupt(format!(
                "length mismatch: counted {count}, header says {}",
                self.len()?
            )));
        }
        self.check_node(self.root_node()?, true)?;
        Ok(())
    }

    fn check_node(&self, node: u64, is_root: bool) -> Result<()> {
        let n = self.nkeys(node)?;
        if n > MAX_KEYS {
            return Err(PaxError::Corrupt("node overflow".into()));
        }
        if !is_root && !self.is_leaf(node)? && n < MIN_KEYS {
            return Err(PaxError::Corrupt("internal underflow".into()));
        }
        for i in 1..n {
            if self.key(node, i - 1)? >= self.key(node, i)? {
                return Err(PaxError::Corrupt("node keys out of order".into()));
            }
        }
        if !self.is_leaf(node)? {
            for i in 0..=n {
                self.check_node(self.child(node, i)?, false)?;
            }
        }
        Ok(())
    }

    /// The allocator this tree lives in. (The `free_node` path is reserved
    /// for a future compaction pass.)
    pub fn heap(&self) -> &A {
        let _ = Self::free_node; // silence: kept for compaction
        &self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VolatileSpace;

    fn tree() -> PBTreeMap<u64, u64, VolatileSpace, Heap<VolatileSpace>> {
        PBTreeMap::attach(Heap::attach(VolatileSpace::new(8 << 20)).unwrap()).unwrap()
    }

    #[test]
    fn insert_get_ordered() {
        let t = tree();
        for k in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            assert_eq!(t.insert(k, k * 10).unwrap(), None);
        }
        for k in 0..10u64 {
            assert_eq!(t.get(k).unwrap(), Some(k * 10), "key {k}");
        }
        assert_eq!(t.get(100).unwrap(), None);
        assert_eq!(t.entries().unwrap(), (0..10).map(|k| (k, k * 10)).collect::<Vec<_>>());
        t.check_invariants().unwrap();
    }

    #[test]
    fn overwrite_returns_old_value() {
        let t = tree();
        assert_eq!(t.insert(1, 10).unwrap(), None);
        assert_eq!(t.insert(1, 11).unwrap(), Some(10));
        assert_eq!(t.get(1).unwrap(), Some(11));
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn many_inserts_force_deep_splits() {
        let t = tree();
        let n = 2_000u64;
        for k in 0..n {
            // Bit-reversed order: neither ascending nor random-looking.
            t.insert(k.reverse_bits() >> 48, k).unwrap();
        }
        t.check_invariants().unwrap();
        assert!(t.len().unwrap() <= n);
        let e = t.entries().unwrap();
        assert!(e.windows(2).all(|w| w[0].0 < w[1].0), "sorted output");
    }

    #[test]
    fn ascending_and_descending_inserts() {
        for ascending in [true, false] {
            let t = tree();
            for i in 0..500u64 {
                let k = if ascending { i } else { 499 - i };
                t.insert(k, k).unwrap();
            }
            t.check_invariants().unwrap();
            assert_eq!(t.len().unwrap(), 500);
            assert_eq!(t.first().unwrap(), Some((0, 0)));
            assert_eq!(t.last().unwrap(), Some((499, 499)));
        }
    }

    #[test]
    fn remove_and_reinsert() {
        let t = tree();
        for k in 0..300u64 {
            t.insert(k, k).unwrap();
        }
        for k in (0..300u64).step_by(2) {
            assert_eq!(t.remove(k).unwrap(), Some(k), "remove {k}");
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len().unwrap(), 150);
        for k in 0..300u64 {
            assert_eq!(t.get(k).unwrap(), (k % 2 == 1).then_some(k), "get {k}");
        }
        // Reinsert over the holes.
        for k in (0..300u64).step_by(2) {
            t.insert(k, k + 1).unwrap();
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len().unwrap(), 300);
        assert_eq!(t.get(4).unwrap(), Some(5));
    }

    #[test]
    fn remove_everything() {
        let t = tree();
        for k in 0..200u64 {
            t.insert(k, k).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(t.remove(k).unwrap(), Some(k));
        }
        assert!(t.is_empty().unwrap());
        assert_eq!(t.remove(5).unwrap(), None);
        assert_eq!(t.first().unwrap(), None);
        assert_eq!(t.last().unwrap(), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn range_queries() {
        let t = tree();
        for k in (0..100u64).map(|k| k * 3) {
            t.insert(k, k).unwrap();
        }
        assert_eq!(t.range(10, 20).unwrap(), vec![(12, 12), (15, 15), (18, 18)]);
        assert_eq!(t.range(0, 0).unwrap(), vec![(0, 0)]);
        assert!(t.range(1000, 2000).unwrap().is_empty());
        assert_eq!(t.range(0, u64::MAX).unwrap().len(), 100);
    }

    #[test]
    fn reattach_preserves_tree() {
        let space = VolatileSpace::new(8 << 20);
        {
            let t: PBTreeMap<u64, u64, _, Heap<_>> =
                PBTreeMap::attach(Heap::attach(space.clone()).unwrap()).unwrap();
            for k in 0..100 {
                t.insert(k, k).unwrap();
            }
        }
        let t: PBTreeMap<u64, u64, _, Heap<_>> =
            PBTreeMap::attach(Heap::attach(space).unwrap()).unwrap();
        assert_eq!(t.len().unwrap(), 100);
        assert_eq!(t.get(42).unwrap(), Some(42));
        t.check_invariants().unwrap();
    }

    #[test]
    fn random_mixed_workload_matches_std_btreemap() {
        use std::collections::BTreeMap;
        let t = tree();
        let mut model = BTreeMap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..3_000 {
            let k = next() % 128;
            match next() % 3 {
                0 | 1 => {
                    let v = next();
                    assert_eq!(t.insert(k, v).unwrap(), model.insert(k, v), "insert {k}");
                }
                _ => {
                    assert_eq!(t.remove(k).unwrap(), model.remove(&k), "remove {k}");
                }
            }
        }
        let got = t.entries().unwrap();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(got, want);
        t.check_invariants().unwrap();
    }
}
