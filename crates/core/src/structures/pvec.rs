//! A growable vector written in volatile style.

use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::allocator::PmAllocator;
use crate::error::PaxError;
#[cfg(test)]
use crate::heap::Heap;
use crate::pod::Pod;
use crate::space::MemSpace;
use crate::Result;

use super::{read_pod, write_pod};

const MAGIC: u64 = u64::from_le_bytes(*b"PAXPVEC1");

const H_MAGIC: u64 = 0;
const H_DATA: u64 = 8;
const H_LEN: u64 = 16;
const H_CAP: u64 = 24;
const HEADER_BYTES: u64 = 32;

const INITIAL_CAP: u64 = 8;

/// A persistent-or-volatile `Vec<T>` analogue (see
/// [`structures`](crate::structures)).
///
/// # Example
///
/// ```
/// use libpax::{Heap, PVec, VolatileSpace};
///
/// # fn main() -> libpax::Result<()> {
/// let v: PVec<u32, _, Heap<_>> = PVec::attach(Heap::attach(VolatileSpace::new(1 << 20))?)?;
/// v.push(3)?;
/// v.push(5)?;
/// assert_eq!(v.get(1)?, Some(5));
/// assert_eq!(v.pop()?, Some(5));
/// assert_eq!(v.len()?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PVec<T, S = crate::VPm, A = crate::balloc::BitmapAlloc<S>>
where
    S: MemSpace,
{
    heap: A,
    header: u64,
    lock: Arc<Mutex<()>>,
    _marker: PhantomData<(T, S)>,
}

impl<T: Pod, S: MemSpace, A: PmAllocator<S>> PVec<T, S, A> {
    /// Opens the vector rooted in `heap`, creating it on first use.
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::Corrupt`] if the heap root is something else,
    /// and propagates allocation/space errors.
    pub fn attach(heap: A) -> Result<Self> {
        let root = heap.root()?;
        let header = if root == 0 {
            let header = heap.alloc(HEADER_BYTES)?;
            let data = heap.alloc(INITIAL_CAP * T::SIZE as u64)?;
            let s = heap.space();
            s.write_u64(header + H_DATA, data)?;
            s.write_u64(header + H_LEN, 0)?;
            s.write_u64(header + H_CAP, INITIAL_CAP)?;
            s.write_u64(header + H_MAGIC, MAGIC)?;
            heap.set_root(header)?;
            header
        } else {
            if heap.space().read_u64(root + H_MAGIC)? != MAGIC {
                return Err(PaxError::Corrupt("root is not a PVec".into()));
            }
            root
        };
        Ok(PVec { heap, header, lock: Arc::new(Mutex::new(())), _marker: PhantomData })
    }

    fn meta(&self) -> Result<(u64, u64, u64)> {
        let s = self.heap.space();
        Ok((
            s.read_u64(self.header + H_DATA)?,
            s.read_u64(self.header + H_LEN)?,
            s.read_u64(self.header + H_CAP)?,
        ))
    }

    /// Number of elements.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn len(&self) -> Result<u64> {
        Ok(self.meta()?.1)
    }

    /// Whether the vector is empty.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Appends `value`, growing the backing storage as needed.
    ///
    /// # Errors
    ///
    /// Propagates allocation/space errors.
    pub fn push(&self, value: T) -> Result<()> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (mut data, len, cap) = self.meta()?;
        if len == cap {
            // Doubling growth: allocate, copy, retarget, free — ordinary
            // vector code; PAX makes its partial states recoverable.
            let new_cap = cap * 2;
            let new_data = self.heap.alloc(new_cap * T::SIZE as u64)?;
            let mut buf = vec![0u8; (len * T::SIZE as u64) as usize];
            s.read_bytes(data, &mut buf)?;
            s.write_bytes(new_data, &buf)?;
            s.write_u64(self.header + H_DATA, new_data)?;
            s.write_u64(self.header + H_CAP, new_cap)?;
            self.heap.free(data, cap * T::SIZE as u64)?;
            data = new_data;
        }
        write_pod(s, data + len * T::SIZE as u64, &value)?;
        s.write_u64(self.header + H_LEN, len + 1)?;
        Ok(())
    }

    /// Removes and returns the last element.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn pop(&self) -> Result<Option<T>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (data, len, _) = self.meta()?;
        if len == 0 {
            return Ok(None);
        }
        let value = read_pod(s, data + (len - 1) * T::SIZE as u64)?;
        s.write_u64(self.header + H_LEN, len - 1)?;
        Ok(Some(value))
    }

    /// Returns element `index`, or `None` past the end.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn get(&self, index: u64) -> Result<Option<T>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (data, len, _) = self.meta()?;
        if index >= len {
            return Ok(None);
        }
        Ok(Some(read_pod(s, data + index * T::SIZE as u64)?))
    }

    /// Overwrites element `index`.
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::Corrupt`] for out-of-range indices and
    /// propagates space errors.
    pub fn set(&self, index: u64, value: T) -> Result<()> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (data, len, _) = self.meta()?;
        if index >= len {
            return Err(PaxError::Corrupt(format!("set past end: {index} >= {len}")));
        }
        write_pod(s, data + index * T::SIZE as u64, &value)
    }

    /// Collects all elements in order.
    ///
    /// # Errors
    ///
    /// Propagates space errors.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let _g = self.lock.lock();
        let s = self.heap.space();
        let (data, len, _) = self.meta()?;
        (0..len).map(|i| read_pod(s, data + i * T::SIZE as u64)).collect()
    }

    /// The allocator this vector lives in.
    pub fn heap(&self) -> &A {
        &self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VolatileSpace;

    fn vec_u32() -> PVec<u32, VolatileSpace, Heap<VolatileSpace>> {
        PVec::attach(Heap::attach(VolatileSpace::new(1 << 20)).unwrap()).unwrap()
    }

    #[test]
    fn push_get_pop() {
        let v = vec_u32();
        v.push(1).unwrap();
        v.push(2).unwrap();
        assert_eq!(v.len().unwrap(), 2);
        assert_eq!(v.get(0).unwrap(), Some(1));
        assert_eq!(v.get(2).unwrap(), None);
        assert_eq!(v.pop().unwrap(), Some(2));
        assert_eq!(v.pop().unwrap(), Some(1));
        assert_eq!(v.pop().unwrap(), None);
        assert!(v.is_empty().unwrap());
    }

    #[test]
    fn growth_beyond_initial_capacity() {
        let v = vec_u32();
        for i in 0..1000u32 {
            v.push(i).unwrap();
        }
        assert_eq!(v.len().unwrap(), 1000);
        for i in (0..1000u64).step_by(97) {
            assert_eq!(v.get(i).unwrap(), Some(i as u32));
        }
        assert_eq!(v.to_vec().unwrap(), (0..1000).collect::<Vec<u32>>());
    }

    #[test]
    fn set_validates_range() {
        let v = vec_u32();
        v.push(9).unwrap();
        v.set(0, 10).unwrap();
        assert_eq!(v.get(0).unwrap(), Some(10));
        assert!(v.set(1, 0).is_err());
    }

    #[test]
    fn reattach_preserves_contents() {
        let space = VolatileSpace::new(1 << 20);
        {
            let v: PVec<u64, _, Heap<_>> =
                PVec::attach(Heap::attach(space.clone()).unwrap()).unwrap();
            for i in 0..20 {
                v.push(i).unwrap();
            }
        }
        let v2: PVec<u64, _, Heap<_>> = PVec::attach(Heap::attach(space).unwrap()).unwrap();
        assert_eq!(v2.len().unwrap(), 20);
        assert_eq!(v2.get(19).unwrap(), Some(19));
    }

    #[test]
    fn float_elements() {
        let heap = Heap::attach(VolatileSpace::new(1 << 20)).unwrap();
        let v: PVec<f64, _, Heap<_>> = PVec::attach(heap).unwrap();
        v.push(3.75).unwrap();
        assert_eq!(v.get(0).unwrap(), Some(3.75));
    }
}
