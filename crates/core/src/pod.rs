//! Plain-old-data encoding for structure elements.
//!
//! Persistent structures store fixed-size values; [`Pod`] is the explicit,
//! `unsafe`-free encoding between a Rust value and its little-endian
//! on-media bytes. Keys and values of [`PHashMap`](crate::PHashMap),
//! elements of [`PVec`](crate::PVec), etc. must implement it.

/// A fixed-size, byte-encodable value.
///
/// # Example
///
/// ```
/// use libpax::Pod;
///
/// let mut buf = [0u8; 8];
/// 42u64.encode(&mut buf);
/// assert_eq!(u64::decode(&buf), 42);
/// assert_eq!(<[u8; 4]>::SIZE, 4);
/// ```
pub trait Pod: Sized + Copy {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Writes the value into `buf` (exactly [`Pod::SIZE`] bytes).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `buf.len() != Self::SIZE`.
    fn encode(&self, buf: &mut [u8]);

    /// Reads a value from `buf` (exactly [`Pod::SIZE`] bytes).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `buf.len() != Self::SIZE`.
    fn decode(buf: &[u8]) -> Self;
}

macro_rules! impl_pod_int {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn encode(&self, buf: &mut [u8]) {
                buf.copy_from_slice(&self.to_le_bytes());
            }

            fn decode(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf.try_into().expect("buffer size mismatch"))
            }
        }
    )*};
}

impl_pod_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl Pod for bool {
    const SIZE: usize = 1;

    fn encode(&self, buf: &mut [u8]) {
        buf[0] = *self as u8;
    }

    fn decode(buf: &[u8]) -> Self {
        buf[0] != 0
    }
}

impl<const N: usize> Pod for [u8; N] {
    const SIZE: usize = N;

    fn encode(&self, buf: &mut [u8]) {
        buf.copy_from_slice(self);
    }

    fn decode(buf: &[u8]) -> Self {
        buf.try_into().expect("buffer size mismatch")
    }
}

impl<A: Pod, B: Pod> Pod for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    fn encode(&self, buf: &mut [u8]) {
        self.0.encode(&mut buf[..A::SIZE]);
        self.1.encode(&mut buf[A::SIZE..]);
    }

    fn decode(buf: &[u8]) -> Self {
        (A::decode(&buf[..A::SIZE]), B::decode(&buf[A::SIZE..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Pod + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.encode(&mut buf);
        assert_eq!(T::decode(&buf), v);
    }

    #[test]
    fn integers_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX - 1);
        round_trip(-42i64);
        round_trip(i128::MIN);
    }

    #[test]
    fn floats_and_bools_round_trip() {
        round_trip(3.5f64);
        round_trip(f32::NEG_INFINITY);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn arrays_and_tuples_round_trip() {
        round_trip([1u8, 2, 3, 4]);
        round_trip((7u32, 9u64));
        assert_eq!(<(u32, u64)>::SIZE, 12);
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = [0u8; 4];
        0x0102_0304u32.encode(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }
}
