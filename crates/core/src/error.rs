//! libpax error types.

use std::error::Error;
use std::fmt;

use pax_pm::PmError;

/// Errors surfaced by the libpax public API.
#[derive(Debug)]
#[non_exhaustive]
pub enum PaxError {
    /// An error from the PM substrate (media bounds, simulated crash,
    /// pool-file problems, log capacity).
    Pm(PmError),
    /// The persistent heap could not satisfy an allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Capacity of the space.
        capacity: u64,
    },
    /// On-media structure state failed a sanity check (bad magic, length
    /// out of range, dangling pointer).
    Corrupt(String),
    /// An operation was invoked on a space it is not valid for.
    Unsupported(&'static str),
}

impl PaxError {
    /// Whether this error is the simulated-crash signal; callers unwind to
    /// recovery when they see it.
    pub fn is_crash(&self) -> bool {
        matches!(self, PaxError::Pm(PmError::Crashed))
    }
}

impl fmt::Display for PaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaxError::Pm(e) => write!(f, "persistent memory error: {e}"),
            PaxError::OutOfMemory { requested, capacity } => {
                write!(f, "allocation of {requested} bytes exceeds space of {capacity} bytes")
            }
            PaxError::Corrupt(msg) => write!(f, "corrupt persistent state: {msg}"),
            PaxError::Unsupported(what) => write!(f, "operation not supported: {what}"),
        }
    }
}

impl Error for PaxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PaxError::Pm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PmError> for PaxError {
    fn from(e: PmError) -> Self {
        PaxError::Pm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_detection() {
        assert!(PaxError::from(PmError::Crashed).is_crash());
        assert!(!PaxError::OutOfMemory { requested: 1, capacity: 0 }.is_crash());
    }

    #[test]
    fn display_and_source() {
        let e = PaxError::from(PmError::Crashed);
        assert!(e.to_string().contains("crash"));
        assert!(e.source().is_some());
        assert!(PaxError::Corrupt("x".into()).source().is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<PaxError>();
    }
}
