//! `libpax` — the PAX programming model (§3.1).
//!
//! This crate is the library half of the paper: it maps a pool's vPM range
//! into the "process", wraps it in an allocator, and lets *volatile-style*
//! data-structure code run unmodified against persistent memory with
//! crash-consistent snapshot semantics.
//!
//! # The programming model, as in Listing 1 of the paper
//!
//! ```
//! use libpax::{HwSnapshotter, PaxConfig, Persistent, PHashMap};
//!
//! # fn main() -> libpax::Result<()> {
//! // 1. Map a pool; the region is wrapped in an allocator object.
//! let snap = HwSnapshotter::create(PaxConfig::default())?;
//! // 2. Pass the allocator to an unmodified (volatile-style) structure.
//! let ht: Persistent<PHashMap<u64, u64>> = Persistent::new(&snap)?;
//! // 3. Use it with normal loads and stores.
//! ht.insert(1, 100)?;
//! assert_eq!(ht.get(1)?, Some(100));
//! ht.insert(2, 200)?;
//! // 4. Capture a crash-consistent snapshot.
//! snap.persist()?;
//! # Ok(())
//! # }
//! ```
//!
//! # Architecture
//!
//! * [`space`] — [`MemSpace`]: the byte-addressed memory abstraction the
//!   data structures are written against. [`VolatileSpace`] implements it
//!   over plain memory (the "DRAM" world); [`VPm`] implements it over the
//!   host-cache + PAX-device simulation. *The structure code is identical
//!   in both worlds* — that is the paper's black-box-reuse claim in code.
//! * [`allocator`] — [`PmAllocator`]: the allocator seam. Structures are
//!   generic over it, so the first-fit [`Heap`] and the scalable
//!   `pax-alloc` bitmap allocator are interchangeable under the same
//!   structure code.
//! * [`heap`] — a first-fit persistent heap (bump + free list) whose
//!   metadata lives inside the space it manages, so PAX's undo logging
//!   covers allocator state like any other data (§3.4 "recovers the
//!   pool's allocator state").
//! * [`pool`] — [`PaxPool`]: wires a [`PmPool`](pax_pm::PmPool) to a
//!   [`PaxDevice`](pax_device::PaxDevice) and a host
//!   [`CoherentCache`](pax_cache::CoherentCache), exposes `persist()`,
//!   crash/reopen for tests, and optional miss-rate instrumentation.
//! * [`structures`] — volatile-style collections ([`PHashMap`], [`PVec`],
//!   [`PList`]) generic over any [`MemSpace`].
//! * [`snapshotter`] — the Listing 1 façade: [`HwSnapshotter`] +
//!   [`Persistent<T>`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod balloc;
pub mod error;
pub mod heap;
pub mod pod;
pub mod pool;
pub mod snapshotter;
pub mod space;
pub mod structures;

pub use allocator::PmAllocator;
pub use balloc::{BitmapAlloc, DEFAULT_CORES};
pub use error::PaxError;
pub use heap::Heap;
pub use pax_pm::PersistencyModel;
pub use pod::Pod;
pub use pool::{PaxConfig, PaxPool, PaxTenant, VPm};
pub use snapshotter::{HwSnapshotter, PStructure, Persistent};
pub use space::{MemSpace, StripedSpace, VolatileSpace};
pub use structures::{PBTreeMap, PHashMap, PList, PRing, PVec};

/// Result alias for libpax operations.
pub type Result<T> = std::result::Result<T, PaxError>;
