//! The Listing 1 façade: [`HwSnapshotter`] and [`Persistent<T>`].
//!
//! ```text
//! let mut allocator = HWSnapshotter<MyAllocator>::map_pool("./ht.pool");
//! let persistent_ht = Persistent<HashMap>::new(&allocator);
//! persistent_ht.insert(1, 100);
//! println!("Key 1 = {}", persistent_ht.get(1));
//! persistent_ht.insert(2, 200);
//! persistent_ht.persist();
//! ```
//!
//! Maps one-to-one onto the paper's programming model: `map_pool` maps the
//! vPM region and wraps it in an allocator; `Persistent<T>::new` passes
//! that allocator to an unmodified structure constructor (recovering the
//! structure if the pool needs it, §3.4); `persist()` asks the device for
//! a crash-consistent snapshot.

use std::ops::Deref;
use std::path::Path;

use crate::allocator::PmAllocator;
use crate::balloc::BitmapAlloc;
use crate::pool::{PaxConfig, PaxPool, VPm};
use crate::space::MemSpace;
use crate::Result;

/// A structure that can be rooted in (and recovered from) an allocator.
///
/// Implemented by every collection in [`structures`](crate::structures),
/// for any [`PmAllocator`]. The default `A = BitmapAlloc<S>` is the
/// scalable llfree-style allocator (since PR 10); the serial first-fit
/// [`Heap`](crate::Heap) stays available by naming it explicitly, and is
/// CI's differential baseline. `attach` must treat "fresh allocator" and
/// "existing structure" uniformly so construction and recovery are
/// indistinguishable to the application.
pub trait PStructure<S: MemSpace, A: PmAllocator<S> = BitmapAlloc<S>>: Sized {
    /// Opens the structure rooted in `alloc`, creating it on first use.
    ///
    /// # Errors
    ///
    /// Implementations surface corruption and allocation failures.
    fn attach(alloc: A) -> Result<Self>;
}

impl<K: crate::Pod + Ord, V: crate::Pod, S: MemSpace, A: PmAllocator<S>> PStructure<S, A>
    for crate::PBTreeMap<K, V, S, A>
{
    fn attach(alloc: A) -> Result<Self> {
        crate::PBTreeMap::attach(alloc)
    }
}

impl<K: crate::Pod, V: crate::Pod, S: MemSpace, A: PmAllocator<S>> PStructure<S, A>
    for crate::PHashMap<K, V, S, A>
{
    fn attach(alloc: A) -> Result<Self> {
        crate::PHashMap::attach(alloc)
    }
}

impl<T: crate::Pod, S: MemSpace, A: PmAllocator<S>> PStructure<S, A> for crate::PVec<T, S, A> {
    fn attach(alloc: A) -> Result<Self> {
        crate::PVec::attach(alloc)
    }
}

impl<T: crate::Pod, S: MemSpace, A: PmAllocator<S>> PStructure<S, A> for crate::PList<T, S, A> {
    fn attach(alloc: A) -> Result<Self> {
        crate::PList::attach(alloc)
    }
}

impl<T: crate::Pod, S: MemSpace, A: PmAllocator<S>> PStructure<S, A> for crate::PRing<T, S, A> {
    fn attach(alloc: A) -> Result<Self> {
        crate::PRing::attach(alloc)
    }
}

/// The hardware snapshotter: a mapped pool wrapped in an allocator
/// (Listing 1, line 1).
#[derive(Debug, Clone)]
pub struct HwSnapshotter {
    pool: PaxPool,
}

impl HwSnapshotter {
    /// Maps `path` into the "process", creating the pool file on first
    /// use (`map_pool` in the paper).
    ///
    /// # Errors
    ///
    /// Propagates pool-file and recovery errors.
    pub fn map_pool(path: impl AsRef<Path>, config: PaxConfig) -> Result<Self> {
        Ok(HwSnapshotter { pool: PaxPool::map_file(path, config)? })
    }

    /// Creates an in-memory pool (tests and examples that don't need a
    /// backing file).
    ///
    /// # Errors
    ///
    /// Propagates pool-layout errors.
    pub fn create(config: PaxConfig) -> Result<Self> {
        Ok(HwSnapshotter { pool: PaxPool::create(config)? })
    }

    /// Wraps an already-open [`PaxPool`].
    pub fn from_pool(pool: PaxPool) -> Self {
        HwSnapshotter { pool }
    }

    /// The underlying pool (metrics, crash control, persistence).
    pub fn pool(&self) -> &PaxPool {
        &self.pool
    }

    /// The mapped vPM region.
    pub fn vpm(&self) -> VPm {
        self.pool.vpm()
    }

    /// Instructs the PAX device to persist a crash-consistent snapshot
    /// (Listing 1, line 6); returns the committed epoch.
    ///
    /// # Errors
    ///
    /// Surfaces simulated crashes and media errors.
    pub fn persist(&self) -> Result<u64> {
        self.pool.persist()
    }
}

/// A handle to a structure living in vPM (Listing 1, line 2).
///
/// Dereferences to the inner structure, so `persistent_ht.insert(..)`
/// reads exactly like the volatile original.
#[derive(Debug, Clone)]
pub struct Persistent<T> {
    inner: T,
}

impl<T: PStructure<VPm>> Persistent<T> {
    /// Attaches (or recovers, §3.4) the structure in the snapshotter's
    /// pool, over the default [`BitmapAlloc`] allocator. "From the
    /// application's perspective, there is no difference between
    /// constructing a new persistent map and recovering one."
    ///
    /// A pool formatted by another allocator (e.g. the first-fit
    /// [`Heap`](crate::Heap)) is rejected with a bad-magic error rather
    /// than silently reinterpreted — keep opening such pools through
    /// [`Persistent::new_in`].
    ///
    /// # Errors
    ///
    /// Propagates allocator and structure attach errors.
    pub fn new(snapshotter: &HwSnapshotter) -> Result<Self> {
        let alloc = BitmapAlloc::attach(snapshotter.vpm())?;
        Ok(Persistent { inner: T::attach(alloc)? })
    }
}

impl<T> Persistent<T> {
    /// Attaches the structure through an explicit allocator, for pools
    /// managed by an allocator other than the default [`BitmapAlloc`]
    /// (e.g. the serial first-fit [`Heap`](crate::Heap) baseline). The
    /// allocator must already wrap the pool's vPM so undo logging covers
    /// its metadata.
    ///
    /// # Errors
    ///
    /// Propagates allocator and structure attach errors.
    pub fn new_in<A: PmAllocator<VPm>>(alloc: A) -> Result<Self>
    where
        T: PStructure<VPm, A>,
    {
        Ok(Persistent { inner: T::attach(alloc)? })
    }
}

impl<T> Persistent<T> {
    /// Unwraps the inner structure handle.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T> Deref for Persistent<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PHashMap, PVec};

    #[test]
    fn listing_1_flow() {
        let snap = HwSnapshotter::create(PaxConfig::default()).unwrap();
        let ht: Persistent<PHashMap<u64, u64>> = Persistent::new(&snap).unwrap();
        ht.insert(1, 100).unwrap();
        assert_eq!(ht.get(1).unwrap(), Some(100));
        ht.insert(2, 200).unwrap();
        let epoch = snap.persist().unwrap();
        assert_eq!(epoch, 1);
    }

    #[test]
    fn recovery_is_transparent() {
        let snap = HwSnapshotter::create(PaxConfig::default()).unwrap();
        {
            let ht: Persistent<PHashMap<u64, u64>> = Persistent::new(&snap).unwrap();
            ht.insert(5, 50).unwrap();
        }
        snap.persist().unwrap();
        let pm = snap.pool().crash().unwrap();

        // Reopen: Persistent::new recovers instead of constructing.
        let snap2 =
            HwSnapshotter::from_pool(crate::PaxPool::open(pm, PaxConfig::default()).unwrap());
        let ht: Persistent<PHashMap<u64, u64>> = Persistent::new(&snap2).unwrap();
        assert_eq!(ht.get(5).unwrap(), Some(50));
    }

    #[test]
    fn other_structures_attach_too() {
        let snap = HwSnapshotter::create(PaxConfig::default()).unwrap();
        let v: Persistent<PVec<u32>> = Persistent::new(&snap).unwrap();
        v.push(1).unwrap();
        assert_eq!(v.get(0).unwrap(), Some(1));
    }

    #[test]
    fn map_pool_creates_then_reopens() {
        let dir = std::env::temp_dir().join("libpax-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshotter.pool");
        let _ = std::fs::remove_file(&path);

        let snap = HwSnapshotter::map_pool(&path, PaxConfig::default()).unwrap();
        let ht: Persistent<PHashMap<u64, u64>> = Persistent::new(&snap).unwrap();
        ht.insert(9, 90).unwrap();
        snap.persist().unwrap();
        snap.pool().save_file(&path).unwrap();
        drop((ht, snap));

        let snap2 = HwSnapshotter::map_pool(&path, PaxConfig::default()).unwrap();
        let ht2: Persistent<PHashMap<u64, u64>> = Persistent::new(&snap2).unwrap();
        assert_eq!(ht2.get(9).unwrap(), Some(90));
        std::fs::remove_file(&path).unwrap();
    }
}
