//! The upper allocator: a volatile hierarchical index over the trees.
//!
//! One entry per tree packs a claim flag and the tree's free-frame count
//! into a single `AtomicU64`, so cores can pick trees without taking any
//! lock — only the chosen tree's mutex is taken, and only to mutate its
//! bitmap words. This state is *never persisted*: a crash discards it
//! and [`rebuild`](crate::recover::rebuild) reconstructs it from the
//! bitmap (llfree's "crash consistency for free" design).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use super::layout::Geometry;

const CLAIMED: u64 = 1 << 63;
const COUNT_MASK: u64 = u32::MAX as u64;

/// Per-tree volatile state: `lock` serializes bitmap mutation inside the
/// tree; `state` packs `CLAIMED | free_count` for lock-free selection.
#[derive(Debug)]
pub(crate) struct TreeEntry {
    pub lock: Mutex<()>,
    state: AtomicU64,
}

impl TreeEntry {
    fn new(free: u32) -> Self {
        TreeEntry { lock: Mutex::new(()), state: AtomicU64::new(free as u64) }
    }

    /// Free frames in this tree (advisory: exact only under the tree
    /// lock, since counts are updated while holding it).
    pub fn free(&self) -> u64 {
        self.state.load(Ordering::Relaxed) & COUNT_MASK
    }

    pub fn is_claimed(&self) -> bool {
        self.state.load(Ordering::Relaxed) & CLAIMED != 0
    }

    /// Claims an unclaimed tree; fails if someone beat us to it.
    pub fn try_claim(&self) -> bool {
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            if cur & CLAIMED != 0 {
                return false;
            }
            match self.state.compare_exchange_weak(
                cur,
                cur | CLAIMED,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Drops the claim flag (idempotent; safe to call on a stolen tree —
    /// the claim is a placement hint, the bits under the lock are the
    /// truth).
    pub fn release(&self) {
        self.state.fetch_and(!CLAIMED, Ordering::AcqRel);
    }

    /// Adjusts the free count; callers hold the tree lock, so the count
    /// cannot be driven below zero or above the tree size.
    pub fn add_free(&self, n: u64) {
        self.state.fetch_add(n, Ordering::AcqRel);
    }

    /// See [`TreeEntry::add_free`].
    pub fn sub_free(&self, n: u64) {
        debug_assert!(self.free() >= n);
        self.state.fetch_sub(n, Ordering::AcqRel);
    }
}

/// How a tree was obtained by [`TreeIndex::reserve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Reserved {
    /// An unclaimed tree was claimed.
    Fresh(u64),
    /// Every suitable tree was already claimed by some core; this one is
    /// now shared (the `alloc_tree_steals` metric).
    Stolen(u64),
}

impl Reserved {
    pub fn tree(self) -> u64 {
        match self {
            Reserved::Fresh(t) | Reserved::Stolen(t) => t,
        }
    }
}

/// The tree index (see module docs).
#[derive(Debug)]
pub(crate) struct TreeIndex {
    pub trees: Vec<TreeEntry>,
}

impl TreeIndex {
    pub fn new(free: &[u32]) -> Self {
        TreeIndex { trees: free.iter().map(|&f| TreeEntry::new(f)).collect() }
    }

    /// Picks and claims a tree with at least `need` free frames for
    /// `core` (of `cores`), skipping trees already found too fragmented
    /// this allocation. Preference order mirrors llfree: partially used
    /// trees first (densify, keep empty trees for span allocations),
    /// then empty trees, then stealing a claimed tree.
    ///
    /// Each core starts its search at its own region of the index so
    /// cores spread over the space instead of contending for tree 0.
    pub fn reserve(
        &self,
        geom: &Geometry,
        core: usize,
        cores: usize,
        need: u64,
        skip: &[u64],
    ) -> Option<Reserved> {
        let n = self.trees.len() as u64;
        let start = (core as u64 * n) / cores.max(1) as u64;
        let at = |i: u64| (start + i) % n;

        // Pass 1: unclaimed, partially used.
        for i in 0..n {
            let t = at(i);
            let e = &self.trees[t as usize];
            let partial = e.free() >= need && e.free() < geom.frames_in_tree(t);
            if partial && !skip.contains(&t) && !e.is_claimed() && e.try_claim() {
                return Some(Reserved::Fresh(t));
            }
        }
        // Pass 2: unclaimed with room (covers fully-empty trees).
        for i in 0..n {
            let t = at(i);
            let e = &self.trees[t as usize];
            if e.free() >= need && !skip.contains(&t) && !e.is_claimed() && e.try_claim() {
                return Some(Reserved::Fresh(t));
            }
        }
        // Pass 3: steal. No CAS needed — we simply start using the tree;
        // the per-tree lock keeps sharing safe.
        for i in 0..n {
            let t = at(i);
            if self.trees[t as usize].free() >= need && !skip.contains(&t) {
                return Some(Reserved::Stolen(t));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balloc::layout::Geometry;

    fn geom() -> Geometry {
        // Big enough for several full trees.
        Geometry::for_capacity(1 << 20).unwrap()
    }

    #[test]
    fn claim_is_exclusive_and_releasable() {
        let e = TreeEntry::new(512);
        assert!(e.try_claim());
        assert!(!e.try_claim());
        e.release();
        assert!(e.try_claim());
        assert_eq!(e.free(), 512);
    }

    #[test]
    fn counts_survive_claim_bits() {
        let e = TreeEntry::new(10);
        e.try_claim();
        e.sub_free(4);
        e.add_free(1);
        assert_eq!(e.free(), 7);
        assert!(e.is_claimed());
    }

    #[test]
    fn reserve_prefers_partial_then_empty_then_steals() {
        let g = geom();
        let full = g.frames_in_tree(0) as u32;
        let idx = TreeIndex::new(&[full, 40, full, 0]);
        // Partial tree 1 wins over the empty trees.
        assert_eq!(idx.reserve(&g, 0, 1, 8, &[]), Some(Reserved::Fresh(1)));
        // Next reservation: no partial left → an empty tree.
        let r = idx.reserve(&g, 0, 1, 8, &[]).unwrap();
        assert!(matches!(r, Reserved::Fresh(t) if t == 0 || t == 2));
        let r2 = idx.reserve(&g, 0, 1, 8, &[]).unwrap();
        assert!(matches!(r2, Reserved::Fresh(_)));
        // Everything claimed → steal.
        assert!(matches!(idx.reserve(&g, 0, 1, 8, &[]), Some(Reserved::Stolen(_))));
        // Nothing big enough → None.
        assert_eq!(idx.reserve(&g, 0, 1, 1 << 20, &[]), None);
    }

    #[test]
    fn cores_start_in_distinct_regions() {
        let g = geom();
        let full = g.frames_in_tree(0) as u32;
        let idx = TreeIndex::new(&[full; 8]);
        let a = idx.reserve(&g, 0, 4, 1, &[]).unwrap().tree();
        let b = idx.reserve(&g, 1, 4, 1, &[]).unwrap().tree();
        assert_ne!(a, b);
    }
}
