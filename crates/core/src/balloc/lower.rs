//! The lower allocator: contiguous-run search and bit mutation over the
//! persistent frame bitmap.
//!
//! In llfree terms this is the "lower" half — given one tree's (or the
//! whole space's) bitmap words, find a run of clear bits, set it, clear
//! it. All functions here either operate on an in-memory word slice
//! (pure, unit-testable) or perform the read-modify-write against the
//! [`MemSpace`](crate::MemSpace); callers (the upper allocator) hold the
//! owning tree's lock around every media call, which is what makes the
//! non-atomic read-modify-write of a shared word safe.

use crate::{MemSpace, PaxError, Result};

use super::layout::Geometry;

/// Outcome of a run search: the start frame (relative to the scanned
/// slice) if found, plus how many frames were examined (the
/// `alloc_scan_frames` metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Scan {
    pub found: Option<u64>,
    pub steps: u64,
}

fn bit(words: &[u64], idx: u64) -> bool {
    words[(idx / 64) as usize] >> (idx % 64) & 1 == 1
}

/// Finds `need` contiguous clear bits among the first `nframes` bits of
/// `words`, preferring run starts at or after `start` (wrapping back to
/// 0 for the tail of the search). Runs never wrap: a hit `p` always has
/// `p + need <= nframes`.
pub(crate) fn find_run(words: &[u64], nframes: u64, need: u64, start: u64) -> Scan {
    debug_assert!(need >= 1);
    let mut steps = 0u64;
    if need > nframes {
        return Scan { found: None, steps };
    }
    let start = start.min(nframes - 1);
    // Two passes over run starts: [start..) then [0..start).
    for (lo, hi) in [(start, nframes), (0, start)] {
        let mut p = lo;
        while p < hi && p + need <= nframes {
            // Extend a run from p; on a set bit, restart just past it.
            let mut k = 0;
            while k < need {
                steps += 1;
                if bit(words, p + k) {
                    break;
                }
                k += 1;
            }
            if k == need {
                return Scan { found: Some(p), steps };
            }
            p += k + 1;
        }
    }
    Scan { found: None, steps }
}

/// Loads the `nframes.div_ceil(64)` bitmap words holding frames
/// `[base, base + nframes)`, where `base` is 64-aligned (tree starts
/// always are).
pub(crate) fn load_words<S: MemSpace>(
    space: &S,
    geom: &Geometry,
    base: u64,
    nframes: u64,
) -> Result<Vec<u64>> {
    debug_assert_eq!(base % 64, 0);
    let first = base / 64;
    let n = nframes.div_ceil(64);
    let mut buf = vec![0u8; (n * 8) as usize];
    space.read_bytes(geom.word_addr(first), &mut buf)?;
    Ok(buf.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect())
}

/// Applies a run mutation to frames `[frame, frame + n)` on media:
/// `set = true` marks them allocated, `set = false` frees them. Every
/// touched bit must currently hold the opposite value; a same-value bit
/// means a double free (or handing out live frames) and fails the whole
/// call with [`PaxError::Corrupt`] before any word is written.
pub(crate) fn flip_run<S: MemSpace>(
    space: &S,
    geom: &Geometry,
    frame: u64,
    n: u64,
    set: bool,
) -> Result<()> {
    let first_word = frame / 64;
    let last_word = (frame + n - 1) / 64;
    let mut words = Vec::with_capacity((last_word - first_word + 1) as usize);
    for w in first_word..=last_word {
        let lo = (w * 64).max(frame) % 64;
        let hi = ((w + 1) * 64).min(frame + n) - w * 64;
        let mask = if hi - lo == 64 { u64::MAX } else { ((1u64 << (hi - lo)) - 1) << lo };
        let cur = space.read_u64(geom.word_addr(w))?;
        let expect = if set { 0 } else { mask };
        if cur & mask != expect {
            return Err(PaxError::Corrupt(format!(
                "pax-alloc: frames [{frame}, {}) are not uniformly {} (word {w})",
                frame + n,
                if set { "free" } else { "allocated — double free?" },
            )));
        }
        words.push((w, if set { cur | mask } else { cur & !mask }));
    }
    for (w, val) in words {
        space.write_u64(geom.word_addr(w), val)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_runs_and_counts_steps() {
        // Frames: 0..=2 used, 3..=9 free (10 frames).
        let words = vec![0b111u64];
        let s = find_run(&words, 10, 4, 0);
        assert_eq!(s.found, Some(3));
        assert!(s.steps >= 4);
        assert_eq!(find_run(&words, 10, 7, 0).found, Some(3));
        assert_eq!(find_run(&words, 10, 8, 0).found, None);
        assert_eq!(find_run(&words, 10, 11, 0).found, None, "larger than slice");
    }

    #[test]
    fn cursor_prefers_later_runs_then_wraps() {
        // Free everywhere; cursor at 5 → run starts at 5.
        let words = vec![0u64];
        assert_eq!(find_run(&words, 64, 3, 5).found, Some(5));
        // Only frames 0..3 free: cursor past them still finds them by wrap.
        let words = vec![!0u64 << 3];
        assert_eq!(find_run(&words, 64, 3, 10).found, Some(0));
    }

    #[test]
    fn runs_cross_word_boundaries() {
        // Frames 62..=65 are the only free run, straddling words 0 and 1.
        let words = vec![(1u64 << 62) - 1, !0u64 << 2];
        assert_eq!(find_run(&words, 128, 4, 0).found, Some(62));
        assert_eq!(find_run(&words, 128, 5, 0).found, None);
    }

    #[test]
    fn run_never_wraps_around_the_end() {
        // Frames 0..2 and 8..9 free, 2..8 used: no 4-run exists even
        // though 2 + 2 = 4 frames are free at the edges.
        let words = vec![0b00_1111_1100u64];
        assert_eq!(find_run(&words, 10, 4, 0).found, None);
    }
}
