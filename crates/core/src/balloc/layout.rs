//! On-media geometry of the bitmap allocator.
//!
//! The managed space is carved into a fixed header, a frame bitmap (one
//! bit per frame, set = allocated), one persisted `u32` free counter per
//! tree, and the frame data region. Everything before the data region is
//! allocator metadata, and all of it lives *inside* the managed
//! [`MemSpace`](crate::MemSpace) — so when the space is a pool's vPM,
//! undo logging rolls allocator state back together with user data
//! (§3.4), exactly like the first-fit [`Heap`](crate::Heap).
//!
//! ```text
//! | header 64B | bitmap words | tree counters | pad | frames ... |
//!   ^magic/geometry            ^u32 per tree    ^data_start (64-aligned)
//! ```
//!
//! Trees are fixed runs of [`TREE_FRAMES`] frames. With 512 frames per
//! tree and 64-bit bitmap words, a tree is exactly 8 words, so tree
//! boundaries always coincide with word boundaries and per-tree locking
//! never straddles a word.

use crate::PaxError;

/// Identifies a formatted pax-alloc space ("PAXALOC1").
pub const MAGIC: u64 = u64::from_le_bytes(*b"PAXALOC1");

/// On-media format version.
pub const VERSION: u64 = 1;

/// Bytes per allocation frame (the allocation granule).
pub const FRAME_BYTES: u64 = 32;

/// Frames per tree (the per-core claim granule); 512 frames = 16 KiB of
/// data per tree, 8 bitmap words.
pub const TREE_FRAMES: u64 = 512;

/// Fixed header size.
pub const HEADER_BYTES: u64 = 64;

/// Header field offsets (all little-endian `u64`).
pub const OFF_MAGIC: u64 = 0;
/// Format version field.
pub const OFF_VERSION: u64 = 8;
/// Total frame count the space was formatted with.
pub const OFF_FRAMES: u64 = 16;
/// Frame size the space was formatted with.
pub const OFF_FRAME_BYTES: u64 = 24;
/// Tree size the space was formatted with.
pub const OFF_TREE_FRAMES: u64 = 32;
/// First data byte (start of frame 0).
pub const OFF_DATA_START: u64 = 40;
/// User root pointer (0 = unset).
pub const OFF_ROOT: u64 = 48;

/// A layout-level failure: the space is too small, or its persisted
/// header/counters disagree with what a scan of the bitmap says.
///
/// Converted to [`PaxError::Corrupt`] at the public API boundary; kept as
/// a typed enum so tests can assert on the precise failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The space cannot hold the header, metadata, and at least one frame.
    TooSmall {
        /// Capacity of the offered space.
        capacity: u64,
    },
    /// The magic word is neither zero (fresh) nor [`MAGIC`].
    BadMagic(u64),
    /// The version field is not [`VERSION`].
    BadVersion(u64),
    /// The persisted frame size differs from [`FRAME_BYTES`].
    FrameBytes(u64),
    /// The persisted tree size differs from [`TREE_FRAMES`].
    TreeFrames(u64),
    /// The persisted frame count does not match the recomputed geometry.
    Frames {
        /// Frame count stored in the header.
        persisted: u64,
        /// Frame count recomputed from the space capacity.
        computed: u64,
    },
    /// A persisted per-tree free counter disagrees with the bitmap scan.
    CounterMismatch {
        /// Index of the offending tree.
        tree: u64,
        /// Free count stored on media.
        persisted: u32,
        /// Free count the bitmap scan produced.
        scanned: u32,
    },
    /// A bitmap bit beyond the last frame is set.
    TailBits {
        /// Index of the offending word.
        word: u64,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::TooSmall { capacity } => {
                write!(f, "space of {capacity} bytes is too small for the bitmap allocator")
            }
            LayoutError::BadMagic(m) => write!(f, "bad allocator magic {m:#x}"),
            LayoutError::BadVersion(v) => write!(f, "unsupported allocator version {v}"),
            LayoutError::FrameBytes(b) => write!(f, "persisted frame size {b} != {FRAME_BYTES}"),
            LayoutError::TreeFrames(t) => write!(f, "persisted tree size {t} != {TREE_FRAMES}"),
            LayoutError::Frames { persisted, computed } => {
                write!(f, "persisted frame count {persisted} != computed {computed}")
            }
            LayoutError::CounterMismatch { tree, persisted, scanned } => write!(
                f,
                "tree {tree} free counter {persisted} disagrees with bitmap scan {scanned}"
            ),
            LayoutError::TailBits { word } => {
                write!(f, "bitmap word {word} has bits set beyond the last frame")
            }
        }
    }
}

impl From<LayoutError> for PaxError {
    fn from(e: LayoutError) -> Self {
        PaxError::Corrupt(format!("pax-alloc: {e}"))
    }
}

/// The computed carve-up of a space (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Total allocatable frames.
    pub frames: u64,
    /// Number of trees (last one may be partial).
    pub trees: u64,
    /// Number of 64-bit bitmap words.
    pub words: u64,
    /// Byte offset of the first per-tree counter.
    pub counters_off: u64,
    /// Byte offset of frame 0 (64-aligned).
    pub data_start: u64,
    /// Capacity of the managed space.
    pub capacity: u64,
}

impl Geometry {
    /// Solves the carve-up for a space of `capacity` bytes, maximising the
    /// frame count that fits together with its own metadata.
    ///
    /// # Errors
    ///
    /// [`LayoutError::TooSmall`] when not even one frame fits.
    pub fn for_capacity(capacity: u64) -> Result<Geometry, LayoutError> {
        let fits = |frames: u64| {
            let g = Geometry::with_frames(frames, capacity);
            g.data_start + g.frames * FRAME_BYTES <= capacity
        };
        let mut frames = capacity.saturating_sub(HEADER_BYTES) / FRAME_BYTES;
        loop {
            if frames == 0 {
                return Err(LayoutError::TooSmall { capacity });
            }
            let g = Geometry::with_frames(frames, capacity);
            let end = g.data_start + g.frames * FRAME_BYTES;
            if end <= capacity {
                break;
            }
            // Shrink by at least the overshoot; metadata shrinks with the
            // frame count, so this converges in a handful of iterations.
            frames -= ((end - capacity).div_ceil(FRAME_BYTES)).max(1).min(frames);
        }
        // The shrink step may overshoot by a frame or two (it ignores the
        // metadata it frees up); climb back to the maximal fit.
        while fits(frames + 1) {
            frames += 1;
        }
        Ok(Geometry::with_frames(frames, capacity))
    }

    fn with_frames(frames: u64, capacity: u64) -> Geometry {
        let words = frames.div_ceil(64);
        let trees = frames.div_ceil(TREE_FRAMES);
        let counters_off = HEADER_BYTES + words * 8;
        let data_start = (counters_off + trees * 4).next_multiple_of(64);
        Geometry { frames, trees, words, counters_off, data_start, capacity }
    }

    /// Byte address of `frame`.
    pub fn frame_addr(&self, frame: u64) -> u64 {
        self.data_start + frame * FRAME_BYTES
    }

    /// Frame index of byte address `addr`, when `addr` is exactly a frame
    /// start inside the data region.
    pub fn frame_of(&self, addr: u64) -> Option<u64> {
        if addr < self.data_start {
            return None;
        }
        let off = addr - self.data_start;
        if !off.is_multiple_of(FRAME_BYTES) {
            return None;
        }
        let frame = off / FRAME_BYTES;
        (frame < self.frames).then_some(frame)
    }

    /// Tree index of `frame`.
    pub fn tree_of(frame: u64) -> u64 {
        frame / TREE_FRAMES
    }

    /// Frames in tree `tree` (the last tree may be partial).
    pub fn frames_in_tree(&self, tree: u64) -> u64 {
        (self.frames - tree * TREE_FRAMES).min(TREE_FRAMES)
    }

    /// Byte address of bitmap word `word`.
    pub fn word_addr(&self, word: u64) -> u64 {
        HEADER_BYTES + word * 8
    }

    /// Byte address of the persisted free counter of tree `tree`.
    pub fn counter_addr(&self, tree: u64) -> u64 {
        self.counters_off + tree * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_fits_its_capacity() {
        for cap in [4096u64, 1 << 16, 1 << 20, (1 << 20) + 37, 1 << 26] {
            let g = Geometry::for_capacity(cap).unwrap();
            assert!(g.data_start + g.frames * FRAME_BYTES <= cap, "overflow at cap {cap}");
            assert_eq!(g.data_start % 64, 0);
            assert_eq!(g.words, g.frames.div_ceil(64));
            assert_eq!(g.trees, g.frames.div_ceil(TREE_FRAMES));
            // Maximality: one more frame must not fit.
            let g2 = Geometry::with_frames(g.frames + 1, cap);
            assert!(g2.data_start + g2.frames * FRAME_BYTES > cap, "not maximal at cap {cap}");
        }
    }

    #[test]
    fn tiny_spaces_are_rejected() {
        assert_eq!(Geometry::for_capacity(0), Err(LayoutError::TooSmall { capacity: 0 }));
        assert_eq!(Geometry::for_capacity(64), Err(LayoutError::TooSmall { capacity: 64 }));
        // Smallest viable space: header + 1 word + 1 counter padded + 1 frame.
        let g = Geometry::for_capacity(224).unwrap();
        assert!(g.frames >= 1);
    }

    #[test]
    fn frame_addressing_round_trips() {
        let g = Geometry::for_capacity(1 << 20).unwrap();
        for frame in [0, 1, 63, 64, g.frames - 1] {
            assert_eq!(g.frame_of(g.frame_addr(frame)), Some(frame));
        }
        assert_eq!(g.frame_of(g.data_start + 1), None, "misaligned");
        assert_eq!(g.frame_of(0), None, "inside metadata");
        assert_eq!(g.frame_of(g.frame_addr(g.frames)), None, "past the end");
    }

    #[test]
    fn last_tree_may_be_partial() {
        let g = Geometry::for_capacity(1 << 20).unwrap();
        let full: u64 = (0..g.trees).map(|t| g.frames_in_tree(t)).sum();
        assert_eq!(full, g.frames);
        assert!(g.frames_in_tree(g.trees - 1) <= TREE_FRAMES);
    }

    #[test]
    fn layout_error_display_and_conversion() {
        let e = LayoutError::CounterMismatch { tree: 3, persisted: 9, scanned: 8 };
        let p: PaxError = e.into();
        assert!(p.to_string().contains("tree 3"));
    }
}
