//! Recovery: rebuild the volatile index by scanning the persistent
//! bitmap.
//!
//! The allocator's only durable truth is the frame bitmap (plus the
//! per-tree counters as a cross-check). Everything volatile — per-core
//! claims, cursors, the tree free-count index — is reconstructed here by
//! one linear scan, which runs on *every* attach: construction and
//! recovery are the same code path (§3.4). The scan cost is recorded in
//! [`RecoveryStats`] so benchmarks can assert it stays linear in the
//! pool's frame count.

use crate::{MemSpace, Result};

use super::layout::{Geometry, LayoutError};

/// What the attach-time scan did, for telemetry and the recovery-cost
/// bound in CI (`allocbench` emits these per pool size).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Frames whose bit the scan examined (== the pool's frame count).
    pub scanned_frames: u64,
    /// Frames found allocated.
    pub live_frames: u64,
    /// Total scan work in frame units (examination plus counter
    /// verification); the CI bound asserts this is linear in
    /// `scanned_frames`.
    pub scan_steps: u64,
}

/// Scans the whole bitmap, verifies the per-tree persisted counters, and
/// returns the volatile free count per tree plus the scan stats.
///
/// # Errors
///
/// [`LayoutError::CounterMismatch`] (as [`PaxError::Corrupt`](crate::PaxError::Corrupt))
/// when a persisted counter disagrees with the bits, and
/// [`LayoutError::TailBits`] when bits are set past the last frame.
pub(crate) fn rebuild<S: MemSpace>(
    space: &S,
    geom: &Geometry,
) -> Result<(Vec<u32>, RecoveryStats)> {
    // One bulk read of the bitmap region: 1 bit per frame, so even a
    // 16M-frame pool reads only 2 MiB here.
    let mut raw = vec![0u8; (geom.words * 8) as usize];
    space.read_bytes(geom.word_addr(0), &mut raw)?;
    let words: Vec<u64> =
        raw.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();

    // Bits past the last frame must be clear (they are never allocatable).
    let tail = geom.frames % 64;
    if tail != 0 && words[(geom.words - 1) as usize] & (!0u64 << tail) != 0 {
        return Err(LayoutError::TailBits { word: geom.words - 1 }.into());
    }

    let mut free = Vec::with_capacity(geom.trees as usize);
    let mut live = 0u64;
    let mut steps = 0u64;
    for tree in 0..geom.trees {
        let nframes = geom.frames_in_tree(tree);
        let first_word = (tree * super::layout::TREE_FRAMES) / 64;
        let nwords = nframes.div_ceil(64);
        let mut used = 0u64;
        for w in first_word..first_word + nwords {
            used += words[w as usize].count_ones() as u64;
        }
        steps += nframes;
        let scanned = (nframes - used) as u32;
        let persisted = space.read_u32(geom.counter_addr(tree))?;
        if persisted != scanned {
            return Err(LayoutError::CounterMismatch { tree, persisted, scanned }.into());
        }
        free.push(scanned);
        live += used;
    }
    Ok((free, RecoveryStats { scanned_frames: geom.frames, live_frames: live, scan_steps: steps }))
}
