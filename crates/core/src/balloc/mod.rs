//! A scalable crash-consistent vPM allocator in the style of llfree:
//! per-core tree claims over a hierarchical persistent bitmap.
//!
//! The first-fit [`Heap`](crate::Heap) is correct but serial: one free
//! list, one lock, O(list) frees. This module provides [`BitmapAlloc`],
//! a drop-in [`PmAllocator`] with the same §3.4 crash-consistency story
//! and a multicore-friendly design — and, since PR 10, the **default**
//! pool allocator behind [`Persistent::new`](crate::Persistent::new)
//! (`Heap` stays available through `new_in` as the differential
//! baseline):
//!
//! * **Persistent layer** ([`layout`], [`lower`]) — one allocation bit
//!   per 32-byte frame plus a `u32` free counter per 512-frame *tree*,
//!   all stored inside the managed space. When that space is a pool's
//!   vPM, the PAX device's undo logging rolls allocator metadata back
//!   together with user data; no allocator-specific logging exists.
//! * **Volatile layer** ([`upper`]) — per-core claimed trees and an
//!   atomic per-tree index. A core allocates from its claimed tree
//!   without touching any other core's state; when its tree runs dry it
//!   reserves another (partial first, then empty, then stealing).
//! * **Recovery == construction** ([`recover`]) — every `attach` scans
//!   the bitmap once, verifies the persisted counters, and rebuilds the
//!   volatile layer. There is no separate recovery path (§3.4).
//!
//! # Example
//!
//! ```
//! use libpax::{BitmapAlloc, PmAllocator, PVec, VolatileSpace};
//!
//! # fn main() -> libpax::Result<()> {
//! let alloc = BitmapAlloc::attach(VolatileSpace::new(1 << 20))?;
//! // The same structure code that runs over Heap runs over BitmapAlloc.
//! let v: PVec<u64, _, _> = PVec::attach(alloc.clone())?;
//! v.push(7)?;
//! assert_eq!(v.get(0)?, Some(7));
//! # Ok(())
//! # }
//! ```

pub mod layout;
pub(crate) mod lower;
pub mod recover;
pub(crate) mod upper;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{MemSpace, PaxError, PmAllocator, Result};
use pax_telemetry::{Counter, MetricSet, MetricSnapshot};

use layout::{Geometry, LayoutError, FRAME_BYTES, MAGIC, TREE_FRAMES, VERSION};
use recover::RecoveryStats;
use upper::{Reserved, TreeIndex};

/// Default number of per-core caches when [`BitmapAlloc::attach`] is
/// used; callers with real thread counts use
/// [`BitmapAlloc::attach_with_cores`].
pub const DEFAULT_CORES: usize = 4;

/// How many trees a single allocation will reserve-and-probe before
/// falling back to the exhaustive span scan (fragmented trees can have
/// enough free frames but no contiguous run).
const RESERVE_ATTEMPTS: usize = 4;

#[derive(Debug)]
struct CoreCache {
    /// Claimed tree + 1; 0 = none.
    tree: AtomicU64,
    /// Next in-tree frame offset to probe (ring cursor).
    cursor: AtomicU64,
}

#[derive(Debug)]
struct Shared {
    geom: Geometry,
    index: TreeIndex,
    cores: Vec<CoreCache>,
    /// Serializes multi-tree span allocations (rare, > 16 KiB requests
    /// or the everything-is-fragmented fallback).
    span_lock: Mutex<()>,
    recovery: RecoveryStats,
    metrics: MetricSet,
    c_fast: Counter,
    c_steals: Counter,
    c_scan: Counter,
    c_span: Counter,
    c_reserves: Counter,
    g_live: Counter,
    g_frag: Counter,
}

/// The llfree-style bitmap allocator (see crate docs).
///
/// Cloning is cheap and shares all state; [`BitmapAlloc::for_core`]
/// produces a handle bound to a different per-core cache, which is how
/// worker threads avoid contending on one tree.
#[derive(Debug, Clone)]
pub struct BitmapAlloc<S: MemSpace> {
    space: S,
    shared: Arc<Shared>,
    core: usize,
}

impl<S: MemSpace> BitmapAlloc<S> {
    /// Formats or recovers the allocator over `space` with
    /// [`DEFAULT_CORES`] per-core caches.
    ///
    /// # Errors
    ///
    /// [`PaxError::Corrupt`] for undersized spaces, foreign magic, or
    /// counter/bitmap disagreement; propagates space I/O errors.
    pub fn attach(space: S) -> Result<Self> {
        Self::attach_with_cores(space, DEFAULT_CORES)
    }

    /// [`BitmapAlloc::attach`] with an explicit per-core cache count.
    ///
    /// # Errors
    ///
    /// See [`BitmapAlloc::attach`].
    pub fn attach_with_cores(space: S, cores: usize) -> Result<Self> {
        let cores = cores.max(1);
        let geom = Geometry::for_capacity(space.capacity_bytes()).map_err(PaxError::from)?;
        match space.read_u64(layout::OFF_MAGIC)? {
            0 => Self::format(&space, &geom)?,
            MAGIC => Self::validate_header(&space, &geom)?,
            other => return Err(LayoutError::BadMagic(other).into()),
        }
        // Construction and recovery are the same scan (§3.4).
        let (free, recovery) = recover::rebuild(&space, &geom)?;

        let mut metrics = MetricSet::new("alloc");
        let c_fast = metrics.counter("alloc_fast_hits");
        let c_steals = metrics.counter("alloc_tree_steals");
        let c_scan = metrics.counter("alloc_scan_frames");
        let c_span = metrics.counter("alloc_span_allocs");
        let c_reserves = metrics.counter("alloc_reserves");
        let g_live = metrics.counter("alloc_live_frames");
        let g_frag = metrics.counter("alloc_frag_permille");
        metrics.add(c_scan, recovery.scan_steps);

        let shared = Shared {
            index: TreeIndex::new(&free),
            cores: (0..cores)
                .map(|_| CoreCache { tree: AtomicU64::new(0), cursor: AtomicU64::new(0) })
                .collect(),
            span_lock: Mutex::new(()),
            geom,
            recovery,
            metrics,
            c_fast,
            c_steals,
            c_scan,
            c_span,
            c_reserves,
            g_live,
            g_frag,
        };
        Ok(BitmapAlloc { space, shared: Arc::new(shared), core: 0 })
    }

    /// A handle for core `core` (modulo the configured core count):
    /// same allocator, different per-core cache.
    pub fn for_core(&self, core: usize) -> Self {
        let mut h = self.clone();
        h.core = core % self.shared.cores.len();
        h
    }

    /// The computed space carve-up.
    pub fn geometry(&self) -> &Geometry {
        &self.shared.geom
    }

    /// What the attach-time bitmap scan saw (the recovery cost).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.shared.recovery
    }

    /// Allocated frames right now (volatile view).
    pub fn live_frames(&self) -> u64 {
        let g = &self.shared.geom;
        let free: u64 = self.shared.index.trees.iter().map(|t| t.free()).sum();
        g.frames - free
    }

    /// External fragmentation gauge: permille of trees that are neither
    /// empty nor full. A workload that allocates and frees without
    /// spreading stays near 0; pathological interleaving drives it
    /// toward 1000.
    pub fn fragmentation_permille(&self) -> u64 {
        let g = &self.shared.geom;
        let partial = (0..g.trees)
            .filter(|&t| {
                let f = self.shared.index.trees[t as usize].free();
                f != 0 && f != g.frames_in_tree(t)
            })
            .count() as u64;
        partial * 1000 / g.trees.max(1)
    }

    /// Telemetry snapshot (`alloc_fast_hits`, `alloc_tree_steals`,
    /// `alloc_scan_frames`, `alloc_span_allocs`, `alloc_reserves`, plus
    /// the `alloc_live_frames` / `alloc_frag_permille` gauges refreshed
    /// at snapshot time).
    pub fn metrics_snapshot(&self) -> MetricSnapshot {
        let s = &self.shared;
        for (gauge, now) in
            [(s.g_live, self.live_frames()), (s.g_frag, self.fragmentation_permille())]
        {
            let cur = s.metrics.get(gauge);
            if now >= cur {
                s.metrics.add(gauge, now - cur);
            } else {
                s.metrics.sub(gauge, cur - now);
            }
        }
        s.metrics.snapshot()
    }

    // -- formatting ------------------------------------------------------

    fn format(space: &S, geom: &Geometry) -> Result<()> {
        // A fresh space is zero-filled, but the space may be recycled:
        // clear the bitmap explicitly before declaring frames free.
        space.write_bytes(layout::HEADER_BYTES, &vec![0u8; (geom.words * 8) as usize])?;
        for t in 0..geom.trees {
            space.write_u32(geom.counter_addr(t), geom.frames_in_tree(t) as u32)?;
        }
        space.write_u64(layout::OFF_VERSION, VERSION)?;
        space.write_u64(layout::OFF_FRAMES, geom.frames)?;
        space.write_u64(layout::OFF_FRAME_BYTES, FRAME_BYTES)?;
        space.write_u64(layout::OFF_TREE_FRAMES, TREE_FRAMES)?;
        space.write_u64(layout::OFF_DATA_START, geom.data_start)?;
        space.write_u64(layout::OFF_ROOT, 0)?;
        // Magic last: a half-formatted space re-formats instead of
        // recovering garbage.
        space.write_u64(layout::OFF_MAGIC, MAGIC)
    }

    fn validate_header(space: &S, geom: &Geometry) -> Result<()> {
        let version = space.read_u64(layout::OFF_VERSION)?;
        if version != VERSION {
            return Err(LayoutError::BadVersion(version).into());
        }
        let fb = space.read_u64(layout::OFF_FRAME_BYTES)?;
        if fb != FRAME_BYTES {
            return Err(LayoutError::FrameBytes(fb).into());
        }
        let tf = space.read_u64(layout::OFF_TREE_FRAMES)?;
        if tf != TREE_FRAMES {
            return Err(LayoutError::TreeFrames(tf).into());
        }
        let frames = space.read_u64(layout::OFF_FRAMES)?;
        if frames != geom.frames {
            return Err(LayoutError::Frames { persisted: frames, computed: geom.frames }.into());
        }
        Ok(())
    }

    // -- allocation ------------------------------------------------------

    fn frames_for(len: u64) -> u64 {
        len.div_ceil(FRAME_BYTES).max(1)
    }

    /// Marks `[frame, frame + n)` allocated. Caller holds the tree lock
    /// (single-tree path) or the span lock plus each tree lock in turn.
    fn commit_run(&self, frame: u64, n: u64) -> Result<()> {
        let s = &self.shared;
        lower::flip_run(&self.space, &s.geom, frame, n, true)?;
        let mut left = n;
        let mut f = frame;
        while left > 0 {
            let tree = Geometry::tree_of(f);
            let in_tree = (s.geom.frames_in_tree(tree) - f % TREE_FRAMES).min(left);
            let addr = s.geom.counter_addr(tree);
            let cur = self.space.read_u32(addr)?;
            self.space.write_u32(addr, cur - in_tree as u32)?;
            s.index.trees[tree as usize].sub_free(in_tree);
            f += in_tree;
            left -= in_tree;
        }
        Ok(())
    }

    fn alloc_in_tree(&self, tree: u64, need: u64, from_cache: bool) -> Result<Option<u64>> {
        let s = &self.shared;
        let entry = &s.index.trees[tree as usize];
        let _g = entry.lock.lock();
        let nframes = s.geom.frames_in_tree(tree);
        let base = tree * TREE_FRAMES;
        let words = lower::load_words(&self.space, &s.geom, base, nframes)?;
        let cursor = s.cores[self.core].cursor.load(Ordering::Relaxed) % nframes.max(1);
        let scan = lower::find_run(&words, nframes, need, if from_cache { cursor } else { 0 });
        s.metrics.add(s.c_scan, scan.steps);
        let Some(off) = scan.found else {
            return Ok(None);
        };
        self.commit_run(base + off, need)?;
        s.cores[self.core].cursor.store(off + need, Ordering::Relaxed);
        if from_cache {
            s.metrics.inc(s.c_fast);
        }
        Ok(Some(s.geom.frame_addr(base + off)))
    }

    /// The scalable path: the core's claimed tree, else reserve/steal.
    fn alloc_small(&self, need: u64) -> Result<Option<u64>> {
        let s = &self.shared;
        let cache = &s.cores[self.core];
        let mut skip = Vec::new();
        for _ in 0..RESERVE_ATTEMPTS {
            let cached = cache.tree.load(Ordering::Relaxed);
            let tree = if cached != 0 {
                cached - 1
            } else {
                match s.index.reserve(&s.geom, self.core, s.cores.len(), need, &skip) {
                    Some(r) => {
                        s.metrics.inc(s.c_reserves);
                        if matches!(r, Reserved::Stolen(_)) {
                            s.metrics.inc(s.c_steals);
                        }
                        cache.tree.store(r.tree() + 1, Ordering::Relaxed);
                        cache.cursor.store(0, Ordering::Relaxed);
                        r.tree()
                    }
                    None => return Ok(None),
                }
            };
            if let Some(addr) = self.alloc_in_tree(tree, need, cached != 0)? {
                return Ok(Some(addr));
            }
            // Dry or too fragmented: drop it and reserve elsewhere.
            s.index.trees[tree as usize].release();
            cache.tree.store(0, Ordering::Relaxed);
            skip.push(tree);
        }
        Ok(None)
    }

    /// The rare path: an exhaustive scan over the whole bitmap for runs
    /// larger than a tree or when per-tree probing failed. Holds the
    /// span lock, then each involved tree's lock in ascending order.
    fn alloc_span(&self, need: u64) -> Result<Option<u64>> {
        let s = &self.shared;
        let _span = s.span_lock.lock();
        let guards: Vec<_> = s.index.trees.iter().map(|t| t.lock.lock()).collect();
        let words = lower::load_words(&self.space, &s.geom, 0, s.geom.frames)?;
        let scan = lower::find_run(&words, s.geom.frames, need, 0);
        s.metrics.add(s.c_scan, scan.steps);
        s.metrics.inc(s.c_span);
        let Some(frame) = scan.found else {
            return Ok(None);
        };
        self.commit_run(frame, need)?;
        drop(guards);
        Ok(Some(s.geom.frame_addr(frame)))
    }
}

impl<S: MemSpace> PmAllocator<S> for BitmapAlloc<S> {
    fn space(&self) -> &S {
        &self.space
    }

    fn alloc(&self, len: u64) -> Result<u64> {
        let need = Self::frames_for(len);
        let got = if need <= TREE_FRAMES { self.alloc_small(need)? } else { None };
        match got {
            Some(addr) => Ok(addr),
            None => match self.alloc_span(need)? {
                Some(addr) => Ok(addr),
                None => Err(PaxError::OutOfMemory {
                    requested: len,
                    capacity: self.space.capacity_bytes(),
                }),
            },
        }
    }

    fn free(&self, addr: u64, len: u64) -> Result<()> {
        let s = &self.shared;
        let need = Self::frames_for(len);
        let frame = s.geom.frame_of(addr).ok_or_else(|| {
            PaxError::Corrupt(format!("pax-alloc: free of {addr:#x}, not a frame address"))
        })?;
        if frame + need > s.geom.frames {
            return Err(PaxError::Corrupt(format!(
                "pax-alloc: free of {need} frames at {frame} runs past the pool"
            )));
        }
        // Tree by tree, ascending, one lock at a time.
        let mut f = frame;
        let mut left = need;
        while left > 0 {
            let tree = Geometry::tree_of(f);
            let in_tree = (s.geom.frames_in_tree(tree) - f % TREE_FRAMES).min(left);
            let entry = &s.index.trees[tree as usize];
            let _g = entry.lock.lock();
            lower::flip_run(&self.space, &s.geom, f, in_tree, false)?;
            let caddr = s.geom.counter_addr(tree);
            let cur = self.space.read_u32(caddr)?;
            self.space.write_u32(caddr, cur + in_tree as u32)?;
            entry.add_free(in_tree);
            f += in_tree;
            left -= in_tree;
        }
        Ok(())
    }

    fn root(&self) -> Result<u64> {
        self.space.read_u64(layout::OFF_ROOT)
    }

    fn set_root(&self, addr: u64) -> Result<()> {
        self.space.write_u64(layout::OFF_ROOT, addr)
    }

    fn live_allocations(&self) -> Result<u64> {
        Ok(self.live_frames())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VolatileSpace;

    fn alloc_1m() -> BitmapAlloc<VolatileSpace> {
        BitmapAlloc::attach(VolatileSpace::new(1 << 20)).unwrap()
    }

    #[test]
    fn alloc_free_roundtrip_and_reuse() {
        let a = alloc_1m();
        let x = a.alloc(100).unwrap();
        let y = a.alloc(100).unwrap();
        assert_ne!(x, y);
        assert_eq!(x % 8, 0);
        assert_eq!(a.live_frames(), 8); // 2 * ceil(100/32)
        a.free(x, 100).unwrap();
        a.free(y, 100).unwrap();
        assert_eq!(a.live_frames(), 0);
        // Freed frames are reused rather than leaked.
        let z = a.alloc(100).unwrap();
        assert!(z >= a.geometry().data_start);
        a.free(z, 100).unwrap();
    }

    #[test]
    fn double_free_is_corrupt() {
        let a = alloc_1m();
        let x = a.alloc(64).unwrap();
        a.free(x, 64).unwrap();
        assert!(matches!(a.free(x, 64), Err(PaxError::Corrupt(_))));
        // Freeing an address never handed out (metadata region) too.
        assert!(matches!(a.free(8, 8), Err(PaxError::Corrupt(_))));
    }

    #[test]
    fn data_never_overlaps_metadata() {
        let a = alloc_1m();
        for _ in 0..100 {
            let x = a.alloc(256).unwrap();
            assert!(x >= a.geometry().data_start);
            assert!(x + 256 <= a.space().capacity_bytes());
        }
    }

    #[test]
    fn spans_larger_than_a_tree() {
        let a = alloc_1m();
        let big = TREE_FRAMES * FRAME_BYTES * 3; // 3 trees worth
        let x = a.alloc(big).unwrap();
        assert_eq!(a.live_frames(), TREE_FRAMES * 3);
        a.free(x, big).unwrap();
        assert_eq!(a.live_frames(), 0);
        let snap = a.metrics_snapshot();
        assert!(snap.counter("alloc_span_allocs") >= 1);
    }

    #[test]
    fn reattach_recovers_live_state() {
        let space = VolatileSpace::new(1 << 20);
        let (x, y);
        {
            let a = BitmapAlloc::attach(space.clone()).unwrap();
            x = a.alloc_bytes(b"persist me").unwrap();
            y = a.alloc(4096).unwrap();
            a.free(y, 4096).unwrap();
            a.set_root(x).unwrap();
        }
        let b = BitmapAlloc::attach(space).unwrap();
        assert_eq!(b.root().unwrap(), x);
        assert_eq!(b.live_frames(), 1);
        assert_eq!(b.recovery_stats().live_frames, 1);
        assert_eq!(b.recovery_stats().scanned_frames, b.geometry().frames);
        let mut buf = [0u8; 10];
        b.space().read_bytes(x, &mut buf).unwrap();
        assert_eq!(&buf, b"persist me");
        // y's frames came back: allocating them again must not collide.
        let z = b.alloc(4096).unwrap();
        assert!(z + 4096 <= b.space().capacity_bytes());
        let _ = y;
    }

    #[test]
    fn counter_mismatch_is_detected_on_attach() {
        let space = VolatileSpace::new(1 << 20);
        let g;
        {
            let a = BitmapAlloc::attach(space.clone()).unwrap();
            a.alloc(64).unwrap();
            g = *a.geometry();
        }
        // Corrupt tree 0's persisted counter.
        let cur = space.read_u32(g.counter_addr(0)).unwrap();
        space.write_u32(g.counter_addr(0), cur + 1).unwrap();
        let err = BitmapAlloc::attach(space).unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");
    }

    #[test]
    fn foreign_magic_is_rejected() {
        let space = VolatileSpace::new(1 << 20);
        space.write_u64(0, 0x1234).unwrap();
        assert!(BitmapAlloc::attach(space).is_err());
    }

    #[test]
    fn out_of_memory_is_reported_not_looped() {
        let a = BitmapAlloc::attach(VolatileSpace::new(4096)).unwrap();
        let frames = a.geometry().frames;
        let x = a.alloc(frames * FRAME_BYTES).unwrap();
        assert!(matches!(a.alloc(32), Err(PaxError::OutOfMemory { .. })));
        a.free(x, frames * FRAME_BYTES).unwrap();
        assert!(a.alloc(32).is_ok());
    }

    #[test]
    fn per_core_handles_use_distinct_trees() {
        let a = BitmapAlloc::attach_with_cores(VolatileSpace::new(1 << 20), 2).unwrap();
        let b = a.for_core(1);
        let xa = a.alloc(32).unwrap();
        let xb = b.alloc(32).unwrap();
        let ta = Geometry::tree_of(a.geometry().frame_of(xa).unwrap());
        let tb = Geometry::tree_of(b.geometry().frame_of(xb).unwrap());
        assert_ne!(ta, tb, "cores should claim different trees");
        // Second allocs hit the claimed-tree fast path.
        a.alloc(32).unwrap();
        b.alloc(32).unwrap();
        assert!(a.metrics_snapshot().counter("alloc_fast_hits") >= 2);
    }

    #[test]
    fn fragmentation_gauge_moves() {
        let a = alloc_1m();
        assert_eq!(a.fragmentation_permille(), 0);
        let x = a.alloc(32).unwrap();
        assert!(a.fragmentation_permille() > 0);
        a.free(x, 32).unwrap();
        assert_eq!(a.fragmentation_permille(), 0);
    }

    #[test]
    fn parallel_allocs_are_disjoint() {
        let a = BitmapAlloc::attach_with_cores(crate::StripedSpace::new(1 << 20), 4).unwrap();
        let mut handles = Vec::new();
        for core in 0..4 {
            let h = a.for_core(core);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..200u64 {
                    let len = 32 + (i % 7) * 32;
                    let addr = h.alloc(len).unwrap();
                    got.push((addr, len));
                }
                for (addr, len) in &got[..100] {
                    h.free(*addr, *len).unwrap();
                }
                got[100..].to_vec()
            }));
        }
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for h in handles {
            for (addr, len) in h.join().unwrap() {
                intervals.push((
                    addr,
                    addr + BitmapAlloc::<VolatileSpace>::frames_for(len) * FRAME_BYTES,
                ));
            }
        }
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
        assert_eq!(a.live_frames(), intervals.iter().map(|(s, e)| (e - s) / FRAME_BYTES).sum());
    }
}
