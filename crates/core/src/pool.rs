//! Pool orchestration: host cache + PAX device + vPM mapping.
//!
//! [`PaxPool`] owns the simulated machine for one pool: the
//! [`PmPool`] media, the [`PaxDevice`](pax_device)
//! fronting it, and the host [`CoherentCache`]
//! through which every application access flows. [`VPm`] is the cheap,
//! cloneable [`MemSpace`] handle structures hold — the analogue of the
//! mapped vPM virtual address range in §3.1.
//!
//! Every `VPm` access walks the full interposition path: host cache →
//! (on miss) CXL request → device → HBM/undo log/PM. A crash at any point
//! loses exactly what real hardware would lose; recovery restores the
//! last `persist()` snapshot.
//!
//! # Concurrency
//!
//! `PaxPool`, [`PaxTenant`], and [`VPm`] are `Send + Sync`: N OS threads
//! may issue stores concurrently, each through its own core's cache
//! (§3.5). There is no global pool lock on the hot path — the engine
//! sits behind an [`RwLock`] taken in *read* mode by every access and
//! persist, so threads contend only on the fine-grained locks inside the
//! host model and the device (per-core caches, per-lane device shards,
//! the media). Only [`PaxPool::crash`] takes the write lock: power loss
//! is the one event that stops the machine. See `DESIGN.md` §11 for the
//! full lock hierarchy.

use std::path::Path;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use pax_cache::{
    CacheConfig, CacheStats, CoherentCache, ComplexStats, Hierarchy, HierarchyConfig,
    HierarchyStats, HostSnoop, SharedComplex,
};
use pax_device::{even_split, DeviceConfig, DeviceMetrics, PaxDevice, RecoveryReport, TenantId};
use pax_pm::{CrashClock, LineAddr, PersistencyModel, PmError, PmPool, PoolConfig, LINE_SIZE};
use pax_telemetry::{MetricSet, MetricSnapshot, TelemetrySnapshot, TraceBuf};

use crate::error::PaxError;
use crate::space::MemSpace;
use crate::Result;

/// Everything needed to build a PAX-backed pool.
#[derive(Debug, Clone, Copy)]
pub struct PaxConfig {
    /// PM pool sizing and persistence domain.
    pub pool: PoolConfig,
    /// PAX device tuning.
    pub device: DeviceConfig,
    /// Host cache geometry (the functional coherence unit).
    pub cache: CacheConfig,
    /// Attach a tag-only L1/L2/LLC instrument for miss-rate measurement
    /// (Fig. 2a methodology); `None` skips the overhead.
    pub instrument: Option<HierarchyConfig>,
    /// Host cores. 1 models the socket as one coherence unit; more give
    /// per-core caches with core-to-core transfers (§3.5) — access them
    /// through [`PaxPool::vpm_for_core`].
    pub cores: usize,
    /// When the undo-log region fills mid-epoch, transparently `persist()`
    /// and retry instead of surfacing `LogFull` — the paper's "libpax can
    /// issue persist() periodically to limit undo log growth" (§3.2).
    pub auto_persist_on_log_full: bool,
    /// Pool contexts (tenants) the device hosts. 1 is the classic
    /// single-pool device; more splits the vPM range evenly into
    /// independent tenant extents, each with its own epoch counter and
    /// recovery state — attach to one with [`PaxPool::attach`].
    pub tenants: usize,
}

impl PaxConfig {
    /// Returns the config with a different pool configuration.
    pub fn with_pool(mut self, pool: PoolConfig) -> Self {
        self.pool = pool;
        self
    }

    /// Returns the config with a different device configuration.
    pub fn with_device(mut self, device: DeviceConfig) -> Self {
        self.device = device;
        self
    }

    /// Returns the config with a different host-cache geometry.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Returns the config with miss-rate instrumentation enabled.
    pub fn with_instrumentation(mut self, h: HierarchyConfig) -> Self {
        self.instrument = Some(h);
        self
    }

    /// Returns the config with a multi-core host model.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_cores(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one core");
        self.cores = n;
        self
    }

    /// Returns the config with automatic persist-on-log-full enabled.
    pub fn with_auto_persist_on_log_full(mut self) -> Self {
        self.auto_persist_on_log_full = true;
        self
    }

    /// Returns the config hosting `n` tenant pool contexts (even vPM
    /// split, equal scheduler weights). A zero count is rejected when the
    /// pool opens.
    pub fn with_tenants(mut self, n: usize) -> Self {
        self.tenants = n;
        self
    }

    /// Returns the config with a different persistency model (see
    /// [`PersistencyModel`]): the ordering/durability contract the pool
    /// layer, device drain engine, scheduler, and recovery all enforce.
    /// The default, [`PersistencyModel::Epoch`], is the engine's
    /// historical behavior. Shorthand for setting
    /// [`DeviceConfig::persistency`] on [`PaxConfig::device`].
    pub fn with_persistency(mut self, model: PersistencyModel) -> Self {
        self.device.persistency = model;
        self
    }
}

impl Default for PaxConfig {
    fn default() -> Self {
        PaxConfig {
            pool: PoolConfig::small(),
            device: DeviceConfig::default(),
            cache: CacheConfig::tiny(64 << 10, 8),
            instrument: None,
            cores: 1,
            auto_persist_on_log_full: false,
            tenants: 1,
        }
    }
}

/// The host's cache model: one coherence unit behind its own lock, or
/// per-core caches with core-to-core transfers (§3.5), each behind its
/// own lock so different cores' accesses proceed in parallel.
#[derive(Debug)]
enum HostModel {
    Single(Mutex<CoherentCache>),
    Multi(SharedComplex),
}

impl HostModel {
    fn new(cores: usize, config: CacheConfig) -> Self {
        if cores <= 1 {
            HostModel::Single(Mutex::new(CoherentCache::new(config)))
        } else {
            HostModel::Multi(SharedComplex::new(cores, config))
        }
    }

    fn cores(&self) -> usize {
        match self {
            HostModel::Single(_) => 1,
            HostModel::Multi(cx) => cx.cores(),
        }
    }

    fn read(
        &self,
        core: usize,
        addr: LineAddr,
        device: &PaxDevice,
    ) -> pax_pm::Result<pax_pm::CacheLine> {
        let mut home = device;
        match self {
            HostModel::Single(c) => c.lock().read(addr, &mut home),
            // The sharded route: same protocol, but the access is
            // accounted to the device shard owning the line, so telemetry
            // can show how the interleave spreads a multi-core workload.
            HostModel::Multi(cx) => cx.read_on(core, addr, &mut home),
        }
    }

    fn write(
        &self,
        core: usize,
        addr: LineAddr,
        data: pax_pm::CacheLine,
        device: &PaxDevice,
    ) -> pax_pm::Result<()> {
        let mut home = device;
        match self {
            HostModel::Single(c) => c.lock().write(addr, data, &mut home),
            HostModel::Multi(cx) => cx.write_on(core, addr, data, &mut home),
        }
    }

    /// A read-modify-write. Per §3.5 the structure layer serializes its
    /// own conflicting same-line accesses, so the load and the store are
    /// two ordinary protocol operations, not an atomic pair.
    fn update(
        &self,
        core: usize,
        addr: LineAddr,
        device: &PaxDevice,
        f: impl FnOnce(&mut pax_pm::CacheLine),
    ) -> pax_pm::Result<()> {
        let mut line = self.read(core, addr, device)?;
        f(&mut line);
        self.write(core, addr, line, device)
    }

    /// Discards all cache state at power loss.
    fn crash_discard(&self) {
        match self {
            HostModel::Single(c) => c
                .lock()
                .crash(pax_pm::PersistenceDomain::Adr, &mut NullHome)
                .expect("discarding cache state cannot fail"),
            HostModel::Multi(cx) => cx
                .crash(pax_pm::PersistenceDomain::Adr, &mut NullHome)
                .expect("discarding cache state cannot fail"),
        }
    }

    fn cache_stats(&self) -> CacheStats {
        match self {
            HostModel::Single(c) => c.lock().stats(),
            HostModel::Multi(cx) => cx.core_stats(0),
        }
    }

    fn complex_stats(&self) -> Option<ComplexStats> {
        match self {
            HostModel::Single(_) => None,
            HostModel::Multi(cx) => Some(cx.stats()),
        }
    }

    fn shard_traffic(&self) -> Option<Vec<u64>> {
        match self {
            HostModel::Single(_) => None,
            HostModel::Multi(cx) => Some(cx.shard_traffic()),
        }
    }

    /// Metric snapshots in stack order (`host_cache`, plus
    /// `core_complex` for multi-core hosts).
    fn metric_components(&self) -> Vec<MetricSnapshot> {
        match self {
            HostModel::Single(c) => vec![c.lock().metrics()],
            HostModel::Multi(cx) => vec![cx.cache_metrics(), cx.metrics()],
        }
    }
}

/// Persist paths snoop the host through `&HostModel`: the device calls
/// back into the host model while holding no host lock itself, and each
/// snoop locks one core at a time.
impl HostSnoop for &HostModel {
    fn snoop_shared(&mut self, addr: LineAddr) -> Option<pax_pm::CacheLine> {
        match *self {
            HostModel::Single(c) => c.lock().snoop_shared(addr),
            HostModel::Multi(cx) => cx.snoop_shared_all(addr),
        }
    }

    fn snoop_invalidate(&mut self, addr: LineAddr) -> Option<pax_pm::CacheLine> {
        match *self {
            HostModel::Single(c) => c.lock().snoop_invalidate(addr),
            HostModel::Multi(cx) => cx.snoop_invalidate_all(addr),
        }
    }
}

/// Forensic state preserved across a simulated power loss: the trace,
/// final metric snapshots, and final stats views a debugger attached to
/// the dead machine would still hold.
#[derive(Debug)]
struct PostCrash {
    trace: TraceBuf,
    /// Final snapshots in full stack order: host cache (plus
    /// `core_complex`), instrumentation, `cxl`, `device`, `media`.
    components: Vec<MetricSnapshot>,
    cache_stats: CacheStats,
    complex_stats: Option<ComplexStats>,
    shard_traffic: Option<Vec<u64>>,
    hier_stats: Option<HierarchyStats>,
}

/// The running machine: everything that dies at power loss.
#[derive(Debug)]
struct Engine {
    device: PaxDevice,
    host: HostModel,
    /// Tag-only miss-rate instrument; its own lock because it is pure
    /// telemetry — it must not serialize the access path it measures
    /// beyond its own bookkeeping.
    hier: Option<Mutex<Hierarchy>>,
}

#[derive(Debug)]
struct Inner {
    /// `None` after a simulated power loss: subsequent accesses fail with
    /// the crash error, like a real process whose mapping died. Accesses
    /// and persists share the read side; only `crash` writes.
    engine: RwLock<Option<Engine>>,
    /// Populated by [`PaxPool::crash`] so telemetry and the trace dump
    /// stay readable post-mortem.
    post_crash: Mutex<Option<PostCrash>>,
    auto_persist_on_log_full: bool,
}

/// Live-engine projection of the read guard, or the crash error.
fn live(engine: &Option<Engine>) -> Result<&Engine> {
    engine.as_ref().ok_or(PaxError::Pm(PmError::Crashed))
}

/// Sink for cache state discarded at a crash (nothing survives).
struct NullHome;

impl pax_cache::HomeAgent for NullHome {
    fn read_shared(&mut self, addr: LineAddr) -> pax_pm::Result<pax_pm::CacheLine> {
        Err(PmError::OutOfBounds { addr, capacity_lines: 0 })
    }

    fn read_own(&mut self, addr: LineAddr) -> pax_pm::Result<pax_pm::CacheLine> {
        Err(PmError::OutOfBounds { addr, capacity_lines: 0 })
    }

    fn clean_evict(&mut self, _addr: LineAddr) {}

    fn dirty_evict(&mut self, _addr: LineAddr, _data: pax_pm::CacheLine) -> pax_pm::Result<()> {
        Ok(())
    }
}

/// A live PAX-backed pool (see module docs).
#[derive(Debug, Clone)]
pub struct PaxPool {
    inner: Arc<Inner>,
    vpm_bytes: u64,
}

impl PaxPool {
    /// Creates a fresh pool with zeroed vPM.
    ///
    /// # Errors
    ///
    /// Propagates pool-layout and media errors.
    pub fn create(config: PaxConfig) -> Result<Self> {
        let pool = PmPool::create(config.pool)?;
        Self::open(pool, config)
    }

    /// Opens an existing [`PmPool`], running §3.4 recovery. Constructing a
    /// new pool and recovering one are the same operation.
    ///
    /// # Errors
    ///
    /// Propagates recovery/media errors.
    pub fn open(pool: PmPool, config: PaxConfig) -> Result<Self> {
        let vpm_bytes = pool.layout().data_lines * LINE_SIZE as u64;
        let regions = even_split(pool.layout().data_lines, config.tenants);
        let device = PaxDevice::open_multi(pool, config.device, regions)?;
        Ok(PaxPool {
            inner: Arc::new(Inner {
                engine: RwLock::new(Some(Engine {
                    device,
                    host: HostModel::new(config.cores, config.cache),
                    hier: config.instrument.map(|h| Mutex::new(Hierarchy::new(h))),
                })),
                post_crash: Mutex::new(None),
                auto_persist_on_log_full: config.auto_persist_on_log_full,
            }),
            vpm_bytes,
        })
    }

    /// Maps a pool file: loads it if `path` exists, creates it otherwise
    /// (the `map_pool("./ht.pool")` of Listing 1).
    ///
    /// # Errors
    ///
    /// Propagates file I/O and pool-format errors.
    pub fn map_file(path: impl AsRef<Path>, config: PaxConfig) -> Result<Self> {
        let path = path.as_ref();
        let pool = if path.exists() { PmPool::load(path)? } else { PmPool::create(config.pool)? };
        Self::open(pool, config)
    }

    /// The vPM handle applications and structures use (core 0's mapping
    /// on a multi-core host).
    pub fn vpm(&self) -> VPm {
        self.vpm_for_core(0)
    }

    /// A vPM handle whose accesses run through `core`'s private cache —
    /// hand one to each application thread for the §3.5 concurrency model.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range for the configured host.
    pub fn vpm_for_core(&self, core: usize) -> VPm {
        if let Some(e) = self.inner.engine.read().as_ref() {
            let cores = e.host.cores();
            assert!(core < cores, "core {core} out of range for {cores}-core host");
        }
        VPm { inner: Arc::clone(&self.inner), base_bytes: 0, vpm_bytes: self.vpm_bytes, core }
    }

    /// Attaches to tenant `t`'s pool context, returning a handle whose
    /// vPM window and persist operations cover only that tenant's extent
    /// — the multi-pool analogue of mapping one pool among many hosted by
    /// the same device.
    ///
    /// # Errors
    ///
    /// Fails with a config error for an out-of-range tenant, or if power
    /// was already lost.
    pub fn attach(&self, t: TenantId) -> Result<PaxTenant> {
        let engine = self.inner.engine.read();
        let e = live(&engine)?;
        if t >= e.device.tenant_count() {
            return Err(PaxError::Pm(PmError::Config(format!(
                "tenant {t} out of range for a {}-tenant pool",
                e.device.tenant_count()
            ))));
        }
        let region = e.device.tenants().region(t);
        Ok(PaxTenant {
            inner: Arc::clone(&self.inner),
            tenant: t,
            base_bytes: region.vpm_base * LINE_SIZE as u64,
            vpm_bytes: region.vpm_lines * LINE_SIZE as u64,
        })
    }

    /// Tenant pool contexts hosted by the device.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn tenant_count(&self) -> Result<usize> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.tenant_count())
    }

    /// Cross-core transfer statistics (multi-core hosts only).
    pub fn complex_stats(&self) -> Option<ComplexStats> {
        match self.inner.engine.read().as_ref() {
            Some(e) => e.host.complex_stats(),
            None => self.inner.post_crash.lock().as_ref().and_then(|pc| pc.complex_stats),
        }
    }

    /// Accesses routed per device shard by the multi-core host model
    /// (`None` for single-core hosts; empty until the first access).
    pub fn shard_traffic(&self) -> Option<Vec<u64>> {
        match self.inner.engine.read().as_ref() {
            Some(e) => e.host.shard_traffic(),
            None => self.inner.post_crash.lock().as_ref().and_then(|pc| pc.shard_traffic.clone()),
        }
    }

    /// Shards the device's per-line state is interleaved across.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn shard_count(&self) -> Result<usize> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.shard_count())
    }

    /// Ends the current epoch: durably commits a crash-consistent
    /// snapshot and returns its epoch number (§3.3).
    ///
    /// Per §3.5, the caller must ensure no thread is mid-operation;
    /// `PaxPool` serializes against *individual* accesses internally, but
    /// compound structure operations need application-level quiescence.
    ///
    /// # Errors
    ///
    /// Surfaces simulated crashes and media errors.
    pub fn persist(&self) -> Result<u64> {
        let engine = self.inner.engine.read();
        let e = live(&engine)?;
        Ok(e.device.persist(&mut &e.host)?)
    }

    /// Begins a **non-blocking** persist (the paper's §6 extension):
    /// captures the epoch's modified lines and returns its number
    /// immediately; the device drains it in the background while the
    /// application works in the next epoch. Durability holds only once
    /// the epoch commits — [`PaxPool::persist_poll`] reports it, or
    /// [`PaxPool::persist_wait`] blocks for it.
    ///
    /// # Errors
    ///
    /// Surfaces simulated crashes and media errors.
    pub fn persist_async(&self) -> Result<u64> {
        let engine = self.inner.engine.read();
        let e = live(&engine)?;
        Ok(e.device.persist_async(&mut &e.host)?)
    }

    /// Advances a non-blocking persist; `Some(epoch)` when it commits.
    ///
    /// # Errors
    ///
    /// Surfaces simulated crashes and media errors.
    pub fn persist_poll(&self) -> Result<Option<u64>> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.persist_poll()?)
    }

    /// Blocks until any non-blocking persist has committed.
    ///
    /// # Errors
    ///
    /// Surfaces simulated crashes and media errors.
    pub fn persist_wait(&self) -> Result<()> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.persist_wait()?)
    }

    /// The epoch currently draining from a non-blocking persist, if any.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn persist_pending(&self) -> Result<Option<u64>> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.persist_pending())
    }

    /// Advances the device's virtual-time scheduler by `ticks`: every
    /// shard's background engines (and any draining non-blocking persist)
    /// make their per-tick budget of progress, independent of foreground
    /// traffic. Returns the durable-write steps performed — the
    /// application-level handle on §3.2's "the device may write back a
    /// dirty line at any time once its undo entry is durable".
    ///
    /// # Errors
    ///
    /// Surfaces simulated crashes and media errors.
    pub fn run_device(&self, ticks: u64) -> Result<u64> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.tick(ticks)?)
    }

    /// Virtual ticks the device scheduler has executed
    /// ([`PaxPool::run_device`]).
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn device_ticks(&self) -> Result<u64> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.ticks_elapsed())
    }

    /// Simulates power loss, returning the pool's durable remains for a
    /// later [`PaxPool::open`]. All live handles to this pool start
    /// failing with a crash error.
    ///
    /// This is the only operation that takes the engine lock in write
    /// mode: it waits out every in-flight access, then stops the machine.
    ///
    /// # Errors
    ///
    /// Returns the crash error if power was already lost.
    pub fn crash(&self) -> Result<PmPool> {
        let mut engine = self.inner.engine.write();
        let Engine { device, host, hier } = engine.take().ok_or(PaxError::Pm(PmError::Crashed))?;
        // Host-cache contents die with power. Note that eADR would flush
        // dirty lines *to the device* — whose buffers are equally volatile
        // — so under PAX even eADR does not move the recovery point: it is
        // always the last committed epoch.
        host.crash_discard();
        let mut components = host.metric_components();
        if let Some(h) = &hier {
            components.push(h.lock().metrics());
        }
        components.push(Self::link_snapshot(&device.metrics()));
        let cache_stats = host.cache_stats();
        let complex_stats = host.complex_stats();
        let shard_traffic = host.shard_traffic();
        let hier_stats = hier.as_ref().map(|h| h.lock().stats());
        let (pm, trace, device_snapshot) = device.crash_into_parts();
        components.push(device_snapshot);
        components.push(pm.media_metrics());
        *self.inner.post_crash.lock() = Some(PostCrash {
            trace,
            components,
            cache_stats,
            complex_stats,
            shard_traffic,
            hier_stats,
        });
        Ok(pm)
    }

    /// Saves the pool's durable state to a file (reboot-to-file analogue
    /// of [`PaxPool::crash`], leaving this pool usable).
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors; fails after a crash.
    pub fn save_file(&self, path: impl AsRef<Path>) -> Result<()> {
        let engine = self.inner.engine.read();
        live(&engine)?.device.save(path)?;
        Ok(())
    }

    /// The crash clock shared with the device; arm it to cut power at an
    /// exact durable-write step.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn crash_clock(&self) -> Result<CrashClock> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.crash_clock())
    }

    /// The device's event counters.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn device_metrics(&self) -> Result<DeviceMetrics> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.metrics())
    }

    /// The host cache's event counters (core 0's on a multi-core host).
    pub fn cache_stats(&self) -> CacheStats {
        match self.inner.engine.read().as_ref() {
            Some(e) => e.host.cache_stats(),
            None => {
                self.inner.post_crash.lock().as_ref().map(|pc| pc.cache_stats).unwrap_or_default()
            }
        }
    }

    /// Miss-rate instrumentation counters, if enabled.
    pub fn hierarchy_stats(&self) -> Option<HierarchyStats> {
        match self.inner.engine.read().as_ref() {
            Some(e) => e.hier.as_ref().map(|h| h.lock().stats()),
            None => self.inner.post_crash.lock().as_ref().and_then(|pc| pc.hier_stats),
        }
    }

    /// The implied CXL link traffic of the synchronous host↔device path,
    /// in the same schema a [`pax_cxl::Transport`] records (`messages`,
    /// `data_bytes`): every request earns a response, and data crosses on
    /// read responses, dirty-evict payloads, and snoop data returns.
    fn link_snapshot(m: &DeviceMetrics) -> MetricSnapshot {
        let mut set = MetricSet::new("cxl");
        let messages = set.counter("messages");
        let data_bytes = set.counter("data_bytes");
        set.add(messages, 2 * m.total_messages());
        set.add(
            data_bytes,
            (m.rd_shared + m.rd_own + m.dirty_evicts + m.snoop_data_returned) * LINE_SIZE as u64,
        );
        set.snapshot()
    }

    /// One cross-layer snapshot of every component's metric registry, in
    /// stack order: host cache (plus `core_complex` and `cache_hierarchy`
    /// when configured), `cxl`, `device`, `media`.
    ///
    /// Works after a crash too: [`PaxPool::crash`] stashes every
    /// component's final snapshot, so post-mortem accounting (e.g. "how
    /// many undo entries had been appended when power died?") keeps
    /// working while accesses fail.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        match self.inner.engine.read().as_ref() {
            Some(e) => {
                let mut components = e.host.metric_components();
                if let Some(h) = &e.hier {
                    components.push(h.lock().metrics());
                }
                components.push(Self::link_snapshot(&e.device.metrics()));
                components.push(e.device.metric_snapshot());
                components.push(e.device.media_metrics());
                TelemetrySnapshot::new(components)
            }
            None => TelemetrySnapshot::new(
                self.inner
                    .post_crash
                    .lock()
                    .as_ref()
                    .map(|pc| pc.components.clone())
                    .unwrap_or_default(),
            ),
        }
    }

    /// The device's structured trace as JSON lines (oldest first).
    ///
    /// Live pools dump the device's current buffer; crashed pools dump
    /// the stashed final trace, whose last events are the log appends and
    /// the injected crash — the forensic record replay tooling consumes.
    pub fn trace_dump(&self) -> String {
        match self.inner.engine.read().as_ref() {
            Some(e) => e.device.trace_dump(),
            None => self
                .inner
                .post_crash
                .lock()
                .as_ref()
                .map(|pc| pc.trace.dump_json_lines())
                .unwrap_or_default(),
        }
    }

    /// The recovery report from when this pool was opened.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn recovery_report(&self) -> Result<RecoveryReport> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.recovery_report())
    }

    /// The committed (recovery-point) epoch.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn committed_epoch(&self) -> Result<u64> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.committed_epoch()?)
    }

    /// Bytes of vPM exposed to the application.
    pub fn vpm_bytes(&self) -> u64 {
        self.vpm_bytes
    }
}

/// A handle onto one tenant's pool context of a multi-tenant
/// [`PaxPool`]: its vPM window and its independent persist/epoch
/// operations. Cheap to clone; all handles share the one simulated
/// machine.
#[derive(Debug, Clone)]
pub struct PaxTenant {
    inner: Arc<Inner>,
    tenant: TenantId,
    base_bytes: u64,
    vpm_bytes: u64,
}

impl PaxTenant {
    /// This handle's tenant index.
    pub fn tenant_id(&self) -> TenantId {
        self.tenant
    }

    /// Bytes of vPM in this tenant's window.
    pub fn vpm_bytes(&self) -> u64 {
        self.vpm_bytes
    }

    /// The tenant's vPM mapping: address 0 is the tenant extent's base,
    /// and accesses past the extent fail the bounds check — one tenant
    /// cannot name another's lines through its own window.
    pub fn vpm(&self) -> VPm {
        self.vpm_for_core(0)
    }

    /// A vPM handle for this tenant running through `core`'s cache.
    pub fn vpm_for_core(&self, core: usize) -> VPm {
        VPm {
            inner: Arc::clone(&self.inner),
            base_bytes: self.base_bytes,
            vpm_bytes: self.vpm_bytes,
            core,
        }
    }

    /// Ends this tenant's epoch: a barrier over the tenant's own lanes
    /// only, ending in an atomic commit of its header epoch slot. Other
    /// tenants' in-flight epochs are never flushed or stalled.
    ///
    /// # Errors
    ///
    /// Surfaces simulated crashes and media errors.
    pub fn persist(&self) -> Result<u64> {
        let engine = self.inner.engine.read();
        let e = live(&engine)?;
        Ok(e.device.persist_tenant(self.tenant, &mut &e.host)?)
    }

    /// Begins a non-blocking persist of this tenant's epoch (§6).
    ///
    /// # Errors
    ///
    /// Surfaces simulated crashes and media errors.
    pub fn persist_async(&self) -> Result<u64> {
        let engine = self.inner.engine.read();
        let e = live(&engine)?;
        Ok(e.device.persist_async_tenant(self.tenant, &mut &e.host)?)
    }

    /// Advances this tenant's non-blocking persist; `Some(epoch)` when it
    /// commits.
    ///
    /// # Errors
    ///
    /// Surfaces simulated crashes and media errors.
    pub fn persist_poll(&self) -> Result<Option<u64>> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.persist_poll_tenant(self.tenant)?)
    }

    /// Completes this tenant's non-blocking persist, if one is draining.
    ///
    /// # Errors
    ///
    /// Surfaces simulated crashes and media errors.
    pub fn persist_wait(&self) -> Result<()> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.persist_wait_tenant(self.tenant)?)
    }

    /// The epoch this tenant is currently draining, if any.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn persist_pending(&self) -> Result<Option<u64>> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.persist_pending_tenant(self.tenant))
    }

    /// This tenant's committed (recovery-point) epoch.
    ///
    /// # Errors
    ///
    /// Fails if power was already lost.
    pub fn committed_epoch(&self) -> Result<u64> {
        let engine = self.inner.engine.read();
        Ok(live(&engine)?.device.committed_epoch_for(self.tenant)?)
    }
}

/// The mapped vPM range: a [`MemSpace`] whose every access runs the full
/// host-cache → CXL → device path (see module docs).
#[derive(Debug, Clone)]
pub struct VPm {
    inner: Arc<Inner>,
    /// First byte of the mapped window in device vPM space (non-zero for
    /// a tenant's mapping, whose address 0 is its extent's base).
    base_bytes: u64,
    /// Bytes in the window; the bounds check is against this extent.
    vpm_bytes: u64,
    /// Which core's cache this mapping's accesses run through.
    core: usize,
}

impl VPm {
    fn check(&self, addr: u64, len: usize) -> Result<()> {
        if addr.checked_add(len as u64).is_none_or(|end| end > self.vpm_bytes) {
            return Err(PaxError::Pm(PmError::OutOfBounds {
                addr: LineAddr::from_byte_addr(addr),
                capacity_lines: self.vpm_bytes / LINE_SIZE as u64,
            }));
        }
        Ok(())
    }

    /// Splits `[addr, addr+len)` into per-line `(line, offset, len)`
    /// pieces.
    fn pieces(addr: u64, len: usize) -> impl Iterator<Item = (LineAddr, usize, usize)> {
        let mut cur = addr;
        let end = addr + len as u64;
        std::iter::from_fn(move || {
            if cur >= end {
                return None;
            }
            let line = LineAddr::from_byte_addr(cur);
            let off = (cur - line.byte_addr()) as usize;
            let n = ((LINE_SIZE - off) as u64).min(end - cur) as usize;
            cur += n as u64;
            Some((line, off, n))
        })
    }
}

impl MemSpace for VPm {
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<()> {
        self.check(addr, buf.len())?;
        let engine = self.inner.engine.read();
        let e = live(&engine)?;
        let mut done = 0;
        for (line, off, n) in Self::pieces(self.base_bytes + addr, buf.len()) {
            if let Some(h) = &e.hier {
                h.lock().access(line);
            }
            let data = e.host.read(self.core, line, &e.device)?;
            buf[done..done + n].copy_from_slice(data.read_at(off, n));
            done += n;
        }
        Ok(())
    }

    fn write_bytes(&self, addr: u64, data: &[u8]) -> Result<()> {
        self.check(addr, data.len())?;
        let engine = self.inner.engine.read();
        let e = live(&engine)?;
        let mut done = 0;
        for (line, off, n) in Self::pieces(self.base_bytes + addr, data.len()) {
            if let Some(h) = &e.hier {
                h.lock().access(line);
            }
            let write_once = || {
                if off == 0 && n == LINE_SIZE {
                    e.host.write(
                        self.core,
                        line,
                        pax_pm::CacheLine::from_bytes(&data[done..done + n]),
                        &e.device,
                    )
                } else {
                    e.host.update(self.core, line, &e.device, |l| {
                        l.write_at(off, &data[done..done + n])
                    })
                }
            };
            match write_once() {
                Ok(()) => {
                    // Strict persistency: every completed line store is
                    // its own durable epoch. The barrier must run here,
                    // at the pool layer — the device acknowledges RdOwn
                    // before the host writes the new data, so only the
                    // store's completion point sees the value that has to
                    // become durable.
                    if e.device.persistency().persist_per_store() {
                        match e.device.tenant_of(line) {
                            Some(t) => e.device.persist_tenant(t, &mut &e.host)?,
                            None => e.device.persist(&mut &e.host)?,
                        };
                    }
                }
                Err(PmError::LogFull { .. }) if self.inner.auto_persist_on_log_full => {
                    // §3.2: persist periodically to limit undo log growth
                    // — here, exactly when growth hits the limit, and only
                    // for the tenant whose bank filled: another tenant's
                    // open epoch must not be committed on its behalf.
                    match e.device.tenant_of(line) {
                        Some(t) => e.device.persist_tenant(t, &mut &e.host)?,
                        None => e.device.persist(&mut &e.host)?,
                    };
                    write_once()?;
                }
                Err(err) => return Err(err.into()),
            }
            done += n;
        }
        Ok(())
    }

    fn capacity_bytes(&self) -> u64 {
        self.vpm_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read_round_trip() {
        let pool = PaxPool::create(PaxConfig::default()).unwrap();
        let vpm = pool.vpm();
        vpm.write_u64(128, 0xABCD).unwrap();
        assert_eq!(vpm.read_u64(128).unwrap(), 0xABCD);
    }

    #[test]
    fn unaligned_multi_line_access() {
        let pool = PaxPool::create(PaxConfig::default()).unwrap();
        let vpm = pool.vpm();
        // A write straddling three lines, at an odd offset.
        let data: Vec<u8> = (0..150u8).collect();
        vpm.write_bytes(61, &data).unwrap();
        let mut buf = vec![0u8; 150];
        vpm.read_bytes(61, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Neighbouring bytes untouched.
        assert_eq!(vpm.read_u32(56).unwrap(), 0);
    }

    #[test]
    fn bounds_checked() {
        let pool = PaxPool::create(PaxConfig::default()).unwrap();
        let vpm = pool.vpm();
        let cap = vpm.capacity_bytes();
        assert!(vpm.write_u64(cap - 8, 1).is_ok());
        assert!(vpm.write_u64(cap - 7, 1).is_err());
        assert!(vpm.read_u64(u64::MAX - 2).is_err());
    }

    #[test]
    fn persist_then_crash_then_reopen_preserves_data() {
        let pool = PaxPool::create(PaxConfig::default()).unwrap();
        let vpm = pool.vpm();
        vpm.write_u64(0, 11).unwrap();
        vpm.write_u64(4096, 22).unwrap();
        pool.persist().unwrap();
        vpm.write_u64(0, 99).unwrap(); // unpersisted

        let pm = pool.crash().unwrap();
        // Live handles now fail.
        assert!(vpm.read_u64(0).is_err());

        let reopened = PaxPool::open(pm, PaxConfig::default()).unwrap();
        let vpm2 = reopened.vpm();
        assert_eq!(vpm2.read_u64(0).unwrap(), 11, "rolled back to snapshot");
        assert_eq!(vpm2.read_u64(4096).unwrap(), 22);
    }

    #[test]
    fn instrumentation_counts_accesses() {
        let config = PaxConfig::default().with_instrumentation(HierarchyConfig::c6420());
        let pool = PaxPool::create(config).unwrap();
        let vpm = pool.vpm();
        vpm.write_u64(0, 1).unwrap();
        vpm.read_u64(0).unwrap();
        let stats = pool.hierarchy_stats().unwrap();
        assert!(stats.total_accesses() >= 2);
        assert!(PaxPool::create(PaxConfig::default()).unwrap().hierarchy_stats().is_none());
    }

    #[test]
    fn map_file_round_trip() {
        let dir = std::env::temp_dir().join("libpax-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map_file.pool");
        let _ = std::fs::remove_file(&path);

        let pool = PaxPool::map_file(&path, PaxConfig::default()).unwrap();
        pool.vpm().write_u64(8, 77).unwrap();
        pool.persist().unwrap();
        pool.save_file(&path).unwrap();
        drop(pool);

        let pool2 = PaxPool::map_file(&path, PaxConfig::default()).unwrap();
        assert_eq!(pool2.vpm().read_u64(8).unwrap(), 77);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sharded_multicore_pool_accounts_shard_traffic() {
        let config =
            PaxConfig::default().with_cores(4).with_device(DeviceConfig::default().with_shards(4));
        let pool = PaxPool::create(config).unwrap();
        assert_eq!(pool.shard_count().unwrap(), 4);
        // Each core writes its own stripe of lines; the interleave spreads
        // the accesses across all four shards.
        for core in 0..4usize {
            let vpm = pool.vpm_for_core(core);
            for i in 0..8u64 {
                vpm.write_u64((core as u64 * 8 + i) * LINE_SIZE as u64, i).unwrap();
            }
        }
        let traffic = pool.shard_traffic().unwrap();
        assert_eq!(traffic.len(), 4);
        assert!(traffic.iter().all(|&t| t > 0), "every shard saw traffic: {traffic:?}");
        // A sub-line write is a read-modify-write: two routed accesses per
        // store.
        assert_eq!(traffic.iter().sum::<u64>(), 64);
        // The shard dimension shows up in cross-layer telemetry, and the
        // merged device counters still reflect all shards.
        let t = pool.telemetry();
        assert_eq!(t.counter("device", "shards"), 4);
        assert_eq!(t.counter("device", "rd_own"), 32);
        pool.persist().unwrap();
        assert_eq!(pool.committed_epoch().unwrap(), 1);
    }

    #[test]
    fn single_core_pool_has_no_shard_traffic() {
        let pool = PaxPool::create(PaxConfig::default()).unwrap();
        pool.vpm().write_u64(0, 1).unwrap();
        assert!(pool.shard_traffic().is_none());
        assert_eq!(pool.shard_count().unwrap(), 1);
    }

    #[test]
    fn run_device_commits_an_async_persist_without_traffic() {
        // Pump interval so large that foreground requests never pump:
        // only explicit virtual ticks can drain the epoch.
        let config = PaxConfig::default()
            .with_device(DeviceConfig::default().with_log_pump_interval(usize::MAX));
        let pool = PaxPool::create(config).unwrap();
        let vpm = pool.vpm();
        for i in 0..8u64 {
            vpm.write_u64(i * LINE_SIZE as u64, i + 1).unwrap();
        }
        let epoch = pool.persist_async().unwrap();
        assert_eq!(pool.persist_pending().unwrap(), Some(epoch));
        let mut worked = 0;
        while pool.persist_pending().unwrap().is_some() {
            worked += pool.run_device(1).unwrap();
        }
        assert!(worked > 0);
        assert!(pool.device_ticks().unwrap() > 0);
        assert_eq!(pool.committed_epoch().unwrap(), epoch);
    }

    #[test]
    fn double_crash_is_an_error() {
        let pool = PaxPool::create(PaxConfig::default()).unwrap();
        pool.crash().unwrap();
        assert!(pool.crash().is_err());
        assert!(pool.persist().is_err());
    }

    #[test]
    fn tenants_have_windowed_vpm_and_independent_persist() {
        let pool = PaxPool::create(PaxConfig::default().with_tenants(2)).unwrap();
        assert_eq!(pool.tenant_count().unwrap(), 2);
        let a = pool.attach(0).unwrap();
        let b = pool.attach(1).unwrap();
        assert!(pool.attach(2).is_err());
        // Both tenants write at *their own* address 0 — distinct lines.
        a.vpm().write_u64(0, 0xA).unwrap();
        b.vpm().write_u64(0, 0xB).unwrap();
        assert_eq!(a.vpm().read_u64(0).unwrap(), 0xA);
        assert_eq!(b.vpm().read_u64(0).unwrap(), 0xB);
        // A window cannot reach past its extent.
        assert!(a.vpm().write_u64(a.vpm_bytes(), 1).is_err());
        // A's persist commits A's epoch only.
        assert_eq!(a.persist().unwrap(), 1);
        assert_eq!(a.committed_epoch().unwrap(), 1);
        assert_eq!(b.committed_epoch().unwrap(), 0);
    }

    #[test]
    fn tenant_crash_recovers_each_window_independently() {
        let config = PaxConfig::default().with_tenants(2);
        let pool = PaxPool::create(config).unwrap();
        let a = pool.attach(0).unwrap();
        let b = pool.attach(1).unwrap();
        a.vpm().write_u64(0, 1).unwrap();
        b.vpm().write_u64(0, 1).unwrap();
        a.persist().unwrap();
        b.persist().unwrap();
        a.vpm().write_u64(0, 2).unwrap();
        b.vpm().write_u64(0, 2).unwrap();
        b.persist().unwrap(); // only B's second epoch commits

        let pm = pool.crash().unwrap();
        let reopened = PaxPool::open(pm, config).unwrap();
        let a2 = reopened.attach(0).unwrap();
        let b2 = reopened.attach(1).unwrap();
        assert_eq!(a2.vpm().read_u64(0).unwrap(), 1, "A rolls back to its epoch 1");
        assert_eq!(b2.vpm().read_u64(0).unwrap(), 2, "B keeps its epoch 2");
        assert_eq!(a2.committed_epoch().unwrap(), 1);
        assert_eq!(b2.committed_epoch().unwrap(), 2);
    }

    #[test]
    fn log_full_auto_persist_commits_only_the_filling_tenant() {
        let mut cfg = PoolConfig::small();
        // A log region small enough to fill quickly once split across the
        // tenants' banks.
        cfg.log_bytes = 64 * LINE_SIZE;
        let config =
            PaxConfig::default().with_pool(cfg).with_tenants(2).with_auto_persist_on_log_full();
        let pool = PaxPool::create(config).unwrap();
        let a = pool.attach(0).unwrap();
        let b = pool.attach(1).unwrap();
        b.vpm().write_u64(0, 7).unwrap();
        // Hammer distinct lines through A until its bank must recycle.
        for i in 0..256u64 {
            a.vpm().write_u64((i % 128) * LINE_SIZE as u64, i).unwrap();
        }
        assert!(a.committed_epoch().unwrap() >= 1, "A auto-persisted on log full");
        assert_eq!(b.committed_epoch().unwrap(), 0, "B's open epoch was not committed for it");
    }

    #[test]
    fn pool_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PaxPool>();
        assert_send_sync::<PaxTenant>();
        assert_send_sync::<VPm>();
    }

    #[test]
    fn concurrent_tenant_threads_store_and_persist() {
        let config = PaxConfig::default()
            .with_cores(4)
            .with_tenants(4)
            .with_device(DeviceConfig::default().with_shards(4));
        let pool = PaxPool::create(config).unwrap();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let tenant = pool.attach(t).unwrap();
                s.spawn(move || {
                    let vpm = tenant.vpm_for_core(t);
                    let lines = tenant.vpm_bytes() / LINE_SIZE as u64;
                    for i in 0..64u64 {
                        vpm.write_u64((i % lines) * LINE_SIZE as u64, i + 1).unwrap();
                    }
                    tenant.persist().unwrap();
                });
            }
        });
        for t in 0..4 {
            let tenant = pool.attach(t).unwrap();
            assert_eq!(tenant.committed_epoch().unwrap(), 1);
            // Line 0's last writer is the largest i ≡ 0 (mod lines).
            let lines = tenant.vpm_bytes() / LINE_SIZE as u64;
            let expected = (63 / lines) * lines + 1;
            assert_eq!(tenant.vpm().read_u64(0).unwrap(), expected);
        }
    }

    #[test]
    fn telemetry_and_stats_survive_a_crash() {
        let config =
            PaxConfig::default().with_cores(2).with_device(DeviceConfig::default().with_shards(2));
        let pool = PaxPool::create(config).unwrap();
        pool.vpm().write_u64(0, 1).unwrap();
        let live_traffic = pool.shard_traffic().unwrap();
        pool.crash().unwrap();
        assert_eq!(pool.shard_traffic().unwrap(), live_traffic);
        assert!(pool.complex_stats().is_some());
        assert!(pool.telemetry().counter("device", "rd_own") >= 1);
        assert!(pool.trace_dump().contains("crash"));
    }
}
