//! The persistent heap: a first-fit allocator living *inside* its space.
//!
//! Every piece of allocator metadata — bump pointer, free list, root
//! pointer — is stored in the managed [`MemSpace`] itself and accessed
//! through ordinary loads and stores. On a [`VPm`](crate::VPm) space this
//! means PAX's undo logging covers allocator state exactly like
//! application data, which is how the paper gets "recovers the pool's
//! allocator state" (§3.4) for free: rolling back an epoch rolls back
//! allocations made in it.
//!
//! # Layout
//!
//! ```text
//! byte  0..8   magic "PAXHEAP1"
//! byte  8..16  bump head (next never-allocated byte)
//! byte 16..24  free-list head (0 = empty)
//! byte 24..32  user root pointer
//! byte 32..40  live allocation count
//! byte 64..    allocatable storage
//! ```
//!
//! Free blocks carry `{next: u64, len: u64}` in their own first 16 bytes.

use crate::error::PaxError;
use crate::space::MemSpace;
use crate::Result;

const MAGIC: u64 = u64::from_le_bytes(*b"PAXHEAP1");
const OFF_MAGIC: u64 = 0;
const OFF_BUMP: u64 = 8;
const OFF_FREE: u64 = 16;
const OFF_ROOT: u64 = 24;
const OFF_COUNT: u64 = 32;
const DATA_START: u64 = 64;

/// Smallest allocation the heap hands out (a free block must be able to
/// hold its own `{next, len}` header when freed).
pub const MIN_ALLOC: u64 = 16;

/// Allocation alignment in bytes.
pub const ALIGN: u64 = 8;

/// A persistent first-fit heap over a [`MemSpace`] (see module docs).
///
/// The heap performs no internal locking; callers (the structures in
/// [`structures`](crate::structures)) serialize mutations.
#[derive(Debug, Clone)]
pub struct Heap<S> {
    space: S,
}

impl<S: MemSpace> Heap<S> {
    /// Opens the heap in `space`, formatting it on first use.
    ///
    /// A zeroed space (fresh pool) is formatted; a space with a valid
    /// magic is attached as-is — so, as §3.4 requires, constructing and
    /// recovering are the same call.
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::Corrupt`] if the space holds a non-zero,
    /// non-heap magic, and propagates space I/O errors.
    pub fn attach(space: S) -> Result<Self> {
        let magic = space.read_u64(OFF_MAGIC)?;
        if magic == MAGIC {
            return Ok(Heap { space });
        }
        if magic != 0 {
            return Err(PaxError::Corrupt(format!("bad heap magic {magic:#x}")));
        }
        space.write_u64(OFF_BUMP, DATA_START)?;
        space.write_u64(OFF_FREE, 0)?;
        space.write_u64(OFF_ROOT, 0)?;
        space.write_u64(OFF_COUNT, 0)?;
        space.write_u64(OFF_MAGIC, MAGIC)?;
        Ok(Heap { space })
    }

    /// The space this heap manages.
    pub fn space(&self) -> &S {
        &self.space
    }

    /// The user root pointer (0 when unset).
    ///
    /// # Errors
    ///
    /// Propagates space I/O errors.
    pub fn root(&self) -> Result<u64> {
        self.space.read_u64(OFF_ROOT)
    }

    /// Durably records the structure root address.
    ///
    /// # Errors
    ///
    /// Propagates space I/O errors.
    pub fn set_root(&self, addr: u64) -> Result<()> {
        self.space.write_u64(OFF_ROOT, addr)
    }

    /// Live allocations (allocs minus frees).
    ///
    /// # Errors
    ///
    /// Propagates space I/O errors.
    pub fn live_allocations(&self) -> Result<u64> {
        self.space.read_u64(OFF_COUNT)
    }

    /// Bytes never yet allocated (bump headroom; excludes the free list).
    ///
    /// # Errors
    ///
    /// Propagates space I/O errors.
    pub fn headroom(&self) -> Result<u64> {
        Ok(self.space.capacity_bytes().saturating_sub(self.space.read_u64(OFF_BUMP)?))
    }

    fn round_up(len: u64) -> u64 {
        let len = len.max(MIN_ALLOC);
        len.div_ceil(ALIGN) * ALIGN
    }

    /// Allocates `len` bytes, returning their byte address.
    ///
    /// First-fit over the free list, splitting blocks when the remainder
    /// can stand alone; falls back to bumping fresh storage.
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::OutOfMemory`] when neither the free list nor
    /// the bump region can satisfy the request.
    pub fn alloc(&self, len: u64) -> Result<u64> {
        let need = Self::round_up(len);

        // First fit through the free list.
        let mut prev: Option<u64> = None;
        let mut cur = self.space.read_u64(OFF_FREE)?;
        while cur != 0 {
            let next = self.space.read_u64(cur)?;
            let blen = self.space.read_u64(cur + 8)?;
            if blen >= need {
                let take_all = blen - need < MIN_ALLOC;
                let replacement = if take_all {
                    next
                } else {
                    // Split: the tail remains free.
                    let rest = cur + need;
                    self.space.write_u64(rest, next)?;
                    self.space.write_u64(rest + 8, blen - need)?;
                    rest
                };
                match prev {
                    Some(p) => self.space.write_u64(p, replacement)?,
                    None => self.space.write_u64(OFF_FREE, replacement)?,
                }
                self.bump_count(1)?;
                return Ok(cur);
            }
            prev = Some(cur);
            cur = next;
        }

        // Bump fresh storage.
        let bump = self.space.read_u64(OFF_BUMP)?;
        let end = bump.checked_add(need).ok_or(PaxError::OutOfMemory {
            requested: need,
            capacity: self.space.capacity_bytes(),
        })?;
        if end > self.space.capacity_bytes() {
            return Err(PaxError::OutOfMemory {
                requested: need,
                capacity: self.space.capacity_bytes(),
            });
        }
        self.space.write_u64(OFF_BUMP, end)?;
        self.bump_count(1)?;
        Ok(bump)
    }

    /// Returns `len` bytes at `addr` to the heap.
    ///
    /// Walks the free list first: a block that is already on it (or that
    /// overlaps a block on it) is a double free and corrupts the list if
    /// admitted, so it is rejected instead. The freed block is coalesced
    /// with the current list head when the two are contiguous — the
    /// trivially-adjacent case that LIFO free patterns (grow-and-release
    /// structures) produce constantly.
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::Corrupt`] for addresses outside the heap's
    /// allocatable range and for double frees, and propagates space I/O
    /// errors.
    pub fn free(&self, addr: u64, len: u64) -> Result<()> {
        let need = Self::round_up(len);
        let bump = self.space.read_u64(OFF_BUMP)?;
        if addr < DATA_START || addr + need > bump {
            return Err(PaxError::Corrupt(format!("free of unallocated range {addr:#x}")));
        }
        // Re-free detection: the block must not overlap any chain member.
        let head = self.space.read_u64(OFF_FREE)?;
        let mut cur = head;
        while cur != 0 {
            let next = self.space.read_u64(cur)?;
            let blen = self.space.read_u64(cur + 8)?;
            if addr < cur + blen && cur < addr + need {
                return Err(PaxError::Corrupt(format!(
                    "double free: {addr:#x}+{need} overlaps free block {cur:#x}+{blen}"
                )));
            }
            cur = next;
        }
        if head != 0 {
            let head_next = self.space.read_u64(head)?;
            let head_len = self.space.read_u64(head + 8)?;
            if addr + need == head {
                // Freed block sits immediately before the head: merge both
                // into one block starting at `addr`.
                self.space.write_u64(addr, head_next)?;
                self.space.write_u64(addr + 8, need + head_len)?;
                self.space.write_u64(OFF_FREE, addr)?;
                self.bump_count(-1)?;
                return Ok(());
            }
            if head + head_len == addr {
                // Freed block sits immediately after the head: extend it.
                self.space.write_u64(head + 8, head_len + need)?;
                self.bump_count(-1)?;
                return Ok(());
            }
        }
        self.space.write_u64(addr, head)?;
        self.space.write_u64(addr + 8, need)?;
        self.space.write_u64(OFF_FREE, addr)?;
        self.bump_count(-1)?;
        Ok(())
    }

    fn bump_count(&self, delta: i64) -> Result<()> {
        let c = self.space.read_u64(OFF_COUNT)?;
        let next = if delta >= 0 {
            c.saturating_add(delta as u64)
        } else {
            // Mirrors `MetricSet::sub`: an underflowing decrement is a
            // caller bug — loud in debug builds, saturating in release so
            // the persistent counter never wraps to ~2^64 live objects.
            let d = delta.unsigned_abs();
            debug_assert!(c >= d, "live-allocation counter underflow: {c} - {d}");
            c.saturating_sub(d)
        };
        self.space.write_u64(OFF_COUNT, next)
    }

    /// Typed convenience: allocates and writes an encoded value.
    ///
    /// # Errors
    ///
    /// See [`Heap::alloc`].
    pub fn alloc_bytes(&self, data: &[u8]) -> Result<u64> {
        let addr = self.alloc(data.len() as u64)?;
        self.space.write_bytes(addr, data)?;
        Ok(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VolatileSpace;

    fn heap(cap: usize) -> Heap<VolatileSpace> {
        Heap::attach(VolatileSpace::new(cap)).unwrap()
    }

    #[test]
    fn attach_formats_then_reattaches() {
        let space = VolatileSpace::new(4096);
        let h = Heap::attach(space.clone()).unwrap();
        h.set_root(0x1234).unwrap();
        drop(h);
        let h2 = Heap::attach(space).unwrap();
        assert_eq!(h2.root().unwrap(), 0x1234, "attach must not reformat");
    }

    #[test]
    fn attach_rejects_foreign_magic() {
        let space = VolatileSpace::new(4096);
        space.write_u64(0, 0xBAD0_BAD0).unwrap();
        assert!(matches!(Heap::attach(space), Err(PaxError::Corrupt(_))));
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let h = heap(1 << 16);
        let a = h.alloc(10).unwrap();
        let b = h.alloc(100).unwrap();
        assert_eq!(a % ALIGN, 0);
        assert_eq!(b % ALIGN, 0);
        assert!(b >= a + 16, "allocations must not overlap");
        assert_eq!(h.live_allocations().unwrap(), 2);
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let h = heap(1 << 16);
        let a = h.alloc(64).unwrap();
        let _b = h.alloc(64).unwrap();
        h.free(a, 64).unwrap();
        let c = h.alloc(64).unwrap();
        assert_eq!(c, a, "first fit should reuse the freed block");
    }

    #[test]
    fn splitting_leaves_usable_remainder() {
        let h = heap(1 << 16);
        let a = h.alloc(256).unwrap();
        h.free(a, 256).unwrap();
        let b = h.alloc(64).unwrap();
        let c = h.alloc(64).unwrap();
        assert_eq!(b, a);
        assert_eq!(c, a + 64, "split remainder should serve the next alloc");
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let h = heap(256);
        let mut got = Vec::new();
        loop {
            match h.alloc(64) {
                Ok(a) => got.push(a),
                Err(PaxError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(!got.is_empty());
    }

    #[test]
    fn free_validates_range() {
        let h = heap(4096);
        assert!(h.free(0, 16).is_err(), "heap header is not allocatable");
        assert!(h.free(1 << 20, 16).is_err(), "beyond bump head");
    }

    #[test]
    fn data_round_trips_through_allocations() {
        let h = heap(1 << 16);
        let addr = h.alloc_bytes(b"persistent!").unwrap();
        let mut buf = [0u8; 11];
        h.space().read_bytes(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"persistent!");
    }

    #[test]
    fn min_alloc_rounding() {
        assert_eq!(Heap::<VolatileSpace>::round_up(1), MIN_ALLOC);
        assert_eq!(Heap::<VolatileSpace>::round_up(16), 16);
        assert_eq!(Heap::<VolatileSpace>::round_up(17), 24);
    }

    #[test]
    fn double_free_is_rejected_not_admitted() {
        let h = heap(1 << 16);
        let a = h.alloc(64).unwrap();
        let _pad = h.alloc(64).unwrap();
        h.free(a, 64).unwrap();
        // Re-freeing the same block must not push it onto the list again
        // (a second entry for `a` makes first-fit hand the block out
        // twice).
        assert!(matches!(h.free(a, 64), Err(PaxError::Corrupt(_))));
        assert_eq!(h.live_allocations().unwrap(), 1);
    }

    #[test]
    fn double_free_deep_in_the_chain_is_detected() {
        let h = heap(1 << 16);
        let blocks: Vec<u64> = (0..4).map(|_| h.alloc(64).unwrap()).collect();
        let _pad = h.alloc(64).unwrap();
        // Free in reverse with gaps so the chain holds several members.
        h.free(blocks[0], 64).unwrap();
        h.free(blocks[2], 64).unwrap();
        // blocks[0] is no longer the head (blocks[2] is) — the walk must
        // still find it.
        assert!(matches!(h.free(blocks[0], 64), Err(PaxError::Corrupt(_))));
        // Overlapping partial re-free is just as corrupt.
        assert!(matches!(h.free(blocks[2] + 16, 16), Err(PaxError::Corrupt(_))));
    }

    #[test]
    fn adjacent_frees_coalesce_into_one_block() {
        let h = heap(1 << 16);
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        let _pad = h.alloc(64).unwrap();
        // Free `a` then the block right after it: the second free must
        // extend the head instead of adding a second list entry, so a
        // 128-byte request fits without consuming fresh bump space.
        h.free(a, 64).unwrap();
        h.free(b, 64).unwrap();
        let headroom = h.headroom().unwrap();
        let big = h.alloc(128).unwrap();
        assert_eq!(big, a, "coalesced block should serve the large request");
        assert_eq!(h.headroom().unwrap(), headroom, "no bump space consumed");
    }

    #[test]
    fn coalesce_freed_block_before_head() {
        let h = heap(1 << 16);
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        let _pad = h.alloc(64).unwrap();
        // Free the *later* block first, then its predecessor: the merge
        // runs in the addr+need == head direction.
        h.free(b, 64).unwrap();
        h.free(a, 64).unwrap();
        let big = h.alloc(128).unwrap();
        assert_eq!(big, a);
    }

    #[test]
    fn underflowing_count_saturates_instead_of_wrapping() {
        let h = heap(1 << 16);
        let a = h.alloc(64).unwrap();
        // Zero the live counter behind the heap's back, then free: the
        // decrement must not wrap to u64::MAX.
        h.space().write_u64(OFF_COUNT, 0).unwrap();
        let free = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.free(a, 64)));
        if let Ok(r) = free {
            // Release build: the free succeeds and the counter saturates.
            r.unwrap();
            assert_eq!(h.live_allocations().unwrap(), 0);
        }
        // Debug build: the debug_assert fired — underflow was loud.
    }

    #[test]
    fn many_alloc_free_cycles_do_not_leak_headroom() {
        let h = heap(1 << 16);
        let before = h.headroom().unwrap();
        for _ in 0..100 {
            let a = h.alloc(128).unwrap();
            h.free(a, 128).unwrap();
        }
        let after = h.headroom().unwrap();
        // One block of bump space may be consumed; cycles reuse it.
        assert!(before - after <= 128, "leaked {} bytes", before - after);
    }
}
