//! The byte-addressed memory abstraction structures are written against.
//!
//! [`MemSpace`] is deliberately minimal: read bytes, write bytes, report
//! capacity. Data-structure code written against it contains *no* logging,
//! flushing, or ordering calls — it is volatile-style code. What makes it
//! persistent is solely which space it runs on:
//!
//! * [`VolatileSpace`] — plain memory; the structure is an ordinary
//!   volatile structure (the "DRAM" bar in the paper's figures).
//! * [`VPm`](crate::VPm) — the simulated host cache + PAX device; the
//!   identical structure code becomes crash consistent.
//!
//! This is the Rust rendition of "existing volatile data structures can
//! be transformed to be persistent without code changes" (§1): on stable
//! Rust, std collections cannot take custom allocators, so the reusable
//! unit is structure code parameterized by the space, exactly like C++
//! STL structures parameterized by an allocator.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::PaxError;
use crate::Result;

/// A byte-addressed memory space (see module docs).
///
/// Implementations are cheap cloneable handles sharing the underlying
/// memory, so a structure and its allocator can both hold the space.
pub trait MemSpace: Clone {
    /// Reads `buf.len()` bytes starting at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds reads and simulated crashes surface as [`PaxError`].
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes `data` starting at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds writes and simulated crashes surface as [`PaxError`].
    fn write_bytes(&self, addr: u64, data: &[u8]) -> Result<()>;

    /// Total bytes in the space.
    fn capacity_bytes(&self) -> u64;

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// See [`MemSpace::read_bytes`].
    fn read_u64(&self, addr: u64) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// See [`MemSpace::write_bytes`].
    fn write_u64(&self, addr: u64, value: u64) -> Result<()> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u32` at `addr`.
    ///
    /// # Errors
    ///
    /// See [`MemSpace::read_bytes`].
    fn read_u32(&self, addr: u64) -> Result<u32> {
        let mut buf = [0u8; 4];
        self.read_bytes(addr, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes a little-endian `u32` at `addr`.
    ///
    /// # Errors
    ///
    /// See [`MemSpace::write_bytes`].
    fn write_u32(&self, addr: u64, value: u32) -> Result<()> {
        self.write_bytes(addr, &value.to_le_bytes())
    }
}

/// Plain volatile memory: the "DRAM" world.
///
/// # Example
///
/// ```
/// use libpax::{MemSpace, VolatileSpace};
///
/// # fn main() -> libpax::Result<()> {
/// let space = VolatileSpace::new(4096);
/// space.write_u64(16, 0xDEAD_BEEF)?;
/// assert_eq!(space.read_u64(16)?, 0xDEAD_BEEF);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VolatileSpace {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl VolatileSpace {
    /// A zero-filled volatile space of `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        VolatileSpace { bytes: Arc::new(Mutex::new(vec![0; capacity_bytes])) }
    }

    fn check(&self, addr: u64, len: usize) -> Result<()> {
        let cap = self.capacity_bytes();
        if addr.checked_add(len as u64).is_none_or(|end| end > cap) {
            return Err(PaxError::OutOfMemory {
                requested: addr.saturating_add(len as u64),
                capacity: cap,
            });
        }
        Ok(())
    }
}

impl MemSpace for VolatileSpace {
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<()> {
        self.check(addr, buf.len())?;
        let bytes = self.bytes.lock();
        buf.copy_from_slice(&bytes[addr as usize..addr as usize + buf.len()]);
        Ok(())
    }

    fn write_bytes(&self, addr: u64, data: &[u8]) -> Result<()> {
        self.check(addr, data.len())?;
        let mut bytes = self.bytes.lock();
        bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn capacity_bytes(&self) -> u64 {
        self.bytes.lock().len() as u64
    }
}

/// Volatile memory under per-stripe locks: the multicore "DRAM" world.
///
/// [`VolatileSpace`] guards the whole byte range with one mutex, which
/// serializes every access and hides any parallelism in the layers above
/// it. `StripedSpace` shards the range into fixed-size stripes, each
/// behind its own lock, so accesses to different stripes proceed
/// concurrently — the property the `pax-alloc` bitmap allocator's
/// per-core subtrees are designed to exploit (different cores touch
/// different stripes).
///
/// An access that crosses a stripe boundary is served piecewise, taking
/// one stripe lock at a time in address order. Within a single call the
/// bytes of *each stripe* are read or written atomically, but the call
/// as a whole is not a single atomic unit across stripes — the same
/// contract real cache-line-grained memory gives multicore code, and
/// sufficient for every structure in this workspace (each structure
/// serializes its own mutations; allocator metadata words never span
/// stripes).
#[derive(Debug, Clone)]
pub struct StripedSpace {
    stripes: Arc<Vec<Mutex<Vec<u8>>>>,
    stripe_bytes: u64,
    capacity: u64,
}

/// Default stripe width for [`StripedSpace::new`].
pub const DEFAULT_STRIPE_BYTES: u64 = 4096;

impl StripedSpace {
    /// A zero-filled striped space of `capacity_bytes` with the default
    /// 4 KiB stripe width.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_stripe(capacity_bytes, DEFAULT_STRIPE_BYTES as usize)
    }

    /// A zero-filled striped space with an explicit stripe width.
    ///
    /// # Panics
    ///
    /// Panics when `stripe_bytes` is 0 or not a multiple of 8 (metadata
    /// words must never straddle a stripe).
    pub fn with_stripe(capacity_bytes: usize, stripe_bytes: usize) -> Self {
        assert!(
            stripe_bytes > 0 && stripe_bytes.is_multiple_of(8),
            "stripe must be a multiple of 8 bytes"
        );
        let n = capacity_bytes.div_ceil(stripe_bytes);
        let stripes = (0..n)
            .map(|i| {
                let len = (capacity_bytes - i * stripe_bytes).min(stripe_bytes);
                Mutex::new(vec![0u8; len])
            })
            .collect();
        StripedSpace {
            stripes: Arc::new(stripes),
            stripe_bytes: stripe_bytes as u64,
            capacity: capacity_bytes as u64,
        }
    }

    fn check(&self, addr: u64, len: usize) -> Result<()> {
        if addr.checked_add(len as u64).is_none_or(|end| end > self.capacity) {
            return Err(PaxError::OutOfMemory {
                requested: addr.saturating_add(len as u64),
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Visits each stripe segment of `[addr, addr+len)` in address order.
    fn for_segments(
        &self,
        addr: u64,
        len: usize,
        mut f: impl FnMut(&Mutex<Vec<u8>>, usize, usize, usize),
    ) {
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let stripe = (a / self.stripe_bytes) as usize;
            let in_stripe = (a % self.stripe_bytes) as usize;
            let take = (len - off).min(self.stripe_bytes as usize - in_stripe);
            f(&self.stripes[stripe], in_stripe, off, take);
            off += take;
        }
    }
}

impl MemSpace for StripedSpace {
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<()> {
        self.check(addr, buf.len())?;
        self.for_segments(addr, buf.len(), |stripe, in_stripe, off, take| {
            let bytes = stripe.lock();
            buf[off..off + take].copy_from_slice(&bytes[in_stripe..in_stripe + take]);
        });
        Ok(())
    }

    fn write_bytes(&self, addr: u64, data: &[u8]) -> Result<()> {
        self.check(addr, data.len())?;
        self.for_segments(addr, data.len(), |stripe, in_stripe, off, take| {
            let mut bytes = stripe.lock();
            bytes[in_stripe..in_stripe + take].copy_from_slice(&data[off..off + take]);
        });
        Ok(())
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bytes_and_ints() {
        let s = VolatileSpace::new(128);
        s.write_bytes(0, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        s.read_bytes(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        s.write_u32(64, 7).unwrap();
        assert_eq!(s.read_u32(64).unwrap(), 7);
    }

    #[test]
    fn bounds_are_enforced() {
        let s = VolatileSpace::new(16);
        assert!(s.write_u64(9, 1).is_err());
        assert!(s.write_u64(8, 1).is_ok());
        let mut buf = [0u8; 17];
        assert!(s.read_bytes(0, &mut buf).is_err());
        // Overflow-safe bounds check.
        assert!(s.read_u64(u64::MAX - 3).is_err());
    }

    #[test]
    fn clones_share_memory() {
        let a = VolatileSpace::new(64);
        let b = a.clone();
        a.write_u64(0, 42).unwrap();
        assert_eq!(b.read_u64(0).unwrap(), 42);
    }

    #[test]
    fn striped_round_trips_across_stripe_boundaries() {
        // Tiny stripes so a medium write crosses several of them.
        let s = StripedSpace::with_stripe(256, 16);
        let data: Vec<u8> = (0..100).collect();
        s.write_bytes(7, &data).unwrap();
        let mut buf = vec![0u8; 100];
        s.read_bytes(7, &mut buf).unwrap();
        assert_eq!(buf, data);
        s.write_u64(248, 0xFEED).unwrap();
        assert_eq!(s.read_u64(248).unwrap(), 0xFEED);
    }

    #[test]
    fn striped_enforces_bounds_and_tail_stripe() {
        // 100 bytes with 64-byte stripes: the tail stripe is short.
        let s = StripedSpace::with_stripe(100, 64);
        assert_eq!(s.capacity_bytes(), 100);
        s.write_u64(92, 9).unwrap();
        assert_eq!(s.read_u64(92).unwrap(), 9);
        assert!(s.write_u64(93, 1).is_err());
        assert!(s.read_u64(u64::MAX - 3).is_err());
    }

    #[test]
    fn striped_clones_share_memory_across_threads() {
        let s = StripedSpace::with_stripe(1 << 16, 512);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..64u64 {
                        s.write_u64((t * 64 + i) * 8, t * 1000 + i).unwrap();
                    }
                });
            }
        });
        for t in 0..4u64 {
            for i in 0..64u64 {
                assert_eq!(s.read_u64((t * 64 + i) * 8).unwrap(), t * 1000 + i);
            }
        }
    }
}
