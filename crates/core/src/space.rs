//! The byte-addressed memory abstraction structures are written against.
//!
//! [`MemSpace`] is deliberately minimal: read bytes, write bytes, report
//! capacity. Data-structure code written against it contains *no* logging,
//! flushing, or ordering calls — it is volatile-style code. What makes it
//! persistent is solely which space it runs on:
//!
//! * [`VolatileSpace`] — plain memory; the structure is an ordinary
//!   volatile structure (the "DRAM" bar in the paper's figures).
//! * [`VPm`](crate::VPm) — the simulated host cache + PAX device; the
//!   identical structure code becomes crash consistent.
//!
//! This is the Rust rendition of "existing volatile data structures can
//! be transformed to be persistent without code changes" (§1): on stable
//! Rust, std collections cannot take custom allocators, so the reusable
//! unit is structure code parameterized by the space, exactly like C++
//! STL structures parameterized by an allocator.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::PaxError;
use crate::Result;

/// A byte-addressed memory space (see module docs).
///
/// Implementations are cheap cloneable handles sharing the underlying
/// memory, so a structure and its allocator can both hold the space.
pub trait MemSpace: Clone {
    /// Reads `buf.len()` bytes starting at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds reads and simulated crashes surface as [`PaxError`].
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes `data` starting at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds writes and simulated crashes surface as [`PaxError`].
    fn write_bytes(&self, addr: u64, data: &[u8]) -> Result<()>;

    /// Total bytes in the space.
    fn capacity_bytes(&self) -> u64;

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// See [`MemSpace::read_bytes`].
    fn read_u64(&self, addr: u64) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// See [`MemSpace::write_bytes`].
    fn write_u64(&self, addr: u64, value: u64) -> Result<()> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u32` at `addr`.
    ///
    /// # Errors
    ///
    /// See [`MemSpace::read_bytes`].
    fn read_u32(&self, addr: u64) -> Result<u32> {
        let mut buf = [0u8; 4];
        self.read_bytes(addr, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes a little-endian `u32` at `addr`.
    ///
    /// # Errors
    ///
    /// See [`MemSpace::write_bytes`].
    fn write_u32(&self, addr: u64, value: u32) -> Result<()> {
        self.write_bytes(addr, &value.to_le_bytes())
    }
}

/// Plain volatile memory: the "DRAM" world.
///
/// # Example
///
/// ```
/// use libpax::{MemSpace, VolatileSpace};
///
/// # fn main() -> libpax::Result<()> {
/// let space = VolatileSpace::new(4096);
/// space.write_u64(16, 0xDEAD_BEEF)?;
/// assert_eq!(space.read_u64(16)?, 0xDEAD_BEEF);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VolatileSpace {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl VolatileSpace {
    /// A zero-filled volatile space of `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        VolatileSpace { bytes: Arc::new(Mutex::new(vec![0; capacity_bytes])) }
    }

    fn check(&self, addr: u64, len: usize) -> Result<()> {
        let cap = self.capacity_bytes();
        if addr.checked_add(len as u64).is_none_or(|end| end > cap) {
            return Err(PaxError::OutOfMemory {
                requested: addr.saturating_add(len as u64),
                capacity: cap,
            });
        }
        Ok(())
    }
}

impl MemSpace for VolatileSpace {
    fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<()> {
        self.check(addr, buf.len())?;
        let bytes = self.bytes.lock();
        buf.copy_from_slice(&bytes[addr as usize..addr as usize + buf.len()]);
        Ok(())
    }

    fn write_bytes(&self, addr: u64, data: &[u8]) -> Result<()> {
        self.check(addr, data.len())?;
        let mut bytes = self.bytes.lock();
        bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn capacity_bytes(&self) -> u64 {
        self.bytes.lock().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_bytes_and_ints() {
        let s = VolatileSpace::new(128);
        s.write_bytes(0, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        s.read_bytes(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        s.write_u32(64, 7).unwrap();
        assert_eq!(s.read_u32(64).unwrap(), 7);
    }

    #[test]
    fn bounds_are_enforced() {
        let s = VolatileSpace::new(16);
        assert!(s.write_u64(9, 1).is_err());
        assert!(s.write_u64(8, 1).is_ok());
        let mut buf = [0u8; 17];
        assert!(s.read_bytes(0, &mut buf).is_err());
        // Overflow-safe bounds check.
        assert!(s.read_u64(u64::MAX - 3).is_err());
    }

    #[test]
    fn clones_share_memory() {
        let a = VolatileSpace::new(64);
        let b = a.clone();
        a.write_u64(0, 42).unwrap();
        assert_eq!(b.read_u64(0).unwrap(), 42);
    }
}
