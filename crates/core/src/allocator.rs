//! [`PmAllocator`]: the allocator seam between spaces and structures.
//!
//! The paper's §3.4 claim — undo logging covers allocator metadata like
//! any other data, so recovering the pool recovers its allocator — is a
//! property of *any* allocator whose persistent state lives inside the
//! [`MemSpace`] it manages. This trait captures exactly that contract so
//! the structure zoo ([`structures`](crate::structures)) can run over
//! interchangeable allocators:
//!
//! * [`Heap`](crate::Heap) — the first-fit bump + free-list baseline in
//!   this crate; serializes every structure op, O(n) free-list scans.
//! * `pax_alloc::BitmapAlloc` — the llfree-style scalable allocator
//!   (per-core frame caches over a hierarchical persistent bitmap),
//!   built in the `pax-alloc` crate against this trait.
//!
//! The contract every implementation must keep:
//!
//! 1. **All persistent state lives in the managed space.** No allocation
//!    decision may depend on state that survives a crash outside the
//!    space; volatile acceleration state (caches, indexes) must be
//!    reconstructible from the space alone.
//! 2. **Construction and recovery are the same call.** Attaching to a
//!    fresh (zeroed) space formats it; attaching to a formatted space
//!    recovers it. Callers cannot tell the difference (§3.4).
//! 3. **Addresses are stable.** An address returned by `alloc` refers to
//!    the same bytes until freed, across crash/recovery.

use crate::space::MemSpace;
use crate::Result;

/// A crash-consistent allocator over a [`MemSpace`] (see module docs).
///
/// Implementations are cheap cloneable handles sharing the underlying
/// space (and any volatile acceleration state), so a structure and its
/// allocator can both hold the allocator.
pub trait PmAllocator<S: MemSpace>: Clone {
    /// The space this allocator manages.
    fn space(&self) -> &S;

    /// Allocates `len` bytes, returning their byte address (8-aligned).
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::OutOfMemory`](crate::PaxError::OutOfMemory)
    /// when the request cannot be satisfied, and propagates space I/O
    /// errors (including simulated crashes).
    fn alloc(&self, len: u64) -> Result<u64>;

    /// Returns `len` bytes at `addr` to the allocator.
    ///
    /// # Errors
    ///
    /// Returns [`PaxError::Corrupt`](crate::PaxError::Corrupt) for
    /// addresses the allocator never handed out (including double
    /// frees), and propagates space I/O errors.
    fn free(&self, addr: u64, len: u64) -> Result<()>;

    /// The user root pointer (0 when unset) — the well-known address a
    /// structure hangs itself from so `attach` can find it again.
    ///
    /// # Errors
    ///
    /// Propagates space I/O errors.
    fn root(&self) -> Result<u64>;

    /// Durably records the structure root address.
    ///
    /// # Errors
    ///
    /// Propagates space I/O errors.
    fn set_root(&self, addr: u64) -> Result<()>;

    /// Live-allocation accounting for leak checks. The unit is
    /// implementation-specific (blocks for [`Heap`](crate::Heap), frames
    /// for a bitmap allocator); the invariant callers may rely on is
    /// `live_allocations() == 0` exactly when nothing is outstanding.
    ///
    /// # Errors
    ///
    /// Propagates space I/O errors.
    fn live_allocations(&self) -> Result<u64>;

    /// Typed convenience: allocates and writes an encoded value.
    ///
    /// # Errors
    ///
    /// See [`PmAllocator::alloc`].
    fn alloc_bytes(&self, data: &[u8]) -> Result<u64> {
        let addr = self.alloc(data.len() as u64)?;
        self.space().write_bytes(addr, data)?;
        Ok(addr)
    }
}

impl<S: MemSpace> PmAllocator<S> for crate::Heap<S> {
    fn space(&self) -> &S {
        crate::Heap::space(self)
    }

    fn alloc(&self, len: u64) -> Result<u64> {
        crate::Heap::alloc(self, len)
    }

    fn free(&self, addr: u64, len: u64) -> Result<()> {
        crate::Heap::free(self, addr, len)
    }

    fn root(&self) -> Result<u64> {
        crate::Heap::root(self)
    }

    fn set_root(&self, addr: u64) -> Result<()> {
        crate::Heap::set_root(self, addr)
    }

    fn live_allocations(&self) -> Result<u64> {
        crate::Heap::live_allocations(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VolatileSpace;
    use crate::Heap;

    fn generic_roundtrip<S: MemSpace, A: PmAllocator<S>>(a: &A) {
        let x = a.alloc(64).unwrap();
        let y = a.alloc_bytes(b"trait objectless").unwrap();
        assert_ne!(x, y);
        assert_eq!(a.live_allocations().unwrap(), 2);
        a.set_root(x).unwrap();
        assert_eq!(a.root().unwrap(), x);
        a.free(x, 64).unwrap();
        a.free(y, 16).unwrap();
        assert_eq!(a.live_allocations().unwrap(), 0);
    }

    #[test]
    fn heap_satisfies_the_trait_contract() {
        let heap = Heap::attach(VolatileSpace::new(1 << 16)).unwrap();
        generic_roundtrip(&heap);
    }
}
