//! Deterministic crash injection.
//!
//! Crash-consistency bugs hide *between* steps: after the log append but
//! before the data write, halfway through an epoch commit, and so on. The
//! [`CrashClock`] gives every component in a simulation a shared step
//! counter that can be armed to "cut power" at an exact step, making every
//! such interleaving reachable — and reproducible — from tests.
//!
//! # Example
//!
//! ```
//! use pax_pm::{CrashClock, CrashOutcome};
//!
//! let clock = CrashClock::new();
//! clock.arm(2); // crash on the 3rd step (steps 0 and 1 complete)
//! assert_eq!(clock.tick(), CrashOutcome::Continue);
//! assert_eq!(clock.tick(), CrashOutcome::Continue);
//! assert_eq!(clock.tick(), CrashOutcome::Crashed);
//! assert!(clock.is_crashed());
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What a component should do after ticking the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashOutcome {
    /// Power is still on; proceed with the step.
    Continue,
    /// Power was cut at (or before) this step; abandon the operation and
    /// surface [`PmError::Crashed`](crate::PmError::Crashed).
    Crashed,
}

#[derive(Debug)]
struct Inner {
    step: AtomicU64,
    /// Step index at which power is cut; `u64::MAX` means never.
    crash_at: AtomicU64,
    crashed: AtomicBool,
}

/// A shared, cloneable crash countdown.
///
/// Clones share state: arming any clone arms them all, which is how one
/// test-controlled clock reaches into every component of a simulation.
#[derive(Clone)]
pub struct CrashClock(Arc<Inner>);

impl CrashClock {
    /// A clock that never fires (until [`CrashClock::arm`] is called).
    pub fn new() -> Self {
        CrashClock(Arc::new(Inner {
            step: AtomicU64::new(0),
            crash_at: AtomicU64::new(u64::MAX),
            crashed: AtomicBool::new(false),
        }))
    }

    /// Arms the clock to crash when the step counter reaches `crash_at`.
    ///
    /// Steps already taken count: arming with a value at or below the
    /// current step crashes on the very next [`CrashClock::tick`].
    pub fn arm(&self, crash_at: u64) {
        self.0.crash_at.store(crash_at, Ordering::SeqCst);
    }

    /// Disarms the clock and clears the crashed flag (used to model the
    /// machine rebooting before recovery runs).
    pub fn reset(&self) {
        self.0.crash_at.store(u64::MAX, Ordering::SeqCst);
        self.0.crashed.store(false, Ordering::SeqCst);
    }

    /// Advances one simulation step, firing the crash if it is due.
    pub fn tick(&self) -> CrashOutcome {
        if self.0.crashed.load(Ordering::SeqCst) {
            return CrashOutcome::Crashed;
        }
        let step = self.0.step.fetch_add(1, Ordering::SeqCst);
        if step >= self.0.crash_at.load(Ordering::SeqCst) {
            self.0.crashed.store(true, Ordering::SeqCst);
            CrashOutcome::Crashed
        } else {
            CrashOutcome::Continue
        }
    }

    /// Whether power has been cut.
    pub fn is_crashed(&self) -> bool {
        self.0.crashed.load(Ordering::SeqCst)
    }

    /// Number of steps taken so far; property tests use this to size the
    /// crash-point search space after a fault-free dry run.
    pub fn steps_taken(&self) -> u64 {
        self.0.step.load(Ordering::SeqCst)
    }

    /// Forces an immediate crash regardless of the armed step.
    pub fn crash_now(&self) {
        self.0.crashed.store(true, Ordering::SeqCst);
    }
}

impl Default for CrashClock {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for CrashClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CrashClock")
            .field("step", &self.0.step.load(Ordering::SeqCst))
            .field("crash_at", &self.0.crash_at.load(Ordering::SeqCst))
            .field("crashed", &self.0.crashed.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_clock_never_crashes() {
        let c = CrashClock::new();
        for _ in 0..1000 {
            assert_eq!(c.tick(), CrashOutcome::Continue);
        }
        assert!(!c.is_crashed());
        assert_eq!(c.steps_taken(), 1000);
    }

    #[test]
    fn crash_fires_at_exact_step() {
        let c = CrashClock::new();
        c.arm(5);
        for _ in 0..5 {
            assert_eq!(c.tick(), CrashOutcome::Continue);
        }
        assert_eq!(c.tick(), CrashOutcome::Crashed);
        // Stays crashed.
        assert_eq!(c.tick(), CrashOutcome::Crashed);
    }

    #[test]
    fn clones_share_state() {
        let c = CrashClock::new();
        let c2 = c.clone();
        c.arm(0);
        assert_eq!(c2.tick(), CrashOutcome::Crashed);
        assert!(c.is_crashed());
    }

    #[test]
    fn reset_reboots() {
        let c = CrashClock::new();
        c.arm(0);
        assert_eq!(c.tick(), CrashOutcome::Crashed);
        c.reset();
        assert!(!c.is_crashed());
        assert_eq!(c.tick(), CrashOutcome::Continue);
    }

    #[test]
    fn crash_now_is_immediate() {
        let c = CrashClock::new();
        c.crash_now();
        assert_eq!(c.tick(), CrashOutcome::Crashed);
    }

    #[test]
    fn arming_in_the_past_crashes_next_tick() {
        let c = CrashClock::new();
        for _ in 0..10 {
            c.tick();
        }
        c.arm(3);
        assert_eq!(c.tick(), CrashOutcome::Crashed);
    }
}
