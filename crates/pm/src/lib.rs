//! Simulated persistent-memory substrate for the PAX reproduction.
//!
//! This crate models everything the PAX paper assumes about the memory
//! system below the accelerator:
//!
//! * [`line`](mod@line) — 64-byte cache lines and line-aligned addressing, the
//!   granularity at which every other component (CPU caches, CXL messages,
//!   the PAX undo log) operates.
//! * [`media`] — byte-addressable memory media ([`PmMedia`], [`DramMedia`])
//!   with an explicit *durability* boundary: writes become crash-survivable
//!   only when the configured [`PersistenceDomain`] says so.
//! * [`pool`] — DAX-style pool files ([`PmPool`]) with a header carrying the
//!   committed epoch number, a persistent undo-log region, and a data region,
//!   mirroring the pool layout `libpax` maps into a process (§3.1 of the
//!   paper).
//! * [`crash`] — deterministic crash injection ([`CrashClock`]) so tests can
//!   cut power between any two simulation steps and exercise recovery.
//! * [`persistency`] — the switchable ordering/durability contract
//!   ([`PersistencyModel`]: strict / epoch / buffered-epoch) the pool,
//!   device, scheduler, and recovery layers all consult.
//! * [`latency`] — latency and bandwidth constants for DRAM, Optane DC PMM,
//!   CXL and Enzian taken from the sources the paper cites (Yang et al.,
//!   FAST '20; CXL 2.0; Cock et al., ASPLOS '22).
//!
//! # Example
//!
//! ```
//! use pax_pm::{PmMedia, Memory, PersistenceDomain, LineAddr, CacheLine};
//!
//! # fn main() -> pax_pm::Result<()> {
//! let mut pm = PmMedia::new(1 << 20, PersistenceDomain::Adr);
//! let addr = LineAddr::from_byte_addr(0x40);
//! pm.write_line(addr, CacheLine::filled(0xAB))?;
//! pm.crash(); // ADR: the write-pending queue drains, so the write survives
//! assert_eq!(pm.read_line(addr)?.as_bytes()[0], 0xAB);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod error;
pub mod latency;
pub mod line;
pub mod media;
pub mod persistency;
pub mod pool;

pub use crash::{CrashClock, CrashOutcome};
pub use error::PmError;
pub use latency::{BandwidthProfile, LatencyProfile, MediaLatency, Platform};
pub use line::{CacheLine, LineAddr, LINE_SIZE, PAGE_SIZE};
pub use media::{DramMedia, MediaStats, Memory, PersistenceDomain, PmMedia};
pub use persistency::PersistencyModel;
pub use pool::{PmPool, PoolConfig, PoolLayout, MAX_TENANTS};

/// Result alias used throughout the PM substrate.
pub type Result<T> = std::result::Result<T, PmError>;
