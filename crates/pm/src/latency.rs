//! Latency and bandwidth parameters for the platforms the paper models.
//!
//! All figures come from the sources the paper itself cites:
//!
//! * **DRAM / Optane DC PMM**: Yang et al., *An Empirical Guide to the
//!   Behavior and Use of Scalable Persistent Memory*, FAST '20 — sequential
//!   PM read latency ≈ 169 ns, random ≈ 305 ns (the paper uses 305 ns,
//!   §4); a store is considered durable once accepted by the iMC write
//!   pending queue (≈ 94 ns under ADR). Per-socket bandwidth ≈ 40 GB/s
//!   read / 14 GB/s write (§5.1).
//! * **CXL**: CXL 2.0 is layered on PCIe 5.0 — ≈ 63 GB/s full-duplex at
//!   x16 (§5.1); expected added round-trip latency for a .cache access is
//!   in the 50–80 ns range, we use 70 ns.
//! * **Enzian**: Cock et al., ASPLOS '22 — ECI coherence round trips over
//!   24×10 Gb/s lanes cost several hundred ns; the paper estimates an
//!   Enzian PAX at ≈ 2× the AMAT overhead of a CXL PAX (Fig. 2a), which a
//!   500 ns interposition latency reproduces.
//! * **CPU caches**: typical Skylake-SP (Cloudlab c6420, dual Xeon Gold
//!   6142) load-to-use latencies: L1 4 cycles, L2 14 cycles, LLC ≈ 50–70
//!   cycles at 2.6 GHz.

/// Read/write latency of one memory medium, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MediaLatency {
    /// Latency of a line read that reaches the medium.
    pub read_ns: u64,
    /// Latency until a line write is accepted (durable under ADR for PM).
    pub write_ns: u64,
}

/// The platform an access path runs on; selects an interposition latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Platform {
    /// Direct CPU attachment, no accelerator (DRAM or raw PM DIMM).
    Direct,
    /// PAX attached over CXL.cache (the paper's target deployment).
    Cxl,
    /// PAX prototyped on the Enzian CPU–FPGA research computer.
    Enzian,
}

/// A complete latency model: cache levels, media, and interposition costs.
///
/// [`LatencyProfile::c6420`] reproduces the machine used for the paper's
/// Fig. 2a estimates. Use the builder-style `with_*` methods to explore
/// other design points (the ablation benches do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyProfile {
    /// L1D hit latency.
    pub l1_ns: u64,
    /// L2 hit latency.
    pub l2_ns: u64,
    /// Last-level cache hit latency.
    pub llc_ns: u64,
    /// DRAM access latency (LLC miss served by DRAM).
    pub dram: MediaLatency,
    /// PM (Optane DC) access latency (LLC miss served by PM).
    pub pm: MediaLatency,
    /// Added latency for an LLC miss interposed by a CXL-attached PAX.
    pub cxl_overhead_ns: u64,
    /// Added latency for an LLC miss interposed by an Enzian-attached PAX.
    pub enzian_overhead_ns: u64,
    /// On-device HBM cache hit latency (misses continue to PM).
    pub hbm_ns: u64,
    /// Cost of an SFENCE ordering stall (WAL baselines pay these).
    pub sfence_ns: u64,
    /// Cost of a write-protection page-fault trap (page-based baselines).
    pub trap_ns: u64,
}

impl LatencyProfile {
    /// The Cloudlab c6420 model used for the paper's Fig. 2a estimates.
    pub const fn c6420() -> Self {
        LatencyProfile {
            l1_ns: 2,   // 4 cycles @ 2.6 GHz
            l2_ns: 5,   // 14 cycles
            llc_ns: 20, // ~52 cycles
            dram: MediaLatency { read_ns: 81, write_ns: 86 },
            pm: MediaLatency { read_ns: 305, write_ns: 94 },
            cxl_overhead_ns: 70,
            enzian_overhead_ns: 500,
            hbm_ns: 60,
            sfence_ns: 100,
            trap_ns: 1_000, // ">1 µs per trap" (§1)
        }
    }

    /// Returns the profile with a different CXL interposition latency.
    pub fn with_cxl_overhead_ns(mut self, ns: u64) -> Self {
        self.cxl_overhead_ns = ns;
        self
    }

    /// Returns the profile with a different Enzian interposition latency.
    pub fn with_enzian_overhead_ns(mut self, ns: u64) -> Self {
        self.enzian_overhead_ns = ns;
        self
    }

    /// Returns the profile with a different PM media latency.
    pub fn with_pm(mut self, pm: MediaLatency) -> Self {
        self.pm = pm;
        self
    }

    /// Latency of an LLC miss to PM on `platform`, including interposition.
    pub fn pm_miss_ns(&self, platform: Platform) -> u64 {
        self.pm.read_ns + self.interposition_ns(platform)
    }

    /// The accelerator interposition cost on `platform` (0 when direct).
    pub fn interposition_ns(&self, platform: Platform) -> u64 {
        match platform {
            Platform::Direct => 0,
            Platform::Cxl => self.cxl_overhead_ns,
            Platform::Enzian => self.enzian_overhead_ns,
        }
    }
}

impl Default for LatencyProfile {
    fn default() -> Self {
        Self::c6420()
    }
}

/// Bandwidth figures for the §5.1 bottleneck analysis, in GB/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthProfile {
    /// CXL (PCIe 5.0 x16) full-duplex bandwidth per direction.
    pub cxl_gbps: f64,
    /// Optane per-socket read bandwidth.
    pub pm_read_gbps: f64,
    /// Optane per-socket write bandwidth.
    pub pm_write_gbps: f64,
    /// Clock rate of the device handling coherence messages, Hz.
    pub device_clock_hz: f64,
    /// Coherence messages the device can retire per clock cycle.
    pub device_msgs_per_cycle: f64,
}

impl BandwidthProfile {
    /// The paper's §5.1 figures: PCIe 5 x16, one Optane socket, CVU9P FPGA
    /// at 300 MHz retiring one message per cycle.
    pub const fn paper() -> Self {
        BandwidthProfile {
            cxl_gbps: 63.0,
            pm_read_gbps: 40.0,
            pm_write_gbps: 14.0,
            device_clock_hz: 300.0e6,
            device_msgs_per_cycle: 1.0,
        }
    }

    /// Peak coherence messages/second the device can retire.
    pub fn device_msgs_per_sec(&self) -> f64 {
        self.device_clock_hz * self.device_msgs_per_cycle
    }

    /// Line transfers/second the CXL link supports in one direction.
    pub fn cxl_lines_per_sec(&self) -> f64 {
        self.cxl_gbps * 1e9 / crate::LINE_SIZE as f64
    }
}

impl Default for BandwidthProfile {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c6420_matches_cited_numbers() {
        let p = LatencyProfile::c6420();
        assert_eq!(p.pm.read_ns, 305); // §4: "persistent memory accesses take 305 ns"
        assert!(p.trap_ns >= 1_000); // §1: ">1 µs per trap"
    }

    #[test]
    fn interposition_ordering() {
        let p = LatencyProfile::c6420();
        assert_eq!(p.interposition_ns(Platform::Direct), 0);
        assert!(p.interposition_ns(Platform::Cxl) < p.interposition_ns(Platform::Enzian));
        assert!(p.pm_miss_ns(Platform::Cxl) > p.pm.read_ns);
    }

    #[test]
    fn bandwidth_paper_numbers() {
        let b = BandwidthProfile::paper();
        assert_eq!(b.device_msgs_per_sec(), 300.0e6);
        // 63 GB/s over 64 B lines ≈ 984 M lines/s — far above the device's
        // 300 M msg/s, supporting §5.1's "I/O bus is not the bottleneck".
        assert!(b.cxl_lines_per_sec() > b.device_msgs_per_sec());
    }

    #[test]
    fn builders_override_fields() {
        let p = LatencyProfile::c6420().with_cxl_overhead_ns(10).with_enzian_overhead_ns(20);
        assert_eq!(p.cxl_overhead_ns, 10);
        assert_eq!(p.enzian_overhead_ns, 20);
        let p = p.with_pm(MediaLatency { read_ns: 1, write_ns: 2 });
        assert_eq!(p.pm.read_ns, 1);
    }
}
