//! DAX-style pool files.
//!
//! A [`PmPool`] is the persistent object `libpax` maps into a process
//! (Listing 1 of the paper: `map_pool("./ht.pool")`). Its media is divided
//! into three regions:
//!
//! ```text
//! ┌────────────┬───────────────────────┬───────────────────────────┐
//! │ header     │ undo-log region       │ data region (vPM)         │
//! │ 1 page     │ PoolConfig::log_bytes │ PoolConfig::data_bytes    │
//! └────────────┴───────────────────────┴───────────────────────────┘
//! ```
//!
//! * The **header** holds the magic number, format version, region sizes,
//!   and — on a line of its own so an 8-byte store commits it atomically —
//!   the **committed epoch number** that `persist()` advances (§3.3).
//! * The **undo-log region** is where the PAX device appends epoch-tagged
//!   undo entries (`pax-device::undo_log`).
//! * The **data region** is the vPM range applications see. Its line `0`
//!   is reserved as the *root line* where `libpax` keeps the structure
//!   root pointer and allocator state — kept in vPM so the undo log covers
//!   it like any other application data.
//!
//! Pools can be saved to and loaded from real files so examples and tests
//! can demonstrate cross-process recovery.

use std::fs;
use std::io::{Read as _, Write as _};
use std::path::Path;

use crate::error::PmError;
use crate::line::{CacheLine, LineAddr, LINE_SIZE, PAGE_SIZE};
use crate::media::{Memory, PersistenceDomain, PmMedia};
use crate::Result;

const MAGIC: &[u8; 8] = b"PAXPOOL1";
const VERSION: u32 = 1;

/// Header line indices (within the header page).
const HDR_META: u64 = 0; // magic, version, layout sizes
const HDR_EPOCH: u64 = 1; // committed epoch number, alone on its line

/// Lines in the header region (one 4 KiB page).
const HEADER_LINES: u64 = (PAGE_SIZE / LINE_SIZE) as u64;

/// Maximum number of tenants a pool header can hold epoch slots for.
///
/// Each tenant's committed epoch lives alone on header line `1 + tenant`
/// (tenant 0 aliases the legacy [`HDR_EPOCH`] line) so an 8-byte store
/// commits it atomically without touching any other tenant's slot. The
/// header page has 64 lines; 32 leaves room for future header fields.
pub const MAX_TENANTS: usize = 32;

/// Sizing and durability parameters for a new pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Bytes reserved for the persistent undo log.
    pub log_bytes: usize,
    /// Bytes of vPM exposed to the application.
    pub data_bytes: usize,
    /// Persistence domain of the backing media.
    pub domain: PersistenceDomain,
}

impl PoolConfig {
    /// A small pool suitable for tests: 256 KiB log, 1 MiB data, ADR.
    pub fn small() -> Self {
        PoolConfig { log_bytes: 256 << 10, data_bytes: 1 << 20, domain: PersistenceDomain::Adr }
    }

    /// Returns the config with a different log capacity.
    pub fn with_log_bytes(mut self, bytes: usize) -> Self {
        self.log_bytes = bytes;
        self
    }

    /// Returns the config with a different data capacity.
    pub fn with_data_bytes(mut self, bytes: usize) -> Self {
        self.data_bytes = bytes;
        self
    }

    /// Returns the config with a different persistence domain.
    pub fn with_domain(mut self, domain: PersistenceDomain) -> Self {
        self.domain = domain;
        self
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Resolved region boundaries of a pool, in lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolLayout {
    /// Lines in the header region.
    pub header_lines: u64,
    /// Lines in the undo-log region.
    pub log_lines: u64,
    /// Lines in the data (vPM) region.
    pub data_lines: u64,
}

impl PoolLayout {
    fn from_config(config: &PoolConfig) -> Result<Self> {
        if config.log_bytes < LINE_SIZE {
            return Err(PmError::BadLayout("log region must hold at least one line".into()));
        }
        if config.data_bytes < LINE_SIZE {
            return Err(PmError::BadLayout("data region must hold at least one line".into()));
        }
        Ok(PoolLayout {
            header_lines: HEADER_LINES,
            log_lines: config.log_bytes.div_ceil(LINE_SIZE) as u64,
            data_lines: config.data_bytes.div_ceil(LINE_SIZE) as u64,
        })
    }

    /// First line of the undo-log region.
    pub fn log_start(&self) -> LineAddr {
        LineAddr(self.header_lines)
    }

    /// First line of the data region.
    pub fn data_start(&self) -> LineAddr {
        LineAddr(self.header_lines + self.log_lines)
    }

    /// Total lines in the pool.
    pub fn total_lines(&self) -> u64 {
        self.header_lines + self.log_lines + self.data_lines
    }

    /// Translates a vPM line offset (0-based within the data region) to a
    /// pool-absolute line address.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::OutOfBounds`] if `vpm_line` is past the region.
    pub fn vpm_to_pool(&self, vpm_line: u64) -> Result<LineAddr> {
        if vpm_line >= self.data_lines {
            return Err(PmError::OutOfBounds {
                addr: LineAddr(vpm_line),
                capacity_lines: self.data_lines,
            });
        }
        Ok(LineAddr(self.data_start().0 + vpm_line))
    }

    /// Translates a pool-absolute line back to a vPM offset, if it falls
    /// inside the data region.
    pub fn pool_to_vpm(&self, addr: LineAddr) -> Option<u64> {
        let start = self.data_start().0;
        if addr.0 >= start && addr.0 < start + self.data_lines {
            Some(addr.0 - start)
        } else {
            None
        }
    }
}

/// A persistent memory pool: media plus on-media layout and epoch header.
///
/// # Example
///
/// ```
/// use pax_pm::{PmPool, PoolConfig};
///
/// let mut pool = PmPool::create(PoolConfig::small()).unwrap();
/// assert_eq!(pool.committed_epoch().unwrap(), 0);
/// pool.commit_epoch(1).unwrap();
/// assert_eq!(pool.committed_epoch().unwrap(), 1);
/// ```
#[derive(Debug)]
pub struct PmPool {
    media: PmMedia,
    layout: PoolLayout,
    domain: PersistenceDomain,
}

impl PmPool {
    /// Creates a fresh, zeroed pool with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::BadLayout`] if a region is smaller than a line.
    pub fn create(config: PoolConfig) -> Result<Self> {
        let layout = PoolLayout::from_config(&config)?;
        let media = PmMedia::new(layout.total_lines() as usize * LINE_SIZE, config.domain);
        let mut pool = PmPool { media, layout, domain: config.domain };
        pool.write_meta()?;
        pool.media.drain();
        Ok(pool)
    }

    fn write_meta(&mut self) -> Result<()> {
        let mut meta = CacheLine::zeroed();
        meta.write_at(0, MAGIC);
        meta.write_at(8, &VERSION.to_le_bytes());
        meta.write_at(16, &self.layout.log_lines.to_le_bytes());
        meta.write_at(24, &self.layout.data_lines.to_le_bytes());
        self.media.write_line(LineAddr(HDR_META), meta)
    }

    /// The pool's region layout.
    pub fn layout(&self) -> PoolLayout {
        self.layout
    }

    /// The persistence domain of the backing media.
    pub fn domain(&self) -> PersistenceDomain {
        self.domain
    }

    /// The epoch number most recently committed by `persist()`.
    ///
    /// After recovery, the application observes the pool exactly as it was
    /// when this epoch was committed.
    pub fn committed_epoch(&mut self) -> Result<u64> {
        self.committed_epoch_for(0)
    }

    /// The epoch most recently committed for `tenant`'s pool context.
    ///
    /// Tenant 0 reads the same header line as [`committed_epoch`]
    /// (single-tenant pools are the degenerate case of this API).
    ///
    /// # Errors
    ///
    /// Returns [`PmError::Config`] if `tenant >= MAX_TENANTS`.
    ///
    /// [`committed_epoch`]: PmPool::committed_epoch
    pub fn committed_epoch_for(&mut self, tenant: usize) -> Result<u64> {
        let line = self.media.read_line(Self::epoch_slot(tenant)?)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(line.read_at(0, 8));
        Ok(u64::from_le_bytes(buf))
    }

    fn epoch_slot(tenant: usize) -> Result<LineAddr> {
        if tenant >= MAX_TENANTS {
            return Err(PmError::Config(format!(
                "tenant {tenant} out of range (pool header holds {MAX_TENANTS} epoch slots)"
            )));
        }
        Ok(LineAddr(HDR_EPOCH + tenant as u64))
    }

    /// Durably commits `epoch` as the recovery point.
    ///
    /// The write targets a dedicated header line and is drained before
    /// returning, modelling the atomic 8-byte durable store in §3.3: "the
    /// device writes the current epoch number to a special location in the
    /// structure's pool file".
    pub fn commit_epoch(&mut self, epoch: u64) -> Result<()> {
        self.commit_epoch_for(0, epoch)
    }

    /// Durably commits `epoch` as the recovery point of `tenant`'s pool
    /// context. The write targets that tenant's dedicated header line, so
    /// the commit is atomic and independent of every other tenant's slot.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::Config`] if `tenant >= MAX_TENANTS`.
    pub fn commit_epoch_for(&mut self, tenant: usize, epoch: u64) -> Result<()> {
        let mut line = CacheLine::zeroed();
        line.write_at(0, &epoch.to_le_bytes());
        self.media.write_line(Self::epoch_slot(tenant)?, line)?;
        self.media.drain();
        Ok(())
    }

    /// Reads a pool-absolute line.
    pub fn read_line(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.media.read_line(addr)
    }

    /// Writes a pool-absolute line (queued; not yet durable).
    pub fn write_line(&mut self, addr: LineAddr, line: CacheLine) -> Result<()> {
        self.media.write_line(addr, line)
    }

    /// Forces queued writes to media.
    pub fn drain(&mut self) {
        self.media.drain();
    }

    /// Simulates power loss on the backing media.
    pub fn crash(&mut self) {
        self.media.crash();
    }

    /// Access statistics of the backing media.
    pub fn media_stats(&self) -> crate::MediaStats {
        self.media.stats()
    }

    /// Snapshot of the backing media's metric registry.
    pub fn media_metrics(&self) -> pax_telemetry::MetricSnapshot {
        self.media.metrics()
    }

    /// Serializes the durable contents to `path`.
    ///
    /// Queued (non-durable) writes are **not** saved — the file holds what
    /// would survive a crash, so save/load round-trips model reboot.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::Io`] on file-system failure.
    pub fn save(&mut self, path: impl AsRef<Path>) -> Result<()> {
        // What survives depends on the domain; apply it before snapshotting
        // by draining only if the WPQ is inside the persistence domain.
        if self.domain.wpq_survives() {
            self.media.drain();
        }
        let mut f = fs::File::create(path)?;
        f.write_all(MAGIC)?;
        f.write_all(&VERSION.to_le_bytes())?;
        f.write_all(&self.layout.log_lines.to_le_bytes())?;
        f.write_all(&self.layout.data_lines.to_le_bytes())?;
        f.write_all(&u64::from(self.domain_tag()).to_le_bytes())?;
        for i in 0..self.layout.total_lines() {
            let line = self.media.read_durable(LineAddr(i))?;
            f.write_all(line.as_bytes())?;
        }
        Ok(())
    }

    fn domain_tag(&self) -> u8 {
        match self.domain {
            PersistenceDomain::None => 0,
            PersistenceDomain::Adr => 1,
            PersistenceDomain::Eadr => 2,
        }
    }

    /// Loads a pool previously written by [`PmPool::save`].
    ///
    /// # Errors
    ///
    /// Returns [`PmError::BadPool`] for wrong magic/version and
    /// [`PmError::Io`] on file-system failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let mut f = fs::File::open(path)?;
        let mut hdr = [0u8; 8 + 4 + 8 + 8 + 8];
        f.read_exact(&mut hdr)?;
        if &hdr[0..8] != MAGIC {
            return Err(PmError::BadPool("bad magic number".into()));
        }
        let version = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(PmError::BadPool(format!("unsupported version {version}")));
        }
        let log_lines = u64::from_le_bytes(hdr[12..20].try_into().unwrap());
        let data_lines = u64::from_le_bytes(hdr[20..28].try_into().unwrap());
        let domain = match u64::from_le_bytes(hdr[28..36].try_into().unwrap()) {
            0 => PersistenceDomain::None,
            1 => PersistenceDomain::Adr,
            2 => PersistenceDomain::Eadr,
            t => return Err(PmError::BadPool(format!("unknown persistence domain tag {t}"))),
        };
        let layout = PoolLayout { header_lines: HEADER_LINES, log_lines, data_lines };
        let mut media = PmMedia::new(layout.total_lines() as usize * LINE_SIZE, domain);
        let mut buf = vec![0u8; LINE_SIZE];
        for i in 0..layout.total_lines() {
            f.read_exact(&mut buf)?;
            media.write_line(LineAddr(i), CacheLine::from_bytes(&buf))?;
        }
        media.drain();
        Ok(PmPool { media, layout, domain })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_sets_magic_and_epoch_zero() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        assert_eq!(pool.committed_epoch().unwrap(), 0);
        let meta = pool.read_line(LineAddr(HDR_META)).unwrap();
        assert_eq!(meta.read_at(0, 8), MAGIC);
    }

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let l = pool.layout();
        assert!(l.log_start().0 >= l.header_lines);
        assert_eq!(l.data_start().0, l.header_lines + l.log_lines);
        assert_eq!(l.total_lines(), l.header_lines + l.log_lines + l.data_lines);
    }

    #[test]
    fn vpm_translation_round_trips() {
        let pool = PmPool::create(PoolConfig::small()).unwrap();
        let l = pool.layout();
        for v in [0u64, 1, l.data_lines - 1] {
            let abs = l.vpm_to_pool(v).unwrap();
            assert_eq!(l.pool_to_vpm(abs), Some(v));
        }
        assert!(l.vpm_to_pool(l.data_lines).is_err());
        assert_eq!(l.pool_to_vpm(LineAddr(0)), None);
        assert_eq!(l.pool_to_vpm(l.log_start()), None);
    }

    #[test]
    fn epoch_commit_is_durable_across_crash() {
        let mut pool =
            PmPool::create(PoolConfig::small().with_domain(PersistenceDomain::None)).unwrap();
        pool.commit_epoch(7).unwrap();
        pool.crash();
        assert_eq!(pool.committed_epoch().unwrap(), 7);
    }

    #[test]
    fn tenant_epoch_slots_are_independent() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        pool.commit_epoch_for(0, 5).unwrap();
        pool.commit_epoch_for(1, 9).unwrap();
        pool.commit_epoch_for(3, 2).unwrap();
        assert_eq!(pool.committed_epoch_for(0).unwrap(), 5);
        assert_eq!(pool.committed_epoch_for(1).unwrap(), 9);
        assert_eq!(pool.committed_epoch_for(2).unwrap(), 0);
        assert_eq!(pool.committed_epoch_for(3).unwrap(), 2);
        // Tenant 0 aliases the legacy single-tenant slot.
        assert_eq!(pool.committed_epoch().unwrap(), 5);
    }

    #[test]
    fn tenant_epoch_commit_survives_crash() {
        let mut pool =
            PmPool::create(PoolConfig::small().with_domain(PersistenceDomain::None)).unwrap();
        pool.commit_epoch_for(2, 11).unwrap();
        pool.crash();
        assert_eq!(pool.committed_epoch_for(2).unwrap(), 11);
    }

    #[test]
    fn tenant_slot_out_of_range_is_config_error() {
        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        assert!(matches!(pool.committed_epoch_for(MAX_TENANTS), Err(PmError::Config(_))));
        assert!(matches!(pool.commit_epoch_for(MAX_TENANTS, 1), Err(PmError::Config(_))));
    }

    #[test]
    fn rejects_degenerate_layouts() {
        assert!(PmPool::create(PoolConfig::small().with_log_bytes(0)).is_err());
        assert!(PmPool::create(PoolConfig::small().with_data_bytes(0)).is_err());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("pax-pm-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pool");

        let mut pool = PmPool::create(PoolConfig::small()).unwrap();
        pool.commit_epoch(3).unwrap();
        let data0 = pool.layout().data_start();
        pool.write_line(data0, CacheLine::filled(0x5A)).unwrap();
        pool.drain();
        pool.save(&path).unwrap();

        let mut re = PmPool::load(&path).unwrap();
        assert_eq!(re.committed_epoch().unwrap(), 3);
        assert_eq!(re.read_line(data0).unwrap(), CacheLine::filled(0x5A));
        assert_eq!(re.layout(), pool.layout());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_excludes_non_durable_writes_without_adr() {
        let dir = std::env::temp_dir().join("pax-pm-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("volatile.pool");

        let mut pool =
            PmPool::create(PoolConfig::small().with_domain(PersistenceDomain::None)).unwrap();
        let data0 = pool.layout().data_start();
        pool.write_line(data0, CacheLine::filled(0xEE)).unwrap();
        // No drain: the write sits in the WPQ, which domain=None loses.
        pool.save(&path).unwrap();

        let mut re = PmPool::load(&path).unwrap();
        assert_eq!(re.read_line(data0).unwrap(), CacheLine::zeroed());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("pax-pm-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.pool");
        fs::write(&path, b"definitely not a pool file, far too short").unwrap();
        match PmPool::load(&path) {
            Err(PmError::BadPool(_)) | Err(PmError::Io(_)) => {}
            other => panic!("expected load failure, got {other:?}"),
        }
        fs::remove_file(&path).unwrap();
    }
}
