//! Error types for the PM substrate.

use std::error::Error;
use std::fmt;
use std::io;

use crate::line::LineAddr;

/// Errors produced by PM media, pools, and crash injection.
#[derive(Debug)]
#[non_exhaustive]
pub enum PmError {
    /// An access targeted a line outside the media or region bounds.
    OutOfBounds {
        /// The offending line address.
        addr: LineAddr,
        /// Number of lines in the media/region.
        capacity_lines: u64,
    },
    /// The simulated machine has crashed; the operation did not take effect.
    ///
    /// Components surface this when the [`CrashClock`](crate::CrashClock)
    /// fires mid-operation, so tests can unwind to the recovery path.
    Crashed,
    /// A pool file had a bad magic number or unsupported version.
    BadPool(String),
    /// A pool was configured with inconsistent region sizes.
    BadLayout(String),
    /// A device or tenant configuration was rejected before construction
    /// (overlapping VPM regions, zero-length extents, shard counts that
    /// don't divide the HBM geometry, …).
    Config(String),
    /// The persistent undo-log region is full.
    LogFull {
        /// Capacity of the log region in entries.
        capacity_entries: u64,
    },
    /// A device protocol invariant was violated — internal state is
    /// inconsistent in a way no caller action can produce. Surfaced
    /// instead of looping or asserting so tests can pin the invariant.
    ProtocolViolation {
        /// The invariant that did not hold.
        invariant: &'static str,
    },
    /// Underlying file I/O failed while loading or syncing a pool file.
    Io(io::Error),
}

impl fmt::Display for PmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmError::OutOfBounds { addr, capacity_lines } => {
                write!(f, "{addr} is out of bounds for media of {capacity_lines} lines")
            }
            PmError::Crashed => write!(f, "simulated crash occurred"),
            PmError::BadPool(msg) => write!(f, "invalid pool file: {msg}"),
            PmError::BadLayout(msg) => write!(f, "invalid pool layout: {msg}"),
            PmError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            PmError::LogFull { capacity_entries } => {
                write!(f, "undo log region full ({capacity_entries} entries)")
            }
            PmError::ProtocolViolation { invariant } => {
                write!(f, "device protocol invariant violated: {invariant}")
            }
            PmError::Io(e) => write!(f, "pool file I/O failed: {e}"),
        }
    }
}

impl Error for PmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PmError {
    fn from(e: io::Error) -> Self {
        PmError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = PmError::OutOfBounds { addr: LineAddr(16), capacity_lines: 8 };
        let s = e.to_string();
        assert!(s.contains("out of bounds"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn config_error_displays_reason() {
        let e = PmError::Config("tenant 1 region overlaps tenant 0".into());
        let s = e.to_string();
        assert!(s.contains("invalid configuration"));
        assert!(s.contains("overlaps"));
    }

    #[test]
    fn io_error_is_source() {
        let e = PmError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PmError>();
    }
}
