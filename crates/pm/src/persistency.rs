//! Configurable persistency models (§2 of "Exploring Memory Persistency
//! Models for GPUs"; the ROADMAP's "configurable persistency semantics"
//! knob).
//!
//! The engine's ordering/durability contract used to be an implicit
//! property of the datapath: every layer assumed epoch persistency with a
//! synchronous epoch barrier. [`PersistencyModel`] makes the contract an
//! explicit, switchable policy that `PaxConfig`/`DeviceConfig` thread
//! through the pool, the device's drain engine, the per-lane schedulers,
//! and recovery:
//!
//! * [`PersistencyModel::Strict`] — every completed store is its own
//!   durable epoch. The pool layer closes (and synchronously commits) an
//!   epoch after each line store, so no completed store is ever rolled
//!   back. This is the ordering-cost baseline: maximal safety, one full
//!   persist barrier per store.
//! * [`PersistencyModel::Epoch`] — the engine's historical behavior, and
//!   the default. `persist()` is a synchronous barrier: flush the undo
//!   banks, snoop, write back, drain, atomically commit. A crash loses at
//!   most the one open epoch.
//! * [`PersistencyModel::BufferedEpoch`] — epochs close *asynchronously*:
//!   `persist()` captures the epoch and returns immediately, and the
//!   device may hold up to `k` closed-but-uncommitted epochs in flight,
//!   retiring them strictly in order. Recovery rolls back to the newest
//!   *fully retired* epoch, so a crash loses at most `k` closed epochs
//!   (plus the open one) — always a prefix-closed cut of epoch history.

use core::fmt;

/// Which ordering/durability contract the engine enforces between stores
/// and crash-recovery points. See the module docs for the three models'
/// semantics and recovery bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PersistencyModel {
    /// Every completed store is its own durable epoch: the pool layer
    /// runs a full persist barrier after each line store. No completed
    /// store is ever rolled back.
    Strict,
    /// Epoch persistency with a synchronous `persist()` barrier — the
    /// engine's historical behavior. Rollback is bounded by the one open
    /// epoch.
    #[default]
    Epoch,
    /// Epochs close asynchronously and the device holds up to `k`
    /// closed-but-uncommitted epochs, retired strictly in order.
    /// Rollback is bounded by `k` closed epochs (plus the open one) and
    /// is always prefix-closed.
    BufferedEpoch {
        /// Maximum closed-but-uncommitted epochs the device may buffer.
        /// Must be at least 1 (validated when the device opens).
        k: usize,
    },
}

impl PersistencyModel {
    /// Shorthand for [`PersistencyModel::BufferedEpoch`] with depth `k`.
    pub const fn buffered(k: usize) -> Self {
        PersistencyModel::BufferedEpoch { k }
    }

    /// How many closed-but-uncommitted epochs the device may hold in its
    /// drain queue before an epoch close must block on retirement:
    /// `Strict` and `Epoch` allow one in-flight drain (the non-blocking
    /// `persist_async` path), `BufferedEpoch { k }` allows `k`.
    pub const fn max_open_epochs(self) -> usize {
        match self {
            PersistencyModel::Strict | PersistencyModel::Epoch => 1,
            PersistencyModel::BufferedEpoch { k } => k,
        }
    }

    /// The model's documented recovery contract: the maximum number of
    /// epochs whose *close returned to the caller* that a crash may still
    /// roll back. `Strict` loses no completed store (0); `Epoch` loses at
    /// most the epoch a crash interrupts (≤ 1); `BufferedEpoch { k }`
    /// loses at most the `k` buffered closes (≤ k). The currently *open*
    /// (never-closed) epoch additionally rolls back under every model.
    pub const fn rollback_bound(self) -> u64 {
        match self {
            PersistencyModel::Strict => 0,
            PersistencyModel::Epoch => 1,
            PersistencyModel::BufferedEpoch { k } => k as u64,
        }
    }

    /// Whether the pool layer must close (and synchronously commit) an
    /// epoch after every completed line store.
    pub const fn persist_per_store(self) -> bool {
        matches!(self, PersistencyModel::Strict)
    }

    /// Whether an explicit `persist()` closes the epoch asynchronously
    /// (returns before the epoch is durable) instead of acting as a
    /// synchronous barrier.
    pub const fn closes_async(self) -> bool {
        matches!(self, PersistencyModel::BufferedEpoch { .. })
    }

    /// Stable label for telemetry, bench reports, and trace forensics.
    pub fn label(self) -> String {
        match self {
            PersistencyModel::Strict => "strict".into(),
            PersistencyModel::Epoch => "epoch".into(),
            PersistencyModel::BufferedEpoch { k } => format!("buffered{k}"),
        }
    }

    /// Numeric code for metric gauges (0 = strict, 1 = epoch,
    /// 2 = buffered-epoch), model-family only — pair with
    /// [`PersistencyModel::max_open_epochs`] for the depth.
    pub const fn code(self) -> u64 {
        match self {
            PersistencyModel::Strict => 0,
            PersistencyModel::Epoch => 1,
            PersistencyModel::BufferedEpoch { .. } => 2,
        }
    }

    /// Checks the model's parameters; a `BufferedEpoch` depth of zero
    /// would deadlock every epoch close.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the invalid parameter.
    pub fn validate(self) -> core::result::Result<(), String> {
        match self {
            PersistencyModel::BufferedEpoch { k: 0 } => {
                Err("buffered-epoch depth k must be at least 1".into())
            }
            _ => Ok(()),
        }
    }
}

impl fmt::Display for PersistencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_the_default() {
        assert_eq!(PersistencyModel::default(), PersistencyModel::Epoch);
    }

    #[test]
    fn rollback_bounds_are_ordered() {
        let strict = PersistencyModel::Strict;
        let epoch = PersistencyModel::Epoch;
        let buffered = PersistencyModel::buffered(4);
        assert_eq!(strict.rollback_bound(), 0);
        assert_eq!(epoch.rollback_bound(), 1);
        assert_eq!(buffered.rollback_bound(), 4);
        assert!(strict.rollback_bound() < epoch.rollback_bound());
        assert!(epoch.rollback_bound() < buffered.rollback_bound());
    }

    #[test]
    fn open_epoch_capacity_matches_the_buffer_depth() {
        assert_eq!(PersistencyModel::Strict.max_open_epochs(), 1);
        assert_eq!(PersistencyModel::Epoch.max_open_epochs(), 1);
        assert_eq!(PersistencyModel::buffered(3).max_open_epochs(), 3);
    }

    #[test]
    fn only_strict_persists_per_store_and_only_buffered_closes_async() {
        assert!(PersistencyModel::Strict.persist_per_store());
        assert!(!PersistencyModel::Epoch.persist_per_store());
        assert!(!PersistencyModel::buffered(2).persist_per_store());
        assert!(!PersistencyModel::Strict.closes_async());
        assert!(!PersistencyModel::Epoch.closes_async());
        assert!(PersistencyModel::buffered(2).closes_async());
    }

    #[test]
    fn labels_and_codes_are_stable() {
        assert_eq!(PersistencyModel::Strict.label(), "strict");
        assert_eq!(PersistencyModel::Epoch.label(), "epoch");
        assert_eq!(PersistencyModel::buffered(4).label(), "buffered4");
        assert_eq!(PersistencyModel::Strict.code(), 0);
        assert_eq!(PersistencyModel::Epoch.code(), 1);
        assert_eq!(PersistencyModel::buffered(2).code(), 2);
        assert_eq!(format!("{}", PersistencyModel::buffered(2)), "buffered2");
    }

    #[test]
    fn zero_depth_buffered_is_rejected() {
        assert!(PersistencyModel::buffered(0).validate().is_err());
        assert!(PersistencyModel::buffered(1).validate().is_ok());
        assert!(PersistencyModel::Strict.validate().is_ok());
        assert!(PersistencyModel::Epoch.validate().is_ok());
    }
}
