//! Cache lines and line-aligned addressing.
//!
//! Every component in the PAX stack — host CPU caches, CXL coherence
//! messages, the device HBM cache, and the undo log — operates on 64-byte
//! cache lines. This module provides the [`CacheLine`] value type and the
//! [`LineAddr`] newtype that statically distinguishes line numbers from raw
//! byte addresses (the source of a whole class of off-by-shift bugs).

use std::fmt;

/// Size of a cache line in bytes on the simulated platform (x86/ThunderX).
pub const LINE_SIZE: usize = 64;

/// Size of a virtual memory page in bytes; the granularity at which the
/// page-fault-based baselines must log (§1 of the paper).
pub const PAGE_SIZE: usize = 4096;

/// A line-aligned address: the index of a 64-byte line within a memory.
///
/// `LineAddr(3)` refers to bytes `[192, 256)`. Using a newtype instead of a
/// bare `u64` keeps byte offsets and line numbers from being confused
/// (C-NEWTYPE).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Converts a byte address to the address of the line containing it.
    ///
    /// ```
    /// use pax_pm::LineAddr;
    /// assert_eq!(LineAddr::from_byte_addr(0), LineAddr(0));
    /// assert_eq!(LineAddr::from_byte_addr(63), LineAddr(0));
    /// assert_eq!(LineAddr::from_byte_addr(64), LineAddr(1));
    /// ```
    #[inline]
    pub fn from_byte_addr(byte: u64) -> Self {
        LineAddr(byte / LINE_SIZE as u64)
    }

    /// The byte address of the first byte of this line.
    #[inline]
    pub fn byte_addr(self) -> u64 {
        self.0 * LINE_SIZE as u64
    }

    /// The page number this line falls in (for page-granularity baselines).
    #[inline]
    pub fn page(self) -> u64 {
        self.byte_addr() / PAGE_SIZE as u64
    }

    /// The next line address.
    #[inline]
    pub fn next(self) -> Self {
        LineAddr(self.0 + 1)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

impl From<LineAddr> for u64 {
    fn from(a: LineAddr) -> u64 {
        a.0
    }
}

/// The contents of one 64-byte cache line.
///
/// `CacheLine` is a plain value: copying it models moving line data between
/// caches, the device, and media. It is deliberately *not* `Copy` to make
/// 64-byte copies visible in the code that performs them.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CacheLine([u8; LINE_SIZE]);

impl CacheLine {
    /// A line of all-zero bytes (the content of never-written PM).
    pub fn zeroed() -> Self {
        CacheLine([0; LINE_SIZE])
    }

    /// A line with every byte set to `b`; handy in tests.
    pub fn filled(b: u8) -> Self {
        CacheLine([b; LINE_SIZE])
    }

    /// Builds a line from exactly [`LINE_SIZE`] bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != LINE_SIZE`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), LINE_SIZE, "cache line must be 64 bytes");
        let mut arr = [0u8; LINE_SIZE];
        arr.copy_from_slice(bytes);
        CacheLine(arr)
    }

    /// Read-only view of the line's bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; LINE_SIZE] {
        &self.0
    }

    /// Mutable view of the line's bytes.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8; LINE_SIZE] {
        &mut self.0
    }

    /// Copies `src` into the line starting at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len() > LINE_SIZE`.
    pub fn write_at(&mut self, offset: usize, src: &[u8]) {
        self.0[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Returns the `len` bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len > LINE_SIZE`.
    pub fn read_at(&self, offset: usize, len: usize) -> &[u8] {
        &self.0[offset..offset + len]
    }
}

impl Default for CacheLine {
    fn default() -> Self {
        CacheLine::zeroed()
    }
}

impl fmt::Debug for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print only a prefix; full 64-byte dumps drown test output.
        write!(
            f,
            "CacheLine[{:02x}{:02x}{:02x}{:02x}…]",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl From<[u8; LINE_SIZE]> for CacheLine {
    fn from(arr: [u8; LINE_SIZE]) -> Self {
        CacheLine(arr)
    }
}

impl AsRef<[u8]> for CacheLine {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_round_trip() {
        for byte in [0u64, 1, 63, 64, 65, 4095, 4096, u32::MAX as u64] {
            let l = LineAddr::from_byte_addr(byte);
            assert!(l.byte_addr() <= byte);
            assert!(byte < l.byte_addr() + LINE_SIZE as u64);
        }
    }

    #[test]
    fn line_addr_page() {
        assert_eq!(LineAddr::from_byte_addr(0).page(), 0);
        assert_eq!(LineAddr::from_byte_addr(4095).page(), 0);
        assert_eq!(LineAddr::from_byte_addr(4096).page(), 1);
        // 64 lines per 4 KiB page.
        assert_eq!(LineAddr(63).page(), 0);
        assert_eq!(LineAddr(64).page(), 1);
    }

    #[test]
    fn cache_line_write_read_at() {
        let mut l = CacheLine::zeroed();
        l.write_at(8, &[1, 2, 3, 4]);
        assert_eq!(l.read_at(8, 4), &[1, 2, 3, 4]);
        assert_eq!(l.read_at(0, 8), &[0; 8]);
        assert_eq!(l.read_at(12, 4), &[0; 4]);
    }

    #[test]
    #[should_panic]
    fn cache_line_write_out_of_bounds() {
        let mut l = CacheLine::zeroed();
        l.write_at(60, &[0; 8]);
    }

    #[test]
    fn cache_line_from_bytes() {
        let bytes = [7u8; LINE_SIZE];
        let l = CacheLine::from_bytes(&bytes);
        assert_eq!(l.as_bytes(), &bytes);
        assert_eq!(l, CacheLine::filled(7));
        assert_ne!(l, CacheLine::zeroed());
    }

    #[test]
    fn next_advances_one_line() {
        assert_eq!(LineAddr(7).next(), LineAddr(8));
        assert_eq!(LineAddr(7).next().byte_addr(), 8 * 64);
    }
}
