//! Memory media with an explicit durability boundary.
//!
//! The whole point of crash-consistency work is the gap between *written*
//! and *durable*. This module makes that gap explicit:
//!
//! * [`PmMedia`] models a persistent DIMM plus the memory controller's
//!   write-pending queue (WPQ). A written line sits in the WPQ until it
//!   drains to the durable array. The configured [`PersistenceDomain`]
//!   decides what happens to the WPQ at a crash: under **ADR** (and eADR)
//!   the WPQ is inside the persistence domain and drains on power loss;
//!   with [`PersistenceDomain::None`] queued writes are lost.
//! * [`DramMedia`] models volatile memory: a crash clears everything.
//!
//! Host-CPU caches are *not* part of any medium — dirty lines living in the
//! simulated CPU cache (see `pax-cache`) are simply absent from the medium
//! and therefore lost on crash, exactly the hazard the paper addresses.

use std::collections::VecDeque;

use pax_telemetry::{Counter, MetricSet, MetricSnapshot};

use crate::error::PmError;
use crate::line::{CacheLine, LineAddr};
use crate::Result;

/// Which part of the write path survives power loss (§1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PersistenceDomain {
    /// Nothing queued survives; only lines already on media do.
    None,
    /// Asynchronous DRAM Refresh: writes accepted by the memory
    /// controller's WPQ are flushed on power loss and survive.
    Adr,
    /// Extended ADR: CPU caches are also flushed on power loss. The cache
    /// simulator consults this to decide whether dirty CPU lines survive;
    /// at the media level it behaves like [`PersistenceDomain::Adr`].
    Eadr,
}

impl PersistenceDomain {
    /// Whether writes sitting in the WPQ survive a crash.
    pub fn wpq_survives(self) -> bool {
        !matches!(self, PersistenceDomain::None)
    }

    /// Whether dirty lines in CPU caches survive a crash.
    pub fn cpu_caches_survive(self) -> bool {
        matches!(self, PersistenceDomain::Eadr)
    }
}

/// Access statistics for a medium; inputs to the timing models.
///
/// This is a point-in-time *view* built from the medium's
/// [`MetricSet`] registry — the registry is the single owner of the
/// counters; this struct just gives call sites typed field access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediaStats {
    /// Number of line reads served.
    pub line_reads: u64,
    /// Number of line writes accepted.
    pub line_writes: u64,
    /// Number of lines dropped from the WPQ by a crash.
    pub lines_lost_in_wpq: u64,
    /// Number of crashes this medium has survived.
    pub crashes: u64,
}

/// Counter handles for one medium's [`MetricSet`].
#[derive(Debug, Clone, Copy)]
struct MediaCounters {
    line_reads: Counter,
    line_writes: Counter,
    lines_lost_in_wpq: Counter,
    crashes: Counter,
}

impl MediaCounters {
    fn register(metrics: &mut MetricSet) -> Self {
        MediaCounters {
            line_reads: metrics.counter("line_reads"),
            line_writes: metrics.counter("line_writes"),
            lines_lost_in_wpq: metrics.counter("lines_lost_in_wpq"),
            crashes: metrics.counter("crashes"),
        }
    }

    fn view(&self, metrics: &MetricSet) -> MediaStats {
        MediaStats {
            line_reads: metrics.get(self.line_reads),
            line_writes: metrics.get(self.line_writes),
            lines_lost_in_wpq: metrics.get(self.lines_lost_in_wpq),
            crashes: metrics.get(self.crashes),
        }
    }
}

impl MediaStats {
    /// Total bytes read from the medium.
    pub fn bytes_read(&self) -> u64 {
        self.line_reads * crate::LINE_SIZE as u64
    }

    /// Total bytes written to the medium.
    pub fn bytes_written(&self) -> u64 {
        self.line_writes * crate::LINE_SIZE as u64
    }
}

/// Line-granularity memory with crash semantics.
///
/// Implemented by [`PmMedia`] and [`DramMedia`]. All PAX components are
/// written against this trait so tests can swap media freely.
pub trait Memory {
    /// Reads the line at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::OutOfBounds`] if `addr` is past the end.
    fn read_line(&mut self, addr: LineAddr) -> Result<CacheLine>;

    /// Writes the line at `addr`.
    ///
    /// For persistent media the write is only *queued*; call
    /// [`Memory::drain`] (or rely on the persistence domain at crash time)
    /// for durability.
    ///
    /// # Errors
    ///
    /// Returns [`PmError::OutOfBounds`] if `addr` is past the end.
    fn write_line(&mut self, addr: LineAddr, line: CacheLine) -> Result<()>;

    /// Forces all queued writes to the durable array (an `SFENCE` +
    /// queue-drain on real hardware).
    fn drain(&mut self);

    /// Simulates power loss, applying the medium's persistence semantics.
    fn crash(&mut self);

    /// Capacity in lines.
    fn capacity_lines(&self) -> u64;

    /// Cumulative access statistics (a typed view of [`Memory::metrics`]).
    fn stats(&self) -> MediaStats;

    /// Snapshot of the medium's metric registry.
    fn metrics(&self) -> MetricSnapshot;
}

/// Simulated persistent memory: durable array + write-pending queue.
///
/// # Example
///
/// ```
/// use pax_pm::{PmMedia, Memory, PersistenceDomain, LineAddr, CacheLine};
///
/// // Without ADR, a crash loses writes still sitting in the WPQ.
/// let mut pm = PmMedia::new(4096, PersistenceDomain::None);
/// pm.write_line(LineAddr(0), CacheLine::filled(9)).unwrap();
/// pm.crash();
/// assert_eq!(pm.read_line(LineAddr(0)).unwrap(), CacheLine::zeroed());
/// ```
#[derive(Debug)]
pub struct PmMedia {
    durable: Vec<CacheLine>,
    wpq: VecDeque<(LineAddr, CacheLine)>,
    wpq_capacity: usize,
    domain: PersistenceDomain,
    metrics: MetricSet,
    ctr: MediaCounters,
}

/// Default depth of the write-pending queue (tens of entries on real iMCs).
pub const DEFAULT_WPQ_DEPTH: usize = 64;

impl PmMedia {
    /// Creates a zero-filled persistent medium of `capacity_bytes`
    /// (rounded up to whole lines) with the given persistence domain.
    pub fn new(capacity_bytes: usize, domain: PersistenceDomain) -> Self {
        let lines = capacity_bytes.div_ceil(crate::LINE_SIZE);
        let mut metrics = MetricSet::new("media");
        let ctr = MediaCounters::register(&mut metrics);
        PmMedia {
            durable: vec![CacheLine::zeroed(); lines],
            wpq: VecDeque::new(),
            wpq_capacity: DEFAULT_WPQ_DEPTH,
            domain,
            metrics,
            ctr,
        }
    }

    /// The configured persistence domain.
    pub fn domain(&self) -> PersistenceDomain {
        self.domain
    }

    /// Number of writes currently pending in the WPQ.
    pub fn wpq_len(&self) -> usize {
        self.wpq.len()
    }

    /// Reads the *durable* contents at `addr`, ignoring the WPQ.
    ///
    /// This is what a post-crash reader would see if the WPQ were lost;
    /// recovery tests use it to assert on-media state.
    pub fn read_durable(&self, addr: LineAddr) -> Result<CacheLine> {
        self.check(addr)?;
        Ok(self.durable[addr.0 as usize].clone())
    }

    fn check(&self, addr: LineAddr) -> Result<()> {
        if addr.0 >= self.durable.len() as u64 {
            return Err(PmError::OutOfBounds { addr, capacity_lines: self.durable.len() as u64 });
        }
        Ok(())
    }

    fn drain_one(&mut self) {
        if let Some((addr, line)) = self.wpq.pop_front() {
            self.durable[addr.0 as usize] = line;
        }
    }
}

impl Memory for PmMedia {
    fn read_line(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.check(addr)?;
        self.metrics.inc(self.ctr.line_reads);
        // Reads must observe queued writes (store-to-load forwarding at
        // the controller); scan the WPQ newest-first.
        for (a, l) in self.wpq.iter().rev() {
            if *a == addr {
                return Ok(l.clone());
            }
        }
        Ok(self.durable[addr.0 as usize].clone())
    }

    fn write_line(&mut self, addr: LineAddr, line: CacheLine) -> Result<()> {
        self.check(addr)?;
        self.metrics.inc(self.ctr.line_writes);
        if self.wpq.len() >= self.wpq_capacity {
            // A full WPQ forces the oldest entry to media, like real iMCs.
            self.drain_one();
        }
        self.wpq.push_back((addr, line));
        Ok(())
    }

    fn drain(&mut self) {
        while !self.wpq.is_empty() {
            self.drain_one();
        }
    }

    fn crash(&mut self) {
        self.metrics.inc(self.ctr.crashes);
        if self.domain.wpq_survives() {
            self.drain();
        } else {
            self.metrics.add(self.ctr.lines_lost_in_wpq, self.wpq.len() as u64);
            self.wpq.clear();
        }
    }

    fn capacity_lines(&self) -> u64 {
        self.durable.len() as u64
    }

    fn stats(&self) -> MediaStats {
        self.ctr.view(&self.metrics)
    }

    fn metrics(&self) -> MetricSnapshot {
        self.metrics.snapshot()
    }
}

/// Volatile memory: contents are cleared by a crash.
#[derive(Debug)]
pub struct DramMedia {
    lines: Vec<CacheLine>,
    metrics: MetricSet,
    ctr: MediaCounters,
}

impl DramMedia {
    /// Creates a zero-filled volatile medium of `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        let lines = capacity_bytes.div_ceil(crate::LINE_SIZE);
        let mut metrics = MetricSet::new("dram_media");
        let ctr = MediaCounters::register(&mut metrics);
        DramMedia { lines: vec![CacheLine::zeroed(); lines], metrics, ctr }
    }

    fn check(&self, addr: LineAddr) -> Result<()> {
        if addr.0 >= self.lines.len() as u64 {
            return Err(PmError::OutOfBounds { addr, capacity_lines: self.lines.len() as u64 });
        }
        Ok(())
    }
}

impl Memory for DramMedia {
    fn read_line(&mut self, addr: LineAddr) -> Result<CacheLine> {
        self.check(addr)?;
        self.metrics.inc(self.ctr.line_reads);
        Ok(self.lines[addr.0 as usize].clone())
    }

    fn write_line(&mut self, addr: LineAddr, line: CacheLine) -> Result<()> {
        self.check(addr)?;
        self.metrics.inc(self.ctr.line_writes);
        self.lines[addr.0 as usize] = line;
        Ok(())
    }

    fn drain(&mut self) {}

    fn crash(&mut self) {
        self.metrics.inc(self.ctr.crashes);
        for l in &mut self.lines {
            *l = CacheLine::zeroed();
        }
    }

    fn capacity_lines(&self) -> u64 {
        self.lines.len() as u64
    }

    fn stats(&self) -> MediaStats {
        self.ctr.view(&self.metrics)
    }

    fn metrics(&self) -> MetricSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(b: u8) -> CacheLine {
        CacheLine::filled(b)
    }

    #[test]
    fn write_then_read_sees_wpq_contents() {
        let mut pm = PmMedia::new(1 << 16, PersistenceDomain::None);
        pm.write_line(LineAddr(3), fill(1)).unwrap();
        assert_eq!(pm.read_line(LineAddr(3)).unwrap(), fill(1));
        // Durable view still zero until drained.
        assert_eq!(pm.read_durable(LineAddr(3)).unwrap(), CacheLine::zeroed());
        pm.drain();
        assert_eq!(pm.read_durable(LineAddr(3)).unwrap(), fill(1));
    }

    #[test]
    fn newest_wpq_write_wins() {
        let mut pm = PmMedia::new(1 << 16, PersistenceDomain::Adr);
        pm.write_line(LineAddr(5), fill(1)).unwrap();
        pm.write_line(LineAddr(5), fill(2)).unwrap();
        assert_eq!(pm.read_line(LineAddr(5)).unwrap(), fill(2));
        pm.drain();
        assert_eq!(pm.read_durable(LineAddr(5)).unwrap(), fill(2));
    }

    #[test]
    fn adr_crash_preserves_queued_writes() {
        let mut pm = PmMedia::new(1 << 16, PersistenceDomain::Adr);
        pm.write_line(LineAddr(0), fill(7)).unwrap();
        pm.crash();
        assert_eq!(pm.read_line(LineAddr(0)).unwrap(), fill(7));
        assert_eq!(pm.stats().lines_lost_in_wpq, 0);
    }

    #[test]
    fn no_adr_crash_drops_queued_writes() {
        let mut pm = PmMedia::new(1 << 16, PersistenceDomain::None);
        pm.write_line(LineAddr(0), fill(7)).unwrap();
        pm.crash();
        assert_eq!(pm.read_line(LineAddr(0)).unwrap(), CacheLine::zeroed());
        assert_eq!(pm.stats().lines_lost_in_wpq, 1);
    }

    #[test]
    fn wpq_overflow_spills_oldest_to_media() {
        let mut pm = PmMedia::new(1 << 20, PersistenceDomain::None);
        for i in 0..(DEFAULT_WPQ_DEPTH as u64 + 8) {
            pm.write_line(LineAddr(i), fill(i as u8)).unwrap();
        }
        assert_eq!(pm.wpq_len(), DEFAULT_WPQ_DEPTH);
        // The first 8 writes were forced out and are durable even after a
        // non-ADR crash.
        pm.crash();
        for i in 0..8u64 {
            assert_eq!(pm.read_durable(LineAddr(i)).unwrap(), fill(i as u8));
        }
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut pm = PmMedia::new(64, PersistenceDomain::Adr);
        assert!(matches!(pm.read_line(LineAddr(1)), Err(PmError::OutOfBounds { .. })));
        assert!(pm.write_line(LineAddr(99), fill(0)).is_err());
    }

    #[test]
    fn dram_crash_clears_contents() {
        let mut d = DramMedia::new(1 << 12);
        d.write_line(LineAddr(1), fill(3)).unwrap();
        assert_eq!(d.read_line(LineAddr(1)).unwrap(), fill(3));
        d.crash();
        assert_eq!(d.read_line(LineAddr(1)).unwrap(), CacheLine::zeroed());
    }

    #[test]
    fn stats_count_bytes() {
        let mut pm = PmMedia::new(1 << 12, PersistenceDomain::Adr);
        pm.write_line(LineAddr(0), fill(1)).unwrap();
        pm.read_line(LineAddr(0)).unwrap();
        assert_eq!(pm.stats().bytes_written(), 64);
        assert_eq!(pm.stats().bytes_read(), 64);
    }

    #[test]
    fn domain_predicates() {
        assert!(!PersistenceDomain::None.wpq_survives());
        assert!(PersistenceDomain::Adr.wpq_survives());
        assert!(!PersistenceDomain::Adr.cpu_caches_survive());
        assert!(PersistenceDomain::Eadr.cpu_caches_survive());
    }

    #[test]
    fn capacity_rounds_up_to_lines() {
        let pm = PmMedia::new(65, PersistenceDomain::Adr);
        assert_eq!(pm.capacity_lines(), 2);
    }
}
