//! Bounded structured trace buffer with a global simulation sequence.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

static SIM_SEQUENCE: AtomicU64 = AtomicU64::new(0);

/// Process-global monotonic event sequence.
///
/// Every trace record is stamped from one shared counter, so events from
/// different components (and different pools running in the same test
/// process) are totally ordered without any clock plumbing. Sequence
/// numbers are unique and increasing; they are not timestamps.
pub struct SimClock;

impl SimClock {
    /// Stamps and returns the next sequence number.
    pub fn tick() -> u64 {
        SIM_SEQUENCE.fetch_add(1, Ordering::Relaxed)
    }

    /// The next sequence number that [`SimClock::tick`] would return.
    pub fn now() -> u64 {
        SIM_SEQUENCE.load(Ordering::Relaxed)
    }
}

/// One structured event in the life of the simulated stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A coherence protocol message (`op` names the message, e.g.
    /// `"rd_own"`, `"snp_inv"`).
    Coherence {
        /// Message kind.
        op: Cow<'static, str>,
        /// Cache line address the message concerns.
        line: u64,
    },
    /// An undo-log entry was appended for a line's pre-image.
    LogAppend {
        /// Epoch the entry belongs to.
        epoch: u64,
        /// Logged line address.
        line: u64,
    },
    /// A dirty line was written back to media.
    WriteBack {
        /// Written-back line address.
        line: u64,
    },
    /// An epoch committed (its log entries became dead).
    EpochCommit {
        /// The committed epoch.
        epoch: u64,
        /// Log entries retired by the commit.
        entries: u64,
    },
    /// A crash was injected.
    Crash {
        /// Epoch that was in flight when the crash hit.
        epoch: u64,
    },
    /// Recovery rolled one line back to its logged pre-image.
    RecoveryStep {
        /// Epoch whose entry was rolled back.
        epoch: u64,
        /// Restored line address.
        line: u64,
    },
    /// One virtual tick of the device scheduler made background progress
    /// (zero-work ticks are identity transitions and are not recorded).
    Tick {
        /// The scheduler's virtual-time tick counter after the tick.
        tick: u64,
        /// Durable-write steps performed during the tick (log drain,
        /// write back, persist drain, commit).
        work: u64,
    },
}

impl TraceEvent {
    fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Coherence { .. } => "coherence",
            TraceEvent::LogAppend { .. } => "log_append",
            TraceEvent::WriteBack { .. } => "write_back",
            TraceEvent::EpochCommit { .. } => "epoch_commit",
            TraceEvent::Crash { .. } => "crash",
            TraceEvent::RecoveryStep { .. } => "recovery_step",
            TraceEvent::Tick { .. } => "tick",
        }
    }

    fn to_json(&self) -> Json {
        let base = Json::obj().field("type", Json::str(self.kind()));
        match self {
            TraceEvent::Coherence { op, line } => {
                base.field("op", Json::str(op.clone().into_owned())).field("line", Json::U64(*line))
            }
            TraceEvent::LogAppend { epoch, line } => {
                base.field("epoch", Json::U64(*epoch)).field("line", Json::U64(*line))
            }
            TraceEvent::WriteBack { line } => base.field("line", Json::U64(*line)),
            TraceEvent::EpochCommit { epoch, entries } => {
                base.field("epoch", Json::U64(*epoch)).field("entries", Json::U64(*entries))
            }
            TraceEvent::Crash { epoch } => base.field("epoch", Json::U64(*epoch)),
            TraceEvent::RecoveryStep { epoch, line } => {
                base.field("epoch", Json::U64(*epoch)).field("line", Json::U64(*line))
            }
            TraceEvent::Tick { tick, work } => {
                base.field("tick", Json::U64(*tick)).field("work", Json::U64(*work))
            }
        }
    }

    fn from_json(j: &Json) -> Result<TraceEvent, String> {
        let kind = j.get("type").and_then(Json::as_str).ok_or("event missing 'type'")?;
        let u64_field = |name: &str| -> Result<u64, String> {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{kind} event missing '{name}'"))
        };
        match kind {
            "coherence" => Ok(TraceEvent::Coherence {
                op: Cow::Owned(
                    j.get("op")
                        .and_then(Json::as_str)
                        .ok_or("coherence event missing 'op'")?
                        .to_string(),
                ),
                line: u64_field("line")?,
            }),
            "log_append" => {
                Ok(TraceEvent::LogAppend { epoch: u64_field("epoch")?, line: u64_field("line")? })
            }
            "write_back" => Ok(TraceEvent::WriteBack { line: u64_field("line")? }),
            "epoch_commit" => Ok(TraceEvent::EpochCommit {
                epoch: u64_field("epoch")?,
                entries: u64_field("entries")?,
            }),
            "crash" => Ok(TraceEvent::Crash { epoch: u64_field("epoch")? }),
            "recovery_step" => Ok(TraceEvent::RecoveryStep {
                epoch: u64_field("epoch")?,
                line: u64_field("line")?,
            }),
            "tick" => Ok(TraceEvent::Tick { tick: u64_field("tick")?, work: u64_field("work")? }),
            other => Err(format!("unknown event type '{other}'")),
        }
    }
}

/// A sequenced, attributed trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global [`SimClock`] sequence number.
    pub seq: u64,
    /// Component that emitted the event (e.g. `"device"`).
    pub component: Cow<'static, str>,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    fn to_json(&self) -> Json {
        // Flatten the event fields next to seq/component so each dump
        // line is one shallow object.
        let mut out = Json::obj()
            .field("seq", Json::U64(self.seq))
            .field("component", Json::str(self.component.clone().into_owned()));
        if let Json::Obj(fields) = self.event.to_json() {
            for (k, v) in fields {
                out = out.field(&k, v);
            }
        }
        out
    }

    fn from_json(j: &Json) -> Result<TraceRecord, String> {
        Ok(TraceRecord {
            seq: j.get("seq").and_then(Json::as_u64).ok_or("record missing 'seq'")?,
            component: Cow::Owned(
                j.get("component")
                    .and_then(Json::as_str)
                    .ok_or("record missing 'component'")?
                    .to_string(),
            ),
            event: TraceEvent::from_json(j)?,
        })
    }
}

/// A bounded ring of [`TraceRecord`]s.
///
/// When full, the oldest records are evicted and counted in
/// [`TraceBuf::dropped`] — recent history is what matters for post-crash
/// forensics. A buffer built with [`TraceBuf::disabled`] ignores all
/// events at near-zero cost.
#[derive(Debug, Clone, Default)]
pub struct TraceBuf {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl TraceBuf {
    /// An enabled buffer retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuf { capacity, records: VecDeque::new(), dropped: 0 }
    }

    /// A buffer that discards everything (capacity 0).
    pub fn disabled() -> Self {
        TraceBuf::default()
    }

    /// Whether this buffer retains events at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted by wraparound since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Stamps `event` with the next [`SimClock`] sequence and retains it.
    pub fn record(&mut self, component: &'static str, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            seq: SimClock::tick(),
            component: Cow::Borrowed(component),
            event,
        });
    }

    /// A recording handle bound to one component name, so emit sites
    /// don't repeat it.
    pub fn scope(&mut self, component: &'static str) -> TraceScope<'_> {
        TraceScope { buf: self, component }
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Serializes the retained records as JSON lines (one object per
    /// line, oldest first) — the dump format recovery tooling consumes.
    pub fn dump_json_lines(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Parses a [`TraceBuf::dump_json_lines`] dump back into records.
    pub fn parse_json_lines(text: &str) -> Result<Vec<TraceRecord>, String> {
        text.lines()
            .filter(|line| !line.trim().is_empty())
            .map(|line| TraceRecord::from_json(&Json::parse(line)?))
            .collect()
    }
}

/// A [`TraceBuf`] handle pre-bound to one component name.
pub struct TraceScope<'a> {
    buf: &'a mut TraceBuf,
    component: &'static str,
}

impl TraceScope<'_> {
    /// Records `event` under this scope's component.
    pub fn emit(&mut self, event: TraceEvent) {
        self.buf.record(self.component, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_is_strictly_increasing() {
        let a = SimClock::tick();
        let b = SimClock::tick();
        assert!(b > a);
        assert!(SimClock::now() > b);
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_dropped() {
        let mut buf = TraceBuf::new(4);
        for line in 0..6u64 {
            buf.record("dev", TraceEvent::WriteBack { line });
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 2);
        let lines: Vec<u64> = buf
            .records()
            .map(|r| match r.event {
                TraceEvent::WriteBack { line } => line,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(lines, vec![2, 3, 4, 5], "oldest events evicted first");
    }

    #[test]
    fn event_ordering_follows_sim_clock() {
        let mut buf = TraceBuf::new(16);
        buf.record("cache", TraceEvent::Coherence { op: "rd_own".into(), line: 1 });
        buf.record("dev", TraceEvent::LogAppend { epoch: 0, line: 1 });
        buf.record("dev", TraceEvent::EpochCommit { epoch: 0, entries: 1 });
        let seqs: Vec<u64> = buf.records().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq strictly increases: {seqs:?}");
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut buf = TraceBuf::disabled();
        buf.record("dev", TraceEvent::Crash { epoch: 3 });
        assert!(buf.is_empty());
        assert!(!buf.is_enabled());
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn dump_round_trips_every_event_kind() {
        let mut buf = TraceBuf::new(16);
        buf.record("cache", TraceEvent::Coherence { op: "snp_inv".into(), line: 7 });
        buf.record("dev", TraceEvent::LogAppend { epoch: 2, line: 7 });
        buf.record("dev", TraceEvent::WriteBack { line: 7 });
        buf.record("dev", TraceEvent::EpochCommit { epoch: 2, entries: 1 });
        buf.record("dev", TraceEvent::Crash { epoch: 3 });
        buf.record("dev", TraceEvent::RecoveryStep { epoch: 3, line: 9 });
        buf.record("dev", TraceEvent::Tick { tick: 41, work: 6 });
        let parsed = TraceBuf::parse_json_lines(&buf.dump_json_lines()).unwrap();
        let original: Vec<TraceRecord> = buf.records().cloned().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_rejects_unknown_event_type() {
        let err = TraceBuf::parse_json_lines(
            "{\"seq\":1,\"component\":\"dev\",\"type\":\"warp_core_breach\"}\n",
        );
        assert!(err.is_err());
    }

    #[test]
    fn scope_attributes_events_to_its_component() {
        let mut buf = TraceBuf::new(4);
        buf.scope("pm").emit(TraceEvent::WriteBack { line: 1 });
        assert_eq!(buf.records().next().unwrap().component, "pm");
    }
}
