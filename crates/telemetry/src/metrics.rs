//! Named counter / histogram registry with snapshot, diff, and merge.
//!
//! Counter and histogram *slots* are atomics: once a handle is
//! registered, recording through it takes `&self`, so components shared
//! across OS threads (the concurrent `PaxPool` hot path) account events
//! without a lock. Registration ([`MetricSet::counter`] /
//! [`MetricSet::histogram`]) still takes `&mut self` — components
//! register at construction, before the set is shared.
//!
//! All slot updates use relaxed ordering: metrics are statistics, not
//! synchronization. A snapshot taken while other threads record is
//! internally consistent per counter but is not a cross-counter fence;
//! conservation-law checks should snapshot at quiescent points.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Handle to a counter slot in a [`MetricSet`].
///
/// Handles are plain indices: incrementing through one is an array add,
/// with no name lookup on the hot path. A handle is only meaningful for
/// the set that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u32);

/// Handle to a histogram slot in a [`MetricSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram(u32);

/// Power-of-two bucket count: bucket `i` holds values whose bit length
/// is `i`, i.e. bucket 0 is exactly zero, bucket 1 is `1`, bucket 2 is
/// `2..=3`, and so on up to bucket 64.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct Hist {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating add via a CAS loop; overflow is astronomically rare
        // but the non-atomic code saturated, so this does too.
        let mut sum = self.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(value);
            match self.sum.compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(cur) => sum = cur,
            }
        }
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[(64 - value.leading_zeros()) as usize].fetch_add(1, Ordering::Relaxed);
    }
}

impl Clone for Hist {
    fn clone(&self) -> Self {
        Hist {
            count: AtomicU64::new(self.count.load(Ordering::Relaxed)),
            sum: AtomicU64::new(self.sum.load(Ordering::Relaxed)),
            min: AtomicU64::new(self.min.load(Ordering::Relaxed)),
            max: AtomicU64::new(self.max.load(Ordering::Relaxed)),
            buckets: std::array::from_fn(|i| {
                AtomicU64::new(self.buckets[i].load(Ordering::Relaxed))
            }),
        }
    }
}

/// A component-owned registry of named counters and histograms.
///
/// Each simulated component (`pm`, `cxl`, `host_cache`, `device`, …)
/// owns exactly one set; the component's legacy typed stats structs are
/// derived views over it, so there is a single copy of every number.
///
/// Recording is `&self` (atomic slots, see module docs) so a set shared
/// behind an `Arc` or embedded in a `Sync` component stays lock-free on
/// the hot path.
#[derive(Debug)]
pub struct MetricSet {
    component: &'static str,
    counter_names: Vec<&'static str>,
    counters: Vec<AtomicU64>,
    histogram_names: Vec<&'static str>,
    histograms: Vec<Hist>,
    /// Times [`MetricSet::sub`] would have driven a counter below zero.
    /// A nonzero value is an accounting bug in the instrumented component
    /// — saturation used to clamp it silently; now debug builds assert
    /// and every build surfaces the count as a synthetic
    /// `metric_underflows` counter in [`MetricSet::snapshot`].
    underflows: AtomicU64,
}

impl Clone for MetricSet {
    fn clone(&self) -> Self {
        MetricSet {
            component: self.component,
            counter_names: self.counter_names.clone(),
            counters: self
                .counters
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            histogram_names: self.histogram_names.clone(),
            histograms: self.histograms.clone(),
            underflows: AtomicU64::new(self.underflows.load(Ordering::Relaxed)),
        }
    }
}

impl MetricSet {
    /// An empty set for the named component.
    pub fn new(component: &'static str) -> Self {
        MetricSet {
            component,
            counter_names: Vec::new(),
            counters: Vec::new(),
            histogram_names: Vec::new(),
            histograms: Vec::new(),
            underflows: AtomicU64::new(0),
        }
    }

    /// The component name this set was created with.
    pub fn component(&self) -> &'static str {
        self.component
    }

    /// Registers (or re-finds) a counter and returns its handle.
    pub fn counter(&mut self, name: &'static str) -> Counter {
        if let Some(i) = self.counter_names.iter().position(|n| *n == name) {
            return Counter(i as u32);
        }
        self.counter_names.push(name);
        self.counters.push(AtomicU64::new(0));
        Counter((self.counters.len() - 1) as u32)
    }

    /// Registers (or re-finds) a histogram and returns its handle.
    pub fn histogram(&mut self, name: &'static str) -> Histogram {
        if let Some(i) = self.histogram_names.iter().position(|n| *n == name) {
            return Histogram(i as u32);
        }
        self.histogram_names.push(name);
        self.histograms.push(Hist::new());
        Histogram((self.histograms.len() - 1) as u32)
    }

    /// Adds one to a counter.
    #[inline]
    pub fn inc(&self, c: Counter) {
        self.counters[c.0 as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, delta: u64) {
        self.counters[c.0 as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta` from a counter, saturating at zero.
    ///
    /// Counters are monotone by convention; this exists for the handful
    /// of *occupancy gauges* (e.g. directory residency) that must go
    /// down as well as up. Saturation keeps a missed decrement from
    /// wrapping into an absurdly large value — but an underflow is still
    /// a conservation bug in the caller, so it is **not** silent: debug
    /// builds `debug_assert!`, and every build counts the event into the
    /// synthetic `metric_underflows` counter that
    /// [`MetricSet::snapshot`] emits whenever it is nonzero.
    #[inline]
    pub fn sub(&self, c: Counter, delta: u64) {
        let slot = &self.counters[c.0 as usize];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(delta);
            match slot.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    // Judged on the value the exchange actually replaced,
                    // so a racing add can't produce a phantom underflow.
                    if cur < delta {
                        self.underflows.fetch_add(1, Ordering::Relaxed);
                        debug_assert!(
                            false,
                            "metric underflow: {}/{} at {} minus {}",
                            self.component, self.counter_names[c.0 as usize], cur, delta
                        );
                    }
                    break;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Times [`MetricSet::sub`] underflowed (zero in a healthy run).
    pub fn underflows(&self) -> u64 {
        self.underflows.load(Ordering::Relaxed)
    }

    /// Current value of a counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.0 as usize].load(Ordering::Relaxed)
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn record(&self, h: Histogram, value: u64) {
        self.histograms[h.0 as usize].record(value);
    }

    /// An owned, point-in-time copy of every metric in the set. A set
    /// that has ever underflowed additionally reports a synthetic
    /// `metric_underflows` counter, so release-build accounting bugs
    /// show up in dumps instead of being clamped away.
    pub fn snapshot(&self) -> MetricSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counter_names
            .iter()
            .zip(&self.counters)
            .map(|(n, v)| (n.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let underflows = self.underflows.load(Ordering::Relaxed);
        if underflows > 0 {
            counters.push(("metric_underflows".to_string(), underflows));
        }
        MetricSnapshot {
            component: self.component.to_string(),
            counters,
            histograms: self
                .histogram_names
                .iter()
                .zip(&self.histograms)
                .map(|(n, h)| {
                    let count = h.count.load(Ordering::Relaxed);
                    (
                        n.to_string(),
                        HistogramSnapshot {
                            count,
                            sum: h.sum.load(Ordering::Relaxed),
                            min: if count == 0 { 0 } else { h.min.load(Ordering::Relaxed) },
                            max: h.max.load(Ordering::Relaxed),
                            buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Saturating sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Power-of-two buckets; index = bit length of the value.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .field("count", Json::U64(self.count))
            .field("sum", Json::U64(self.sum))
            .field("min", Json::U64(self.min))
            .field("max", Json::U64(self.max))
            .field("mean", Json::F64(self.mean()))
    }
}

/// Point-in-time copy of one component's [`MetricSet`].
///
/// Snapshots support `diff` (what happened between two points) and
/// `merge` (combine parallel components), which together give interval
/// accounting without any extra state in the components themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Component name the metrics belong to.
    pub component: String,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricSnapshot {
    /// An empty snapshot for a named component (useful as a merge seed).
    pub fn empty(component: impl Into<String>) -> Self {
        MetricSnapshot { component: component.into(), counters: Vec::new(), histograms: Vec::new() }
    }

    /// Value of a named counter; 0 when the counter is absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// A named histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// All counters in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Counters accumulated since `earlier` (saturating, so a component
    /// reset between snapshots reads as zero rather than wrapping).
    /// Histograms are not intervals and are dropped from the diff.
    pub fn diff(&self, earlier: &MetricSnapshot) -> MetricSnapshot {
        MetricSnapshot {
            component: self.component.clone(),
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n))))
                .collect(),
            histograms: Vec::new(),
        }
    }

    /// Sum of this snapshot and `other`, counter by counter. Counters
    /// present in only one side are kept; histograms are combined
    /// bucket-wise.
    pub fn merge(&self, other: &MetricSnapshot) -> MetricSnapshot {
        let mut counters = self.counters.clone();
        for (name, v) in &other.counters {
            match counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => counters.push((name.clone(), *v)),
            }
        }
        let mut histograms = self.histograms.clone();
        for (name, h) in &other.histograms {
            match histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => {
                    mine.count += h.count;
                    mine.sum = mine.sum.saturating_add(h.sum);
                    mine.min = if mine.count == 0 { 0 } else { mine.min.min(h.min) };
                    mine.max = mine.max.max(h.max);
                    for (a, b) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *a += b;
                    }
                }
                None => histograms.push((name.clone(), h.clone())),
            }
        }
        MetricSnapshot { component: self.component.clone(), counters, histograms }
    }

    /// Merges `other` into this snapshot under a per-source label.
    ///
    /// Every counter `name` of `other` is added as `label/name`
    /// **only** — the plain name is untouched, so labeled rollups
    /// compose with the plain [`merge`](MetricSnapshot::merge) totals
    /// without double counting: after
    /// `total.merge(&s).merge_labeled("shard0", &s)` the conservation
    /// law `sum over labels of "label/name" == counter(name)` holds.
    /// Histograms keep their identity the same way (`label/name`).
    pub fn merge_labeled(&self, label: &str, other: &MetricSnapshot) -> MetricSnapshot {
        let mut counters = self.counters.clone();
        for (name, v) in &other.counters {
            let labeled = format!("{label}/{name}");
            match counters.iter_mut().find(|(n, _)| *n == labeled) {
                Some((_, mine)) => *mine += v,
                None => counters.push((labeled, *v)),
            }
        }
        let mut histograms = self.histograms.clone();
        for (name, h) in &other.histograms {
            let labeled = format!("{label}/{name}");
            match histograms.iter_mut().find(|(n, _)| *n == labeled) {
                Some((_, mine)) => {
                    mine.count += h.count;
                    mine.sum = mine.sum.saturating_add(h.sum);
                    mine.min = if mine.count == 0 { 0 } else { mine.min.min(h.min) };
                    mine.max = mine.max.max(h.max);
                    for (a, b) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *a += b;
                    }
                }
                None => histograms.push((labeled, h.clone())),
            }
        }
        MetricSnapshot { component: self.component.clone(), counters, histograms }
    }

    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (n, v) in &self.counters {
            counters = counters.field(n, Json::U64(*v));
        }
        let mut out = Json::obj().field("component", Json::str(&self.component));
        out = out.field("counters", counters);
        if !self.histograms.is_empty() {
            let mut hists = Json::obj();
            for (n, h) in &self.histograms {
                hists = hists.field(n, h.to_json());
            }
            out = out.field("histograms", hists);
        }
        out
    }
}

/// A cross-layer snapshot: one [`MetricSnapshot`] per component, in
/// stack order (host cache first, media last). This is what
/// `PaxPool::telemetry()` hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Per-component snapshots in stack order.
    pub components: Vec<MetricSnapshot>,
}

impl TelemetrySnapshot {
    /// A snapshot over the given components.
    pub fn new(components: Vec<MetricSnapshot>) -> Self {
        TelemetrySnapshot { components }
    }

    /// The snapshot for a named component, when present.
    pub fn component(&self, name: &str) -> Option<&MetricSnapshot> {
        self.components.iter().find(|c| c.component == name)
    }

    /// Shorthand: counter `name` in component `component`, else 0.
    pub fn counter(&self, component: &str, name: &str) -> u64 {
        self.component(component).map_or(0, |c| c.counter(name))
    }

    /// Component-wise diff against an earlier cross-layer snapshot.
    pub fn diff(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            components: self
                .components
                .iter()
                .map(|c| match earlier.component(&c.component) {
                    Some(e) => c.diff(e),
                    None => c.clone(),
                })
                .collect(),
        }
    }

    /// Renders the snapshot as a JSON object keyed by component name.
    pub fn to_json(&self) -> Json {
        let mut out = Json::obj();
        for c in &self.components {
            out = out.field(&c.component, c.to_json());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> (MetricSet, Counter, Counter) {
        let mut ms = MetricSet::new("dev");
        let a = ms.counter("reads");
        let b = ms.counter("writes");
        (ms, a, b)
    }

    #[test]
    fn registering_twice_returns_same_slot() {
        let (mut ms, a, _) = sample_set();
        assert_eq!(ms.counter("reads"), a);
        ms.inc(a);
        assert_eq!(ms.snapshot().counter("reads"), 1);
    }

    #[test]
    fn sub_decrements_gauges() {
        let (ms, a, _) = sample_set();
        ms.add(a, 3);
        ms.sub(a, 2);
        assert_eq!(ms.get(a), 1);
        ms.sub(a, 1);
        assert_eq!(ms.get(a), 0);
        assert_eq!(ms.underflows(), 0, "exact accounting must not trip the alarm");
        assert_eq!(ms.snapshot().counter("metric_underflows"), 0, "no synthetic counter");
    }

    /// Underflow is a caller-side conservation bug: debug builds assert,
    /// release builds saturate but count the event and surface it as a
    /// synthetic `metric_underflows` counter in snapshots.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "metric underflow"))]
    fn sub_underflow_is_loud() {
        let (ms, a, _) = sample_set();
        ms.add(a, 3);
        ms.sub(a, 5);
        assert_eq!(ms.get(a), 0, "still saturates instead of wrapping");
        assert_eq!(ms.underflows(), 1);
        assert_eq!(ms.snapshot().counter("metric_underflows"), 1);
    }

    #[test]
    fn snapshot_diff_isolates_an_interval() {
        let (ms, a, b) = sample_set();
        ms.add(a, 10);
        let before = ms.snapshot();
        ms.add(a, 5);
        ms.inc(b);
        let delta = ms.snapshot().diff(&before);
        assert_eq!(delta.counter("reads"), 5);
        assert_eq!(delta.counter("writes"), 1);
    }

    #[test]
    fn diff_saturates_instead_of_wrapping() {
        let (ms, a, _) = sample_set();
        ms.add(a, 7);
        let high = ms.snapshot();
        let fresh = MetricSet::new("dev").snapshot();
        assert_eq!(fresh.diff(&high).counter("reads"), 0);
    }

    #[test]
    fn merge_adds_shared_and_keeps_disjoint_counters() {
        let (ms1, a, _) = sample_set();
        ms1.add(a, 3);
        let mut ms2 = MetricSet::new("dev");
        let r = ms2.counter("reads");
        let e = ms2.counter("evicts");
        ms2.add(r, 4);
        ms2.inc(e);
        let merged = ms1.snapshot().merge(&ms2.snapshot());
        assert_eq!(merged.counter("reads"), 7);
        assert_eq!(merged.counter("writes"), 0);
        assert_eq!(merged.counter("evicts"), 1);
    }

    #[test]
    fn merge_labeled_preserves_source_identity_and_conserves_totals() {
        let mut shard0 = MetricSet::new("dev");
        let r0 = shard0.counter("reads");
        shard0.add(r0, 3);
        let mut shard1 = MetricSet::new("dev");
        let r1 = shard1.counter("reads");
        shard1.add(r1, 4);

        // The rollup pattern: plain merge for totals, labeled merge for
        // per-source breakdown, on the same snapshot.
        let mut total = MetricSnapshot::empty("dev");
        for (i, s) in [&shard0, &shard1].iter().enumerate() {
            let snap = s.snapshot();
            total = total.merge(&snap);
            total = total.merge_labeled(&format!("shard{i}"), &snap);
        }
        assert_eq!(total.counter("shard0/reads"), 3);
        assert_eq!(total.counter("shard1/reads"), 4);
        // Conservation: labeled parts sum to the plain total.
        assert_eq!(
            total.counter("shard0/reads") + total.counter("shard1/reads"),
            total.counter("reads")
        );
    }

    #[test]
    fn merge_labeled_keeps_histogram_identity() {
        let mut ms = MetricSet::new("dev");
        let h = ms.histogram("batch");
        ms.record(h, 8);
        let labeled = MetricSnapshot::empty("dev").merge_labeled("t0", &ms.snapshot());
        assert!(labeled.histogram("batch").is_none());
        assert_eq!(labeled.histogram("t0/batch").unwrap().count, 1);
    }

    #[test]
    fn histogram_tracks_count_sum_extrema() {
        let mut ms = MetricSet::new("dev");
        let h = ms.histogram("batch");
        for v in [1u64, 2, 3, 100] {
            ms.record(h, v);
        }
        let snap = ms.snapshot();
        let hist = snap.histogram("batch").unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 106);
        assert_eq!(hist.min, 1);
        assert_eq!(hist.max, 100);
        assert!((hist.mean() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn telemetry_snapshot_lookup_and_diff() {
        let (ms, a, _) = sample_set();
        ms.add(a, 2);
        let t0 = TelemetrySnapshot::new(vec![ms.snapshot()]);
        ms.add(a, 3);
        let t1 = TelemetrySnapshot::new(vec![ms.snapshot()]);
        assert_eq!(t1.counter("dev", "reads"), 5);
        assert_eq!(t1.diff(&t0).counter("dev", "reads"), 3);
        assert!(t1.component("nope").is_none());
    }

    #[test]
    fn recording_is_lock_free_across_threads() {
        // Handles registered up front; recording then takes &self, so the
        // set can be shared across OS threads without a lock.
        let mut ms = MetricSet::new("dev");
        let c = ms.counter("events");
        let h = ms.histogram("lat");
        let ms = std::sync::Arc::new(ms);
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ms = std::sync::Arc::clone(&ms);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        ms.inc(c);
                        ms.record(h, t * per_thread + i + 1);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(ms.get(c), threads * per_thread);
        let snap = ms.snapshot();
        let hist = snap.histogram("lat").unwrap();
        assert_eq!(hist.count, threads * per_thread);
        assert_eq!(hist.min, 1);
        assert_eq!(hist.max, threads * per_thread);
    }

    #[test]
    fn snapshot_json_contains_all_counters() {
        let (ms, a, b) = sample_set();
        ms.inc(a);
        ms.add(b, 2);
        let rendered = ms.snapshot().to_json().render();
        assert!(rendered.contains("\"reads\":1"));
        assert!(rendered.contains("\"writes\":2"));
        assert!(rendered.contains("\"component\":\"dev\""));
    }
}
