//! Foundation crate for PAX observability.
//!
//! Every simulated component in the stack — PM media, CXL channels, the
//! host cache hierarchy, the PAX device — records its counters in a
//! [`MetricSet`] owned by that component, and optionally emits structured
//! [`TraceEvent`]s into a bounded [`TraceBuf`]. Snapshots of many metric
//! sets combine into a [`TelemetrySnapshot`] (what `PaxPool::telemetry()`
//! returns), and everything serializes through the hand-rolled [`Json`]
//! emitter (`DESIGN.md §3`: no serde in this workspace).
//!
//! Design rules:
//!
//! * **One copy of every counter.** Components do not keep shadow stats
//!   structs; typed views (e.g. `DeviceMetrics`) are built on demand from
//!   the registry.
//! * **Hot-path increments are an indexed add.** A [`Counter`] is a
//!   `Copy` slot handle; `MetricSet::inc` is `self.values[slot] += 1`
//!   with no hashing or locking.
//! * **Traces are replayable.** [`TraceBuf::dump_json_lines`] round-trips
//!   through [`TraceBuf::parse_json_lines`], so a post-crash dump is
//!   enough to reconstruct the event sequence leading up to the crash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
mod report;
mod trace;

pub use json::Json;
pub use metrics::{
    Counter, Histogram, HistogramSnapshot, MetricSet, MetricSnapshot, TelemetrySnapshot,
};
pub use report::Report;
pub use trace::{SimClock, TraceBuf, TraceEvent, TraceRecord, TraceScope};
