//! Schema-consistent JSON reports for benchmarks and tools.

use crate::json::Json;
use crate::metrics::TelemetrySnapshot;

/// Builder for the one JSON shape every PAX benchmark emits:
///
/// ```json
/// {
///   "schema_version": 1,
///   "bench": "<name>",
///   "config": { ... },
///   "results": [ { ... }, ... ],
///   "telemetry": { ... }            // optional cross-layer snapshot
/// }
/// ```
///
/// `config` holds the knobs the run was invoked with, `results` holds
/// one object per measured configuration/data point. A fixed top-level
/// shape keeps downstream tooling (ratchets, plotters) independent of
/// which benchmark produced the file.
#[derive(Debug, Clone)]
pub struct Report {
    bench: String,
    config: Json,
    results: Vec<Json>,
    telemetry: Option<Json>,
}

/// Version of the report schema; bump when the top-level shape changes.
pub const SCHEMA_VERSION: u64 = 1;

impl Report {
    /// A report for the named benchmark.
    pub fn new(bench: impl Into<String>) -> Self {
        Report { bench: bench.into(), config: Json::obj(), results: Vec::new(), telemetry: None }
    }

    /// Records one configuration knob.
    pub fn config(mut self, key: &str, value: Json) -> Self {
        self.config = self.config.field(key, value);
        self
    }

    /// Records a configuration knob by mutable reference (for loops).
    pub fn set_config(&mut self, key: &str, value: Json) {
        let config = std::mem::replace(&mut self.config, Json::obj());
        self.config = config.field(key, value);
    }

    /// Appends one result row (any JSON object).
    pub fn push_result(&mut self, row: Json) {
        self.results.push(row);
    }

    /// Attaches a cross-layer telemetry snapshot.
    pub fn attach_telemetry(&mut self, snapshot: &TelemetrySnapshot) {
        self.telemetry = Some(snapshot.to_json());
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        let mut out = Json::obj()
            .field("schema_version", Json::U64(SCHEMA_VERSION))
            .field("bench", Json::str(&self.bench))
            .field("config", self.config.clone())
            .field("results", Json::Arr(self.results.clone()));
        if let Some(t) = &self.telemetry {
            out = out.field("telemetry", t.clone());
        }
        out
    }

    /// Compact single-line JSON, for piping into other tools.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Indented JSON, for humans.
    pub fn render_pretty(&self) -> String {
        self.to_json().render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricSet;

    #[test]
    fn report_shape_is_stable() {
        let mut report = Report::new("fig2a").config("lines", Json::U64(4096));
        report.push_result(Json::obj().field("miss_rate", Json::F64(0.25)));
        let j = Json::parse(&report.render()).unwrap();
        assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(SCHEMA_VERSION));
        assert_eq!(j.get("bench").and_then(Json::as_str), Some("fig2a"));
        assert_eq!(j.get("config").unwrap().get("lines").and_then(Json::as_u64), Some(4096));
        assert_eq!(j.get("results").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
    }

    #[test]
    fn telemetry_attachment_appears_per_component() {
        let mut ms = MetricSet::new("device");
        let c = ms.counter("rd_own");
        ms.add(c, 9);
        let snap = TelemetrySnapshot::new(vec![ms.snapshot()]);
        let mut report = Report::new("x");
        report.attach_telemetry(&snap);
        let j = Json::parse(&report.render()).unwrap();
        let dev = j.get("telemetry").unwrap().get("device").unwrap();
        assert_eq!(dev.get("counters").unwrap().get("rd_own").and_then(Json::as_u64), Some(9));
    }
}
