//! Minimal JSON value: builder, compact emitter, and parser.
//!
//! Hand-rolled on purpose — `DESIGN.md §3` keeps serde out of the
//! workspace. Objects preserve insertion order so reports are
//! deterministic and diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the common case for counters).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point; non-finite values render as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be extended with [`Json::field`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An empty array, to be extended with [`Json::push`].
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// A string value (convenience over `Json::Str(s.to_string())`).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Adds or replaces a field on an object (panics on non-objects —
    /// builder misuse is a programming error, not data).
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                match fields.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => *v = value,
                    None => fields.push((key.to_string(), value)),
                }
                self
            }
            _ => panic!("Json::field called on a non-object"),
        }
    }

    /// Appends an element to an array (panics on non-arrays).
    pub fn push(mut self, value: Json) -> Json {
        match &mut self {
            Json::Arr(items) => {
                items.push(value);
                self
            }
            _ => panic!("Json::push called on a non-array"),
        }
    }

    /// Looks up a field on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as u64, when it is an unsigned (or exact signed) integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Two-space indented serialization, for human-facing reports.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document. Returns a message with a byte offset on
    /// malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so
                // continuation boundaries are always valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>().map(Json::F64).map_err(|_| format!("bad number '{text}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_in_insertion_order() {
        let j = Json::obj()
            .field("b", Json::U64(2))
            .field("a", Json::str("x\"y"))
            .field("list", Json::arr().push(Json::Bool(true)).push(Json::Null));
        assert_eq!(j.render(), r#"{"b":2,"a":"x\"y","list":[true,null]}"#);
    }

    #[test]
    fn field_replaces_existing_key() {
        let j = Json::obj().field("a", Json::U64(1)).field("a", Json::U64(2));
        assert_eq!(j.render(), r#"{"a":2}"#);
    }

    #[test]
    fn parse_round_trips_render() {
        let original = Json::obj()
            .field("n", Json::U64(u64::MAX))
            .field("neg", Json::I64(-5))
            .field("s", Json::str("tab\there"))
            .field("nested", Json::arr().push(Json::obj().field("f", Json::F64(1.5))));
        let parsed = Json::parse(&original.render()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let j = Json::obj().field("a", Json::arr().push(Json::U64(1)).push(Json::U64(2)));
        assert_eq!(Json::parse(&j.render_pretty()).unwrap(), j);
    }
}
