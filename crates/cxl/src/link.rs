//! Link and media bandwidth model — the §5.1 bottleneck analysis.
//!
//! §5.1 argues that a PAX deployment is limited not by the CXL link
//! (63 GB/s full duplex) or by PM media bandwidth (40 GB/s read, 14 GB/s
//! write per socket) but — for the Enzian prototype — by the device's
//! message-processing rate (a 300 MHz FPGA must answer a coherence message
//! nearly every cycle to saturate the interconnect). [`LinkModel`] turns an
//! offered load (LLC misses and write backs per second) into utilisations
//! of each resource and identifies the binding one.

use pax_pm::BandwidthProfile;

/// A shared resource that can bound PAX throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Resource {
    /// CXL/PCIe link, host→device direction.
    LinkH2D,
    /// CXL/PCIe link, device→host direction.
    LinkD2H,
    /// PM media read bandwidth.
    PmRead,
    /// PM media write bandwidth (data write back + undo-log appends).
    PmWrite,
    /// The device's coherence-message processing rate.
    DeviceMsgRate,
}

impl Resource {
    /// Human-readable name used by the bench harness tables.
    pub fn label(self) -> &'static str {
        match self {
            Resource::LinkH2D => "CXL link (H2D)",
            Resource::LinkD2H => "CXL link (D2H)",
            Resource::PmRead => "PM read bandwidth",
            Resource::PmWrite => "PM write bandwidth",
            Resource::DeviceMsgRate => "device message rate",
        }
    }

    /// Stable machine-readable key used in JSON reports.
    pub fn key(self) -> &'static str {
        match self {
            Resource::LinkH2D => "link_h2d",
            Resource::LinkD2H => "link_d2h",
            Resource::PmRead => "pm_read",
            Resource::PmWrite => "pm_write",
            Resource::DeviceMsgRate => "device_msg_rate",
        }
    }
}

/// Offered load on the PAX data path, in events per second.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OfferedLoad {
    /// LLC read misses per second reaching the device.
    pub read_misses_per_sec: f64,
    /// RdOwn (store-intent) messages per second.
    pub rdown_per_sec: f64,
    /// Dirty write backs (host→device) per second.
    pub dirty_evicts_per_sec: f64,
    /// Fraction of device reads served by on-device HBM instead of PM.
    pub hbm_hit_rate: f64,
}

/// Utilisation of every resource under an offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckReport {
    /// `(resource, utilisation)` pairs; 1.0 = saturated.
    pub utilisation: Vec<(Resource, f64)>,
}

impl BottleneckReport {
    /// The resource with the highest utilisation.
    pub fn binding(&self) -> (Resource, f64) {
        self.utilisation
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("report always has entries")
    }

    /// Whether the configuration can sustain the offered load.
    pub fn feasible(&self) -> bool {
        self.binding().1 <= 1.0
    }

    /// Utilisation of a specific resource.
    pub fn of(&self, r: Resource) -> f64 {
        self.utilisation.iter().find(|(res, _)| *res == r).map(|(_, u)| *u).unwrap_or(0.0)
    }

    /// The report as a JSON object: per-resource utilisation plus the
    /// binding resource, in the shared bench report schema.
    pub fn to_json(&self) -> pax_telemetry::Json {
        use pax_telemetry::Json;
        let mut util = Json::obj();
        for (r, u) in &self.utilisation {
            util = util.field(r.key(), Json::F64(*u));
        }
        let (binding, u) = self.binding();
        Json::obj()
            .field("utilisation", util)
            .field("binding", Json::str(binding.key()))
            .field("binding_utilisation", Json::F64(u))
            .field("feasible", Json::Bool(self.feasible()))
    }
}

/// Bandwidth model over a [`BandwidthProfile`].
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    profile: BandwidthProfile,
}

impl LinkModel {
    /// A model with the paper's §5.1 constants.
    pub fn new(profile: BandwidthProfile) -> Self {
        LinkModel { profile }
    }

    /// The profile in use.
    pub fn profile(&self) -> BandwidthProfile {
        self.profile
    }

    /// Computes per-resource utilisation for `load`.
    ///
    /// Accounting:
    /// * every read miss moves one line D2H (data to host); every dirty
    ///   evict moves one line H2D; RdOwn responses also carry data D2H;
    /// * each logged store costs PM **two** line writes (undo entry +
    ///   eventual data write back) and one PM read (old value fetch),
    ///   minus those served by HBM;
    /// * every message (reads, RdOwn, evicts) consumes one device cycle.
    pub fn analyze(&self, load: &OfferedLoad) -> BottleneckReport {
        let line = pax_pm::LINE_SIZE as f64;
        let p = &self.profile;

        let d2h_bytes = (load.read_misses_per_sec + load.rdown_per_sec) * line;
        let h2d_bytes = load.dirty_evicts_per_sec * line;

        let pm_served = 1.0 - load.hbm_hit_rate;
        // Reads that reach PM: demand misses + RdOwn old-value fetches.
        let pm_read_bytes = (load.read_misses_per_sec + load.rdown_per_sec) * pm_served * line;
        // Writes that reach PM: undo-log append per RdOwn + data write back.
        let pm_write_bytes = (load.rdown_per_sec + load.dirty_evicts_per_sec) * line;

        let msgs = load.read_misses_per_sec + load.rdown_per_sec + load.dirty_evicts_per_sec;

        let gb = 1e9;
        BottleneckReport {
            utilisation: vec![
                (Resource::LinkH2D, h2d_bytes / (p.cxl_gbps * gb)),
                (Resource::LinkD2H, d2h_bytes / (p.cxl_gbps * gb)),
                (Resource::PmRead, pm_read_bytes / (p.pm_read_gbps * gb)),
                (Resource::PmWrite, pm_write_bytes / (p.pm_write_gbps * gb)),
                (Resource::DeviceMsgRate, msgs / p.device_msgs_per_sec()),
            ],
        }
    }

    /// Maximum sustainable message rate before the binding resource
    /// saturates, for a workload shaped like `load` (linear scaling).
    pub fn max_scale_factor(&self, load: &OfferedLoad) -> f64 {
        let (_, u) = self.analyze(load).binding();
        if u == 0.0 {
            f64::INFINITY
        } else {
            1.0 / u
        }
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::new(BandwidthProfile::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(misses: f64, rdown: f64, evicts: f64) -> OfferedLoad {
        OfferedLoad {
            read_misses_per_sec: misses,
            rdown_per_sec: rdown,
            dirty_evicts_per_sec: evicts,
            hbm_hit_rate: 0.0,
        }
    }

    #[test]
    fn device_msg_rate_binds_before_the_link() {
        // §5.1: "hundreds of millions of LLC misses per second" vs a
        // 300 MHz device: the device binds first, not the I/O bus.
        let m = LinkModel::default();
        let r = m.analyze(&load(200e6, 50e6, 50e6));
        let (binding, _) = r.binding();
        assert_eq!(binding, Resource::DeviceMsgRate);
        assert!(r.of(Resource::LinkD2H) < r.of(Resource::DeviceMsgRate));
    }

    #[test]
    fn write_heavy_load_pressures_pm_write_bandwidth() {
        // Remove the device bottleneck (ASIC-class message rate, §5.1's
        // "designs ... that include ASICs would likely outperform") and a
        // write-heavy load binds on PM's 14 GB/s write side.
        let fast_device = BandwidthProfile { device_clock_hz: 3.0e9, ..BandwidthProfile::paper() };
        let m = LinkModel::new(fast_device);
        let r = m.analyze(&load(10e6, 100e6, 100e6));
        assert_eq!(r.binding().0, Resource::PmWrite);
    }

    #[test]
    fn hbm_hits_relieve_pm_reads() {
        let m = LinkModel::default();
        let mut l = load(100e6, 0.0, 0.0);
        let before = m.analyze(&l).of(Resource::PmRead);
        l.hbm_hit_rate = 0.9;
        let after = m.analyze(&l).of(Resource::PmRead);
        assert!(after < before * 0.2);
    }

    #[test]
    fn feasibility_and_scale() {
        let m = LinkModel::default();
        let small = load(1e6, 1e6, 1e6);
        let r = m.analyze(&small);
        assert!(r.feasible());
        let k = m.max_scale_factor(&small);
        assert!(k > 1.0);
        // Scaling to exactly the max keeps the load feasible (≈1.0).
        let at_max = load(1e6 * k, 1e6 * k, 1e6 * k);
        let u = m.analyze(&at_max).binding().1;
        assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_load_is_free() {
        let m = LinkModel::default();
        let r = m.analyze(&OfferedLoad::default());
        assert_eq!(r.binding().1, 0.0);
        assert_eq!(m.max_scale_factor(&OfferedLoad::default()), f64::INFINITY);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Resource::DeviceMsgRate.label(), "device message rate");
    }
}
