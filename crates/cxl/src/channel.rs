//! Latency- and traffic-accounted FIFO channels.
//!
//! The paper's software prototype (§4) carries simulated CXL messages over
//! shared-memory queues ("easily 100 ns or less"); a hardware PAX carries
//! them over the link's request/response channels. [`Channel`] models
//! either: a FIFO with a per-message latency attribute and cumulative
//! traffic statistics that the timing models consume. [`Transport`] pairs
//! the four channels of a CXL.cache endpoint.

use std::collections::VecDeque;

use pax_telemetry::{Counter, MetricSet, MetricSnapshot};

use crate::message::{D2HReq, D2HResp, H2DReq, H2DResp};

/// Cumulative traffic counters for one channel.
///
/// A point-in-time view over the channel's [`MetricSet`] registry,
/// which owns the actual counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages enqueued over the channel's lifetime.
    pub messages: u64,
    /// Payload bytes (64 per message that carries a line).
    pub data_bytes: u64,
}

/// A FIFO message channel with a fixed per-message latency.
///
/// # Example
///
/// ```
/// use pax_cxl::Channel;
///
/// let mut ch: Channel<u32> = Channel::new(100);
/// ch.push(1);
/// ch.push(2);
/// assert_eq!(ch.pop(), Some(1));
/// assert_eq!(ch.stats().messages, 2);
/// assert_eq!(ch.latency_ns(), 100);
/// ```
#[derive(Debug)]
pub struct Channel<T> {
    queue: VecDeque<T>,
    latency_ns: u64,
    metrics: MetricSet,
    messages: Counter,
    data_bytes: Counter,
}

impl<T> Channel<T> {
    /// Creates an empty channel whose messages take `latency_ns` to cross.
    pub fn new(latency_ns: u64) -> Self {
        Self::with_component(latency_ns, "cxl_channel")
    }

    /// Like [`Channel::new`], with a component name for the channel's
    /// metric registry (so [`Transport`] can tell its channels apart).
    pub fn with_component(latency_ns: u64, component: &'static str) -> Self {
        let mut metrics = MetricSet::new(component);
        let messages = metrics.counter("messages");
        let data_bytes = metrics.counter("data_bytes");
        Channel { queue: VecDeque::new(), latency_ns, metrics, messages, data_bytes }
    }

    /// Per-message one-way latency.
    pub fn latency_ns(&self) -> u64 {
        self.latency_ns
    }

    /// Enqueues a message.
    pub fn push(&mut self, msg: T) {
        self.metrics.inc(self.messages);
        self.queue.push_back(msg);
    }

    /// Enqueues a message that carries a 64-byte line payload.
    pub fn push_with_data(&mut self, msg: T) {
        self.metrics.add(self.data_bytes, pax_pm::LINE_SIZE as u64);
        self.push(msg);
    }

    /// Dequeues the oldest message.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Messages currently in flight.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the channel is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> ChannelStats {
        ChannelStats {
            messages: self.metrics.get(self.messages),
            data_bytes: self.metrics.get(self.data_bytes),
        }
    }

    /// Snapshot of the channel's metric registry.
    pub fn metrics(&self) -> MetricSnapshot {
        self.metrics.snapshot()
    }

    /// Drops any in-flight messages (power loss: link state is volatile).
    pub fn crash(&mut self) {
        self.queue.clear();
    }
}

/// The four channels of a CXL.cache endpoint, host side on the left.
#[derive(Debug)]
pub struct Transport {
    /// Host→device requests (RdShared/RdOwn/evicts).
    pub h2d_req: Channel<H2DReq>,
    /// Device→host responses (GO/data).
    pub d2h_resp: Channel<D2HResp>,
    /// Device→host snoops (SnpData/SnpInv).
    pub d2h_req: Channel<D2HReq>,
    /// Host→device snoop responses.
    pub h2d_resp: Channel<H2DResp>,
}

impl Transport {
    /// A transport whose channels all have the same one-way latency.
    pub fn new(latency_ns: u64) -> Self {
        Transport {
            h2d_req: Channel::with_component(latency_ns, "cxl_h2d_req"),
            d2h_resp: Channel::with_component(latency_ns, "cxl_d2h_resp"),
            d2h_req: Channel::with_component(latency_ns, "cxl_d2h_req"),
            h2d_resp: Channel::with_component(latency_ns, "cxl_h2d_resp"),
        }
    }

    /// Round-trip request latency (request + response crossing).
    pub fn round_trip_ns(&self) -> u64 {
        self.h2d_req.latency_ns() + self.d2h_resp.latency_ns()
    }

    /// Total messages across all four channels.
    pub fn total_messages(&self) -> u64 {
        self.h2d_req.stats().messages
            + self.d2h_resp.stats().messages
            + self.d2h_req.stats().messages
            + self.h2d_resp.stats().messages
    }

    /// Total line-payload bytes moved in either direction.
    pub fn total_data_bytes(&self) -> u64 {
        self.h2d_req.stats().data_bytes
            + self.d2h_resp.stats().data_bytes
            + self.d2h_req.stats().data_bytes
            + self.h2d_resp.stats().data_bytes
    }

    /// Drops all in-flight messages.
    pub fn crash(&mut self) {
        self.h2d_req.crash();
        self.d2h_resp.crash();
        self.d2h_req.crash();
        self.h2d_resp.crash();
    }

    /// One `"cxl"` snapshot summing the four channels' registries
    /// (`messages`, `data_bytes`); per-channel registries remain
    /// reachable through each channel's `metrics()`.
    pub fn metrics(&self) -> MetricSnapshot {
        MetricSnapshot::empty("cxl")
            .merge(&self.h2d_req.metrics())
            .merge(&self.d2h_resp.metrics())
            .merge(&self.d2h_req.metrics())
            .merge(&self.h2d_resp.metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_pm::{CacheLine, LineAddr};

    #[test]
    fn fifo_order() {
        let mut ch: Channel<u8> = Channel::new(10);
        for i in 0..5 {
            ch.push(i);
        }
        for i in 0..5 {
            assert_eq!(ch.pop(), Some(i));
        }
        assert_eq!(ch.pop(), None);
    }

    #[test]
    fn data_bytes_counted_only_with_payload() {
        let mut ch: Channel<H2DReq> = Channel::new(10);
        ch.push(H2DReq::RdOwn { addr: LineAddr(0) });
        ch.push_with_data(H2DReq::DirtyEvict { addr: LineAddr(0), data: CacheLine::zeroed() });
        assert_eq!(ch.stats().messages, 2);
        assert_eq!(ch.stats().data_bytes, 64);
    }

    #[test]
    fn crash_drops_in_flight_but_keeps_stats() {
        let mut ch: Channel<u8> = Channel::new(10);
        ch.push(1);
        ch.crash();
        assert!(ch.is_empty());
        assert_eq!(ch.stats().messages, 1);
    }

    #[test]
    fn transport_round_trip_and_totals() {
        let mut t = Transport::new(35);
        assert_eq!(t.round_trip_ns(), 70);
        t.h2d_req.push(H2DReq::RdShared { addr: LineAddr(1) });
        t.d2h_resp.push_with_data(D2HResp::GoData { addr: LineAddr(1), data: CacheLine::zeroed() });
        assert_eq!(t.total_messages(), 2);
        assert_eq!(t.total_data_bytes(), 64);
        t.crash();
        assert!(t.h2d_req.is_empty() && t.d2h_resp.is_empty());
    }
}
